//! Routing-loop detection demo (§4.5): misconfigure four switches into a
//! forwarding loop and watch the controller trap catch it in tens of
//! milliseconds — no TTL expiry, no polling.
//!
//! Run with: `cargo run --example loop_detection`

use pathdump::prelude::*;
use pathdump_apps::routing_loop::{install_loop, run_loop_experiment};
use pathdump_apps::Testbed;

fn main() {
    let mut tb = Testbed::default_k4();
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
    let flow = tb.flow(src, dst, 8800);

    // The Figure 9 scenario: Agg(0,0) is misconfigured to always send this
    // flow up to Core(0); the cores bounce it between pods forever.
    let cycle = vec![
        tb.ft.agg(0, 0),
        tb.ft.core(0),
        tb.ft.agg(1, 0),
        tb.ft.core(1),
    ];
    println!("installing a 4-switch loop: {cycle:?}");
    let entry = tb.ft.tor(0, 0);
    install_loop(&mut tb, flow, entry, &cycle);

    let out = run_loop_experiment(&mut tb, flow, Nanos::from_secs(3));
    match out.detection {
        Some(det) => {
            println!("loop DETECTED at t={}", det.at);
            println!("  punting switch : {}", det.punt_switch);
            println!("  repeated linkID: {}", det.repeated_link_id);
            println!("  controller visits needed: {}", det.visits);
            println!("  total punts observed: {}", out.punts);
            println!(
                "\nmechanism: the looping packet accumulates a VLAN tag every \
                 two switches; at three tags the ASIC rule-misses and punts \
                 to the controller, which spots the repeated link ID."
            );
        }
        None => println!("no loop detected (unexpected!)"),
    }
}
