//! Distributed top-k demo (§2.3, §5.2): the same top-k query executed via
//! the direct mechanism, via the 4-level aggregation tree, and via the
//! message-passing **rpc plane** (per-hop timeouts, acks, retries) — all
//! three bit-identical — plus a degraded run with a dead aggregator
//! showing exact per-host coverage.
//!
//! Run with: `cargo run --release --example distributed_topk`

use pathdump::prelude::*;
use pathdump_bench_shim::synth_tib;

/// Thin local copy of the bench TIB synthesizer (examples cannot depend on
/// the bench crate).
mod pathdump_bench_shim {
    use pathdump::prelude::*;
    use pathdump::tib::TibRecord;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Builds a synthetic TIB of `n` records for `host`.
    pub fn synth_tib(ft: &FatTree, host: HostId, n: usize, seed: u64) -> Tib {
        let mut rng = SmallRng::seed_from_u64(seed ^ (host.0 as u64) << 17);
        let topo = ft.topology();
        let num_hosts = topo.num_hosts() as u32;
        let mut tib = Tib::new();
        for i in 0..n {
            let src = loop {
                let c = HostId(rng.gen_range(0..num_hosts));
                if c != host {
                    break c;
                }
            };
            let paths = ft.all_paths(src, host);
            let path = paths[rng.gen_range(0..paths.len())].clone();
            let bytes: u64 = if rng.gen::<f64>() < 0.9 {
                rng.gen_range(200..100_000)
            } else {
                rng.gen_range(100_000..30_000_000)
            };
            let start = Nanos(rng.gen_range(0..3_600_000_000_000));
            tib.insert(TibRecord {
                flow: FlowId::tcp(
                    topo.host(src).ip,
                    1024 + (i % 60000) as u16,
                    topo.host(host).ip,
                    80,
                ),
                path,
                stime: start,
                etime: start.saturating_add(Nanos(1_000_000)),
                bytes,
                pkts: bytes / 1460 + 1,
            });
        }
        tib
    }
}

fn main() {
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let hosts = 112usize;
    let records = 10_000usize;
    println!("building {hosts} TIBs with {records} records each...");
    let tibs: Vec<Tib> = (0..hosts)
        .map(|h| synth_tib(&ft, HostId(h as u32), records, 7))
        .collect();
    let cluster = Cluster::new(tibs.clone(), MgmtNet::default());
    let q = Query::TopK {
        k: 1000,
        range: TimeRange::ANY,
    };
    let idx: Vec<usize> = (0..hosts).collect();
    let d = cluster.direct_query(&idx, &q);
    let m = cluster.multilevel_query(&idx, &q, &[7, 4, 4]);
    assert_eq!(d.response, m.response, "both mechanisms agree");
    println!("\ntop-1000 flows across {hosts} hosts:");
    println!(
        "  direct     : {:>9.3} ms response, {:>8} bytes on the wire",
        d.elapsed.as_secs_f64() * 1e3,
        d.wire_bytes
    );
    println!(
        "  multi-level: {:>9.3} ms response, {:>8} bytes on the wire",
        m.elapsed.as_secs_f64() * 1e3,
        m.wire_bytes
    );
    if let Response::TopK { entries, .. } = &d.response {
        println!("\nheaviest 5 flows:");
        for (bytes, flow) in entries.iter().take(5) {
            println!("  {bytes:>10} B  {flow}");
        }
    }
    println!(
        "\nthe tree discards (n-1)*k key-value pairs during aggregation and \
         spreads merge work over interior hosts (§5.2)."
    );

    // The same query over the rpc plane: real frames on a modeled channel,
    // per-hop timers instead of an in-process latency formula.
    let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), tibs.clone());
    let id = plane.submit(&q, &idx, &[7, 4, 4]);
    let rpc_out = plane.run(id).expect("lossless plane completes");
    assert_eq!(rpc_out.response, m.response, "rpc plane agrees bit-for-bit");
    println!(
        "\nrpc plane  : {:>9.3} ms virtual response, {:>8} bytes / {} frames on the wire, \
         {}/{} hosts answered",
        rpc_out.elapsed.as_secs_f64() * 1e3,
        plane.channel().bytes_sent(),
        plane.channel().frames_sent(),
        rpc_out.coverage.answered.len(),
        hosts,
    );

    // Degrade it: kill one root-level aggregator. The query still returns
    // within deadline, with the dead subtree accounted host by host.
    let mut plan = FaultPlan::none(1);
    plan.dead = vec![1];
    let mut degraded = TreePlane::new(
        FaultyChannel::new(MgmtNet::default(), plan),
        RpcConfig::default(),
        tibs,
    );
    let id = degraded.submit(&q, &idx, &[7, 4, 4]);
    let out = degraded.run(id).expect("deadline guarantees completion");
    println!(
        "degraded   : aggregator host 1 dead -> {} answered, {} missed, {} timed out \
         ({:.3} ms, deadline {})",
        out.coverage.answered.len(),
        out.coverage.missed.len(),
        out.coverage.timed_out.len(),
        out.elapsed.as_secs_f64() * 1e3,
        if out.deadline_met { "met" } else { "blown" },
    );
}
