//! Load-imbalance diagnosis demo (§4.2): a "poor hash" pins all large
//! flows onto one uplink; the per-link flow-size distributions recovered
//! from the TIBs expose the split.
//!
//! Run with: `cargo run --release --example load_imbalance`

use pathdump::prelude::*;
use pathdump_apps::load_imbalance::flow_size_distributions;
use pathdump_apps::Testbed;

fn main() {
    let mut tb = Testbed::default_k4();
    let sagg = tb.ft.tor(0, 0);
    let link1 = LinkDir::new(sagg, tb.ft.agg(0, 0));
    let link2 = LinkDir::new(sagg, tb.ft.agg(0, 1));
    let threshold = 1_000_000;
    tb.sim.install_quirk(
        sagg,
        Quirk::SizeBasedSplit {
            threshold,
            big_port: tb.sim.link_port(sagg, tb.ft.agg(0, 0)),
            small_port: tb.sim.link_port(sagg, tb.ft.agg(0, 1)),
        },
    );
    println!("quirk installed: flows > 1MB from {sagg} all hash onto {link1}");

    // Mixed flow sizes out of rack (0,0).
    let sizes = [
        50_000u64, 120_000, 300_000, 700_000, 1_500_000, 2_500_000, 4_000_000, 80_000,
    ];
    for (i, &size) in sizes.iter().enumerate() {
        let src = tb.ft.host(0, 0, i % 2);
        let dst = tb.ft.host(1 + i % 3, (i / 2) % 2, i % 2);
        tb.add_flow(src, dst, 6000 + i as u16, size, Nanos::ZERO);
    }
    tb.run_and_flush(Nanos::from_secs(600));
    assert!(tb.sim.world.tcp.all_complete());

    let hosts: Vec<HostId> = (0..16).map(HostId).collect();
    let dists = flow_size_distributions(
        &mut tb.sim.world,
        &hosts,
        &[link1, link2],
        TimeRange::ANY,
        10_000,
    );
    for d in &dists {
        println!(
            "\nlink {}: {} flows, {} of them >= 1MB",
            d.link,
            d.total_flows(),
            d.flows_at_least(threshold)
        );
        for (bytes, frac) in d.cdf() {
            println!("  <= {:>10} bytes : {:.2}", bytes, frac);
        }
    }
    println!(
        "\ndiagnosis: the flow-size distributions on the two links are \
         sharply divided at 1MB — the load imbalance is a size-correlated \
         hash, exactly the §4.2 scenario."
    );
}
