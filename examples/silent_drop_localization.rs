//! Silent-drop localization demo (§4.3): a faulty interface drops 25% of
//! packets without touching any counter; MAX-COVERAGE over edge-collected
//! failure signatures pins it down.
//!
//! Run with: `cargo run --release --example silent_drop_localization`

use pathdump::prelude::*;
use pathdump_apps::silent_drops::{score, SilentDropLocalizer};
use pathdump_apps::Testbed;

fn main() {
    let mut tb = Testbed::default_k4();
    // The faulty interface: Agg(0,0) -> ToR(0,1) silently drops 25%.
    let faulty = LinkDir::new(tb.ft.agg(0, 0), tb.ft.tor(0, 1));
    tb.sim.set_directed_fault(
        faulty.from,
        faulty.to,
        FaultState {
            silent_drop_rate: 0.25,
            ..FaultState::HEALTHY
        },
    );
    println!("injected fault: {faulty} drops 25% of packets, counters untouched");

    // Long-lived flows into the victim rack from every other rack.
    let mut sport = 7000;
    for spod in [1usize, 2, 3] {
        for t in 0..2 {
            for hdst in 0..2 {
                let src = tb.ft.host(spod, t, 0);
                let dst = tb.ft.host(0, 1, hdst);
                let start = Nanos::from_millis(100 * (sport - 7000) as u64);
                tb.add_flow(src, dst, sport, 2_000_000, start);
                sport += 1;
            }
        }
    }

    // The controller loop: drain POOR_PERF alarms every 200ms, pull the
    // victims' paths from destination TIBs, run MAX-COVERAGE.
    let mut app = SilentDropLocalizer::new();
    for step in 1..=150u64 {
        let t = Nanos::from_millis(200 * step);
        tb.sim.run_until(t);
        app.process_alarms(&mut tb.sim.world, t, Nanos::ZERO);
        if step % 25 == 0 {
            let hyp = app.localize();
            let acc = score(&hyp, &[faulty]);
            println!(
                "t={:>4.1}s  signatures={:<3} hypothesis={:?}  recall={:.1} precision={:.2}",
                t.as_secs_f64(),
                app.coverage.len(),
                hyp,
                acc.recall,
                acc.precision
            );
        }
    }
    let hyp = app.localize();
    let acc = score(&hyp, &[faulty]);
    println!(
        "\nfinal hypothesis: {hyp:?}\nground truth: [{faulty}] -> recall {:.1}, precision {:.2}",
        acc.recall, acc.precision
    );
}
