//! Quickstart: build a fat-tree fabric with PathDump agents, run a few TCP
//! flows, and query the Host API of Table 1.
//!
//! Run with: `cargo run --example quickstart`

use pathdump::prelude::*;
use pathdump_apps::Testbed;

fn main() {
    // A 4-ary fat-tree testbed: CherryPick tagging rules on every switch,
    // a PathDump agent on every host.
    let mut tb = Testbed::default_k4();
    println!(
        "fabric: k=4 fat-tree, {} switches, {} hosts",
        tb.ft.topology().num_switches(),
        tb.ft.topology().num_hosts()
    );

    // Three TCP flows between pods.
    let flows = [
        (
            tb.ft.host(0, 0, 0),
            tb.ft.host(1, 0, 0),
            5000u16,
            500_000u64,
        ),
        (tb.ft.host(0, 0, 1), tb.ft.host(2, 1, 0), 5001, 200_000),
        (tb.ft.host(3, 0, 0), tb.ft.host(1, 0, 0), 5002, 80_000),
    ];
    for &(s, d, port, size) in &flows {
        tb.add_flow(s, d, port, size, Nanos::ZERO);
    }
    tb.run_and_flush(Nanos::from_secs(60));
    assert!(tb.sim.world.tcp.all_complete());
    println!("all flows completed; TIBs populated from in-band trajectories\n");

    // Host API: getPaths — which path did flow 1 take?
    let f0 = tb.flow(flows[0].0, flows[0].1, flows[0].2);
    let dst = flows[0].1;
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetPaths {
            flow: f0,
            link: LinkPattern::ANY,
            range: TimeRange::ANY,
        },
        false,
    );
    if let Response::Paths(paths) = &resp {
        println!("getPaths({f0}) at {dst} -> {paths:?}");
    }

    // Host API: getCount — bytes/packets of that flow.
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetCount {
            flow: f0,
            path: None,
            range: TimeRange::ANY,
        },
        false,
    );
    if let Response::Count { bytes, pkts } = resp {
        println!("getCount({f0}) -> {bytes} bytes, {pkts} packets");
    }

    // Controller API: a cluster-wide query (getFlows on every incoming
    // link of one ToR).
    let tor = tb.ft.tor(1, 0);
    let all_hosts: Vec<HostId> = (0..16).map(HostId).collect();
    let resp = tb.sim.world.execute(
        &all_hosts,
        &Query::GetFlows {
            link: LinkPattern::into(tor),
            range: TimeRange::ANY,
        },
        false,
    );
    if let Response::Flows(fl) = resp {
        println!(
            "getFlows(<?, {tor}>) across all hosts -> {} flows",
            fl.len()
        );
        for f in fl {
            println!("  {f}");
        }
    }
}
