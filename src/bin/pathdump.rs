//! `pathdump` — the operator CLI/REPL over the TIB query plane.
//!
//! Reads whitespace-separated commands from stdin (one per line; `#`
//! starts a comment) and answers over a single working TIB, which can be
//! populated three ways: explicit `rec` injection, a deterministic
//! `replay` of a simulated web-traffic run (every host's TIB merged in
//! host/arena order), or `load`ing a TIB2 snapshot. Every insert also
//! drives the standing-query engine, so `watch`es registered before a
//! replay fire as the replayed records stream in.
//!
//! Time travel: command time arguments are **milliseconds** and ranges
//! are the conventional half-open `[t0, t1)`; they are mapped to the
//! TIB's closed `TimeRange` as `[t0, t1 - 1ns]` at the boundary (see the
//! time-boundary convention in `pathdump_tib::tib`).

use std::io::{BufRead, Write};

use pathdump_apps::Testbed;
use pathdump_core::standing::{StandingPredicate, StandingQuery, StandingQueryEngine};
use pathdump_core::{execute_on_tib, Query, Response, WorldConfig};
use pathdump_simnet::SimConfig;
use pathdump_tib::{diff_snapshots, load, save_tiered, TibDiff, TibRead, TieredTib};
use pathdump_topology::{FlowId, HostId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};

const HELP: &str = "\
commands (times in ms, ranges half-open [t0 t1)):
  rec <src> <dst> <sport> <t0> <t1> <bytes> <sw,sw,..>  inject a record
  replay <load> <secs> <seed>       merge a simulated web-traffic run
  paths <src> <dst> <sport> [t0 t1] paths of one flow
  between <src> <dst> [t0 t1]       paths of every flow src->dst
  top <k> [t0 t1]                   top talkers by bytes
  toplink <k> <a-b> [t0 t1]         top talkers crossing link a-b
  flows [a-b|any] [t0 t1]           flows on a link
  count <src> <dst> <sport> [t0 t1] bytes/pkts of one flow
  diff <src> <dst> <sport> <t>      flow's paths before vs after time t
  save <file>                       write a TIB3 snapshot
  load <file>                       replace the store from a snapshot (TIB2 or TIB3)
  diffsnap <fileA> <fileB>          diff two snapshots
  watch rate <src> <dst> <sport> <window_ms> <min_bytes>
  watch topk <src> <dst> <sport> <k>
  watch path <src> <dst> <sport>
  watch link <a-b> <ceiling>
  unwatch <id>                      remove a standing query
  alarms                            drain standing raises/clears
  help | quit";

struct Cli {
    tib: TieredTib,
    eng: StandingQueryEngine,
}

fn parse_ip(s: &str) -> Result<Ip, String> {
    let mut oct = [0u8; 4];
    let mut parts = s.split('.');
    for o in &mut oct {
        *o = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad ip `{s}`"))?;
    }
    if parts.next().is_some() {
        return Err(format!("bad ip `{s}`"));
    }
    Ok(Ip::new(oct[0], oct[1], oct[2], oct[3]))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

fn parse_flow(src: &str, dst: &str, sport: &str) -> Result<FlowId, String> {
    Ok(FlowId::tcp(
        parse_ip(src)?,
        parse_num(sport, "sport")?,
        parse_ip(dst)?,
        80,
    ))
}

/// `a-b` → the exact link a→b; `any` → wildcard.
fn parse_link(s: &str) -> Result<LinkPattern, String> {
    if s.eq_ignore_ascii_case("any") {
        return Ok(LinkPattern::ANY);
    }
    let (a, b) = s.split_once('-').ok_or_else(|| format!("bad link `{s}`"))?;
    Ok(LinkPattern::exact(
        SwitchId(parse_num(a, "switch")?),
        SwitchId(parse_num(b, "switch")?),
    ))
}

/// Optional trailing `[t0 t1)` in ms, mapped to the closed TimeRange
/// `[t0, t1 - 1ns]`; absent → all time.
fn parse_range(args: &[&str]) -> Result<TimeRange, String> {
    match args {
        [] => Ok(TimeRange::ANY),
        [t0, t1] => {
            let lo = Nanos::from_millis(parse_num(t0, "t0")?);
            let hi = Nanos::from_millis(parse_num(t1, "t1")?);
            if hi <= lo {
                return Err(format!("empty range [{t0} {t1})"));
            }
            Ok(TimeRange::between(lo, Nanos(hi.0 - 1)))
        }
        _ => Err("expected zero or two time arguments".into()),
    }
}

fn show_paths(paths: &[Path]) -> String {
    if paths.is_empty() {
        return "no paths".into();
    }
    paths
        .iter()
        .map(|p| format!("path {p}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn show_diff(d: &TibDiff) -> String {
    let mut out = vec![format!(
        "diff: {} flows changed ({} records before, {} after)",
        d.deltas.len(),
        d.before_records,
        d.after_records
    )];
    for delta in &d.deltas {
        out.push(format!("flow {}", delta.flow));
        for p in delta.removed() {
            out.push(format!("  - {p}"));
        }
        for p in delta.added() {
            out.push(format!("  + {p}"));
        }
    }
    out.join("\n")
}

impl Cli {
    fn new() -> Self {
        Cli {
            tib: TieredTib::new(),
            eng: StandingQueryEngine::new(HostId(0)),
        }
    }

    /// Single insert path: store, then mirror to the standing engine
    /// (event time = the record's etime).
    fn insert(&mut self, rec: pathdump_tib::TibRecord) {
        self.tib.insert(rec.clone());
        self.eng.on_record(&self.tib, &rec, rec.etime);
    }

    fn replay(&mut self, load: f64, secs: u64, seed: u64) -> String {
        let mut tb = Testbed::fattree(4, SimConfig::for_tests(), WorldConfig::default());
        let specs = tb.add_web_traffic(load, Nanos::from_secs(secs), seed);
        tb.run_and_flush(Nanos::from_secs(secs + 4));
        let mut merged = 0usize;
        let records: Vec<_> = tb
            .sim
            .world
            .agents
            .iter()
            .flat_map(|a| a.tib.records_vec())
            .collect();
        for rec in records {
            self.insert(rec);
            merged += 1;
        }
        format!(
            "replayed {} flows -> merged {merged} records ({} total in store)",
            specs.len(),
            self.tib.len()
        )
    }

    fn watch(&mut self, args: &[&str]) -> Result<String, String> {
        let pred = match args {
            ["rate", src, dst, sport, win, min] => StandingPredicate::RateAbove {
                flow: parse_flow(src, dst, sport)?,
                window: Nanos::from_millis(parse_num(win, "window")?),
                min_bytes: parse_num(min, "min_bytes")?,
                min_pkts: 1,
            },
            ["topk", src, dst, sport, k] => StandingPredicate::TopKMember {
                flow: parse_flow(src, dst, sport)?,
                k: parse_num(k, "k")?,
            },
            ["path", src, dst, sport] => StandingPredicate::PathChanged {
                flow: parse_flow(src, dst, sport)?,
            },
            ["link", link, ceiling] => StandingPredicate::LinkFlowsAbove {
                link: parse_link(link)?,
                ceiling: parse_num(ceiling, "ceiling")?,
            },
            _ => return Err("usage: watch rate|topk|path|link ... (see help)".into()),
        };
        let clock = self.eng.clock();
        let id = self.eng.watch(&self.tib, StandingQuery::new(pred), clock);
        Ok(format!("watch {} registered", id.0))
    }

    fn exec(&mut self, toks: &[&str]) -> Result<String, String> {
        match toks {
            ["help"] => Ok(HELP.into()),
            ["rec", src, dst, sport, t0, t1, bytes, path] => {
                let sw: Result<Vec<SwitchId>, String> = path
                    .split(',')
                    .map(|s| Ok(SwitchId(parse_num(s, "switch")?)))
                    .collect();
                let (t0ms, t1ms) = (parse_num(t0, "t0")?, parse_num::<u64>(t1, "t1")?);
                if t1ms < t0ms {
                    return Err("t1 must be >= t0".into());
                }
                let bytes: u64 = parse_num(bytes, "bytes")?;
                self.insert(pathdump_tib::TibRecord {
                    flow: parse_flow(src, dst, sport)?,
                    path: Path::new(sw?),
                    stime: Nanos::from_millis(t0ms),
                    etime: Nanos::from_millis(t1ms),
                    bytes,
                    pkts: 1 + bytes / 1460,
                });
                Ok(format!("ok ({} records)", self.tib.len()))
            }
            ["replay", load, secs, seed] => Ok(self.replay(
                parse_num(load, "load")?,
                parse_num(secs, "secs")?,
                parse_num(seed, "seed")?,
            )),
            ["paths", src, dst, sport, rest @ ..] => {
                let q = Query::GetPaths {
                    flow: parse_flow(src, dst, sport)?,
                    link: LinkPattern::ANY,
                    range: parse_range(rest)?,
                };
                match execute_on_tib(&self.tib, &q) {
                    Response::Paths(p) => Ok(show_paths(&p)),
                    r => Err(format!("unexpected response {r:?}")),
                }
            }
            ["between", src, dst, rest @ ..] => {
                let (sip, dip) = (parse_ip(src)?, parse_ip(dst)?);
                let range = parse_range(rest)?;
                let flows = match execute_on_tib(
                    &self.tib,
                    &Query::GetFlows {
                        link: LinkPattern::ANY,
                        range,
                    },
                ) {
                    Response::Flows(f) => f,
                    r => return Err(format!("unexpected response {r:?}")),
                };
                let mut out = Vec::new();
                for f in flows.iter().filter(|f| f.src_ip == sip && f.dst_ip == dip) {
                    let q = Query::GetPaths {
                        flow: *f,
                        link: LinkPattern::ANY,
                        range,
                    };
                    if let Response::Paths(p) = execute_on_tib(&self.tib, &q) {
                        for path in p {
                            out.push(format!("flow {f} path {path}"));
                        }
                    }
                }
                if out.is_empty() {
                    out.push(format!("no paths between {sip} and {dip}"));
                }
                Ok(out.join("\n"))
            }
            ["top", k, rest @ ..] => {
                let q = Query::TopK {
                    k: parse_num(k, "k")?,
                    range: parse_range(rest)?,
                };
                match execute_on_tib(&self.tib, &q) {
                    Response::TopK { entries, .. } => Ok(entries
                        .iter()
                        .map(|(b, f)| format!("{b} bytes  {f}"))
                        .collect::<Vec<_>>()
                        .join("\n")),
                    r => Err(format!("unexpected response {r:?}")),
                }
            }
            ["toplink", k, link, rest @ ..] => {
                let k: usize = parse_num(k, "k")?;
                let mut counts: Vec<(u64, FlowId)> = self
                    .tib
                    .link_flow_counts(parse_link(link)?, parse_range(rest)?)
                    .into_iter()
                    .map(|(f, (bytes, _))| (bytes, f))
                    .collect();
                // Same total order as `Tib::top_k_flows`.
                counts.sort_unstable_by(|a, b| b.cmp(a));
                counts.truncate(k);
                Ok(counts
                    .iter()
                    .map(|(b, f)| format!("{b} bytes  {f}"))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            ["flows", rest @ ..] => {
                let (link, rest) = match rest {
                    [l, rest @ ..] if l.contains('-') || l.eq_ignore_ascii_case("any") => {
                        (parse_link(l)?, rest)
                    }
                    _ => (LinkPattern::ANY, rest),
                };
                let q = Query::GetFlows {
                    link,
                    range: parse_range(rest)?,
                };
                match execute_on_tib(&self.tib, &q) {
                    Response::Flows(f) => Ok(f
                        .iter()
                        .map(|f| format!("flow {f}"))
                        .collect::<Vec<_>>()
                        .join("\n")),
                    r => Err(format!("unexpected response {r:?}")),
                }
            }
            ["count", src, dst, sport, rest @ ..] => {
                let q = Query::GetCount {
                    flow: parse_flow(src, dst, sport)?,
                    path: None,
                    range: parse_range(rest)?,
                };
                match execute_on_tib(&self.tib, &q) {
                    Response::Count { bytes, pkts } => Ok(format!("{bytes} bytes {pkts} pkts")),
                    r => Err(format!("unexpected response {r:?}")),
                }
            }
            ["diff", src, dst, sport, t] => {
                let flow = parse_flow(src, dst, sport)?;
                let t = Nanos::from_millis(parse_num(t, "t")?);
                let d = self.tib.diff_at(t);
                match d.for_flow(flow) {
                    None => Ok(format!("flow {flow}: unchanged across {t:?}")),
                    Some(delta) => {
                        let mut out = vec![format!("flow {flow} across {t:?}:")];
                        out.push(format!("  before: {}", show_paths(&delta.before)));
                        out.push(format!("  after:  {}", show_paths(&delta.after)));
                        Ok(out.join("\n"))
                    }
                }
            }
            ["save", file] => {
                let bytes = save_tiered(&self.tib).map_err(|e| e.to_string())?;
                std::fs::write(file, bytes).map_err(|e| e.to_string())?;
                Ok(format!("saved {} records to {file}", self.tib.len()))
            }
            ["load", file] => {
                let bytes = std::fs::read(file).map_err(|e| e.to_string())?;
                // The flat loader accepts both TIB2 and TIB3 (flattened).
                let loaded = load(&bytes).map_err(|e| format!("{e:?}"))?;
                // Rebuild through the single insert path so registered
                // watches observe every record (incremental contract).
                self.tib = TieredTib::new();
                let records: Vec<_> = loaded.records().to_vec();
                let n = records.len();
                for rec in records {
                    self.insert(rec);
                }
                Ok(format!("loaded {n} records from {file}"))
            }
            ["diffsnap", fa, fb] => {
                let a = std::fs::read(fa).map_err(|e| e.to_string())?;
                let b = std::fs::read(fb).map_err(|e| e.to_string())?;
                let d = diff_snapshots(&a, &b).map_err(|e| format!("{e:?}"))?;
                Ok(show_diff(&d))
            }
            ["watch", rest @ ..] => self.watch(rest),
            ["unwatch", id] => {
                let id = pathdump_core::standing::WatchId(parse_num(id, "id")?);
                if self.eng.unwatch(id) {
                    Ok(format!("watch {} removed", id.0))
                } else {
                    Err(format!("no watch {}", id.0))
                }
            }
            ["alarms"] => {
                let evs = self.eng.drain_events();
                if evs.is_empty() {
                    return Ok("no standing events".into());
                }
                Ok(evs
                    .iter()
                    .map(|e| {
                        format!(
                            "{} watch={} flow={} at={:?}",
                            if e.raised { "RAISE" } else { "CLEAR" },
                            e.watch.0,
                            e.alarm.flow,
                            e.alarm.at
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            _ => Err(format!("unknown command `{}` (try help)", toks.join(" "))),
        }
    }
}

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut cli = Cli::new();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if matches!(toks[0], "quit" | "exit") {
            break;
        }
        let reply = match cli.exec(&toks) {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        };
        if writeln!(out, "{reply}").is_err() {
            break;
        }
    }
}
