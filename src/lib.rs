//! PathDump: edge-based datacenter network debugging via packet-trajectory
//! tracing — a full Rust reproduction of the OSDI'16 paper.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! - [`topology`]: fat-tree/VL2 builders, routing, IDs — the static view
//!   each edge device stores;
//! - [`simnet`]: the discrete-event packet-level fabric (the testbed
//!   substitute) with fault injection;
//! - [`cherrypick`]: link sampling, 12-bit ID spaces, path reconstruction;
//! - [`transport`]: simplified TCP with retransmission counters and the
//!   web workload generator;
//! - [`tib`]: trajectory memory + the indexed, queryable store;
//! - [`core`]: host agents, alarms, the controller, direct & multi-level
//!   distributed queries;
//! - [`rpc`]: the distributed query plane — agent servers answering
//!   queries over a pluggable channel through a fan-out/fan-in
//!   aggregation tree, with timeouts, retries, hedging and exact per-host
//!   coverage for degraded queries;
//! - [`apps`]: the §4 debugging applications;
//! - [`verifier`]: static dataplane verification (loops, blackholes,
//!   reachability) and intent models for runtime conformance;
//! - [`dpswitch`]: the userspace datapath for the Figure 13 experiment.
//!
//! # Examples
//!
//! ```
//! use pathdump::prelude::*;
//!
//! // Build a 4-ary fat-tree with CherryPick tagging and PathDump agents.
//! let ft = FatTree::build(FatTreeParams { k: 4 });
//! let world = PathDumpWorld::new(
//!     Fabric::FatTree(FatTreeReconstructor::new(ft.clone())),
//!     TcpConfig::default(),
//!     WorldConfig::default(),
//! );
//! let mut sim = Simulator::new(
//!     &ft,
//!     SimConfig::for_tests(),
//!     Box::new(FatTreeCherryPick::new(ft.clone())),
//!     world,
//! );
//! PathDumpWorld::start(&mut sim);
//! sim.run_until(Nanos::from_secs(1));
//! assert_eq!(sim.world.agents.len(), 16);
//! ```

pub use pathdump_apps as apps;
pub use pathdump_cherrypick as cherrypick;
pub use pathdump_core as core;
pub use pathdump_dpswitch as dpswitch;
pub use pathdump_rpc as rpc;
pub use pathdump_simnet as simnet;
pub use pathdump_tib as tib;
pub use pathdump_topology as topology;
pub use pathdump_transport as transport;
pub use pathdump_verifier as verifier;
pub use pathdump_wire as wire;

/// The most common imports, bundled.
pub mod prelude {
    pub use pathdump_apps::Testbed;
    pub use pathdump_cherrypick::{
        FatTreeCherryPick, FatTreeReconstructor, Vl2CherryPick, Vl2Reconstructor,
    };
    pub use pathdump_core::{
        Alarm, Cluster, Fabric, Invariant, MgmtNet, PathDumpWorld, Query, Reason, Response,
        StandingEvent, StandingPredicate, StandingQuery, StandingQueryEngine, WatchId, WorldConfig,
    };
    pub use pathdump_rpc::{
        Channel, Coverage, FaultPlan, FaultyChannel, Loopback, QueryOutcome, RpcConfig, TreePlane,
    };
    pub use pathdump_simnet::{
        FaultState, LoadBalance, Misconfig, Packet, Quirk, SimConfig, Simulator, TagPolicy, World,
    };
    pub use pathdump_tib::{
        diff_snapshots, PathDelta, Tib, TibDiff, TibRead, TibReader, TibRecord, TieredTib,
    };
    pub use pathdump_topology::{
        FatTree, FatTreeParams, FlowId, HostId, Ip, LinkDir, LinkPattern, Nanos, Path, SwitchId,
        TimeRange, UpDownRouting, Vl2, Vl2Params,
    };
    pub use pathdump_transport::{FlowSpec, TcpConfig, TcpEngine, WebWorkload};
    pub use pathdump_verifier::{verify, IntentModel, Verdict, Violation, ViolationKind};
}
