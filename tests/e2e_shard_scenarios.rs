//! End-to-end debugging scenarios on the **sharded** simnet engine at
//! k=8, differentially checked against the sequential reference: the
//! silent-drop, routing-loop, and load-imbalance applications from
//! `pathdump_apps` must reach identical verdicts (localized links,
//! detected loops, per-link flow-size splits) — and, because the engines
//! are bit-identical by design, identical `SimStats` too.
//!
//! Plus a k=16 scale check: a paper-scale fabric (320 switches, 1024
//! hosts, 17 switch shards) completes end-to-end on the sharded engine.

use pathdump_apps::load_imbalance::flow_size_distributions;
use pathdump_apps::routing_loop::{install_loop, run_loop_experiment};
use pathdump_apps::silent_drops::{score, SilentDropLocalizer};
use pathdump_apps::Testbed;
use pathdump_core::{TibRead, WorldConfig};
use pathdump_simnet::{
    EngineKind, FaultState, NoTagging, Packet, SimConfig, SimStats, Simulator, SinkWorld,
};
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, HostId, LinkDir, LinkPattern, Nanos, TimeRange, UpDownRouting,
};

fn k8(engine: EngineKind) -> Testbed {
    Testbed::fattree(
        8,
        SimConfig::for_tests().with_engine(engine),
        WorldConfig::default(),
    )
}

/// Like [`k8`], but the sharded engine runs on the persistent worker
/// pool (`shard_workers` = 2) instead of inline.
fn k8_pooled(engine: EngineKind) -> Testbed {
    let mut cfg = SimConfig::for_tests().with_engine(engine);
    cfg.shard_workers = 2;
    Testbed::fattree(8, cfg, WorldConfig::default())
}

const ENGINES: [EngineKind; 2] = [EngineKind::Sequential, EngineKind::Sharded];

/// §4.3 at k=8: MAX-COVERAGE localization of a silently dropping
/// interface from edge alarms. Both engines must produce the same failure
/// signatures, the same hypothesis, and the same fabric stats.
#[test]
fn silent_drop_localization_k8_sharded_matches_sequential() {
    let mut results: Vec<(Vec<LinkDir>, usize, SimStats)> = Vec::new();
    for engine in ENGINES {
        let mut tb = k8(engine);
        assert_eq!(tb.sim.effective_engine(), engine);
        // Faulty interface: Agg(0,0) -> ToR(0,1), 45% silent drops — high
        // enough to trip the consecutive-retransmission monitor, below
        // 100% so victim paths still reach the destination TIBs.
        let faulty = LinkDir::new(tb.ft.agg(0, 0), tb.ft.tor(0, 1));
        tb.sim.set_directed_fault(
            faulty.from,
            faulty.to,
            FaultState {
                silent_drop_rate: 0.45,
                ..FaultState::HEALTHY
            },
        );
        // Long-lived flows into rack (0,1) from every remote pod (k=8 has
        // four aggregate positions, so enough flows are needed for ECMP to
        // hash several across the faulty aggregate), staggered to keep
        // congestion noise low.
        let mut sport = 7000;
        for spod in 1usize..8 {
            for t in 0..2 {
                let src = tb.ft.host(spod, t, 0);
                for hdst in 0..2 {
                    let dst = tb.ft.host(0, 1, hdst);
                    let start = Nanos::from_millis(50 * (sport - 7000) as u64);
                    tb.add_flow(src, dst, sport, 600_000, start);
                    sport += 1;
                }
            }
        }
        let mut app = SilentDropLocalizer::new();
        for step in 1..=150u64 {
            let t = Nanos::from_millis(200 * step);
            tb.sim.run_until(t);
            app.process_alarms(&mut tb.sim.world, t, Nanos::ZERO);
        }
        assert!(
            !app.coverage.is_empty(),
            "[{engine:?}] retransmitting flows must produce signatures"
        );
        let hyp = app.localize();
        let acc = score(&hyp, &[faulty]);
        assert!(
            acc.recall >= 1.0,
            "[{engine:?}] faulty link must be in the hypothesis: {hyp:?}"
        );
        results.push((hyp, app.coverage.len(), tb.sim.stats.clone()));
    }
    let (seq, sha) = (&results[0], &results[1]);
    assert_eq!(sha.0, seq.0, "localization hypotheses diverged");
    assert_eq!(sha.1, seq.1, "signature counts diverged");
    assert_eq!(sha.2, seq.2, "fabric stats diverged");
}

/// §4.5 at k=8: a 4-switch loop across two pods and the core, trapped by
/// the controller in punt time. Verdicts (switch, repeated link, visit
/// count, detection time) must be identical across engines — here the
/// sharded side runs on the **pooled** driver, so the thread/mailbox/
/// barrier machinery gets blocking e2e coverage at 9 switch shards.
#[test]
fn routing_loop_detection_k8_pooled_matches_sequential() {
    let mut results = Vec::new();
    for engine in ENGINES {
        let mut tb = k8_pooled(engine);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 8800);
        let cycle = [
            tb.ft.agg(0, 0),
            tb.ft.core(0),
            tb.ft.agg(1, 0),
            tb.ft.core(1),
        ];
        let entry = tb.ft.tor(0, 0);
        install_loop(&mut tb, flow, entry, &cycle);
        let out = run_loop_experiment(&mut tb, flow, Nanos::from_secs(3));
        let det = out
            .detection
            .unwrap_or_else(|| panic!("[{engine:?}] loop must be detected"));
        assert!(det.visits <= 2, "[{engine:?}] small loop within 2 visits");
        results.push((
            det.punt_switch,
            det.repeated_link_id,
            det.visits,
            det.at,
            out.punts,
            tb.sim.stats.clone(),
        ));
    }
    assert_eq!(results[0], results[1], "loop verdicts diverged");
}

/// §4.2 at k=8: the size-based ECMP misconfiguration splits flows at the
/// 100 KB boundary; the per-link flow-size distributions recovered from
/// the TIBs must show the sharp split identically on both engines.
#[test]
fn load_imbalance_fsd_k8_sharded_matches_sequential() {
    use pathdump_simnet::Quirk;
    let mut results = Vec::new();
    for engine in ENGINES {
        let mut tb = k8(engine);
        let tor = tb.ft.tor(0, 0);
        let link1 = LinkDir::new(tor, tb.ft.agg(0, 0)); // big flows
        let link2 = LinkDir::new(tor, tb.ft.agg(0, 1)); // small flows
        tb.sim.install_quirk(
            tor,
            Quirk::SizeBasedSplit {
                threshold: 100_000,
                big_port: tb.sim.link_port(tor, tb.ft.agg(0, 0)),
                small_port: tb.sim.link_port(tor, tb.ft.agg(0, 1)),
            },
        );
        for (i, &size) in [20_000u64, 50_000, 80_000, 150_000, 300_000, 500_000]
            .iter()
            .enumerate()
        {
            let src = tb.ft.host(0, 0, i % 4);
            let dst = tb.ft.host(1 + i % 3, i % 4, i / 3);
            tb.add_flow(src, dst, 6000 + i as u16, size, Nanos::ZERO);
        }
        tb.run_and_flush(Nanos::from_secs(45));
        assert!(
            tb.sim.world.tcp.all_complete(),
            "[{engine:?}] all flows must finish"
        );
        let hosts: Vec<HostId> = (0..tb.ft.topology().num_hosts() as u32)
            .map(HostId)
            .collect();
        let dists = flow_size_distributions(
            &mut tb.sim.world,
            &hosts,
            &[link1, link2],
            TimeRange::ANY,
            10_000,
        );
        let (big, small) = (&dists[0], &dists[1]);
        assert_eq!(big.total_flows(), 3, "[{engine:?}] three large flows");
        assert_eq!(small.total_flows(), 3, "[{engine:?}] three small flows");
        assert_eq!(big.flows_at_least(100_000), 3, "[{engine:?}]");
        assert_eq!(small.flows_at_least(100_000), 0, "[{engine:?}]");
        results.push((dists, tb.sim.stats.clone()));
    }
    assert_eq!(results[0].0, results[1].0, "FSD verdicts diverged");
    assert_eq!(results[0].1, results[1].1, "fabric stats diverged");
}

/// The zero-copy ingest pin: `HostAgent`s fed by both engines at k=8
/// must end up with identical per-host TIBs. The agents now run the
/// borrowed-key trajectory-memory probe and the memoized decode under the
/// trajectory cache, so this differentially checks the whole new ingest
/// path — per-flow `get_paths` at the receiving agent, `top_k_flows` on
/// every involved host, and the cache/memo hit statistics — across the
/// sequential reference and the sharded engine.
#[test]
fn host_agent_tib_queries_k8_sharded_matches_sequential() {
    type HostSnapshot = (
        HostId,
        Vec<Vec<pathdump_topology::Path>>,
        Vec<(u64, FlowId)>,
        (u64, u64),
        (u64, u64),
    );
    let mut results: Vec<Vec<HostSnapshot>> = Vec::new();
    for engine in ENGINES {
        let mut tb = k8(engine);
        // Cross-pod mix into a handful of racks: several flows share each
        // destination so ECMP produces multi-path record sets, and sizes
        // differ so top-k has a real ordering to get wrong.
        let mut flows = Vec::new();
        let mut sport = 9000u16;
        for spod in 0..4usize {
            for dpod in 4..7usize {
                let src = tb.ft.host(spod, spod % 4, dpod % 4);
                let dst = tb.ft.host(dpod, spod % 4, (spod + dpod) % 4);
                let size = 30_000 + 20_000 * ((sport - 9000) as u64 % 5);
                let start = Nanos::from_millis(3 * (sport - 9000) as u64);
                tb.add_flow(src, dst, sport, size, start);
                flows.push((src, dst, tb.flow(src, dst, sport)));
                sport += 1;
            }
        }
        tb.run_and_flush(Nanos::from_secs(30));
        assert!(
            tb.sim.world.tcp.all_complete(),
            "[{engine:?}] all flows must finish"
        );
        let mut hosts: Vec<HostId> = flows.iter().flat_map(|&(s, d, _)| [s, d]).collect();
        hosts.sort_unstable_by_key(|h| h.0);
        hosts.dedup();
        let snapshot: Vec<HostSnapshot> = hosts
            .iter()
            .map(|&h| {
                let agent = &tb.sim.world.agents[h.0 as usize];
                let paths: Vec<Vec<pathdump_topology::Path>> = flows
                    .iter()
                    .filter(|&&(_, d, _)| d == h)
                    .map(|(_, _, f)| agent.tib.get_paths(*f, LinkPattern::ANY, TimeRange::ANY))
                    .collect();
                (
                    h,
                    paths,
                    agent.tib.top_k_flows(5, TimeRange::ANY),
                    agent.cache.stats(),
                    agent.memo.stats(),
                )
            })
            .collect();
        // The new ingest path must actually be exercised: receiving agents
        // decode through the cache/memo stack.
        assert!(
            snapshot.iter().any(|(_, _, _, (h, m), _)| h + m > 0),
            "[{engine:?}] no agent performed trajectory construction"
        );
        results.push(snapshot);
    }
    assert_eq!(
        results[0], results[1],
        "per-host TIB query results diverged across engines"
    );
}

/// Scale check: a k=16 fat-tree (320 switches, 1024 hosts, 17 switch
/// shards) completes an all-pods workload end-to-end on the sharded
/// engine — on the **pooled** driver, so worker handoff and the batched
/// exchange run at paper scale — delivering every packet that a healthy
/// fabric should.
#[test]
fn k16_fabric_completes_on_sharded_engine() {
    let ft = FatTree::build(FatTreeParams { k: 16 });
    let mut cfg = SimConfig::for_tests().with_engine(EngineKind::Sharded);
    cfg.collect_drop_log = false;
    cfg.shard_workers = 2;
    let mut sim = Simulator::new(&ft, cfg, Box::new(NoTagging), SinkWorld);
    assert_eq!(sim.effective_engine(), EngineKind::Sharded);
    let topo = ft.topology().clone();
    let hosts = topo.num_hosts();
    assert_eq!(hosts, 1024);
    // Every host sends 2 packets to a host in another pod.
    let mut sent = 0u64;
    for h in 0..hosts as u32 {
        let src = HostId(h);
        let dst = HostId((h + (hosts / 16) as u32) % hosts as u32);
        let f = FlowId::tcp(
            topo.host(src).ip,
            2000 + (h % 500) as u16,
            topo.host(dst).ip,
            80,
        );
        for _ in 0..2 {
            sim.send_from(src, Packet::data(0, f, 0, 1000, sim.now()));
            sent += 1;
        }
    }
    sim.run_to_completion(Nanos::from_secs(5));
    assert_eq!(sim.pending_events(), 0, "fabric must drain");
    assert_eq!(sim.stats.injected_pkts, sent);
    assert_eq!(
        sim.stats.delivered_pkts + sim.stats.total_actual_drops(),
        sent,
        "every packet is delivered or accounted as a drop"
    );
    assert!(
        sim.stats.delivered_pkts >= sent * 9 / 10,
        "healthy fabric delivers (queue drops only): {}/{}",
        sim.stats.delivered_pkts,
        sent
    );
}
