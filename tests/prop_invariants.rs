//! Property-based tests (proptest) over the core invariants:
//! - wire codec roundtrips for every message type;
//! - CherryPick decode∘encode = identity over arbitrary host pairs and
//!   equal-cost path choices (fat-tree and VL2);
//! - TIB query results match a naive reference model on arbitrary record
//!   sets;
//! - dpswitch build∘parse = identity over arbitrary flows/tags/DSCP;
//! - bipartite edge coloring is proper on arbitrary graphs.

use pathdump::cherrypick::{
    tags_for_walk, FatTreeCherryPick, FatTreeReconstructor, Vl2CherryPick, Vl2Reconstructor,
};
use pathdump::prelude::*;
use pathdump::tib::TibRecord;
use pathdump::topology::coloring::{color_bipartite_multigraph, verify_coloring};
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FlowId> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(s, d, sp, dp, pr)| FlowId {
            src_ip: Ip(s),
            dst_ip: Ip(d),
            src_port: sp,
            dst_port: dp,
            proto: pathdump::topology::Protocol::from_number(pr),
        })
}

fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(any::<u16>().prop_map(SwitchId), 0..8).prop_map(Path::new)
}

fn arb_record() -> impl Strategy<Value = TibRecord> {
    (
        arb_flow(),
        arb_path(),
        0u64..1_000_000,
        0u64..1_000_000,
        any::<u32>(),
        1u64..1000,
    )
        .prop_map(|(flow, path, t0, dt, bytes, pkts)| TibRecord {
            flow,
            path,
            stime: Nanos(t0),
            etime: Nanos(t0 + dt),
            bytes: bytes as u64,
            pkts,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_roundtrip_records(recs in proptest::collection::vec(arb_record(), 0..50)) {
        let bytes = pathdump::wire::to_bytes(&recs);
        let back: Vec<TibRecord> = pathdump::wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(recs, back);
    }

    #[test]
    fn wire_roundtrip_frames(typ in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let f = pathdump::wire::Frame::new(typ, payload);
        let (back, used) = pathdump::wire::Frame::from_wire(&f.to_wire()).unwrap();
        prop_assert_eq!(&back, &f);
        prop_assert_eq!(used, f.wire_len());
    }

    #[test]
    fn fattree_reconstruction_identity(
        k in prop_oneof![Just(4u16), Just(6), Just(8)],
        src_i in any::<u32>(),
        dst_i in any::<u32>(),
        pick in any::<u32>(),
    ) {
        let ft = FatTree::build(FatTreeParams { k });
        let n = ft.topology().num_hosts() as u32;
        let (src, dst) = (HostId(src_i % n), HostId(dst_i % n));
        prop_assume!(src != dst);
        let paths = ft.all_paths(src, dst);
        let path = &paths[pick as usize % paths.len()];
        let policy = FatTreeCherryPick::new(ft.clone());
        let recon = FatTreeReconstructor::new(ft.clone());
        let headers = tags_for_walk(&policy, &ft, &path.0);
        prop_assert!(headers.tag_count() <= 2, "shortest paths fit the ASIC limit");
        let decoded = recon.reconstruct(src, dst, &headers).unwrap();
        prop_assert_eq!(&decoded, path);
    }

    #[test]
    fn vl2_reconstruction_identity(
        src_i in any::<u32>(),
        dst_i in any::<u32>(),
        pick in any::<u32>(),
    ) {
        let v = Vl2::build(Vl2Params { da: 6, di: 6, hosts_per_tor: 2 });
        let n = v.topology().num_hosts() as u32;
        let (src, dst) = (HostId(src_i % n), HostId(dst_i % n));
        prop_assume!(src != dst);
        let paths = v.all_paths(src, dst);
        let path = &paths[pick as usize % paths.len()];
        let policy = Vl2CherryPick::new(v.clone());
        let recon = Vl2Reconstructor::new(v.clone());
        let headers = tags_for_walk(&policy, &v, &path.0);
        prop_assert!(headers.tag_count() <= 2);
        let decoded = recon.reconstruct(src, dst, &headers).unwrap();
        prop_assert_eq!(&decoded, path);
    }

    #[test]
    fn tib_queries_match_naive_model(recs in proptest::collection::vec(arb_record(), 0..60)) {
        let mut tib = Tib::new();
        for r in &recs {
            tib.insert(r.clone());
        }
        // getFlows(ANY) == distinct flows of overlapping records.
        let range = TimeRange::between(Nanos(100_000), Nanos(900_000));
        let mut naive_flows: Vec<FlowId> = Vec::new();
        for r in &recs {
            if range.overlaps(r.stime, r.etime) && !naive_flows.contains(&r.flow) {
                naive_flows.push(r.flow);
            }
        }
        let mut got = tib.get_flows(LinkPattern::ANY, range);
        got.sort();
        naive_flows.sort();
        prop_assert_eq!(got, naive_flows);
        // getCount == naive sum per flow.
        if let Some(r0) = recs.first() {
            let naive: u64 = recs
                .iter()
                .filter(|r| r.flow == r0.flow && range.overlaps(r.stime, r.etime))
                .map(|r| r.bytes)
                .sum();
            let (bytes, _) = tib.get_count(r0.flow, None, range);
            prop_assert_eq!(bytes, naive);
        }
        // Per-link query only returns flows whose paths contain the link.
        if let Some(link) = recs.iter().flat_map(|r| r.path.links()).next() {
            let flows = tib.get_flows(LinkPattern::exact(link.from, link.to), TimeRange::ANY);
            for f in &flows {
                prop_assert!(recs
                    .iter()
                    .any(|r| r.flow == *f && r.path.traverses(link)));
            }
        }
    }

    #[test]
    fn dpswitch_parse_build_identity(
        flow in arb_flow().prop_map(|mut f| {
            // The frame builder lays out a TCP header.
            f.proto = pathdump::topology::Protocol::Tcp;
            f
        }),
        tags in proptest::collection::vec(0u16..4096, 0..3),
        dscp in 0u8..64,
        payload in 0usize..1400,
    ) {
        let frame = pathdump::dpswitch::build_frame(&flow, &tags, dscp, payload);
        let parsed = pathdump::dpswitch::parse(&frame).unwrap();
        prop_assert_eq!(parsed.flow, flow);
        prop_assert_eq!(&parsed.tags, &tags);
        prop_assert_eq!(parsed.dscp, dscp);
        prop_assert_eq!(parsed.payload_len, payload);
        // Stripping then re-parsing drops the tags, keeps everything else.
        let mut stripped = frame.clone();
        let n = pathdump::dpswitch::strip_vlans(&mut stripped).unwrap();
        prop_assert_eq!(n, tags.len());
        let p2 = pathdump::dpswitch::parse(&stripped).unwrap();
        prop_assert!(p2.tags.is_empty());
        prop_assert_eq!(p2.flow, flow);
        prop_assert_eq!(p2.dscp, dscp);
    }

    #[test]
    fn edge_coloring_always_proper(
        left in 1usize..12,
        right in 1usize..12,
        edges_raw in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..80),
    ) {
        let edges: Vec<(usize, usize)> = edges_raw
            .into_iter()
            .map(|(a, b)| (a as usize % left, b as usize % right))
            .collect();
        let colors = color_bipartite_multigraph(left, right, &edges);
        prop_assert!(verify_coloring(left, right, &edges, &colors).is_ok());
        // Delta-optimality.
        let mut deg = vec![0usize; left + right];
        for &(u, v) in &edges {
            deg[u] += 1;
            deg[left + v] += 1;
        }
        let delta = deg.iter().copied().max().unwrap_or(0) as u32;
        prop_assert!(colors.iter().all(|&c| c < delta.max(1)));
    }

    #[test]
    fn tcp_receiver_reassembly_model(
        segs in proptest::collection::vec((0u64..20, 1u32..4), 1..30),
    ) {
        // Arbitrary (possibly overlapping, out-of-order) MSS-aligned
        // segments; rcv_next must equal the longest contiguous prefix of
        // covered bytes.
        use pathdump::transport::ReceiverState;
        let mss = 100u64;
        let mut r = ReceiverState::default();
        let mut covered = std::collections::HashSet::new();
        for (i, &(start, len)) in segs.iter().enumerate() {
            let seq = start * mss;
            let bytes = len as u64 * mss;
            for b in start..start + len as u64 {
                covered.insert(b);
            }
            r.on_data(seq, bytes as u32, false, Nanos(i as u64));
        }
        let mut expect = 0u64;
        while covered.contains(&expect) {
            expect += 1;
        }
        prop_assert_eq!(r.rcv_next, expect * mss);
    }
}
