//! Cross-crate integration: the Table 1 API surface, exercised end-to-end
//! through the facade crate, plus direct/multi-level mechanism agreement.

use pathdump::prelude::*;
use pathdump_apps::Testbed;

fn loaded() -> (Testbed, FlowId, HostId, HostId) {
    let mut tb = Testbed::default_k4();
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 1, 0));
    let flow = tb.flow(src, dst, 4242);
    tb.add_flow(src, dst, 4242, 400_000, Nanos::ZERO);
    tb.add_flow(tb.ft.host(1, 0, 0), dst, 4243, 100_000, Nanos::ZERO);
    tb.run_and_flush(Nanos::from_secs(60));
    assert!(tb.sim.world.tcp.all_complete());
    (tb, flow, src, dst)
}

#[test]
fn get_flows_get_paths_get_count_get_duration() {
    let (mut tb, flow, src, dst) = loaded();
    // getFlows over the destination ToR's incoming links.
    let tor = tb.ft.topology().host(dst).tor;
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetFlows {
            link: LinkPattern::into(tor),
            range: TimeRange::ANY,
        },
        false,
    );
    let Response::Flows(flows) = resp else {
        panic!()
    };
    assert!(flows.contains(&flow));

    // getPaths returns a real shortest path.
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetPaths {
            flow,
            link: LinkPattern::ANY,
            range: TimeRange::ANY,
        },
        false,
    );
    let Response::Paths(paths) = resp else {
        panic!()
    };
    assert_eq!(paths.len(), 1);
    assert!(tb.ft.all_paths(src, dst).contains(&paths[0]));

    // getCount covers the transferred bytes.
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetCount {
            flow,
            path: Some(paths[0].clone()),
            range: TimeRange::ANY,
        },
        false,
    );
    let Response::Count { bytes, pkts } = resp else {
        panic!()
    };
    assert!(bytes >= 400_000);
    assert!(pkts >= 400_000 / 1460);

    // getDuration is positive and below the run length.
    let resp = tb.sim.world.execute_on_host(
        dst,
        &Query::GetDuration {
            flow,
            path: None,
            range: TimeRange::ANY,
        },
        false,
    );
    let Response::Duration(d) = resp else {
        panic!()
    };
    assert!(d > Nanos::ZERO && d < Nanos::from_secs(60));
}

#[test]
fn get_poor_tcp_flows_via_world() {
    let mut tb = Testbed::default_k4();
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
    for a in 0..2 {
        tb.sim.set_directed_fault(
            tb.ft.tor(0, 0),
            tb.ft.agg(0, a),
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
    }
    let flow = tb.flow(src, dst, 4250);
    tb.add_flow(src, dst, 4250, 100_000, Nanos::ZERO);
    tb.sim.run_until(Nanos::from_secs(8));
    let resp = tb
        .sim
        .world
        .execute_on_host(src, &Query::GetPoorTcp { threshold: 2 }, false);
    let Response::Flows(flows) = resp else {
        panic!()
    };
    assert_eq!(flows, vec![flow]);
}

#[test]
fn direct_and_multilevel_mechanisms_agree_on_live_data() {
    let (tb, _, _, _) = loaded();
    // Move the populated TIBs into a query cluster and compare mechanisms.
    let tibs: Vec<Tib> = tb
        .sim
        .world
        .agents
        .iter()
        .map(|a| {
            let mut t = Tib::new();
            for r in a.tib.records_vec() {
                t.insert(r);
            }
            t
        })
        .collect();
    let n = tibs.len();
    let cluster = Cluster::new(tibs, MgmtNet::default());
    let hosts: Vec<usize> = (0..n).collect();
    for q in [
        Query::TopK {
            k: 5,
            range: TimeRange::ANY,
        },
        Query::FlowSizeDist {
            link: LinkPattern::ANY,
            range: TimeRange::ANY,
            bin_bytes: 10_000,
        },
        Query::TrafficMatrix {
            range: TimeRange::ANY,
        },
    ] {
        let d = cluster.direct_query(&hosts, &q);
        let m = cluster.multilevel_query(&hosts, &q, &[7, 4, 4]);
        assert_eq!(d.response, m.response, "query {q:?}");
        assert!(d.wire_bytes > 0 && m.wire_bytes > 0);
    }
}

#[test]
fn install_and_uninstall_lifecycle() {
    let mut tb = Testbed::default_k4();
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
    for a in 0..2 {
        tb.sim.set_directed_fault(
            tb.ft.tor(0, 0),
            tb.ft.agg(0, a),
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
    }
    let id = tb.sim.world.install_query(
        &[src],
        Query::GetPoorTcp { threshold: 2 },
        Some(Reason::PoorPerf),
    );
    tb.add_flow(src, dst, 4260, 50_000, Nanos::ZERO);
    tb.sim.run_until(Nanos::from_secs(4));
    let before = tb.sim.world.installed_results.len();
    assert!(before > 0, "installed query must have produced results");
    tb.sim.world.uninstall_query(id);
    tb.sim.run_until(Nanos::from_secs(8));
    let after = tb.sim.world.installed_results.len();
    assert_eq!(before, after, "uninstalled query must stop executing");
}
