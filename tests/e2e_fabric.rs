//! End-to-end fabric integration: web traffic over fat-tree and VL2 with
//! full PathDump stacks; every TIB record must be a feasible trajectory
//! equal to what the packets actually traversed.

use pathdump::prelude::*;
use pathdump_apps::Testbed;
use pathdump_cherrypick::path_is_feasible;

#[test]
fn fattree_web_traffic_all_records_feasible() {
    let mut tb = Testbed::default_k4();
    let specs = tb.add_web_traffic(0.3, Nanos::from_secs(3), 99);
    assert!(specs.len() > 10);
    tb.run_and_flush(Nanos::from_secs(10));
    let topo = tb.ft.topology();
    let mut records = 0;
    for agent in &tb.sim.world.agents {
        let dst = agent.host();
        for rec in agent.tib.records_vec() {
            let src = topo.host_by_ip(rec.flow.src_ip).expect("known src");
            assert!(
                path_is_feasible(topo, src, dst, &rec.path),
                "record path {} infeasible for {}",
                rec.path,
                rec.flow
            );
            records += 1;
        }
    }
    assert!(records > specs.len(), "data + ACK flows recorded");
    let failures: u64 = tb.sim.world.agents.iter().map(|a| a.recon_failures).sum();
    assert_eq!(failures, 0, "healthy fabric: no reconstruction failures");
}

#[test]
fn vl2_world_end_to_end() {
    use pathdump::core::{Fabric, PathDumpWorld, WorldConfig};
    use pathdump::transport::install_flows;

    let v = Vl2::build(Vl2Params {
        da: 4,
        di: 4,
        hosts_per_tor: 2,
    });
    let world = PathDumpWorld::new(
        Fabric::Vl2(Vl2Reconstructor::new(v.clone())),
        TcpConfig::default(),
        WorldConfig::default(),
    );
    let mut sim = Simulator::new(
        &v,
        SimConfig::for_tests(),
        Box::new(Vl2CherryPick::new(v.clone())),
        world,
    );
    PathDumpWorld::start(&mut sim);
    // Flows between non-adjacent racks (via intermediates) and shared-agg
    // racks (2-hop turn).
    let topo = v.topology().clone();
    let mk = |s: HostId, d: HostId, p: u16| FlowSpec {
        flow: FlowId::tcp(topo.host(s).ip, p, topo.host(d).ip, 80),
        src: s,
        dst: d,
        size: 150_000,
        start: Nanos::ZERO,
    };
    let specs = vec![
        mk(v.host(0, 0), v.host(1, 0), 6000),
        mk(v.host(0, 1), v.host(2, 0), 6001),
        mk(v.host(3, 0), v.host(0, 0), 6002),
    ];
    install_flows(&mut sim, &specs, |w| &mut w.tcp);
    sim.run_until(Nanos::from_secs(30));
    assert!(sim.world.tcp.all_complete());
    sim.world.flush_all(sim.now());
    for spec in &specs {
        let agent = &sim.world.agents[spec.dst.index()];
        let paths = agent
            .tib
            .get_paths(spec.flow, LinkPattern::ANY, TimeRange::ANY);
        assert_eq!(paths.len(), 1, "flow {} paths", spec.flow);
        assert!(
            v.all_paths(spec.src, spec.dst).contains(&paths[0]),
            "recorded path must be a canonical VL2 path"
        );
    }
    let failures: u64 = sim.world.agents.iter().map(|a| a.recon_failures).sum();
    assert_eq!(failures, 0);
}

#[test]
fn spraying_world_records_every_path() {
    let mut tb = Testbed::default_k4();
    tb.sim.set_lb_all(LoadBalance::Spray);
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(3, 1, 1));
    let flow = tb.flow(src, dst, 6100);
    tb.add_flow(src, dst, 6100, 1_000_000, Nanos::ZERO);
    tb.run_and_flush(Nanos::from_secs(60));
    let agent = &tb.sim.world.agents[dst.index()];
    let paths = agent.tib.get_paths(flow, LinkPattern::ANY, TimeRange::ANY);
    assert_eq!(
        paths.len(),
        4,
        "per-packet spraying must expose all 4 paths"
    );
    // Per-path counts sum to at least the flow size.
    let total: u64 = paths
        .iter()
        .map(|p| agent.tib.get_count(flow, Some(p), TimeRange::ANY).0)
        .sum();
    assert!(total >= 1_000_000);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut tb = Testbed::default_k4();
        tb.add_web_traffic(0.2, Nanos::from_secs(2), 123);
        tb.run_and_flush(Nanos::from_secs(8));
        let records: usize = tb.sim.world.agents.iter().map(|a| a.tib.len()).sum();
        (records, tb.sim.stats.events, tb.sim.stats.delivered_pkts)
    };
    assert_eq!(run(), run());
}
