//! Workspace build smoke test: compiles every figure binary and criterion
//! bench without running them, so bit-rot in `crates/bench` (which tier-1
//! `cargo test` does not link) is caught by one command.
//!
//! Ignored by default because it spawns nested cargo builds of the whole
//! workspace; CI runs it explicitly with
//! `cargo test --test build_smoke -- --ignored`.

use std::path::Path;
use std::process::Command;

fn cargo(args: &[&str]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let status = Command::new(cargo)
        .args(args)
        .current_dir(workspace_root)
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn cargo {args:?}: {e}"));
    assert!(status.success(), "cargo {args:?} failed: {status}");
}

#[test]
#[ignore = "builds the whole workspace; run via `cargo test --test build_smoke -- --ignored`"]
fn all_figure_binaries_and_benches_compile() {
    cargo(&["build", "--release", "--workspace", "--bins", "--benches"]);
    cargo(&["bench", "--no-run", "--workspace"]);
}
