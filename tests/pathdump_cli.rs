//! Scripted smoke test of the `pathdump` operator CLI: pipes
//! `tests/data/cli_smoke.cmds` through the binary and asserts the
//! load-bearing lines — time-travel query answers with the half-open
//! `[t0, t1)` boundary honored, snapshot save/diff, and standing
//! watch registration, raise, and removal.

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn cli_smoke_script() {
    let script = include_str!("data/cli_smoke.cmds");
    // The snapshot paths in the script are relative to the workspace root.
    let _ = std::fs::remove_file("target/tmp_cli_smoke_a.tib2");
    let _ = std::fs::remove_file("target/tmp_cli_smoke_b.tib2");

    let mut child = Command::new(env!("CARGO_BIN_EXE_pathdump"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pathdump");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("run pathdump");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "CLI exited nonzero: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for expected in [
        // help reached the user
        "commands (times in ms, ranges half-open [t0 t1)):",
        // watch registration handles are sequential
        "watch 0 registered",
        "watch 1 registered",
        // the link-ceiling watch stays quiet at 2 distinct flows...
        "no standing events",
        // ...and raises exactly when the 3rd distinct flow lands
        "RAISE watch=0 flow=10.2.0.2:7002->10.1.0.2:80/tcp",
        // top talkers, all-time and per-link
        "11000 bytes  10.0.0.2:7000->10.1.0.2:80/tcp",
        "5000 bytes  10.0.0.2:7000->10.1.0.2:80/tcp",
        // host-pair time travel
        "flow 10.0.0.2:7000->10.1.0.2:80/tcp path [S0 S2 S4]",
        // half-open [0, 20): the record starting at exactly 20 ms is out
        "5000 bytes 4 pkts",
        // before/after diff around t=15ms
        "before: path [S0 S2 S4]",
        "after:  path [S0 S3 S4]",
        // snapshot roundtrip + first-class snapshot diffing
        "saved 4 records to target/tmp_cli_smoke_a.tib2",
        "diff: 1 flows changed (4 records before, 5 after)",
        "+ [S1 S3 S5]",
        // unwatch is idempotent-checked
        "watch 0 removed",
        "error: no watch 0",
        // a replayed simnet run merges into the working store
        "replayed ",
    ] {
        assert!(
            stdout.contains(expected),
            "missing `{expected}` in CLI output:\n{stdout}"
        );
    }
    // The dud rate watch (watch 1) must never fire, in particular not
    // during the replay merge.
    assert!(
        !stdout.contains("watch=1"),
        "rate watch on a nonexistent flow fired:\n{stdout}"
    );
}
