//! End-to-end standing-query scenario: a rate-threshold watch registered
//! **mid-run** on the victim host of an incast burst must
//!
//! - stay silent on registration (empty TIB, nothing to raise),
//! - fire **exactly once** when the burst's records land (hysteresis: the
//!   remaining incast records re-confirm the predicate silently),
//! - clear exactly once after the burst drains — a later trickle record
//!   advances the event-time clock, sliding the window past the burst,
//! - and surface the raise (and only the raise) on the world alarm bus.
//!
//! The whole flip-event stream, timestamps and alarm payloads included,
//! must be bit-identical across the sequential and sharded-pooled simnet
//! engines.

use pathdump_apps::Testbed;
use pathdump_core::standing::{StandingEvent, StandingPredicate, StandingQuery};
use pathdump_core::{Reason, WorldConfig};
use pathdump_simnet::{EngineKind, SimConfig};
use pathdump_topology::{HostId, Nanos};

const ENGINES: [(EngineKind, usize); 2] = [(EngineKind::Sequential, 0), (EngineKind::Sharded, 2)];

#[test]
fn incast_rate_watch_fires_once_and_clears_on_both_engines() {
    let mut batches: Vec<(Vec<(HostId, StandingEvent)>, usize)> = Vec::new();
    for (engine, workers) in ENGINES {
        let mut cfg = SimConfig::for_tests().with_engine(engine);
        cfg.shard_workers = workers;
        let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
        let dst = tb.ft.host(1, 0, 0);
        let watched = tb.flow(tb.ft.host(0, 0, 0), dst, 7000);

        // Let the world tick for a second, then register the watch
        // mid-run — nothing has reached dst's TIB, so no raise.
        tb.sim.run_until(Nanos::from_secs(1));
        let now = tb.sim.now();
        let ids = tb.sim.world.watch(
            &[dst],
            StandingQuery::new(StandingPredicate::RateAbove {
                flow: watched,
                window: Nanos::from_millis(500),
                min_bytes: 30_000,
                min_pkts: 1,
            }),
            now,
        );
        assert_eq!(ids.len(), 1);
        assert!(
            tb.sim.world.drain_standing_events().is_empty(),
            "registration against an empty TIB must not raise"
        );

        // 8-source incast onto dst 200 ms from now (`add_flow` start
        // times are offsets from the current clock), i.e. at t=1.2s; the
        // watched flow is one of the eight (50 KB ≫ the 30 KB window
        // threshold).
        let srcs = [
            tb.ft.host(0, 0, 0),
            tb.ft.host(0, 0, 1),
            tb.ft.host(0, 1, 0),
            tb.ft.host(0, 1, 1),
            tb.ft.host(2, 0, 0),
            tb.ft.host(2, 0, 1),
            tb.ft.host(3, 0, 0),
            tb.ft.host(3, 0, 1),
        ];
        for (i, &src) in srcs.iter().enumerate() {
            tb.add_flow(src, dst, 7000 + i as u16, 50_000, Nanos::from_millis(200));
        }
        tb.sim.run_until(Nanos::from_secs(4));

        // Post-burst trickle at t=5s: a tiny flow whose record advances
        // the event-time clock past burst + window, so the watch clears.
        tb.add_flow(tb.ft.host(2, 1, 0), dst, 7100, 1_000, Nanos::from_secs(1));
        tb.run_and_flush(Nanos::from_secs(8));

        let events = tb.sim.world.drain_standing_events();
        assert_eq!(
            events.len(),
            2,
            "one raise + one clear, no flapping: {events:?}"
        );
        for (h, ev) in &events {
            assert_eq!(*h, dst, "the watch lives on the victim host");
            assert_eq!(ev.alarm.flow, watched);
            assert_eq!(ev.alarm.host, dst);
            assert_eq!(ev.alarm.reason, Reason::InvariantViolated);
        }
        assert!(events[0].1.raised, "burst raises");
        assert!(!events[1].1.raised, "drain clears");
        assert!(
            events[0].1.alarm.at < events[1].1.alarm.at,
            "raise precedes clear in sim time"
        );
        // The raise went to the world alarm bus (clears are not re-sent).
        let standing_alarms = tb
            .sim
            .world
            .drain_alarms()
            .into_iter()
            .filter(|a| a.flow == watched && a.reason == Reason::InvariantViolated)
            .count();
        assert_eq!(standing_alarms, 1, "exactly the raise reaches the bus");

        batches.push((events, standing_alarms));
    }
    assert_eq!(
        batches[0], batches[1],
        "standing flips must be bit-identical across simnet engines"
    );
}
