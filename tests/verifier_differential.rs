//! Differential verification harness: for each injected route-table
//! misconfiguration class — wrong port, pruned candidate, swapped uplinks,
//! cross-pod loop — assert that
//!
//! (a) the **static** verifier (`pathdump_verifier`), analyzing the exact
//!     tables the simulator forwards with (`Simulator::route_tables`),
//!     flags the injected class at the injected switch with a concrete
//!     witness walk that is contiguous in the topology; and
//!
//! (b) the **runtime** intent-derived conformance check
//!     (`ConformancePolicy::from_intent`) catches the flows that actually
//!     traverse the bad rule, raising `PC_FAIL` with the observed
//!     trajectory first and the nearest intended path second — with
//!     bit-identical alarm batches on both simnet engines (sequential and
//!     sharded-pooled).
//!
//! Fat-tree scenarios that deliver 7-switch deviating walks raise
//! `asic_tag_limit` to 3: with the default budget of 2 the destination ToR
//! punts the packet and the controller strips its tags before re-injection,
//! so the trajectory would surface as an infeasible 1-switch path instead
//! of reconstructing. VL2's first sample rides the DSCP field, so its
//! 7-switch walks carry only 2 VLAN tags and need no such bump.

use std::sync::Arc;

use pathdump_apps::conformance::{infeasible, violations, ConformancePolicy};
use pathdump_apps::Testbed;
use pathdump_cherrypick::{Vl2CherryPick, Vl2Reconstructor};
use pathdump_core::{Alarm, Fabric, PathDumpWorld, WorldConfig};
use pathdump_simnet::{DropReason, EngineKind, FaultState, Misconfig, Quirk, SimConfig, Simulator};
use pathdump_topology::routing::is_contiguous_walk;
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, HostId, Nanos, PortNo, RouteTables, SwitchId, UpDownRouting,
    Vl2, Vl2Params,
};
use pathdump_transport::{install_flows, FlowSpec, TcpConfig};
use pathdump_verifier::{verify, verify_with_intent, IntentModel, Verdict, ViolationKind};

/// Engine configurations under differential test: the sequential reference
/// and the sharded engine on the persistent worker pool.
const ENGINES: [(EngineKind, usize); 2] = [(EngineKind::Sequential, 0), (EngineKind::Sharded, 2)];

fn ft_testbed(k: u16, engine: EngineKind, workers: usize, asic_tag_limit: usize) -> Testbed {
    let mut cfg = SimConfig::for_tests().with_engine(engine);
    cfg.shard_workers = workers;
    cfg.asic_tag_limit = asic_tag_limit;
    Testbed::fattree(k, cfg, WorldConfig::default())
}

fn all_hosts(tb: &Testbed) -> Vec<HostId> {
    (0..tb.sim.topology().num_hosts() as u32)
        .map(HostId)
        .collect()
}

/// Static half of a scenario: inject into fresh canonical tables and check
/// the verdict class, offending switch, and witness validity.
fn static_verdict<R: UpDownRouting>(routing: &R, m: &Misconfig) -> Verdict {
    let mut rt = RouteTables::build(routing);
    m.apply(&mut rt);
    verify(routing.topology(), &rt)
}

fn assert_witnessed(
    routing: &impl UpDownRouting,
    verdict: &Verdict,
    kind: ViolationKind,
    sw: SwitchId,
) {
    let topo = routing.topology();
    let hit = verdict
        .of_kind(kind)
        .find(|v| v.offending_switch() == sw)
        .unwrap_or_else(|| panic!("expected {kind:?} at {sw}, got {:?}", verdict.violations));
    let w = hit.witness().expect("graph violations carry witnesses");
    assert!(is_contiguous_walk(topo, w), "witness not a walk: {w}");
    match kind {
        ViolationKind::Loop => {
            assert!(
                w.has_repeated_link(),
                "loop witness must repeat a link: {w}"
            )
        }
        _ => assert_eq!(w.last(), Some(sw), "witness must end at the bad switch"),
    }
}

/// Runs one fat-tree runtime scenario on every engine and asserts the
/// alarm batches are bit-identical (and the controller's routing-loop
/// detections agree); returns the alarms and the loop-detection count for
/// scenario-specific checks.
fn run_ft_engines(
    k: u16,
    asic_tag_limit: usize,
    setup: impl Fn(&mut Testbed),
) -> (Vec<Alarm>, usize) {
    let mut batches: Vec<(Vec<Alarm>, usize)> = Vec::new();
    for (engine, workers) in ENGINES {
        let mut tb = ft_testbed(k, engine, workers, asic_tag_limit);
        let intent = Arc::new(IntentModel::from_routing(&tb.ft).expect("healthy intent"));
        let hosts = all_hosts(&tb);
        ConformancePolicy::from_intent(intent).install(&mut tb.sim.world, &hosts);
        setup(&mut tb);
        tb.sim.run_until(Nanos::from_secs(5));
        let detections = tb.sim.world.loop_detections.len();
        batches.push((tb.sim.world.drain_alarms(), detections));
    }
    assert_eq!(
        batches[0], batches[1],
        "engines must raise bit-identical alarm batches"
    );
    batches.pop().expect("two engines ran")
}

// --- fat-tree: wrong port (misdelivery) ---------------------------------

/// ToR(0,0)'s rule for ToR(1,0) rewritten to its host-facing port 0:
/// statically a misdelivery; at runtime packets land on the wrong host,
/// whose agent reconstructs the 1-switch trajectory and flags it as outside
/// the intent set.
#[test]
fn wrong_port_fattree() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let m = Misconfig::WrongPort {
        sw: ft.tor(0, 0),
        dst_tor: ft.tor(1, 0),
        port: PortNo(0),
    };
    let verdict = static_verdict(&ft, &m);
    assert_witnessed(&ft, &verdict, ViolationKind::Misdelivery, ft.tor(0, 0));

    let wrong_host = ft.host(0, 0, 0);
    let (alarms, _) = run_ft_engines(4, 2, |tb| {
        tb.sim.install_misconfig(&m);
        let (src, dst) = (tb.ft.host(0, 0, 1), tb.ft.host(1, 0, 0));
        for sport in 9300..9304u16 {
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    let v = violations(&alarms);
    assert!(!v.is_empty(), "misdelivered flows must raise PC_FAIL");
    for a in &v {
        assert_eq!(a.host, wrong_host, "detected at the wrong-delivery edge");
        assert_eq!(a.paths[0].0, vec![ft.tor(0, 0)], "observed 1-switch walk");
        assert_eq!(a.paths.len(), 2, "nearest intended path attached");
        assert_eq!(a.paths[1].first(), Some(ft.tor(0, 0)));
        assert_eq!(a.paths[1].last(), Some(ft.tor(1, 0)));
    }
}

// --- fat-tree: pruned candidate -----------------------------------------

/// Pruning one of two ECMP members leaves a loop-free, blackhole-free
/// table: only the rule-level diff flags it, and runtime traffic stays on
/// intended paths — no false alarms.
#[test]
fn pruned_candidate_fattree_partial_prune_is_silent() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let m = Misconfig::PruneCandidate {
        sw: ft.tor(0, 0),
        dst_tor: ft.tor(1, 0),
        port: PortNo(2),
    };
    let mut rt = RouteTables::build(&ft);
    m.apply(&mut rt);
    assert!(verify(ft.topology(), &rt).is_clean());
    let intended = RouteTables::build(&ft);
    let with_diff = verify_with_intent(ft.topology(), &rt, &intended);
    let devs: Vec<_> = with_diff.of_kind(ViolationKind::RuleDeviation).collect();
    assert_eq!(devs.len(), 1);
    assert_eq!(devs[0].offending_switch(), ft.tor(0, 0));
    assert_eq!(devs[0].dst_tor(), ft.tor(1, 0));

    let (alarms, _) = run_ft_engines(4, 2, |tb| {
        tb.sim.install_misconfig(&m);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        for sport in 9400..9406u16 {
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    assert!(
        violations(&alarms).is_empty(),
        "surviving ECMP member keeps traffic on intended paths: {alarms:?}"
    );
}

/// Pruning the *last* member empties Agg(1,0)'s rule for ToR(1,0): the
/// verifier proves the blackhole; at runtime the dataplane papers over the
/// empty rule with a failover bounce, and flows that bounce through the
/// pod's third ToR deliver over a 5-switch walk outside the intent set.
/// Uses k=6 (a k=4 pod has no third ToR, so every bounce lands back on an
/// intended path).
#[test]
fn pruned_candidate_fattree_empty_rule_blackhole() {
    let ft = FatTree::build(FatTreeParams { k: 6 });
    let (a10, t10, t11) = (ft.agg(1, 0), ft.tor(1, 0), ft.tor(1, 1));
    let m = Misconfig::PruneCandidate {
        sw: a10,
        dst_tor: t10,
        port: PortNo(0),
    };
    let verdict = static_verdict(&ft, &m);
    assert_witnessed(&ft, &verdict, ViolationKind::Blackhole, a10);

    let (alarms, _) = run_ft_engines(6, 2, |tb| {
        tb.sim.install_misconfig(&m);
        // Intra-pod flows from the second rack, pinned through the pruned
        // aggregate so every flow hits the empty rule.
        let (src, dst) = (tb.ft.host(1, 1, 0), tb.ft.host(1, 0, 0));
        let port = tb.sim.link_port(t11, a10);
        for sport in 9500..9508u16 {
            let flow = tb.flow(src, dst, sport);
            tb.sim
                .install_quirk(t11, Quirk::ForwardFlowTo { flow, port });
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    let v = violations(&alarms);
    assert!(!v.is_empty(), "bounced flows must leave the intent set");
    for a in &v {
        assert!(a.paths[0].len() >= 5, "detour walk: {}", a.paths[0]);
        assert_eq!(a.paths.len(), 2, "nearest intended path attached");
        assert_eq!(a.paths[1].first(), Some(t11));
        assert_eq!(a.paths[1].last(), Some(t10));
    }
}

// --- fat-tree: swapped rules --------------------------------------------

/// Transposing Agg(1,0)'s down-rules for its first two racks creates a
/// forwarding cycle (statically: Loop with a link-repeating witness). At
/// runtime, pinned intra-pod flows either trap in the cycle (caught by the
/// controller's loop detector) or escape over a 5-switch walk outside the
/// intent set (caught by PC_FAIL).
#[test]
fn swapped_rules_fattree_loop() {
    let ft = FatTree::build(FatTreeParams { k: 6 });
    let (a10, t10, t11, t12) = (ft.agg(1, 0), ft.tor(1, 0), ft.tor(1, 1), ft.tor(1, 2));
    let m = Misconfig::SwapRules {
        sw: a10,
        dst_a: t10,
        dst_b: t11,
    };
    let verdict = static_verdict(&ft, &m);
    let loops: Vec<_> = verdict.of_kind(ViolationKind::Loop).collect();
    assert!(!loops.is_empty(), "swap must create a cycle");
    for l in &loops {
        let w = l.witness().expect("loop witness");
        assert!(is_contiguous_walk(ft.topology(), w));
        assert!(w.has_repeated_link());
        assert!(w.contains(a10), "cycle runs through the swapped agg: {w}");
    }

    let (alarms, trapped) = run_ft_engines(6, 2, |tb| {
        tb.sim.install_misconfig(&m);
        let (src, dst) = (tb.ft.host(1, 2, 0), tb.ft.host(1, 0, 0));
        let port = tb.sim.link_port(t12, a10);
        for sport in 9600..9608u16 {
            let flow = tb.flow(src, dst, sport);
            tb.sim
                .install_quirk(t12, Quirk::ForwardFlowTo { flow, port });
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    let v = violations(&alarms);
    assert!(
        !v.is_empty(),
        "escaped flows must raise PC_FAIL: {alarms:?}"
    );
    for a in &v {
        // Escape shape: t12 → a10 → t11 → (a11|a12) → t10.
        assert_eq!(a.paths[0].first(), Some(t12));
        assert_eq!(a.paths[0].last(), Some(t10));
        assert!(
            a.paths[0].contains(t11),
            "walk bounced off t11: {}",
            a.paths[0]
        );
    }
    // Flows whose escape hop re-picks the swapped agg trap in the cycle and
    // surface through the controller's trap-handler loop detector instead.
    assert!(
        v.len() + trapped >= 4,
        "most pinned flows are caught one way or the other: {alarms:?}"
    );
}

// --- fat-tree: cross-pod loop -------------------------------------------

/// Core(0)'s rule for ToR(0,0) rewritten toward pod 1: statically a Loop
/// (core ↔ Agg(1,0)); at runtime flows pinned through Core(0) either trap
/// in the cycle — caught by the controller's trap-handler loop detector —
/// or escape through the position's other core and deliver over a
/// 7-switch cross-pod walk. That walk traverses two cores, which is not a
/// feasible up-down shape, so the destination edge cannot explain its tag
/// set by *any* intended path and raises `InfeasiblePath` (the §2.4
/// wrong-trajectory detector) — a strictly stronger runtime verdict than
/// `PC_FAIL` for this class. Runs with `asic_tag_limit` = 3 so the 3-tag
/// deviating walk arrives in-band rather than being punted and stripped.
#[test]
fn cross_pod_loop_fattree() {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let (c0, t00, t20, a20) = (ft.core(0), ft.tor(0, 0), ft.tor(2, 0), ft.agg(2, 0));
    // Port p of a core faces pod p; pod 1 is wrong for ToR(0,0).
    let m = Misconfig::CrossPodLoop {
        sw: c0,
        dst_tor: t00,
        wrong_port: PortNo(1),
    };
    let verdict = static_verdict(&ft, &m);
    let loops: Vec<_> = verdict.of_kind(ViolationKind::Loop).collect();
    assert!(!loops.is_empty(), "cross-pod rewrite must create a cycle");
    assert!(
        loops
            .iter()
            .any(|l| l.witness().is_some_and(|w| w.contains(c0))),
        "cycle runs through the rewritten core: {loops:?}"
    );

    let dst_host = ft.host(0, 0, 0);
    let (alarms, trapped) = run_ft_engines(4, 3, |tb| {
        tb.sim.install_misconfig(&m);
        let (src, dst) = (tb.ft.host(2, 0, 0), tb.ft.host(0, 0, 0));
        let up = tb.sim.link_port(t20, a20);
        let core_up = tb.sim.link_port(a20, c0);
        for sport in 9700..9708u16 {
            let flow = tb.flow(src, dst, sport);
            tb.sim
                .install_quirk(t20, Quirk::ForwardFlowTo { flow, port: up });
            tb.sim.install_quirk(
                a20,
                Quirk::ForwardFlowTo {
                    flow,
                    port: core_up,
                },
            );
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    let inf = infeasible(&alarms);
    assert!(
        !inf.is_empty(),
        "escaped flows must be flagged as infeasible trajectories: {alarms:?}"
    );
    assert!(
        inf.iter().all(|a| a.host == dst_host),
        "detected at the destination edge: {inf:?}"
    );
    assert!(trapped > 0, "cycled flows must trip the loop detector");
    let caught: std::collections::HashSet<_> = inf.iter().map(|a| a.flow).collect();
    assert!(
        caught.len() + trapped >= 4,
        "most pinned flows are caught one way or the other: {alarms:?}"
    );
}

// --- VL2 variants --------------------------------------------------------

fn vl2_small() -> Vl2 {
    Vl2::build(Vl2Params {
        da: 4,
        di: 4,
        hosts_per_tor: 2,
    })
}

struct Vl2Bed {
    v: Vl2,
    sim: Simulator<PathDumpWorld>,
}

/// VL2 testbed with the intent-derived conformance policy on every host.
/// (VL2 switches carry no pod labels, so the sharded engine transparently
/// falls back to sequential — the engine loop still pins that both
/// configurations agree.)
fn vl2_testbed(engine: EngineKind, workers: usize) -> Vl2Bed {
    let v = vl2_small();
    let mut cfg = SimConfig::for_tests().with_engine(engine);
    cfg.shard_workers = workers;
    let world = PathDumpWorld::new(
        Fabric::Vl2(Vl2Reconstructor::new(v.clone())),
        TcpConfig::default(),
        WorldConfig::default(),
    );
    let mut sim = Simulator::new(&v, cfg, Box::new(Vl2CherryPick::new(v.clone())), world);
    PathDumpWorld::start(&mut sim);
    let intent = Arc::new(IntentModel::from_routing(&v).expect("healthy VL2 intent"));
    let hosts: Vec<HostId> = (0..sim.topology().num_hosts() as u32).map(HostId).collect();
    ConformancePolicy::from_intent(intent).install(&mut sim.world, &hosts);
    Vl2Bed { v, sim }
}

fn vl2_flow(bed: &Vl2Bed, src: HostId, dst: HostId, sport: u16) -> FlowId {
    let topo = bed.sim.topology();
    FlowId::tcp(topo.host(src).ip, sport, topo.host(dst).ip, 80)
}

fn vl2_add_flows(bed: &mut Vl2Bed, src: HostId, dst: HostId, sports: std::ops::Range<u16>) {
    let specs: Vec<FlowSpec> = sports
        .map(|sport| FlowSpec {
            flow: vl2_flow(bed, src, dst, sport),
            src,
            dst,
            size: 4_000,
            start: Nanos::ZERO,
        })
        .collect();
    install_flows(&mut bed.sim, &specs, |w| &mut w.tcp);
}

fn run_vl2_engines(setup: impl Fn(&mut Vl2Bed)) -> Vec<Alarm> {
    let mut batches: Vec<Vec<Alarm>> = Vec::new();
    for (engine, workers) in ENGINES {
        let mut bed = vl2_testbed(engine, workers);
        setup(&mut bed);
        bed.sim.run_until(Nanos::from_secs(5));
        batches.push(bed.sim.world.drain_alarms());
    }
    assert_eq!(batches[0], batches[1], "engine configs must agree");
    batches.pop().expect("two engines ran")
}

/// VL2 wrong port: ToR(0)'s rule for ToR(1) rewritten to a host port.
#[test]
fn wrong_port_vl2() {
    let v = vl2_small();
    let m = Misconfig::WrongPort {
        sw: v.tor(0),
        dst_tor: v.tor(1),
        port: PortNo(0),
    };
    let verdict = static_verdict(&v, &m);
    assert_witnessed(&v, &verdict, ViolationKind::Misdelivery, v.tor(0));

    let wrong_host = v.host(0, 0);
    let alarms = run_vl2_engines(|bed| {
        bed.sim.install_misconfig(&m);
        vl2_add_flows(bed, bed.v.host(0, 1), bed.v.host(1, 0), 9800..9804);
    });
    let va = violations(&alarms);
    assert!(!va.is_empty(), "misdelivered flows must raise PC_FAIL");
    for a in &va {
        assert_eq!(a.host, wrong_host);
        assert_eq!(a.paths[0].0, vec![v.tor(0)]);
        assert_eq!(a.paths.len(), 2);
    }
}

/// VL2 pruned-to-empty rule: Agg(2) loses its only port toward attached
/// ToR(1) — statically a blackhole; at runtime flows arriving at Agg(2)
/// from an intermediate bounce through attached ToR(3) and deliver over a
/// 7-switch walk outside the intent set (1 DSCP sample + 2 VLAN tags, so
/// no punt at the default tag budget).
#[test]
fn pruned_candidate_vl2_empty_rule_blackhole() {
    let v = vl2_small();
    let (a2, t1, t3) = (v.agg(2), v.tor(1), v.tor(3));
    let down = v
        .topology()
        .switch(a2)
        .port_towards(t1)
        .expect("agg2 attaches tor1");
    let m = Misconfig::PruneCandidate {
        sw: a2,
        dst_tor: t1,
        port: down,
    };
    let verdict = static_verdict(&v, &m);
    assert_witnessed(&v, &verdict, ViolationKind::Blackhole, a2);

    let alarms = run_vl2_engines(|bed| {
        bed.sim.install_misconfig(&m);
        vl2_add_flows(bed, bed.v.host(0, 0), bed.v.host(1, 0), 9820..9836);
    });
    let va = violations(&alarms);
    assert!(!va.is_empty(), "bounced flows must leave the intent set");
    for a in &va {
        assert!(a.paths[0].len() >= 5, "detour walk: {}", a.paths[0]);
        assert!(a.paths[0].contains(t3), "bounce via ToR(3): {}", a.paths[0]);
        assert_eq!(a.paths.len(), 2);
    }
}

/// VL2 swapped rules: Agg(2)'s down-rules for its two attached racks
/// transposed — statically a loop; runtime flows either trap or escape
/// over a non-intended walk.
#[test]
fn swapped_rules_vl2_loop() {
    let v = vl2_small();
    let (a2, t1, t3) = (v.agg(2), v.tor(1), v.tor(3));
    let m = Misconfig::SwapRules {
        sw: a2,
        dst_a: t1,
        dst_b: t3,
    };
    let verdict = static_verdict(&v, &m);
    let loops: Vec<_> = verdict.of_kind(ViolationKind::Loop).collect();
    assert!(!loops.is_empty(), "swap must create a cycle: {verdict:?}");
    for l in &loops {
        let w = l.witness().expect("loop witness");
        assert!(is_contiguous_walk(v.topology(), w));
        assert!(w.has_repeated_link());
    }

    let alarms = run_vl2_engines(|bed| {
        bed.sim.install_misconfig(&m);
        vl2_add_flows(bed, bed.v.host(0, 0), bed.v.host(1, 0), 9840..9856);
    });
    assert!(
        !violations(&alarms).is_empty(),
        "escaped flows must raise PC_FAIL: {alarms:?}"
    );
}

/// VL2 cross-fabric loop analog: Intermediate(0)'s rule for ToR(3)
/// rewritten toward Agg(0) (which does not attach ToR(3)) — statically a
/// loop between the intermediate tier and Agg(0); runtime escapes ride a
/// 7-switch walk through both intermediates.
#[test]
fn cross_pod_loop_vl2() {
    let v = vl2_small();
    let (i0, t3) = (v.int(0), v.tor(3));
    // Intermediate ports are indexed by aggregate number: port 0 → Agg(0).
    let m = Misconfig::CrossPodLoop {
        sw: i0,
        dst_tor: t3,
        wrong_port: PortNo(0),
    };
    let verdict = static_verdict(&v, &m);
    let loops: Vec<_> = verdict.of_kind(ViolationKind::Loop).collect();
    assert!(
        !loops.is_empty(),
        "rewrite must create a cycle: {verdict:?}"
    );
    assert!(
        loops
            .iter()
            .any(|l| l.witness().is_some_and(|w| w.contains(i0))),
        "cycle runs through the rewritten intermediate: {loops:?}"
    );

    let alarms = run_vl2_engines(|bed| {
        bed.sim.install_misconfig(&m);
        vl2_add_flows(bed, bed.v.host(0, 0), bed.v.host(3, 0), 9860..9876);
    });
    let va = violations(&alarms);
    assert!(
        !va.is_empty(),
        "escaped flows must raise PC_FAIL: {alarms:?}"
    );
    for a in &va {
        assert_eq!(a.paths[0].len(), 7, "two-intermediate walk: {}", a.paths[0]);
        assert!(a.paths[0].contains(i0));
    }
}

// --- healthy state stays clean end-to-end -------------------------------

/// With no misconfiguration, the intent-derived policy must stay silent on
/// live traffic — on both engines — and healthy tables of every evaluated
/// scale verify clean.
#[test]
fn healthy_fabrics_verify_clean_and_stay_silent() {
    for k in [4u16, 6, 8, 16] {
        let ft = FatTree::build(FatTreeParams { k });
        let rt = RouteTables::build(&ft);
        assert!(verify(ft.topology(), &rt).is_clean(), "k={k}");
    }
    for (da, di) in [(4u16, 4u16), (8, 8)] {
        let v = Vl2::build(Vl2Params {
            da,
            di,
            hosts_per_tor: 2,
        });
        let rt = RouteTables::build(&v);
        assert!(verify(v.topology(), &rt).is_clean(), "da={da} di={di}");
    }

    let (alarms, detections) = run_ft_engines(4, 2, |tb| {
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(3, 1, 1));
        for sport in 9900..9906u16 {
            tb.add_flow(src, dst, sport, 4_000, Nanos::ZERO);
        }
    });
    assert!(violations(&alarms).is_empty(), "healthy fabric: {alarms:?}");
    assert!(infeasible(&alarms).is_empty(), "healthy fabric: {alarms:?}");
    assert_eq!(detections, 0, "healthy fabric has no loops");

    let alarms = run_vl2_engines(|bed| {
        vl2_add_flows(bed, bed.v.host(0, 0), bed.v.host(1, 0), 9910..9916);
    });
    assert!(violations(&alarms).is_empty(), "healthy VL2: {alarms:?}");
}

// --- misconfiguration × fault composition -------------------------------

/// A misconfiguration composes with link faults without double-staging
/// drop accounting: packets steered onto a 100%-silently-dropping link by a
/// rewritten rule are staged in the drop log exactly once each, by the
/// fault machinery, and the hidden counter agrees with the log.
#[test]
fn misconfig_composes_with_silent_drops_without_double_staging() {
    let mut tb = ft_testbed(4, EngineKind::Sequential, 0, 2);
    let (t00, a00, t10) = (tb.ft.tor(0, 0), tb.ft.agg(0, 0), tb.ft.tor(1, 0));
    let up = tb.sim.link_port(t00, a00);
    // Rule rewrite: all of rack (0,0)'s traffic toward rack (1,0) takes the
    // first uplink…
    tb.sim.install_misconfig(&Misconfig::WrongPort {
        sw: t00,
        dst_tor: t10,
        port: up,
    });
    // …which silently discards everything.
    tb.sim.set_directed_fault(
        t00,
        a00,
        FaultState {
            silent_drop_rate: 1.0,
            ..FaultState::HEALTHY
        },
    );
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
    for sport in 9950..9954u16 {
        tb.add_flow(src, dst, sport, 3_000, Nanos::ZERO);
    }
    tb.sim.run_until(Nanos::from_secs(2));

    let silent = tb.sim.stats.switch_ports[t00.index()][up.index()].silent_drops;
    assert!(silent > 0, "the fault must have eaten traffic");
    let logged: Vec<_> = tb
        .sim
        .stats
        .drop_log
        .iter()
        .filter(|r| r.reason == DropReason::SilentRandom)
        .collect();
    assert_eq!(
        logged.len() as u64,
        silent,
        "each silently dropped packet is staged exactly once"
    );
    let mut uids: Vec<u64> = logged.iter().map(|r| r.uid).collect();
    uids.sort_unstable();
    uids.dedup();
    assert_eq!(uids.len(), logged.len(), "no packet staged twice");
    assert!(
        logged
            .iter()
            .all(|r| r.sw == Some(t00) && r.port == Some(up)),
        "all drops at the misrouted egress"
    );
}
