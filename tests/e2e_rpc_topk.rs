//! End-to-end: a distributed top-k over the **rpc plane**, against
//! per-host TIBs produced by a real k=4 simnet run (CherryPick tagging,
//! TCP web traffic, trajectory flush) — not synthetic records.
//!
//! Pins three things at once:
//! - the rpc plane agrees bit-for-bit with the in-process
//!   `Cluster::multilevel_query` oracle on real TIB contents;
//! - the whole pipeline (simnet → agents → TIBs → rpc plane) is
//!   bit-identical whether the fabric ran on the sequential or the
//!   pooled-sharded engine;
//! - a degraded query over the same TIBs (one dead agent) still returns
//!   within deadline, accounts the dead host exactly, and its partial
//!   answer equals the oracle over the covered hosts.

use pathdump::prelude::*;
use pathdump::simnet::EngineKind;

fn harvest_tibs(engine: EngineKind) -> Vec<Tib> {
    let mut cfg = SimConfig::for_tests().with_engine(engine);
    if engine == EngineKind::Sharded {
        cfg.shard_workers = 2;
    }
    let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
    assert_eq!(
        tb.sim.effective_engine(),
        engine,
        "engine must not fall back"
    );
    let specs = tb.add_web_traffic(0.25, Nanos::from_secs(2), 4242);
    assert!(!specs.is_empty());
    tb.run_and_flush(Nanos::from_secs(6));
    // The rpc plane holds flat per-host stores; flatten each agent's
    // tiered TIB (same records, same insertion order).
    let tibs: Vec<Tib> = tb
        .sim
        .world
        .agents
        .iter()
        .map(|a| {
            let mut t = Tib::with_bucket_width(a.tib.bucket_width());
            for rec in a.tib.records_vec() {
                t.insert(rec);
            }
            t
        })
        .collect();
    assert_eq!(tibs.len(), 16, "k=4 fat-tree has 16 hosts");
    assert!(
        tibs.iter().map(|t| t.len()).sum::<usize>() >= specs.len(),
        "web traffic must leave TIB records"
    );
    tibs
}

fn plane_over(tibs: &[Tib], q: &Query, fanouts: &[usize]) -> QueryOutcome {
    let hosts: Vec<usize> = (0..tibs.len()).collect();
    let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), tibs.to_vec());
    let id = plane.submit(q, &hosts, fanouts);
    let out = plane.run(id).expect("lossless plane completes");
    assert_eq!(plane.stats().decode_failures, 0);
    assert_eq!(plane.stats().protocol_errors, 0);
    out
}

#[test]
fn distributed_topk_over_rpc_plane_matches_oracle_across_engines() {
    let seq_tibs = harvest_tibs(EngineKind::Sequential);
    let sha_tibs = harvest_tibs(EngineKind::Sharded);

    let hosts: Vec<usize> = (0..16).collect();
    let fanouts = [4usize, 2, 2];
    let queries = [
        Query::TopK {
            k: 50,
            range: TimeRange::ANY,
        },
        Query::TrafficMatrix {
            range: TimeRange::ANY,
        },
        Query::HeavyHitters {
            min_bytes: 10_000,
            range: TimeRange::ANY,
        },
    ];

    for q in &queries {
        let seq_out = plane_over(&seq_tibs, q, &fanouts);
        let sha_out = plane_over(&sha_tibs, q, &fanouts);

        // Plane == in-process oracle, on real TIBs.
        let oracle = Cluster::new(seq_tibs.clone(), MgmtNet::default())
            .multilevel_query(&hosts, q, &fanouts);
        assert_eq!(seq_out.response, oracle.response, "plane vs oracle: {q:?}");
        assert!(seq_out.coverage.is_complete());
        assert!(seq_out.deadline_met);

        // Sequential fabric == sharded fabric, all the way through the
        // rpc plane (the TIBs themselves are pinned identical by the
        // sharded_equivalence suite; this extends the pin end-to-end).
        assert_eq!(
            seq_out.response, sha_out.response,
            "engine divergence surfaced through the rpc plane: {q:?}"
        );
        assert_eq!(seq_out.coverage, sha_out.coverage);
    }
}

#[test]
fn degraded_topk_over_real_tibs_accounts_exactly() {
    let tibs = harvest_tibs(EngineKind::Sequential);
    let hosts: Vec<usize> = (0..16).collect();
    let fanouts = [4usize, 2, 2];
    let q = Query::TopK {
        k: 25,
        range: TimeRange::ANY,
    };

    // Kill one leaf agent (host 15 is a leaf under [4,2,2] over 16 hosts).
    let dead_host: u32 = 15;
    let mut plan = FaultPlan::none(1);
    plan.dead = vec![dead_host];
    let mut plane = TreePlane::new(
        FaultyChannel::new(MgmtNet::default(), plan),
        RpcConfig::default(),
        tibs.clone(),
    );
    let id = plane.submit(&q, &hosts, &fanouts);
    let out = plane.run(id).expect("deadline guarantees completion");

    assert!(out.elapsed <= plane.config().deadline);
    assert!(out.coverage.missed.contains(&dead_host));
    assert!(!out.coverage.answered.contains(&dead_host));
    let all: Vec<u32> = (0..16).collect();
    assert!(out.coverage.partitions(&all));

    // The partial answer equals the oracle over exactly the covered hosts.
    let covered: Vec<usize> = out.coverage.answered.iter().map(|&h| h as usize).collect();
    let oracle = Cluster::new(tibs, MgmtNet::default()).multilevel_query(&covered, &q, &fanouts);
    assert_eq!(out.response, oracle.response);
}
