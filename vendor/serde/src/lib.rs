//! Offline stand-in for `serde`. The workspace only uses serde for
//! `#[derive(Serialize, Deserialize)]` annotations — the actual byte
//! codec lives in `pathdump_wire` — so the traits here are markers with a
//! blanket impl, and the derives (re-exported from the sibling
//! `serde_derive` stub) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
