//! Offline subset of the `criterion` benchmarking API. It measures and
//! prints median wall-clock time per iteration (plus derived throughput)
//! instead of criterion's full statistical analysis, and it honors
//! `cargo bench --no-run` / test-mode invocations by doing nothing when
//! benchmarks are compiled but filtered out.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Wall-clock budget per benchmark function.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
            sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.to_string(),
            self.measurement_time,
            self.sample_size,
            None,
            &mut f,
        );
        self
    }
}

/// Units for reporting rates alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// A `name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size one sample so each sample takes >= ~1ms.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = ((Duration::from_millis(1).as_nanos() / first.as_nanos().max(1)) as u64)
            .clamp(1, 100_000);
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Batch sizing hints (accepted for API compatibility, not used).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    budget: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // `cargo test` runs harness=false bench binaries with `--test`; skip
    // measurement there so test runs stay fast.
    if std::env::args().any(|a| a == "--test") {
        println!("{name}: skipped (test mode)");
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size: sample_size.max(1),
        budget,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            let gib = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!(" ({gib:.3} GiB/s)")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 / median.as_secs_f64() / 1e6;
            format!(" ({meps:.3} Melem/s)")
        }
    });
    println!(
        "{name}: median {median:?} over {} samples{}",
        bencher.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
