//! Offline subset of the `bytes` crate: `BytesMut` as a thin wrapper over
//! `Vec<u8>` with the growable-buffer API this workspace uses. No
//! refcounted split/freeze machinery — none of it is needed here.

use core::ops::{Deref, DerefMut};

/// A growable byte buffer (Vec-backed stand-in for `bytes::BytesMut`).
#[derive(Clone, Default, PartialEq, Eq, Hash, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    pub fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_reuse() {
        let mut b = BytesMut::from(&b"hello"[..]);
        assert_eq!(&b[..], b"hello");
        b.clear();
        b.extend_from_slice(b"world");
        assert_eq!(b.to_vec(), b"world");
        let taken = core::mem::take(&mut b);
        assert_eq!(taken.len(), 5);
        assert!(b.is_empty());
    }
}
