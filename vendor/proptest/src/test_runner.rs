//! Test-runner support types: configuration, case outcome, and the
//! deterministic RNG driving generation.

use rand::{RngCore, SeedableRng, SmallRng};

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override — the knob CI uses to run a deeper (or quicker) pass
    /// without editing tests. Divergence from real proptest, by design:
    /// the override applies even to configs built with [`with_cases`],
    /// because this workspace sets every suite's depth explicitly.
    ///
    /// [`with_cases`]: ProptestConfig::with_cases
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.trim().parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`) — the case is discarded.
    Reject,
    /// Assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic generation RNG. Seeded from the test name (overridable
/// with `PROPTEST_SEED`) so failures reproduce run-to-run without a
/// regression file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, folded with an optional env seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `PROPTEST_CASES` must override explicit depths (and fall back to
    /// them when unset or unparsable). This is the only test in this
    /// binary touching the variable, so the set/remove dance cannot race.
    #[test]
    fn proptest_cases_env_overrides_depth() {
        let cfg = ProptestConfig::with_cases(40);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.resolved_cases(), 40);
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(cfg.resolved_cases(), 7);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(
            cfg.resolved_cases(),
            40,
            "garbage keeps the configured depth"
        );
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.resolved_cases(), 40);
    }
}
