//! Test-runner support types: configuration, case outcome, and the
//! deterministic RNG driving generation.

use rand::{RngCore, SeedableRng, SmallRng};

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`) — the case is discarded.
    Reject,
    /// Assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic generation RNG. Seeded from the test name (overridable
/// with `PROPTEST_SEED`) so failures reproduce run-to-run without a
/// regression file.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, folded with an optional env seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }
}
