//! Value-generation strategies: `any`, numeric ranges, `Just`, tuples,
//! `prop_map`, and boxed unions for `prop_oneof!`.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values (shrink-free subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, the element type of `prop_oneof!` unions.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// `Strategy::prop_filter` adapter (rejection-samples, bounded).
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    source: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + (rng.next_u64() % 0x5F) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
