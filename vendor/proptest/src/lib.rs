//! Offline, dependency-light subset of the `proptest` crate API used by
//! this workspace: the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! `any::<T>()`, numeric-range and tuple strategies, `Just`,
//! `prop_oneof!`, `Strategy::prop_map`, and `collection::vec`.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports its inputs (via `Debug` where
//!   available in the assertion message) but is not minimized;
//! - generation is deterministic per test name, so CI runs reproduce
//!   failures without a persistence file;
//! - the `PROPTEST_CASES` environment variable overrides the case count
//!   of **every** suite, including ones configured with
//!   `ProptestConfig::with_cases` (real proptest only applies it to
//!   `Config::default()`) — the knob CI's deeper differential passes use.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        /// Exclusive upper bound.
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fail the current
/// case (returning from the generated closure) instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// `prop_assume!(cond)`: silently discard the current case when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// `prop_oneof![a, b, c]`: uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` block macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies with `pat in expr`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // `PROPTEST_CASES` overrides the configured depth (see
                // `ProptestConfig::resolved_cases`).
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let strategies = ($($strategy,)*);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cases.saturating_mul(50).max(10_000);
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name),
                        accepted,
                        config.cases
                    );
                    let ($($arg,)*) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {} of {}: {}",
                                stringify!($name),
                                accepted,
                                cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
