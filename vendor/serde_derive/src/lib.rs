//! No-op derive macros for the offline `serde` stub. The marker traits in
//! the stub have blanket impls, so the derives only need to exist for
//! `#[derive(Serialize, Deserialize)]` to parse — they emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
