//! Offline, dependency-free subset of the `rand` crate API, sufficient for
//! this workspace: `Rng` (`gen`, `gen_range`, `gen_bool`, `fill_bytes`),
//! `SeedableRng::seed_from_u64`, and `rngs::SmallRng` backed by
//! xoshiro256++ with SplitMix64 seeding.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be fetched; this stub keeps the source files (written
//! against rand 0.8) compiling unchanged. Swap back to crates.io `rand`
//! by pointing the workspace dependency at a registry version.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing randomness interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real `rand`, flattened into a trait).
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range` (subset of `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (uniform_u64(rng, span + 1) as $t)
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                }
            }
        )*
    };
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased sample from `[0, bound)` via Lemire's multiply-shift rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // No OS entropy hook in the offline stub: mix wall-clock time with
        // a process-global counter so successive calls (and calls at the
        // same stack depth) still yield distinct, uncorrelated seeds.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ n.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; mirrors the
    /// role of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng;

/// Convenience entry point mirroring `rand::thread_rng` closely enough
/// for non-cryptographic use.
pub fn thread_rng() -> rngs::SmallRng {
    rngs::SmallRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 100);
    }
}
