//! Userspace software datapath — the OVS+DPDK analogue used by the
//! Figure 13 edge-throughput experiment.
//!
//! Two pipelines over real packet bytes:
//! - **vanilla**: parse Ethernet/VLAN/IPv4/TCP, L2 lookup, forward;
//! - **PathDump**: the same, plus trajectory-sample extraction, a
//!   trajectory-memory update keyed by (flow, link IDs), and in-place
//!   VLAN-stack stripping before the packet reaches the upper stack.
//!
//! # Zero-copy contract
//!
//! [`DataPath::process`] takes `&mut [u8]` and works **in place**: the
//! frame is parsed where it sits ([`parse_into`] reuses a scratch, no
//! allocation), and the VLAN stack is stripped by relocating the 12-byte
//! MAC header forward over the tags ([`strip_vlans_prefix`]) instead of
//! memmoving the packet tail or reallocating. The returned
//! [`Verdict`] reports the stripped frame's span (`offset`, `len`) inside
//! the buffer — `verdict.frame(&buf)` is what the upper stack receives.
//! Steady-state processing (live flow records, warm EMC) performs zero
//! heap allocations per frame; `FrameBatch::run_once` preserves that by
//! restoring only the 12 relocated bytes between passes.
//!
//! # Batch contract
//!
//! [`DataPath::process_batch`] drives a whole ring through the pipeline
//! in two phases — streaming parse/strip/classify into a caller-supplied
//! verdict buffer, then one tight replay of the staged trajectory-memory
//! updates — with counters folded in once per batch. Verdicts, counters,
//! and memory state stay **bit-identical** to per-frame
//! [`DataPath::process`] calls (pinned by `prop_strip_equivalence`). The
//! 0/1-tag specialization (one u64 EtherType window in [`parse_into`],
//! no tag-reversal loop in the memory probe) fires on the overwhelmingly
//! common frame shapes. [`FrameBatch::run_once`] adds the NIC-ring
//! model: between passes it restores only the 12 relocated MAC bytes per
//! stripped frame, so the steady state allocates and copies nothing
//! beyond those 12 bytes. Full details: the `datapath` module docs.
//!
//! The paper measures ≤4% throughput loss for the PathDump pipeline over
//! vanilla DPDK vSwitch at 64–1500 B packet sizes with ~4K live flow
//! records; `pathdump-bench` regenerates that comparison.

pub mod datapath;
pub mod parse;

pub use datapath::{Action, DataPath, FrameBatch, Mode, Verdict};
pub use parse::{
    build_frame, ipv4_checksum, parse, parse_into, strip_vlans, strip_vlans_prefix, ParseError,
    Parsed,
};
