//! Userspace software datapath — the OVS+DPDK analogue used by the
//! Figure 13 edge-throughput experiment.
//!
//! Two pipelines over real packet bytes:
//! - **vanilla**: parse Ethernet/VLAN/IPv4/TCP, L2 lookup, forward;
//! - **PathDump**: the same, plus trajectory-sample extraction, a
//!   trajectory-memory update keyed by (flow, link IDs), and in-place
//!   VLAN-stack stripping before the packet reaches the upper stack.
//!
//! The paper measures ≤4% throughput loss for the PathDump pipeline over
//! vanilla DPDK vSwitch at 64–1500 B packet sizes with ~4K live flow
//! records; `pathdump-bench` regenerates that comparison.

pub mod datapath;
pub mod parse;

pub use datapath::{DataPath, FrameBatch, Mode, Verdict};
pub use parse::{build_frame, ipv4_checksum, parse, strip_vlans, ParseError, Parsed};
