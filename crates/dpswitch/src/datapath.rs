//! The userspace software datapath: a vanilla L2/L3 forwarding pipeline and
//! the PathDump-enabled variant that additionally extracts trajectory
//! samples, updates the trajectory memory, and strips the tags before
//! handing the packet to the upper stack — "about 150 lines of C added to
//! OVS" in the paper (§3.2), reproduced here for the Figure 13 experiment.
//!
//! # The in-place datapath contract
//!
//! [`DataPath::process`] operates on `&mut [u8]` and never moves the frame
//! through the heap: tag stripping relocates the 12-byte MAC header
//! forward over the VLAN stack with a constant-size `copy_within`
//! ([`strip_vlans_prefix`]), and the returned [`Verdict`] carries the span
//! (`offset`, `len`) of the valid frame inside the buffer. Callers hand
//! `&buf[verdict.offset..][..verdict.len]` to the upper stack; bytes
//! before the offset are dead. On the steady state (live flow records,
//! warm EMC) the whole per-frame pipeline performs **zero heap
//! allocations** — pinned by the `zero_alloc_run_once` test and the
//! differential `prop_strip_equivalence` suite.

use crate::parse::{parse_into, strip_vlans_prefix, ParseError, Parsed};
use pathdump_tib::memory::FnvBuild;
use pathdump_tib::{MemKey, TrajectoryMemory};
use pathdump_topology::{FlowId, Nanos};
use std::collections::HashMap;

/// Forwarding action for one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Forward out of a port.
    Forward(u16),
    /// Flood (destination MAC unknown).
    Flood,
    /// Drop (parse error); carries the reason.
    Drop(ParseError),
}

/// Forwarding verdict for one frame processed in place: the action plus
/// the span of the (possibly tag-stripped) frame within the buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// What to do with the frame.
    pub action: Action,
    /// Byte offset where the valid frame now starts (non-zero exactly
    /// when a VLAN stack was stripped in PathDump mode).
    pub offset: usize,
    /// Valid frame length from `offset`.
    pub len: usize,
}

impl Verdict {
    /// True when the frame was dropped (parse error).
    pub fn is_drop(&self) -> bool {
        matches!(self.action, Action::Drop(_))
    }

    /// The valid frame span inside the processed buffer.
    pub fn frame<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.offset..self.offset + self.len]
    }
}

/// Operating mode of the datapath.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Vanilla forwarding only (the Figure 13 baseline "vSwitch").
    Vanilla,
    /// PathDump-enabled: extract samples, update trajectory memory, strip
    /// tags ("PathDump" in Figure 13).
    PathDump,
}

/// The software switch.
pub struct DataPath {
    mode: Mode,
    /// Destination-MAC learning table (MAC bytes → port).
    l2: HashMap<[u8; 6], u16>,
    /// The exact-match flow cache (OVS's EMC): every packet classifies
    /// against it in *both* modes — this is baseline vSwitch work, shared
    /// with the PathDump pipeline exactly as in the paper's patched OVS.
    emc: HashMap<FlowId, u16, FnvBuild>,
    /// The PathDump trajectory memory updated on every packet.
    pub memory: TrajectoryMemory,
    /// Frames processed.
    pub packets: u64,
    /// Bytes processed.
    pub bytes: u64,
    /// Parse failures.
    pub errors: u64,
    clock: Nanos,
    /// Reusable key so the per-packet hook does not allocate.
    scratch: MemKey,
    /// Reusable parse output, for the same reason.
    parsed: Parsed,
}

impl DataPath {
    /// Builds a datapath in the given mode.
    pub fn new(mode: Mode) -> Self {
        DataPath {
            mode,
            l2: HashMap::new(),
            emc: HashMap::default(),
            memory: TrajectoryMemory::default(),
            packets: 0,
            bytes: 0,
            errors: 0,
            clock: Nanos::ZERO,
            scratch: MemKey {
                flow: pathdump_topology::FlowId::tcp(
                    pathdump_topology::Ip(0),
                    0,
                    pathdump_topology::Ip(0),
                    0,
                ),
                dscp_sample: None,
                tags: Vec::with_capacity(4),
            },
            parsed: Parsed::scratch(),
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Installs an L2 entry.
    pub fn learn(&mut self, mac: [u8; 6], port: u16) {
        self.l2.insert(mac, port);
    }

    /// Advances the datapath clock (used to timestamp memory updates).
    pub fn set_clock(&mut self, now: Nanos) {
        self.clock = now;
    }

    /// Processes one frame in place. In PathDump mode the VLAN stack is
    /// stripped by relocating the MAC header forward (as OVS pops VLANs
    /// before the upper stack sees the packet); the returned [`Verdict`]
    /// carries the stripped frame's span within `frame`. No heap
    /// allocation happens on the steady state.
    pub fn process(&mut self, frame: &mut [u8]) -> Verdict {
        self.packets += 1;
        self.bytes += frame.len() as u64;
        if let Err(e) = parse_into(frame, &mut self.parsed) {
            self.errors += 1;
            return Verdict {
                action: Action::Drop(e),
                offset: 0,
                len: frame.len(),
            };
        }
        // The strip relocates the MACs; read the destination MAC first.
        let dst_mac: [u8; 6] = frame[0..6].try_into().expect("length checked in parse");
        let mut offset = 0;
        if self.mode == Mode::PathDump {
            Self::pathdump_hook(
                &mut self.memory,
                &mut self.scratch,
                &self.parsed,
                self.clock,
            );
            offset = strip_vlans_prefix(frame, self.parsed.tags.len());
        }
        let len = frame.len() - offset;
        // Flow classification (EMC), then L2 on a miss — the vanilla
        // vSwitch fast path.
        let flow = self.parsed.flow;
        if let Some(&port) = self.emc.get(&flow) {
            return Verdict {
                action: Action::Forward(port),
                offset,
                len,
            };
        }
        let action = match self.l2.get(&dst_mac) {
            Some(&port) => {
                self.emc.insert(flow, port);
                Action::Forward(port)
            }
            None => Action::Flood,
        };
        Verdict {
            action,
            offset,
            len,
        }
    }

    /// The per-packet PathDump work: derive the per-path flow record key
    /// and update the trajectory memory (Figure 2's "create/update
    /// per-path flow record with link IDs"). An associated function over
    /// disjoint fields so the reusable parse scratch can stay borrowed.
    fn pathdump_hook(
        memory: &mut TrajectoryMemory,
        scratch: &mut MemKey,
        parsed: &Parsed,
        clock: Nanos,
    ) {
        // DSCP bit 0 is the hop-parity bit; bits 1..6 hold the VL2 sample.
        let sample_bits = (parsed.dscp >> 1) & 0x1F;
        let dscp_sample = if sample_bits == 0 {
            None
        } else {
            Some(sample_bits - 1)
        };
        // Reuse the scratch key: zero allocations on the per-packet path.
        scratch.flow = parsed.flow;
        scratch.dscp_sample = dscp_sample;
        scratch.tags.clear();
        // Tags parse outermost-first; push order is innermost-first.
        scratch.tags.extend(parsed.tags.iter().rev().copied());
        memory.update_borrowed(scratch, parsed.payload_len as u32, clock);
    }
}

/// A reusable batch of frames for throughput experiments, with per-frame
/// scratch buffers (modeling an NIC ring).
pub struct FrameBatch {
    originals: Vec<Vec<u8>>,
    scratch: Vec<Vec<u8>>,
    /// Per-frame offset the previous pass's strip relocated the MAC
    /// header to (0 = buffer still pristine). Restoring a frame only has
    /// to undo that 12-byte relocation, not recopy the whole frame.
    moved: Vec<usize>,
}

impl FrameBatch {
    /// Builds a batch from frames.
    pub fn new(frames: Vec<Vec<u8>>) -> Self {
        let scratch = frames.clone();
        let moved = vec![0; frames.len()];
        FrameBatch {
            originals: frames,
            scratch,
            moved,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// Returns true if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// Total wire bytes in the batch.
    pub fn total_bytes(&self) -> u64 {
        self.originals.iter().map(|f| f.len() as u64).sum()
    }

    /// Runs every frame through the datapath once (so tag-stripping runs
    /// each time), allocation- and copy-free: the in-place strip only
    /// relocates 12 bytes, so restoring a scratch buffer from its original
    /// is a 12-byte copy rather than a full-frame round-trip. Returns the
    /// number of successfully forwarded frames.
    pub fn run_once(&mut self, dp: &mut DataPath) -> usize {
        let mut ok = 0;
        for ((orig, buf), moved) in self
            .originals
            .iter()
            .zip(self.scratch.iter_mut())
            .zip(self.moved.iter_mut())
        {
            // Undo the previous pass's MAC relocation: only bytes
            // [moved, moved+12) differ from the original.
            if *moved != 0 {
                buf[*moved..*moved + 12].copy_from_slice(&orig[*moved..*moved + 12]);
            }
            let verdict = dp.process(buf);
            *moved = verdict.offset;
            if !verdict.is_drop() {
                ok += 1;
            }
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::build_frame;
    use pathdump_topology::{FlowId, Ip};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn vanilla_forwards_without_touching_tags() {
        let mut dp = DataPath::new(Mode::Vanilla);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 7);
        let mut f = build_frame(&flow(1), &[100, 200], 3, 64);
        let before = f.clone();
        let v = dp.process(&mut f);
        assert_eq!(v.action, Action::Forward(7));
        assert_eq!((v.offset, v.len), (0, before.len()));
        assert_eq!(f, before, "vanilla mode must not modify the frame");
        assert_eq!(dp.memory.len(), 0, "no trajectory state in vanilla mode");
    }

    #[test]
    fn pathdump_strips_and_records() {
        let mut dp = DataPath::new(Mode::PathDump);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 3);
        let mut f = build_frame(&flow(1), &[100, 200], 0, 64);
        let tagged_len = f.len();
        let v = dp.process(&mut f);
        assert_eq!(v.action, Action::Forward(3));
        assert_eq!(v.len, tagged_len - 8, "two tags stripped");
        assert_eq!(v.offset, 8, "MAC header relocated over the stack");
        let stripped = v.frame(&f);
        assert_eq!(
            crate::parse::parse(stripped).unwrap().tags,
            Vec::<u16>::new(),
            "stripped span parses tag-free"
        );
        assert_eq!(dp.memory.len(), 1);
        // Push order: innermost tag first (tags parse outermost-first).
        let key = MemKey {
            flow: flow(1),
            dscp_sample: None,
            tags: vec![200, 100],
        };
        assert_eq!(dp.memory.peek(&key), Some((64, 1)));
    }

    #[test]
    fn per_path_aggregation_in_memory() {
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..5 {
            let mut f = build_frame(&flow(9), &[42], 0, 100);
            dp.process(&mut f);
        }
        for _ in 0..3 {
            let mut f = build_frame(&flow(9), &[43], 0, 100);
            dp.process(&mut f);
        }
        assert_eq!(dp.memory.len(), 2, "two paths, two records");
        let k42 = MemKey {
            flow: flow(9),
            dscp_sample: None,
            tags: vec![42],
        };
        assert_eq!(dp.memory.peek(&k42), Some((500, 5)));
    }

    #[test]
    fn dscp_sample_decoded() {
        let mut dp = DataPath::new(Mode::PathDump);
        // DSCP bits: sample value 3 stored as (3+1)<<1 = 8.
        let mut f = build_frame(&flow(2), &[], (3 + 1) << 1, 10);
        dp.process(&mut f);
        let key = MemKey {
            flow: flow(2),
            dscp_sample: Some(3),
            tags: vec![],
        };
        assert!(dp.memory.peek(&key).is_some());
    }

    #[test]
    fn unknown_mac_floods_and_errors_counted() {
        let mut dp = DataPath::new(Mode::PathDump);
        let mut f = build_frame(&flow(3), &[], 0, 10);
        assert_eq!(dp.process(&mut f).action, Action::Flood);
        let mut junk = vec![0u8; 6];
        assert!(dp.process(&mut junk).is_drop());
        assert_eq!(dp.errors, 1);
        assert_eq!(dp.packets, 2);
    }

    #[test]
    fn batch_replays_consistently() {
        let frames: Vec<Vec<u8>> = (0..50)
            .map(|i| build_frame(&flow(i), &[i % 4096], 0, 200))
            .collect();
        let mut batch = FrameBatch::new(frames);
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..3 {
            assert_eq!(batch.run_once(&mut dp), 50);
        }
        assert_eq!(dp.packets, 150);
        assert_eq!(dp.memory.len(), 50, "50 distinct flow-path records");
        let key = MemKey {
            flow: flow(0),
            dscp_sample: None,
            tags: vec![0],
        };
        assert_eq!(dp.memory.peek(&key), Some((600, 3)), "3 passes counted");
    }

    #[test]
    fn batch_restore_is_exact_across_mixed_tag_stacks() {
        // Frames with 0..=3 tags: the 12-byte prefix restore must hand
        // process() a bit-identical frame every pass (same verdicts, same
        // per-pass memory counts).
        let frames: Vec<Vec<u8>> = (0..12u16)
            .map(|i| {
                let tags: Vec<u16> = (0..(i % 4)).map(|t| 100 + i * 4 + t).collect();
                build_frame(&flow(i), &tags, 0, 64)
            })
            .collect();
        let mut batch = FrameBatch::new(frames.clone());
        let mut dp = DataPath::new(Mode::PathDump);
        for pass in 1..=4u64 {
            assert_eq!(batch.run_once(&mut dp), 12);
            for (i, f) in frames.iter().enumerate() {
                let tags: Vec<u16> = (0..(i as u16 % 4))
                    .map(|t| 100 + i as u16 * 4 + t)
                    .rev()
                    .collect();
                let key = MemKey {
                    flow: flow(i as u16),
                    dscp_sample: None,
                    tags,
                };
                let (_, pkts) = dp.memory.peek(&key).unwrap();
                assert_eq!(pkts, pass, "frame {i} (len {}) counted once/pass", f.len());
            }
        }
    }
}
