//! The userspace software datapath: a vanilla L2/L3 forwarding pipeline and
//! the PathDump-enabled variant that additionally extracts trajectory
//! samples, updates the trajectory memory, and strips the tags before
//! handing the packet to the upper stack — "about 150 lines of C added to
//! OVS" in the paper (§3.2), reproduced here for the Figure 13 experiment.
//!
//! # The in-place datapath contract
//!
//! [`DataPath::process`] operates on `&mut [u8]` and never moves the frame
//! through the heap: tag stripping relocates the 12-byte MAC header
//! forward over the VLAN stack with a constant-size `copy_within`
//! ([`strip_vlans_prefix`]), and the returned [`Verdict`] carries the span
//! (`offset`, `len`) of the valid frame inside the buffer. Callers hand
//! `&buf[verdict.offset..][..verdict.len]` to the upper stack; bytes
//! before the offset are dead. On the steady state (live flow records,
//! warm EMC) the whole per-frame pipeline performs **zero heap
//! allocations** — pinned by the `zero_alloc_run_once` test and the
//! differential `prop_strip_equivalence` suite.
//!
//! # The batch contract
//!
//! [`DataPath::process_batch`] drives a whole ring of frames through the
//! same pipeline in two phases: a streaming parse/classify/strip pass
//! (per-frame verdicts land in a caller-supplied buffer, trajectory
//! updates are queued into a reusable slot vector), then one tight pass
//! over the trajectory memory. Counters fold in once per batch instead of
//! once per frame, and the queued memory updates replay in frame order,
//! so verdicts, counters and memory state are **bit-identical** to
//! calling [`DataPath::process`] per frame — the equivalence the
//! `prop_strip_equivalence` suite pins. The single-tag specialization
//! fires inside `parse_into` (one u64 EtherType window) and
//! `TrajectoryMemory::update_wire` (no tag-reversal loop) for 0/1-tag
//! frames, the overwhelmingly common shapes.
//!
//! [`FrameBatch::run_once`] layers the NIC-ring model on top: between
//! passes it restores only the 12 relocated MAC bytes of each stripped
//! frame (`moved != 0`) rather than recopying whole buffers, then calls
//! `process_batch` once. After the first pass (which sizes the reusable
//! slot/verdict buffers) the steady state allocates nothing.

use crate::parse::{parse_into, strip_vlans_prefix, ParseError, Parsed, MAX_TAGS};
use pathdump_tib::memory::FnvBuild;
use pathdump_tib::TrajectoryMemory;
use pathdump_topology::{FlowId, Nanos};
use std::collections::HashMap;

/// Forwarding action for one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Forward out of a port.
    Forward(u16),
    /// Flood (destination MAC unknown).
    Flood,
    /// Drop (parse error); carries the reason.
    Drop(ParseError),
}

/// Forwarding verdict for one frame processed in place: the action plus
/// the span of the (possibly tag-stripped) frame within the buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// What to do with the frame.
    pub action: Action,
    /// Byte offset where the valid frame now starts (non-zero exactly
    /// when a VLAN stack was stripped in PathDump mode).
    pub offset: usize,
    /// Valid frame length from `offset`.
    pub len: usize,
}

impl Verdict {
    /// True when the frame was dropped (parse error).
    pub fn is_drop(&self) -> bool {
        matches!(self.action, Action::Drop(_))
    }

    /// The valid frame span inside the processed buffer.
    pub fn frame<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.offset..self.offset + self.len]
    }
}

/// Operating mode of the datapath.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Vanilla forwarding only (the Figure 13 baseline "vSwitch").
    Vanilla,
    /// PathDump-enabled: extract samples, update trajectory memory, strip
    /// tags ("PathDump" in Figure 13).
    PathDump,
}

/// The software switch.
pub struct DataPath {
    mode: Mode,
    /// Destination-MAC learning table (MAC bytes → port).
    l2: HashMap<[u8; 6], u16>,
    /// The exact-match flow cache (OVS's EMC): every packet classifies
    /// against it in *both* modes — this is baseline vSwitch work, shared
    /// with the PathDump pipeline exactly as in the paper's patched OVS.
    emc: HashMap<FlowId, u16, FnvBuild>,
    /// The PathDump trajectory memory updated on every packet.
    pub memory: TrajectoryMemory,
    /// Frames processed.
    pub packets: u64,
    /// Bytes processed.
    pub bytes: u64,
    /// Parse failures.
    pub errors: u64,
    clock: Nanos,
    /// Reusable parse output so the per-packet path does not allocate.
    parsed: Parsed,
    /// Queued trajectory-memory updates of the current batch (phase two
    /// of `process_batch`); capacity persists across batches.
    mem_ops: Vec<MemOp>,
}

/// One queued trajectory-memory update: the parse products a PathDump
/// frame contributes, staged so the batch pipeline can replay all map
/// probes in one tight pass. Tags stay in parse (outermost-first) order;
/// `TrajectoryMemory::update_wire` reverses them while building its probe.
#[derive(Clone, Copy)]
struct MemOp {
    flow: FlowId,
    dscp_sample: Option<u8>,
    payload_len: u32,
    tag_len: u8,
    tags: [u16; MAX_TAGS],
}

impl DataPath {
    /// Builds a datapath in the given mode.
    pub fn new(mode: Mode) -> Self {
        DataPath {
            mode,
            l2: HashMap::new(),
            emc: HashMap::default(),
            memory: TrajectoryMemory::default(),
            packets: 0,
            bytes: 0,
            errors: 0,
            clock: Nanos::ZERO,
            parsed: Parsed::scratch(),
            mem_ops: Vec::new(),
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Installs an L2 entry.
    pub fn learn(&mut self, mac: [u8; 6], port: u16) {
        self.l2.insert(mac, port);
    }

    /// Advances the datapath clock (used to timestamp memory updates).
    pub fn set_clock(&mut self, now: Nanos) {
        self.clock = now;
    }

    /// Processes one frame in place. In PathDump mode the VLAN stack is
    /// stripped by relocating the MAC header forward (as OVS pops VLANs
    /// before the upper stack sees the packet); the returned [`Verdict`]
    /// carries the stripped frame's span within `frame`. No heap
    /// allocation happens on the steady state.
    pub fn process(&mut self, frame: &mut [u8]) -> Verdict {
        self.packets += 1;
        self.bytes += frame.len() as u64;
        if let Err(e) = parse_into(frame, &mut self.parsed) {
            self.errors += 1;
            return Verdict {
                action: Action::Drop(e),
                offset: 0,
                len: frame.len(),
            };
        }
        // The strip relocates the MACs; read the destination MAC first.
        let dst_mac: [u8; 6] = frame[0..6].try_into().expect("length checked in parse");
        let mut offset = 0;
        if self.mode == Mode::PathDump {
            // The per-packet PathDump work (Figure 2's "create/update
            // per-path flow record with link IDs"): DSCP bit 0 is the
            // hop-parity bit, bits 1..6 hold the VL2 sample; the tag
            // stack goes to the memory straight from the parse scratch
            // (update_wire reverses it into push order in its probe).
            let sample_bits = (self.parsed.dscp >> 1) & 0x1F;
            let dscp_sample = if sample_bits == 0 {
                None
            } else {
                Some(sample_bits - 1)
            };
            self.memory.update_wire(
                &self.parsed.flow,
                dscp_sample,
                &self.parsed.tags,
                self.parsed.payload_len as u32,
                self.clock,
            );
            offset = strip_vlans_prefix(frame, self.parsed.tags.len());
        }
        let len = frame.len() - offset;
        // Flow classification (EMC), then L2 on a miss — the vanilla
        // vSwitch fast path.
        let flow = self.parsed.flow;
        if let Some(&port) = self.emc.get(&flow) {
            return Verdict {
                action: Action::Forward(port),
                offset,
                len,
            };
        }
        let action = match self.l2.get(&dst_mac) {
            Some(&port) => {
                self.emc.insert(flow, port);
                Action::Forward(port)
            }
            None => Action::Flood,
        };
        Verdict {
            action,
            offset,
            len,
        }
    }

    /// Processes a whole batch of frames in place — the ring-polling fast
    /// path (see the module docs' batch contract). `verdicts` is cleared
    /// and refilled with one [`Verdict`] per frame, in order.
    ///
    /// Phase one streams over the frames: parse into the reusable scratch,
    /// stage the trajectory update into a slot, strip the VLAN stack and
    /// classify (EMC, then L2). Phase two replays the staged memory
    /// updates in frame order, so the map probes run back-to-back instead
    /// of interleaved with parsing. Counters fold in once per batch.
    /// Observable state afterwards is bit-identical to calling
    /// [`Self::process`] on each frame in order.
    pub fn process_batch(&mut self, frames: &mut [Vec<u8>], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        verdicts.reserve(frames.len());
        self.mem_ops.clear();
        self.mem_ops.reserve(frames.len());
        let mut bytes = 0u64;
        let mut errors = 0u64;
        let pathdump = self.mode == Mode::PathDump;
        for frame in frames.iter_mut() {
            bytes += frame.len() as u64;
            if let Err(e) = parse_into(frame, &mut self.parsed) {
                errors += 1;
                verdicts.push(Verdict {
                    action: Action::Drop(e),
                    offset: 0,
                    len: frame.len(),
                });
                continue;
            }
            let dst_mac: [u8; 6] = frame[0..6].try_into().expect("length checked in parse");
            let mut offset = 0;
            if pathdump {
                let sample_bits = (self.parsed.dscp >> 1) & 0x1F;
                let mut op = MemOp {
                    flow: self.parsed.flow,
                    dscp_sample: if sample_bits == 0 {
                        None
                    } else {
                        Some(sample_bits - 1)
                    },
                    payload_len: self.parsed.payload_len as u32,
                    tag_len: self.parsed.tags.len() as u8,
                    tags: [0; MAX_TAGS],
                };
                op.tags[..self.parsed.tags.len()].copy_from_slice(&self.parsed.tags);
                self.mem_ops.push(op);
                offset = strip_vlans_prefix(frame, self.parsed.tags.len());
            }
            let len = frame.len() - offset;
            let flow = self.parsed.flow;
            let action = if let Some(&port) = self.emc.get(&flow) {
                Action::Forward(port)
            } else {
                match self.l2.get(&dst_mac) {
                    Some(&port) => {
                        self.emc.insert(flow, port);
                        Action::Forward(port)
                    }
                    None => Action::Flood,
                }
            };
            verdicts.push(Verdict {
                action,
                offset,
                len,
            });
        }
        for op in &self.mem_ops {
            self.memory.update_wire(
                &op.flow,
                op.dscp_sample,
                &op.tags[..op.tag_len as usize],
                op.payload_len,
                self.clock,
            );
        }
        self.packets += frames.len() as u64;
        self.bytes += bytes;
        self.errors += errors;
    }
}

/// A reusable batch of frames for throughput experiments, with per-frame
/// scratch buffers (modeling an NIC ring).
pub struct FrameBatch {
    originals: Vec<Vec<u8>>,
    scratch: Vec<Vec<u8>>,
    /// Per-frame offset the previous pass's strip relocated the MAC
    /// header to (0 = buffer still pristine). Restoring a frame only has
    /// to undo that 12-byte relocation, not recopy the whole frame.
    moved: Vec<usize>,
    /// Reusable per-pass verdict buffer for the batched pipeline.
    verdicts: Vec<Verdict>,
}

impl FrameBatch {
    /// Builds a batch from frames.
    pub fn new(frames: Vec<Vec<u8>>) -> Self {
        let scratch = frames.clone();
        let moved = vec![0; frames.len()];
        let verdicts = Vec::with_capacity(frames.len());
        FrameBatch {
            originals: frames,
            scratch,
            moved,
            verdicts,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// Returns true if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// Total wire bytes in the batch.
    pub fn total_bytes(&self) -> u64 {
        self.originals.iter().map(|f| f.len() as u64).sum()
    }

    /// Runs every frame through the datapath once (so tag-stripping runs
    /// each time), allocation- and copy-free in the steady state: the
    /// in-place strip only relocates 12 bytes, so restoring a scratch
    /// buffer from its original is a 12-byte copy rather than a
    /// full-frame round-trip, and the whole ring then goes through
    /// [`DataPath::process_batch`] in one call. Returns the number of
    /// successfully forwarded frames.
    pub fn run_once(&mut self, dp: &mut DataPath) -> usize {
        for ((orig, buf), moved) in self
            .originals
            .iter()
            .zip(self.scratch.iter_mut())
            .zip(self.moved.iter())
        {
            // Undo the previous pass's MAC relocation: only bytes
            // [moved, moved+12) differ from the original.
            if *moved != 0 {
                buf[*moved..*moved + 12].copy_from_slice(&orig[*moved..*moved + 12]);
            }
        }
        dp.process_batch(&mut self.scratch, &mut self.verdicts);
        let mut ok = 0;
        for (verdict, moved) in self.verdicts.iter().zip(self.moved.iter_mut()) {
            *moved = verdict.offset;
            if !verdict.is_drop() {
                ok += 1;
            }
        }
        ok
    }

    /// Per-frame verdicts of the most recent [`Self::run_once`] pass.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::build_frame;
    use pathdump_tib::MemKey;
    use pathdump_topology::{FlowId, Ip};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn vanilla_forwards_without_touching_tags() {
        let mut dp = DataPath::new(Mode::Vanilla);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 7);
        let mut f = build_frame(&flow(1), &[100, 200], 3, 64);
        let before = f.clone();
        let v = dp.process(&mut f);
        assert_eq!(v.action, Action::Forward(7));
        assert_eq!((v.offset, v.len), (0, before.len()));
        assert_eq!(f, before, "vanilla mode must not modify the frame");
        assert_eq!(dp.memory.len(), 0, "no trajectory state in vanilla mode");
    }

    #[test]
    fn pathdump_strips_and_records() {
        let mut dp = DataPath::new(Mode::PathDump);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 3);
        let mut f = build_frame(&flow(1), &[100, 200], 0, 64);
        let tagged_len = f.len();
        let v = dp.process(&mut f);
        assert_eq!(v.action, Action::Forward(3));
        assert_eq!(v.len, tagged_len - 8, "two tags stripped");
        assert_eq!(v.offset, 8, "MAC header relocated over the stack");
        let stripped = v.frame(&f);
        assert_eq!(
            crate::parse::parse(stripped).unwrap().tags,
            Vec::<u16>::new(),
            "stripped span parses tag-free"
        );
        assert_eq!(dp.memory.len(), 1);
        // Push order: innermost tag first (tags parse outermost-first).
        let key = MemKey {
            flow: flow(1),
            dscp_sample: None,
            tags: vec![200, 100],
        };
        assert_eq!(dp.memory.peek(&key), Some((64, 1)));
    }

    #[test]
    fn per_path_aggregation_in_memory() {
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..5 {
            let mut f = build_frame(&flow(9), &[42], 0, 100);
            dp.process(&mut f);
        }
        for _ in 0..3 {
            let mut f = build_frame(&flow(9), &[43], 0, 100);
            dp.process(&mut f);
        }
        assert_eq!(dp.memory.len(), 2, "two paths, two records");
        let k42 = MemKey {
            flow: flow(9),
            dscp_sample: None,
            tags: vec![42],
        };
        assert_eq!(dp.memory.peek(&k42), Some((500, 5)));
    }

    #[test]
    fn dscp_sample_decoded() {
        let mut dp = DataPath::new(Mode::PathDump);
        // DSCP bits: sample value 3 stored as (3+1)<<1 = 8.
        let mut f = build_frame(&flow(2), &[], (3 + 1) << 1, 10);
        dp.process(&mut f);
        let key = MemKey {
            flow: flow(2),
            dscp_sample: Some(3),
            tags: vec![],
        };
        assert!(dp.memory.peek(&key).is_some());
    }

    #[test]
    fn unknown_mac_floods_and_errors_counted() {
        let mut dp = DataPath::new(Mode::PathDump);
        let mut f = build_frame(&flow(3), &[], 0, 10);
        assert_eq!(dp.process(&mut f).action, Action::Flood);
        let mut junk = vec![0u8; 6];
        assert!(dp.process(&mut junk).is_drop());
        assert_eq!(dp.errors, 1);
        assert_eq!(dp.packets, 2);
    }

    #[test]
    fn batch_replays_consistently() {
        let frames: Vec<Vec<u8>> = (0..50)
            .map(|i| build_frame(&flow(i), &[i % 4096], 0, 200))
            .collect();
        let mut batch = FrameBatch::new(frames);
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..3 {
            assert_eq!(batch.run_once(&mut dp), 50);
        }
        assert_eq!(dp.packets, 150);
        assert_eq!(dp.memory.len(), 50, "50 distinct flow-path records");
        let key = MemKey {
            flow: flow(0),
            dscp_sample: None,
            tags: vec![0],
        };
        assert_eq!(dp.memory.peek(&key), Some((600, 3)), "3 passes counted");
    }

    #[test]
    fn batch_restore_is_exact_across_mixed_tag_stacks() {
        // Frames with 0..=3 tags: the 12-byte prefix restore must hand
        // process() a bit-identical frame every pass (same verdicts, same
        // per-pass memory counts).
        let frames: Vec<Vec<u8>> = (0..12u16)
            .map(|i| {
                let tags: Vec<u16> = (0..(i % 4)).map(|t| 100 + i * 4 + t).collect();
                build_frame(&flow(i), &tags, 0, 64)
            })
            .collect();
        let mut batch = FrameBatch::new(frames.clone());
        let mut dp = DataPath::new(Mode::PathDump);
        for pass in 1..=4u64 {
            assert_eq!(batch.run_once(&mut dp), 12);
            for (i, f) in frames.iter().enumerate() {
                let tags: Vec<u16> = (0..(i as u16 % 4))
                    .map(|t| 100 + i as u16 * 4 + t)
                    .rev()
                    .collect();
                let key = MemKey {
                    flow: flow(i as u16),
                    dscp_sample: None,
                    tags,
                };
                let (_, pkts) = dp.memory.peek(&key).unwrap();
                assert_eq!(pkts, pass, "frame {i} (len {}) counted once/pass", f.len());
            }
        }
    }
}
