//! The userspace software datapath: a vanilla L2/L3 forwarding pipeline and
//! the PathDump-enabled variant that additionally extracts trajectory
//! samples, updates the trajectory memory, and strips the tags before
//! handing the packet to the upper stack — "about 150 lines of C added to
//! OVS" in the paper (§3.2), reproduced here for the Figure 13 experiment.

use crate::parse::{parse, strip_vlans, ParseError, Parsed};
use bytes::BytesMut;
use pathdump_tib::memory::FnvBuild;
use pathdump_tib::{MemKey, TrajectoryMemory};
use pathdump_topology::{FlowId, Nanos};
use std::collections::HashMap;

/// Forwarding verdict for one frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Forward out of a port.
    Forward(u16),
    /// Flood (destination MAC unknown).
    Flood,
    /// Drop (parse error); carries the reason.
    Drop(ParseError),
}

/// Operating mode of the datapath.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Vanilla forwarding only (the Figure 13 baseline "vSwitch").
    Vanilla,
    /// PathDump-enabled: extract samples, update trajectory memory, strip
    /// tags ("PathDump" in Figure 13).
    PathDump,
}

/// The software switch.
pub struct DataPath {
    mode: Mode,
    /// Destination-MAC learning table (MAC bytes → port).
    l2: HashMap<[u8; 6], u16>,
    /// The exact-match flow cache (OVS's EMC): every packet classifies
    /// against it in *both* modes — this is baseline vSwitch work, shared
    /// with the PathDump pipeline exactly as in the paper's patched OVS.
    emc: HashMap<FlowId, u16, FnvBuild>,
    /// The PathDump trajectory memory updated on every packet.
    pub memory: TrajectoryMemory,
    /// Frames processed.
    pub packets: u64,
    /// Bytes processed.
    pub bytes: u64,
    /// Parse failures.
    pub errors: u64,
    clock: Nanos,
    /// Reusable key so the per-packet hook does not allocate.
    scratch: MemKey,
}

impl DataPath {
    /// Builds a datapath in the given mode.
    pub fn new(mode: Mode) -> Self {
        DataPath {
            mode,
            l2: HashMap::new(),
            emc: HashMap::default(),
            memory: TrajectoryMemory::default(),
            packets: 0,
            bytes: 0,
            errors: 0,
            clock: Nanos::ZERO,
            scratch: MemKey {
                flow: pathdump_topology::FlowId::tcp(
                    pathdump_topology::Ip(0),
                    0,
                    pathdump_topology::Ip(0),
                    0,
                ),
                dscp_sample: None,
                tags: Vec::with_capacity(4),
            },
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Installs an L2 entry.
    pub fn learn(&mut self, mac: [u8; 6], port: u16) {
        self.l2.insert(mac, port);
    }

    /// Advances the datapath clock (used to timestamp memory updates).
    pub fn set_clock(&mut self, now: Nanos) {
        self.clock = now;
    }

    /// Processes one frame in place. In PathDump mode the VLAN stack is
    /// removed from `frame` (as OVS does before the upper stack sees it).
    pub fn process(&mut self, frame: &mut Vec<u8>) -> Verdict {
        self.packets += 1;
        self.bytes += frame.len() as u64;
        let parsed = match parse(frame) {
            Ok(p) => p,
            Err(e) => {
                self.errors += 1;
                return Verdict::Drop(e);
            }
        };
        if self.mode == Mode::PathDump {
            self.pathdump_hook(&parsed);
            if !parsed.tags.is_empty() {
                // Strip in place; cannot fail after a successful parse.
                let _ = strip_vlans(frame);
            }
        }
        // Flow classification (EMC), then L2 on a miss — the vanilla
        // vSwitch fast path.
        if let Some(&port) = self.emc.get(&parsed.flow) {
            return Verdict::Forward(port);
        }
        let dst_mac: [u8; 6] = frame[0..6].try_into().expect("length checked in parse");
        match self.l2.get(&dst_mac) {
            Some(&port) => {
                self.emc.insert(parsed.flow, port);
                Verdict::Forward(port)
            }
            None => Verdict::Flood,
        }
    }

    /// The per-packet PathDump work: derive the per-path flow record key
    /// and update the trajectory memory (Figure 2's "create/update
    /// per-path flow record with link IDs").
    fn pathdump_hook(&mut self, parsed: &Parsed) {
        // DSCP bit 0 is the hop-parity bit; bits 1..6 hold the VL2 sample.
        let sample_bits = (parsed.dscp >> 1) & 0x1F;
        let dscp_sample = if sample_bits == 0 {
            None
        } else {
            Some(sample_bits - 1)
        };
        // Reuse the scratch key: zero allocations on the per-packet path.
        self.scratch.flow = parsed.flow;
        self.scratch.dscp_sample = dscp_sample;
        self.scratch.tags.clear();
        // Tags parse outermost-first; push order is innermost-first.
        self.scratch.tags.extend(parsed.tags.iter().rev().copied());
        self.memory
            .update_borrowed(&self.scratch, parsed.payload_len as u32, self.clock);
    }
}

/// A reusable batch of frames for throughput experiments, with per-frame
/// scratch buffers (modeling an NIC ring).
pub struct FrameBatch {
    originals: Vec<Vec<u8>>,
    scratch: Vec<BytesMut>,
}

impl FrameBatch {
    /// Builds a batch from frames.
    pub fn new(frames: Vec<Vec<u8>>) -> Self {
        let scratch = frames.iter().map(|f| BytesMut::from(&f[..])).collect();
        FrameBatch {
            originals: frames,
            scratch,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// Returns true if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// Total wire bytes in the batch.
    pub fn total_bytes(&self) -> u64 {
        self.originals.iter().map(|f| f.len() as u64).sum()
    }

    /// Runs every frame through the datapath once, restoring scratch
    /// buffers from the originals (so tag-stripping runs each time).
    /// Returns the number of successfully forwarded frames.
    pub fn run_once(&mut self, dp: &mut DataPath) -> usize {
        let mut ok = 0;
        for (orig, buf) in self.originals.iter().zip(self.scratch.iter_mut()) {
            buf.clear();
            buf.extend_from_slice(orig);
            // Process over a Vec view (strip needs Vec); reuse allocation.
            let mut v = std::mem::take(buf).to_vec();
            match dp.process(&mut v) {
                Verdict::Drop(_) => {}
                _ => ok += 1,
            }
            *buf = BytesMut::from(&v[..]);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::build_frame;
    use pathdump_topology::{FlowId, Ip};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn vanilla_forwards_without_touching_tags() {
        let mut dp = DataPath::new(Mode::Vanilla);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 7);
        let mut f = build_frame(&flow(1), &[100, 200], 3, 64);
        let before = f.clone();
        assert_eq!(dp.process(&mut f), Verdict::Forward(7));
        assert_eq!(f, before, "vanilla mode must not modify the frame");
        assert_eq!(dp.memory.len(), 0, "no trajectory state in vanilla mode");
    }

    #[test]
    fn pathdump_strips_and_records() {
        let mut dp = DataPath::new(Mode::PathDump);
        dp.learn([0x02, 0, 0, 0, 0, 0x01], 3);
        let mut f = build_frame(&flow(1), &[100, 200], 0, 64);
        let tagged_len = f.len();
        assert_eq!(dp.process(&mut f), Verdict::Forward(3));
        assert_eq!(f.len(), tagged_len - 8, "two tags stripped");
        assert_eq!(dp.memory.len(), 1);
        // Push order: innermost tag first (tags parse outermost-first).
        let key = MemKey {
            flow: flow(1),
            dscp_sample: None,
            tags: vec![200, 100],
        };
        assert_eq!(dp.memory.peek(&key), Some((64, 1)));
    }

    #[test]
    fn per_path_aggregation_in_memory() {
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..5 {
            let mut f = build_frame(&flow(9), &[42], 0, 100);
            dp.process(&mut f);
        }
        for _ in 0..3 {
            let mut f = build_frame(&flow(9), &[43], 0, 100);
            dp.process(&mut f);
        }
        assert_eq!(dp.memory.len(), 2, "two paths, two records");
        let k42 = MemKey {
            flow: flow(9),
            dscp_sample: None,
            tags: vec![42],
        };
        assert_eq!(dp.memory.peek(&k42), Some((500, 5)));
    }

    #[test]
    fn dscp_sample_decoded() {
        let mut dp = DataPath::new(Mode::PathDump);
        // DSCP bits: sample value 3 stored as (3+1)<<1 = 8.
        let mut f = build_frame(&flow(2), &[], (3 + 1) << 1, 10);
        dp.process(&mut f);
        let key = MemKey {
            flow: flow(2),
            dscp_sample: Some(3),
            tags: vec![],
        };
        assert!(dp.memory.peek(&key).is_some());
    }

    #[test]
    fn unknown_mac_floods_and_errors_counted() {
        let mut dp = DataPath::new(Mode::PathDump);
        let mut f = build_frame(&flow(3), &[], 0, 10);
        assert_eq!(dp.process(&mut f), Verdict::Flood);
        let mut junk = vec![0u8; 6];
        assert!(matches!(dp.process(&mut junk), Verdict::Drop(_)));
        assert_eq!(dp.errors, 1);
        assert_eq!(dp.packets, 2);
    }

    #[test]
    fn batch_replays_consistently() {
        let frames: Vec<Vec<u8>> = (0..50)
            .map(|i| build_frame(&flow(i), &[i % 4096], 0, 200))
            .collect();
        let mut batch = FrameBatch::new(frames);
        let mut dp = DataPath::new(Mode::PathDump);
        for _ in 0..3 {
            assert_eq!(batch.run_once(&mut dp), 50);
        }
        assert_eq!(dp.packets, 150);
        assert_eq!(dp.memory.len(), 50, "50 distinct flow-path records");
        let key = MemKey {
            flow: flow(0),
            dscp_sample: None,
            tags: vec![0],
        };
        assert_eq!(dp.memory.peek(&key), Some((600, 3)), "3 passes counted");
    }
}
