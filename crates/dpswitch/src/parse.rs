//! Raw packet parsing and synthesis: Ethernet, stacked 802.1Q VLAN tags,
//! IPv4, TCP/UDP — written from scratch on byte slices.
//!
//! This is the wire format the Figure 13 datapath processes: real frames
//! with 1–2 (or, on punted paths, 3) VLAN tags carrying CherryPick link
//! IDs, and a DSCP field in the IPv4 TOS byte.

use pathdump_topology::{FlowId, Ip, Protocol};

/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethertype for 802.1Q VLAN tags (also used for inner QinQ tags here).
pub const ETHERTYPE_VLAN: u16 = 0x8100;

/// Ethernet header length.
pub const ETH_LEN: usize = 14;
/// Bytes per VLAN tag.
pub const VLAN_LEN: usize = 4;
/// IPv4 header length (no options).
pub const IPV4_LEN: usize = 20;
/// TCP header length (no options).
pub const TCP_LEN: usize = 20;

/// Parse errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Frame shorter than the headers it declares.
    Truncated,
    /// Not an IPv4 packet under the VLAN stack.
    NotIpv4,
    /// IPv4 header with options (unsupported by this fast path).
    IpOptions,
    /// More VLAN tags than the parser supports (the ASIC limit analogue).
    TooManyTags,
}

/// Maximum VLAN tags the fast path parses (QinQ hardware limit analogue is
/// enforced by the caller; the parser itself reads up to 4).
pub const MAX_TAGS: usize = 4;

/// A parsed packet view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Parsed {
    /// VLAN IDs from outermost to innermost.
    pub tags: Vec<u16>,
    /// DSCP (upper 6 bits of the IPv4 TOS byte).
    pub dscp: u8,
    /// The 5-tuple.
    pub flow: FlowId,
    /// Offset where the IPv4 header starts.
    pub ip_offset: usize,
    /// L4 payload bytes.
    pub payload_len: usize,
}

impl Parsed {
    /// An empty parse scratch, for reuse with [`parse_into`] (the tag
    /// vector's capacity survives across frames, so steady-state parsing
    /// performs no heap allocation).
    pub fn scratch() -> Self {
        Parsed {
            tags: Vec::with_capacity(MAX_TAGS),
            dscp: 0,
            flow: FlowId::tcp(Ip(0), 0, Ip(0), 0),
            ip_offset: 0,
            payload_len: 0,
        }
    }
}

/// Parses an Ethernet frame.
pub fn parse(frame: &[u8]) -> Result<Parsed, ParseError> {
    let mut out = Parsed::scratch();
    parse_into(frame, &mut out)?;
    Ok(out)
}

/// Parses an Ethernet frame into a reusable [`Parsed`] scratch — the
/// allocation-free fast path ([`parse`] is a convenience wrapper). On
/// error `out` is left in an unspecified (but valid) state.
pub fn parse_into(frame: &[u8], out: &mut Parsed) -> Result<(), ParseError> {
    if frame.len() < ETH_LEN {
        return Err(ParseError::Truncated);
    }
    out.tags.clear();
    // Fast classification of the dominant shapes: one big-endian u64 load
    // over bytes 12..20 captures the outer EtherType and — when tagged —
    // the TCI plus inner EtherType in a single bounds check, so the 0- and
    // 1-tag frames resolve without the VLAN-stack walk. Everything else
    // (deeper stacks, frames too short for the 8-byte window, non-IPv4)
    // falls through to the generic walk with identical error semantics.
    if frame.len() >= 20 {
        let mut w8 = [0u8; 8];
        w8.copy_from_slice(&frame[12..20]);
        let w = u64::from_be_bytes(w8);
        let et0 = (w >> 48) as u16;
        if et0 == ETHERTYPE_IPV4 {
            return parse_ip(frame, ETH_LEN, out);
        }
        if et0 == ETHERTYPE_VLAN && (w >> 16) as u16 == ETHERTYPE_IPV4 {
            out.tags.push((w >> 32) as u16 & 0x0FFF);
            return parse_ip(frame, ETH_LEN + VLAN_LEN, out);
        }
    }
    let mut off = 12; // skip MACs
    let tags = &mut out.tags;
    let mut ethertype = u16::from_be_bytes([frame[off], frame[off + 1]]);
    off += 2;
    while ethertype == ETHERTYPE_VLAN {
        if tags.len() >= MAX_TAGS {
            return Err(ParseError::TooManyTags);
        }
        if frame.len() < off + VLAN_LEN {
            return Err(ParseError::Truncated);
        }
        let tci = u16::from_be_bytes([frame[off], frame[off + 1]]);
        tags.push(tci & 0x0FFF);
        ethertype = u16::from_be_bytes([frame[off + 2], frame[off + 3]]);
        off += VLAN_LEN;
    }
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseError::NotIpv4);
    }
    parse_ip(frame, off, out)
}

/// Parses the IPv4 + L4 headers starting at `off` into `out` (the tag
/// stack must already be in `out.tags`). Shared tail of the u64 fast
/// classification and the generic VLAN walk in [`parse_into`].
#[inline]
fn parse_ip(frame: &[u8], off: usize, out: &mut Parsed) -> Result<(), ParseError> {
    if frame.len() < off + IPV4_LEN {
        return Err(ParseError::Truncated);
    }
    let ip = &frame[off..];
    let ihl = (ip[0] & 0x0F) as usize * 4;
    if ihl != IPV4_LEN {
        return Err(ParseError::IpOptions);
    }
    let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if frame.len() < off + total_len || total_len < IPV4_LEN {
        return Err(ParseError::Truncated);
    }
    let dscp = ip[1] >> 2;
    let proto = Protocol::from_number(ip[9]);
    let src_ip = Ip(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
    let dst_ip = Ip(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
    let l4 = &ip[IPV4_LEN..total_len];
    let (src_port, dst_port, l4_hdr) = match proto {
        Protocol::Tcp => {
            if l4.len() < TCP_LEN {
                return Err(ParseError::Truncated);
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                TCP_LEN,
            )
        }
        Protocol::Udp => {
            if l4.len() < 8 {
                return Err(ParseError::Truncated);
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                8,
            )
        }
        Protocol::Other(_) => (0, 0, 0),
    };
    out.dscp = dscp;
    out.flow = FlowId {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
    };
    out.ip_offset = off;
    out.payload_len = total_len - IPV4_LEN - l4_hdr;
    Ok(())
}

/// Builds a TCP frame with the given VLAN stack, DSCP, and payload size.
///
/// # Panics
///
/// Panics if a VLAN ID exceeds 12 bits or sizes overflow a u16.
pub fn build_frame(flow: &FlowId, tags: &[u16], dscp: u8, payload_len: usize) -> Vec<u8> {
    assert!(tags.iter().all(|&t| t < 4096), "VLAN IDs are 12-bit");
    let ip_total = IPV4_LEN + TCP_LEN + payload_len;
    assert!(ip_total <= u16::MAX as usize);
    let mut f = Vec::with_capacity(ETH_LEN + tags.len() * VLAN_LEN + ip_total);
    // MACs (synthetic).
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
    // The VLAN stack: each tag is (ethertype=0x8100, tci); the final
    // ethertype announces IPv4.
    for &t in tags {
        f.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
        f.extend_from_slice(&t.to_be_bytes());
    }
    f.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    // IPv4 header.
    let mut ip = [0u8; IPV4_LEN];
    ip[0] = 0x45;
    ip[1] = dscp << 2;
    ip[2..4].copy_from_slice(&(ip_total as u16).to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = flow.proto.number();
    ip[12..16].copy_from_slice(&flow.src_ip.0.to_be_bytes());
    ip[16..20].copy_from_slice(&flow.dst_ip.0.to_be_bytes());
    let csum = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());
    f.extend_from_slice(&ip);
    // TCP header.
    let mut tcp = [0u8; TCP_LEN];
    tcp[0..2].copy_from_slice(&flow.src_port.to_be_bytes());
    tcp[2..4].copy_from_slice(&flow.dst_port.to_be_bytes());
    tcp[12] = 5 << 4; // data offset
    f.extend_from_slice(&tcp);
    f.resize(f.len() + payload_len, 0xAB);
    f
}

/// IPv4 header checksum (RFC 1071) over a 20-byte header with the checksum
/// field zeroed.
pub fn ipv4_checksum(header: &[u8; IPV4_LEN]) -> u16 {
    let mut sum = 0u32;
    for i in (0..IPV4_LEN).step_by(2) {
        if i == 10 {
            continue; // checksum field treated as zero
        }
        sum += u32::from(u16::from_be_bytes([header[i], header[i + 1]]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Strips the VLAN stack from a frame in place (the OVS pop-vlan action of
/// Figure 2); returns the number of tags removed and the new length.
pub fn strip_vlans(frame: &mut Vec<u8>) -> Result<usize, ParseError> {
    if frame.len() < ETH_LEN {
        return Err(ParseError::Truncated);
    }
    // Count the stack first, then remove it with a single memmove.
    let off = 12;
    let mut tags = 0usize;
    loop {
        let pos = off + tags * VLAN_LEN;
        if frame.len() < pos + 2 {
            return Err(ParseError::Truncated);
        }
        let ethertype = u16::from_be_bytes([frame[pos], frame[pos + 1]]);
        if ethertype != ETHERTYPE_VLAN {
            break;
        }
        tags += 1;
        if tags > MAX_TAGS {
            return Err(ParseError::TooManyTags);
        }
        if frame.len() < pos + VLAN_LEN + 2 {
            return Err(ParseError::Truncated);
        }
    }
    if tags > 0 {
        frame.drain(off..off + tags * VLAN_LEN);
    }
    Ok(tags)
}

/// Strips `tags` VLAN tags from an already-parsed frame in place by
/// relocating the 12-byte MAC header forward over the VLAN stack — the
/// zero-copy pop-vlan: a constant 12-byte `copy_within` instead of
/// memmoving the packet tail, and no length change to the buffer.
///
/// Returns the offset where the stripped frame now begins; the valid
/// frame is `&frame[offset..]`. Bytes before the offset are dead. With
/// `tags == 0` this is a no-op returning 0.
///
/// The caller must have parsed the frame and pass the tag count that
/// [`parse`] reported (the frame is known to hold `12 + 4*tags + 2`
/// header bytes at least).
pub fn strip_vlans_prefix(frame: &mut [u8], tags: usize) -> usize {
    let moved = tags * VLAN_LEN;
    if moved == 0 {
        return 0;
    }
    debug_assert!(frame.len() >= 12 + moved + 2, "caller parsed this frame");
    frame.copy_within(0..12, moved);
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), 40001, Ip::new(10, 2, 1, 2), 80)
    }

    #[test]
    fn roundtrip_no_tags() {
        let f = build_frame(&flow(), &[], 0, 100);
        assert_eq!(f.len(), ETH_LEN + IPV4_LEN + TCP_LEN + 100);
        let p = parse(&f).unwrap();
        assert_eq!(p.flow, flow());
        assert!(p.tags.is_empty());
        assert_eq!(p.dscp, 0);
        assert_eq!(p.payload_len, 100);
        assert_eq!(p.ip_offset, ETH_LEN);
    }

    #[test]
    fn roundtrip_with_tags_and_dscp() {
        let f = build_frame(&flow(), &[123, 4095], 0x2B, 64);
        let p = parse(&f).unwrap();
        assert_eq!(p.tags, vec![123, 4095]);
        assert_eq!(p.dscp, 0x2B);
        assert_eq!(p.ip_offset, ETH_LEN + 2 * VLAN_LEN);
    }

    #[test]
    fn udp_ports_parsed() {
        let mut fl = flow();
        fl.proto = Protocol::Udp;
        // Build as TCP layout then fix proto: instead build manually.
        let mut f = build_frame(&fl, &[], 0, 50);
        // The builder always lays out 20 L4 bytes; for UDP the parser reads
        // only 8, so payload_len differs — just verify ports come through.
        let p = parse(&f).unwrap();
        assert_eq!(p.flow.src_port, 40001);
        assert_eq!(p.flow.dst_port, 80);
        assert_eq!(p.flow.proto, Protocol::Udp);
        f[23] = 200; // unknown protocol number
        let p = parse(&f).unwrap();
        assert_eq!(p.flow.proto, Protocol::Other(200));
        assert_eq!(p.flow.src_port, 0);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let f = build_frame(&flow(), &[7], 0, 40);
        for cut in 0..f.len() - 40 {
            // Any cut inside the headers must error, never panic.
            let _ = parse(&f[..cut]);
        }
        assert_eq!(parse(&f[..10]), Err(ParseError::Truncated));
    }

    #[test]
    fn non_ip_rejected() {
        let mut f = build_frame(&flow(), &[], 0, 10);
        f[12] = 0x86; // 0x86DD = IPv6
        f[13] = 0xDD;
        assert_eq!(parse(&f), Err(ParseError::NotIpv4));
    }

    #[test]
    fn ip_options_rejected() {
        let mut f = build_frame(&flow(), &[], 0, 10);
        f[ETH_LEN] = 0x46; // IHL = 6 words
        assert_eq!(parse(&f), Err(ParseError::IpOptions));
    }

    #[test]
    fn too_many_tags_rejected() {
        let f = build_frame(&flow(), &[1, 2, 3, 4, 5], 0, 10);
        assert_eq!(parse(&f), Err(ParseError::TooManyTags));
    }

    #[test]
    fn checksum_valid() {
        let f = build_frame(&flow(), &[], 0, 0);
        let mut hdr = [0u8; IPV4_LEN];
        hdr.copy_from_slice(&f[ETH_LEN..ETH_LEN + IPV4_LEN]);
        // Re-computing over the header with its checksum zeroed matches.
        let stored = u16::from_be_bytes([hdr[10], hdr[11]]);
        assert_eq!(ipv4_checksum(&hdr), stored);
    }

    #[test]
    fn strip_vlans_in_place() {
        let mut f = build_frame(&flow(), &[100, 200], 5, 32);
        let with_tags = f.len();
        let n = strip_vlans(&mut f).unwrap();
        assert_eq!(n, 2);
        assert_eq!(f.len(), with_tags - 2 * VLAN_LEN);
        let p = parse(&f).unwrap();
        assert!(p.tags.is_empty());
        assert_eq!(p.flow, flow());
        assert_eq!(p.dscp, 5, "DSCP survives the strip");
    }

    #[test]
    fn strip_vlans_noop_without_tags() {
        let mut f = build_frame(&flow(), &[], 0, 32);
        let len = f.len();
        assert_eq!(strip_vlans(&mut f).unwrap(), 0);
        assert_eq!(f.len(), len);
    }

    #[test]
    fn strip_vlans_prefix_matches_drain_strip() {
        for tags in [vec![], vec![100u16], vec![100, 200], vec![1, 2, 3]] {
            let mut by_drain = build_frame(&flow(), &tags, 5, 32);
            let mut by_prefix = by_drain.clone();
            strip_vlans(&mut by_drain).unwrap();
            let off = strip_vlans_prefix(&mut by_prefix, tags.len());
            assert_eq!(off, tags.len() * VLAN_LEN);
            assert_eq!(&by_prefix[off..], &by_drain[..], "tags={tags:?}");
        }
    }

    #[test]
    fn parse_into_reuses_scratch_across_frames() {
        let mut scratch = Parsed::scratch();
        let f1 = build_frame(&flow(), &[9, 10], 3, 16);
        parse_into(&f1, &mut scratch).unwrap();
        assert_eq!(scratch.tags, vec![9, 10]);
        assert_eq!(scratch.dscp, 3);
        // A second, untagged frame fully overwrites the previous parse.
        let f2 = build_frame(&flow(), &[], 0, 8);
        parse_into(&f2, &mut scratch).unwrap();
        assert!(scratch.tags.is_empty());
        assert_eq!(scratch.dscp, 0);
        assert_eq!(scratch.ip_offset, ETH_LEN);
        assert_eq!(parse(&f2).unwrap(), scratch);
    }
}
