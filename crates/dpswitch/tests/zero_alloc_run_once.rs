//! Pins the zero-copy contract with a counting allocator: once the
//! trajectory memory and EMC are warm, `FrameBatch::run_once` must drive
//! every frame through the full PathDump pipeline (parse, memory update,
//! in-place strip, classification) with **zero heap allocations** — the
//! ISSUE-4 acceptance gate behind the Figure 13 experiment.
//!
//! The counter is **per-thread** (const-initialized TLS, so reading it
//! never allocates): the libtest harness's main thread runs concurrently
//! with the test thread and allocates at its own pace, and a global
//! counter flakes on that noise.

use pathdump_dpswitch::{build_frame, DataPath, FrameBatch, Mode};
use pathdump_topology::{FlowId, Ip};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counts an allocating entry point against the current thread.
/// `try_with` so allocations during TLS teardown stay safe (uncounted).
fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_alloc_count() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

/// System allocator wrapper counting every allocating entry point.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_run_once_allocates_nothing() {
    // The Figure 13 mix: 0–2 tags, VL2 sample bits on some frames, a few
    // hundred distinct flows so both the memory and the EMC carry real
    // populations.
    let frames: Vec<Vec<u8>> = (0..512usize)
        .map(|i| {
            let flow = FlowId::tcp(
                Ip(0x0A00_0002 + (i as u32 % 256)),
                1024 + (i % 400) as u16,
                Ip(0x0A63_0002),
                80,
            );
            let tags: Vec<u16> = match i % 3 {
                0 => vec![],
                1 => vec![(i % 4096) as u16],
                _ => vec![(i % 4096) as u16, ((i * 7) % 4096) as u16],
            };
            let dscp = if i % 5 == 0 {
                (1 + (i % 30) as u8) << 1
            } else {
                0
            };
            build_frame(&flow, &tags, dscp, 64 + i % 128)
        })
        .collect();
    let mut dp = DataPath::new(Mode::PathDump);
    dp.learn([0x02, 0, 0, 0, 0, 0x01], 1);
    let mut batch = FrameBatch::new(frames);
    // Warm up: create every flow-path record and EMC entry (allocates).
    for _ in 0..2 {
        assert_eq!(batch.run_once(&mut dp), 512);
    }
    let before = thread_alloc_count();
    for _ in 0..5 {
        assert_eq!(batch.run_once(&mut dp), 512);
    }
    let after = thread_alloc_count();
    assert_eq!(
        after - before,
        0,
        "steady-state run_once must not touch the heap ({} allocations over 5 passes of 512 frames)",
        after - before
    );
    assert_eq!(dp.packets, 512 * 7);
    assert_eq!(dp.memory.len(), 512, "one record per flow-path");
}
