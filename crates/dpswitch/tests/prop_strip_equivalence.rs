//! Differential pin for the zero-copy datapath: the in-place
//! `DataPath::process(&mut [u8])` (MAC-relocation strip, borrowed-key
//! memory updates, reusable parse scratch) must behave bit-for-bit like
//! the retained Vec-based reference pipeline — `parse()` + owned-key
//! `TrajectoryMemory::update` + drain-based `strip_vlans` — across
//! arbitrary tag stacks, DSCP sample bits, and truncated / malformed /
//! non-IPv4 frames, in both modes:
//!
//! - identical verdicts (action and drop reason),
//! - identical post-strip frame bytes (the reference's drained Vec vs the
//!   in-place verdict span),
//! - identical `TrajectoryMemory` contents (every record's key, counts,
//!   and stime/etime) and packet/byte/error counters.
//!
//! Inputs are kept small: the vendored proptest stub does not shrink.
//!
//! The same suite pins the batch contract: `DataPath::process_batch` and
//! the ring-model `FrameBatch::run_once` must leave verdicts, post-strip
//! bytes, counters, and trajectory-memory state bit-identical to calling
//! `process` per frame, across the same malformed-input space.

use pathdump_dpswitch::{
    build_frame, parse, strip_vlans, Action, DataPath, FrameBatch, Mode, Verdict,
};
use pathdump_tib::{MemKey, TrajectoryMemory};
use pathdump_topology::{FlowId, Ip, Nanos, Protocol};
use proptest::prelude::*;
use std::collections::HashMap;

/// The seed datapath pipeline, retained as the reference: whole-frame
/// `Vec<u8>` processing, owned record keys, drain-based stripping.
struct RefDataPath {
    mode: Mode,
    l2: HashMap<[u8; 6], u16>,
    emc: HashMap<FlowId, u16>,
    memory: TrajectoryMemory,
    packets: u64,
    bytes: u64,
    errors: u64,
    clock: Nanos,
}

impl RefDataPath {
    fn new(mode: Mode) -> Self {
        RefDataPath {
            mode,
            l2: HashMap::new(),
            emc: HashMap::new(),
            memory: TrajectoryMemory::default(),
            packets: 0,
            bytes: 0,
            errors: 0,
            clock: Nanos::ZERO,
        }
    }

    fn process(&mut self, frame: &mut Vec<u8>) -> Action {
        self.packets += 1;
        self.bytes += frame.len() as u64;
        let parsed = match parse(frame) {
            Ok(p) => p,
            Err(e) => {
                self.errors += 1;
                return Action::Drop(e);
            }
        };
        if self.mode == Mode::PathDump {
            let sample_bits = (parsed.dscp >> 1) & 0x1F;
            let dscp_sample = if sample_bits == 0 {
                None
            } else {
                Some(sample_bits - 1)
            };
            let key = MemKey {
                flow: parsed.flow,
                dscp_sample,
                tags: parsed.tags.iter().rev().copied().collect(),
            };
            self.memory
                .update(key, parsed.payload_len as u32, self.clock);
            if !parsed.tags.is_empty() {
                let _ = strip_vlans(frame);
            }
        }
        if let Some(&port) = self.emc.get(&parsed.flow) {
            return Action::Forward(port);
        }
        let dst_mac: [u8; 6] = frame[0..6].try_into().expect("length checked in parse");
        match self.l2.get(&dst_mac) {
            Some(&port) => {
                self.emc.insert(parsed.flow, port);
                Action::Forward(port)
            }
            None => Action::Flood,
        }
    }
}

/// One generated frame: flow selectors, tag stack, DSCP byte, payload,
/// and a corruption to apply.
type FrameSpec = (u16, u8, Vec<u16>, u8, usize, u8, u16);

/// Builds the wire frame for a spec, including malformed shapes.
fn frame_of(spec: &FrameSpec) -> Vec<u8> {
    let (sport, proto_sel, tags, dscp, payload, corrupt, cut) = spec;
    let mut flow = FlowId::tcp(
        Ip::new(10, 0, 0, 2 + (*sport % 3) as u8),
        1024 + sport % 7,
        Ip::new(10, 1, 0, 2),
        80,
    );
    flow.proto = match proto_sel % 3 {
        0 => Protocol::Tcp,
        1 => Protocol::Udp,
        _ => Protocol::Other(200 + (proto_sel % 40)),
    };
    let mut f = build_frame(&flow, tags, dscp % 64, *payload);
    match corrupt % 8 {
        0..=3 => {} // well-formed
        4 => {
            // Truncate somewhere inside the frame.
            let keep = (*cut as usize) % (f.len() + 1);
            f.truncate(keep);
        }
        5 => {
            // Non-IPv4 ethertype under the (possibly empty) VLAN stack.
            let off = 12 + tags.len() * 4;
            f[off] = 0x86;
            f[off + 1] = 0xDD;
        }
        6 => {
            // IPv4 options (IHL = 6 words).
            f[14 + tags.len() * 4] = 0x46;
        }
        _ => {
            // Raw junk of arbitrary short length.
            f = (0..(*cut as usize % 40))
                .map(|i| (i as u8) ^ cut.to_le_bytes()[0])
                .collect();
        }
    }
    f
}

/// Asserts the two trajectory memories hold identical records.
fn assert_memories_equal(
    new: &TrajectoryMemory,
    reference: &TrajectoryMemory,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(new.len(), reference.len(), "record counts diverged");
    prop_assert_eq!(new.update_count(), reference.update_count());
    for key in reference.live_keys() {
        prop_assert_eq!(
            new.snapshot(&key),
            reference.snapshot(&key),
            "record diverged for key {:?}",
            key
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn in_place_datapath_matches_vec_reference(
        pathdump_mode in any::<bool>(),
        learn in any::<bool>(),
        specs in proptest::collection::vec(
            (
                0u16..40,
                0u8..=255,
                proptest::collection::vec(0u16..4096, 0..=5),
                0u8..=255,
                0usize..48,
                0u8..=255,
                0u16..2048,
            ),
            1..10,
        ),
    ) {
        let mode = if pathdump_mode { Mode::PathDump } else { Mode::Vanilla };
        let mut dp = DataPath::new(mode);
        let mut rp = RefDataPath::new(mode);
        if learn {
            dp.learn([0x02, 0, 0, 0, 0, 0x01], 9);
            rp.l2.insert([0x02, 0, 0, 0, 0, 0x01], 9);
        }
        for (i, spec) in specs.iter().enumerate() {
            let now = Nanos(1 + i as u64);
            dp.set_clock(now);
            rp.clock = now;
            let frame = frame_of(spec);
            let mut in_place = frame.clone();
            let mut by_vec = frame;
            let verdict: Verdict = dp.process(&mut in_place);
            let ref_action = rp.process(&mut by_vec);
            prop_assert_eq!(verdict.action, ref_action, "frame {}: {:?}", i, spec);
            // Post-strip bytes: the reference's drained Vec must equal the
            // in-place verdict span (for drops both are the input frame).
            prop_assert_eq!(
                verdict.frame(&in_place),
                &by_vec[..],
                "frame {}: post-strip bytes diverged ({:?})",
                i,
                spec
            );
            prop_assert_eq!(verdict.len, by_vec.len());
        }
        prop_assert_eq!(dp.packets, rp.packets);
        prop_assert_eq!(dp.bytes, rp.bytes);
        prop_assert_eq!(dp.errors, rp.errors);
        assert_memories_equal(&dp.memory, &rp.memory)?;
    }

    /// The two-phase batched pipeline (`process_batch`, staged memory
    /// replay, once-per-batch counter fold) against the per-frame
    /// `process` path, over arbitrary/truncated/malformed/multi-tag
    /// frames split into batches of varying size with a moving clock.
    #[test]
    fn batched_datapath_matches_per_frame(
        pathdump_mode in any::<bool>(),
        learn in any::<bool>(),
        batch_size in 1usize..6,
        specs in proptest::collection::vec(
            (
                0u16..40,
                0u8..=255,
                proptest::collection::vec(0u16..4096, 0..=5),
                0u8..=255,
                0usize..48,
                0u8..=255,
                0u16..2048,
            ),
            1..12,
        ),
    ) {
        let mode = if pathdump_mode { Mode::PathDump } else { Mode::Vanilla };
        let mut single = DataPath::new(mode);
        let mut batched = DataPath::new(mode);
        if learn {
            single.learn([0x02, 0, 0, 0, 0, 0x01], 9);
            batched.learn([0x02, 0, 0, 0, 0, 0x01], 9);
        }
        let mut verdicts: Vec<Verdict> = Vec::new();
        for (w, chunk) in specs.chunks(batch_size).enumerate() {
            let now = Nanos(1 + w as u64);
            single.set_clock(now);
            batched.set_clock(now);
            let frames: Vec<Vec<u8>> = chunk.iter().map(frame_of).collect();
            let mut by_frame = frames.clone();
            let mut by_batch = frames;
            let single_verdicts: Vec<Verdict> =
                by_frame.iter_mut().map(|f| single.process(f)).collect();
            batched.process_batch(&mut by_batch, &mut verdicts);
            prop_assert_eq!(&verdicts, &single_verdicts, "batch {}: verdicts", w);
            for (i, (bf, sf)) in by_batch.iter().zip(by_frame.iter()).enumerate() {
                prop_assert_eq!(
                    verdicts[i].frame(bf),
                    single_verdicts[i].frame(sf),
                    "batch {} frame {}: post-strip bytes diverged",
                    w,
                    i
                );
                // The whole buffers match too: both pipelines do the same
                // in-place MAC relocation.
                prop_assert_eq!(bf, sf);
            }
        }
        prop_assert_eq!(batched.packets, single.packets);
        prop_assert_eq!(batched.bytes, single.bytes);
        prop_assert_eq!(batched.errors, single.errors);
        assert_memories_equal(&batched.memory, &single.memory)?;
    }

    /// The ring model: two `FrameBatch::run_once` passes (12-byte MAC
    /// restore between passes) against per-frame processing of fresh
    /// frame clones, including drops and tagless frames whose buffers
    /// never move.
    #[test]
    fn frame_batch_ring_matches_fresh_per_frame(
        pathdump_mode in any::<bool>(),
        specs in proptest::collection::vec(
            (
                0u16..40,
                0u8..=255,
                proptest::collection::vec(0u16..4096, 0..=5),
                0u8..=255,
                0usize..48,
                0u8..=255,
                0u16..2048,
            ),
            1..10,
        ),
    ) {
        let mode = if pathdump_mode { Mode::PathDump } else { Mode::Vanilla };
        let mut ring_dp = DataPath::new(mode);
        let mut ref_dp = DataPath::new(mode);
        ring_dp.learn([0x02, 0, 0, 0, 0, 0x01], 9);
        ref_dp.learn([0x02, 0, 0, 0, 0, 0x01], 9);
        let frames: Vec<Vec<u8>> = specs.iter().map(frame_of).collect();
        let mut batch = FrameBatch::new(frames.clone());
        for pass in 0..2 {
            let ok = batch.run_once(&mut ring_dp);
            let mut ref_ok = 0usize;
            let mut ref_verdicts = Vec::new();
            for frame in &frames {
                let mut buf = frame.clone();
                let v = ref_dp.process(&mut buf);
                if !v.is_drop() {
                    ref_ok += 1;
                }
                ref_verdicts.push(v);
            }
            prop_assert_eq!(ok, ref_ok, "pass {}: forwarded counts", pass);
            prop_assert_eq!(batch.verdicts(), &ref_verdicts[..], "pass {}", pass);
        }
        prop_assert_eq!(ring_dp.packets, ref_dp.packets);
        prop_assert_eq!(ring_dp.bytes, ref_dp.bytes);
        prop_assert_eq!(ring_dp.errors, ref_dp.errors);
        assert_memories_equal(&ring_dp.memory, &ref_dp.memory)?;
    }
}
