//! [`Encode`]/[`Decode`] implementations for the shared topology types.
//!
//! Keeping these here (rather than in `pathdump-topology`) keeps the
//! foundation crate codec-free; everything that crosses the management
//! network — flow IDs, links, paths, time ranges — becomes wire-encodable
//! through this module.

use crate::codec::{Decode, Decoder, Encode, Encoder, WireError, WireResult};
use pathdump_topology::{
    FlowId, HostId, Ip, LinkDir, LinkPattern, Nanos, Path, PortNo, Protocol, SwitchId, TimeRange,
};

impl Encode for SwitchId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.0 as u64);
    }
}

impl Decode for SwitchId {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_varint()?;
        u16::try_from(v)
            .map(SwitchId)
            .map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for HostId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.0 as u64);
    }
}

impl Decode for HostId {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_varint()?;
        u32::try_from(v)
            .map(HostId)
            .map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for PortNo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.0);
    }
}

impl Decode for PortNo {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(PortNo(dec.get_u8()?))
    }
}

impl Encode for Ip {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.0);
    }
}

impl Decode for Ip {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Ip(dec.get_u32()?))
    }
}

impl Encode for Protocol {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.number());
    }
}

impl Decode for Protocol {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Protocol::from_number(dec.get_u8()?))
    }
}

impl Encode for FlowId {
    fn encode(&self, enc: &mut Encoder) {
        self.src_ip.encode(enc);
        self.dst_ip.encode(enc);
        enc.put_u16(self.src_port);
        enc.put_u16(self.dst_port);
        self.proto.encode(enc);
    }
}

impl Decode for FlowId {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(FlowId {
            src_ip: Ip::decode(dec)?,
            dst_ip: Ip::decode(dec)?,
            src_port: dec.get_u16()?,
            dst_port: dec.get_u16()?,
            proto: Protocol::decode(dec)?,
        })
    }
}

impl Encode for LinkDir {
    fn encode(&self, enc: &mut Encoder) {
        self.from.encode(enc);
        self.to.encode(enc);
    }
}

impl Decode for LinkDir {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(LinkDir {
            from: SwitchId::decode(dec)?,
            to: SwitchId::decode(dec)?,
        })
    }
}

impl Encode for LinkPattern {
    fn encode(&self, enc: &mut Encoder) {
        self.from.encode(enc);
        self.to.encode(enc);
    }
}

impl Decode for LinkPattern {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(LinkPattern {
            from: Option::<SwitchId>::decode(dec)?,
            to: Option::<SwitchId>::decode(dec)?,
        })
    }
}

impl Encode for Nanos {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.0);
    }
}

impl Decode for Nanos {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Nanos(dec.get_varint()?))
    }
}

impl Encode for TimeRange {
    fn encode(&self, enc: &mut Encoder) {
        self.start.encode(enc);
        self.end.encode(enc);
    }
}

impl Decode for TimeRange {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(TimeRange {
            start: Option::<Nanos>::decode(dec)?,
            end: Option::<Nanos>::decode(dec)?,
        })
    }
}

impl Encode for Path {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
}

impl Decode for Path {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Path(Vec::<SwitchId>::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn id_roundtrips() {
        rt(SwitchId(0));
        rt(SwitchId(u16::MAX));
        rt(HostId(12345));
        rt(PortNo(255));
        rt(Ip::new(10, 2, 3, 4));
        rt(Protocol::Tcp);
        rt(Protocol::Other(89));
    }

    #[test]
    fn flow_roundtrip_and_size() {
        let f = FlowId::tcp(Ip::new(10, 0, 0, 2), 40001, Ip::new(10, 3, 1, 2), 80);
        rt(f);
        // 5-tuple should encode compactly: 4+4 (ips as varint <= 5 each)
        // + 2 + 2 + 1 -- allow some slack but keep it tight.
        assert!(to_bytes(&f).len() <= 15, "flow too large on the wire");
    }

    #[test]
    fn link_and_pattern() {
        rt(LinkDir::new(SwitchId(3), SwitchId(9)));
        rt(LinkPattern::ANY);
        rt(LinkPattern::exact(SwitchId(1), SwitchId(2)));
        rt(LinkPattern::into(SwitchId(4)));
    }

    #[test]
    fn time_types() {
        rt(Nanos(0));
        rt(Nanos(u64::MAX));
        rt(TimeRange::ANY);
        rt(TimeRange::between(Nanos(5), Nanos(10)));
        rt(TimeRange::since(Nanos(7)));
    }

    #[test]
    fn path_roundtrip() {
        rt(Path::new(vec![]));
        rt(Path::new(vec![SwitchId(1), SwitchId(8), SwitchId(17)]));
    }

    #[test]
    fn vec_of_flows() {
        let flows: Vec<FlowId> = (0..100)
            .map(|i| FlowId::tcp(Ip::new(10, 0, 0, 2), i, Ip::new(10, 1, 0, 2), 80))
            .collect();
        rt(flows);
    }
}
