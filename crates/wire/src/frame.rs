//! Length-delimited frames with type tags and CRC-32 trailers.
//!
//! Every controller ↔ host message travels as one frame:
//!
//! ```text
//! +----------+----------+---------------+----------+
//! | len: u32 | typ: u16 | payload bytes | crc: u32 |
//! +----------+----------+---------------+----------+
//! ```
//!
//! `len` covers `typ + payload`; `crc` covers `typ + payload`. The 10 bytes
//! of `len`/`typ`/`crc` are [`FRAME_OVERHEAD`], counted in the traffic
//! accounting of Figures 11/12 the same way the paper's HTTP framing would
//! have been.

use crate::codec::{WireError, WireResult};
use crate::crc::crc32;

/// Fixed per-frame byte overhead (length, type, checksum).
pub const FRAME_OVERHEAD: usize = 4 + 2 + 4;

/// A decoded frame: message type plus raw payload bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Application-level message type tag.
    pub typ: u16,
    /// Encoded payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    pub fn new(typ: u16, payload: Vec<u8>) -> Self {
        Frame { typ, payload }
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        FRAME_OVERHEAD + self.payload.len()
    }

    /// Serializes the frame.
    pub fn to_wire(&self) -> Vec<u8> {
        let body_len = 2 + self.payload.len();
        let mut out = Vec::with_capacity(4 + body_len + 4);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&self.typ.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses one frame from the front of `input`, returning it together
    /// with the number of bytes consumed.
    pub fn from_wire(input: &[u8]) -> WireResult<(Frame, usize)> {
        if input.len() < 4 {
            return Err(WireError::UnexpectedEof);
        }
        let body_len = u32::from_le_bytes(input[..4].try_into().unwrap()) as usize;
        if body_len < 2 {
            return Err(WireError::LengthOverrun);
        }
        let total = 4 + body_len + 4;
        if input.len() < total {
            return Err(WireError::UnexpectedEof);
        }
        let body = &input[4..4 + body_len];
        let crc_stored = u32::from_le_bytes(input[4 + body_len..total].try_into().unwrap());
        if crc32(body) != crc_stored {
            return Err(WireError::BadChecksum);
        }
        let typ = u16::from_le_bytes(body[..2].try_into().unwrap());
        Ok((
            Frame {
                typ,
                payload: body[2..].to_vec(),
            },
            total,
        ))
    }
}

/// Splits a byte stream into consecutive frames.
///
/// Returns the frames and fails if the stream ends mid-frame or a checksum
/// is bad.
pub fn split_stream(mut input: &[u8]) -> WireResult<Vec<Frame>> {
    let mut frames = Vec::new();
    while !input.is_empty() {
        let (f, used) = Frame::from_wire(input)?;
        frames.push(f);
        input = &input[used..];
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Frame::new(7, vec![1, 2, 3, 4, 5]);
        let wire = f.to_wire();
        assert_eq!(wire.len(), f.wire_len());
        let (back, used) = Frame::from_wire(&wire).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn empty_payload() {
        let f = Frame::new(0, vec![]);
        let wire = f.to_wire();
        assert_eq!(wire.len(), FRAME_OVERHEAD);
        let (back, _) = Frame::from_wire(&wire).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn corrupted_payload_detected() {
        let f = Frame::new(3, vec![9; 32]);
        let mut wire = f.to_wire();
        wire[10] ^= 0x01;
        assert_eq!(Frame::from_wire(&wire), Err(WireError::BadChecksum));
    }

    #[test]
    fn corrupted_type_detected() {
        let f = Frame::new(3, vec![9; 8]);
        let mut wire = f.to_wire();
        wire[4] ^= 0x80; // flip a bit in `typ`
        assert_eq!(Frame::from_wire(&wire), Err(WireError::BadChecksum));
    }

    #[test]
    fn truncated_frame_detected() {
        let f = Frame::new(3, vec![9; 8]);
        let wire = f.to_wire();
        for cut in 0..wire.len() {
            assert!(Frame::from_wire(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn stream_of_frames() {
        let a = Frame::new(1, vec![1]);
        let b = Frame::new(2, vec![2, 2]);
        let c = Frame::new(3, vec![]);
        let mut stream = Vec::new();
        stream.extend(a.to_wire());
        stream.extend(b.to_wire());
        stream.extend(c.to_wire());
        let frames = split_stream(&stream).unwrap();
        assert_eq!(frames, vec![a, b, c]);
        assert!(split_stream(&stream[..stream.len() - 1]).is_err());
    }
}
