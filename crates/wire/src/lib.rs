//! Compact binary wire format for controller ↔ host messages.
//!
//! The paper exchanges queries and responses between the controller and the
//! PathDump agents over a Flask REST channel (§3). This reproduction replaces
//! that channel with an in-process message bus, but still **serializes every
//! message** through this codec so that the traffic volumes reported for
//! Figures 11 and 12 are measured from real encoded bytes rather than
//! estimated.
//!
//! The format is deliberately simple: little-endian fixed-width integers,
//! LEB128 varints for counts, zig-zag for signed values, and length-prefixed
//! frames with a CRC-32 trailer.

pub mod codec;
pub mod crc;
pub mod frame;
pub mod types;

pub use codec::{Decode, Decoder, Encode, Encoder, WireError, WireResult};
pub use frame::{Frame, FRAME_OVERHEAD};

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> WireResult<T> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// The encoded size of a value, in bytes (what would go on the management
/// network for this payload).
pub fn encoded_len<T: Encode + ?Sized>(value: &T) -> usize {
    to_bytes(value).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_helpers() {
        let v: Vec<u32> = vec![1, 2, 3, 500];
        let bytes = to_bytes(&v);
        let back: Vec<u32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
        assert_eq!(encoded_len(&v), bytes.len());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xff);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }
}
