//! Compact binary wire format for controller ↔ host messages.
//!
//! The paper exchanges queries and responses between the controller and the
//! PathDump agents over a Flask REST channel (§3). This reproduction replaces
//! that channel with an in-process message bus, but still **serializes every
//! message** through this codec so that the traffic volumes reported for
//! Figures 11 and 12 are measured from real encoded bytes rather than
//! estimated.
//!
//! The format is deliberately simple: little-endian fixed-width integers,
//! LEB128 varints for counts, zig-zag for signed values, and length-prefixed
//! frames with a CRC-32 trailer.

pub mod codec;
pub mod crc;
pub mod frame;
pub mod types;

pub use codec::{Decode, Decoder, Encode, Encoder, WireError, WireResult};
pub use frame::{Frame, FRAME_OVERHEAD};

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Encodes a value into a caller-provided buffer, appending after its
/// current contents. The streaming counterpart of [`to_bytes`]: batch
/// encoders (snapshots, frame assembly) reuse one buffer across values
/// instead of materializing a `Vec` per value.
pub fn encode_into<T: Encode + ?Sized>(value: &T, out: &mut Vec<u8>) {
    let mut enc = Encoder::from_vec(std::mem::take(out));
    value.encode(&mut enc);
    *out = enc.into_bytes();
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> WireResult<T> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// The encoded size of a value, in bytes (what would go on the management
/// network for this payload).
pub fn encoded_len<T: Encode + ?Sized>(value: &T) -> usize {
    to_bytes(value).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_helpers() {
        let v: Vec<u32> = vec![1, 2, 3, 500];
        let bytes = to_bytes(&v);
        let back: Vec<u32> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
        assert_eq!(encoded_len(&v), bytes.len());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0xff);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn encode_into_appends_and_matches_to_bytes() {
        let v: Vec<u32> = vec![9, 10, 11];
        let mut buf = vec![0xAA, 0xBB];
        encode_into(&v, &mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB], "existing contents preserved");
        assert_eq!(&buf[2..], &to_bytes(&v)[..], "same wire bytes appended");
        // Reuse without reallocation: capacity carries over.
        let cap = buf.capacity();
        buf.clear();
        encode_into(&42u64, &mut buf);
        assert_eq!(buf, to_bytes(&42u64));
        assert_eq!(buf.capacity(), cap, "buffer was reused, not replaced");
    }
}
