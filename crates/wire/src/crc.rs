//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Frames carry a CRC-32 trailer so corrupted management-channel messages
//! are detected rather than misparsed. Implemented from scratch (no external
//! crates), reflected form, polynomial `0xEDB88320`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// Computes the CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 state, for hashing a message in pieces.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a new computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalizes and returns the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"some frame payload";
        let good = crc32(data);
        let mut bad = data.to_vec();
        bad[3] ^= 0x10;
        assert_ne!(crc32(&bad), good);
    }
}
