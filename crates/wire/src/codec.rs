//! Encoder/decoder primitives and the [`Encode`]/[`Decode`] traits.

use std::fmt;

/// Errors produced while decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An enum discriminant or tag byte had no defined meaning.
    InvalidTag(u32),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// Input remained after the top-level value was decoded.
    TrailingBytes(usize),
    /// A declared length exceeded the remaining input (corrupt frame).
    LengthOverrun,
    /// Frame checksum mismatch.
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::InvalidTag(t) => write!(f, "invalid tag {t}"),
            WireError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            WireError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::LengthOverrun => write!(f, "declared length exceeds input"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

/// Growable output buffer with primitive write operations.
#[derive(Default, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, appending after its current contents —
    /// the streaming path: callers keep one buffer across encodes instead
    /// of allocating a fresh `Vec` per value.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Encoder { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a zig-zag-encoded signed varint.
    pub fn put_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Writes length-prefixed bytes.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_varint(data.len() as u64);
        self.put_raw(data);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Borrowing reader with primitive read operations.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over a byte slice.
    pub fn new(input: &'a [u8]) -> Self {
        Decoder { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an IEEE-754 f64.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> WireResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a zig-zag-encoded signed varint.
    pub fn get_signed(&mut self) -> WireResult<i64> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads length-prefixed bytes.
    pub fn get_bytes(&mut self) -> WireResult<&'a [u8]> {
        let n = self.get_varint()? as usize;
        if n > self.remaining() {
            return Err(WireError::LengthOverrun);
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> WireResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a declared collection length, bounding it by the remaining
    /// input so corrupt lengths cannot trigger huge allocations.
    pub fn get_len(&mut self) -> WireResult<usize> {
        let n = self.get_varint()? as usize;
        // Every element needs at least one byte on the wire.
        if n > self.remaining() {
            return Err(WireError::LengthOverrun);
        }
        Ok(n)
    }
}

/// Types that can serialize themselves onto an [`Encoder`].
pub trait Encode {
    /// Appends the wire representation of `self`.
    fn encode(&self, enc: &mut Encoder);
}

/// Types that can deserialize themselves from a [`Decoder`].
pub trait Decode: Sized {
    /// Reads one value.
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self>;
}

// --- implementations for primitives and std containers ---

impl Encode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::InvalidTag(t as u32)),
        }
    }
}

impl Encode for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(*self as u64);
    }
}

impl Decode for u16 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_varint()?;
        u16::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(*self as u64);
    }
}

impl Decode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_varint()?;
        u32::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(*self);
    }
}

impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_varint()
    }
}

impl Encode for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(*self as u64);
    }
}

impl Decode for usize {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let v = dec.get_varint()?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

impl Encode for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_signed(*self);
    }
}

impl Decode for i64 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_signed()
    }
}

impl Encode for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_f64()
    }
}

impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(dec.get_str()?.to_owned())
    }
}

impl Encode for str {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            t => Err(WireError::InvalidTag(t as u32)),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let n = dec.get_len()?;
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(T::decode(dec)?);
        }
        Ok(v)
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl<T: Encode> Encode for &T {
    fn encode(&self, enc: &mut Encoder) {
        (*self).encode(enc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = crate::to_bytes(&v);
        let back: T = crate::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            rt(v);
        }
    }

    #[test]
    fn varint_sizes() {
        let mut e = Encoder::new();
        e.put_varint(127);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.put_varint(128);
        assert_eq!(e.len(), 2);
        let mut e = Encoder::new();
        e.put_varint(u64::MAX);
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn signed_zigzag() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            rt(v);
        }
        // Small magnitudes stay small on the wire.
        let mut e = Encoder::new();
        e.put_signed(-1);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes: overflow.
        let bytes = [0x80u8; 11];
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn strings_and_bytes() {
        rt(String::from("hello, 世界"));
        rt(String::new());
        let mut e = Encoder::new();
        e.put_bytes(b"abc");
        let mut d = Decoder::new(e.bytes());
        assert_eq!(d.get_bytes().unwrap(), b"abc");
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        assert_eq!(from_bad_str(&bytes), Err(WireError::InvalidUtf8));
    }

    fn from_bad_str(bytes: &[u8]) -> WireResult<String> {
        crate::from_bytes::<String>(bytes)
    }

    #[test]
    fn containers() {
        rt(Some(42u32));
        rt(Option::<u32>::None);
        rt(vec![1u64, 2, 3]);
        rt(Vec::<u64>::new());
        rt((7u32, String::from("x")));
        rt((1u8, 2u16, 3u64));
        rt(vec![(1u32, 2u32), (3, 4)]);
    }

    #[test]
    fn corrupt_length_rejected() {
        // A vec claiming 1000 elements but with 2 bytes of payload.
        let mut e = Encoder::new();
        e.put_varint(1000);
        e.put_u8(1);
        e.put_u8(2);
        let r: WireResult<Vec<u32>> = crate::from_bytes(&e.into_bytes());
        assert_eq!(r, Err(WireError::LengthOverrun));
    }

    #[test]
    fn eof_detected() {
        let r: WireResult<u32> = crate::from_bytes(&[]);
        assert_eq!(r, Err(WireError::UnexpectedEof));
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.get_u32(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn bool_strictness() {
        let r: WireResult<bool> = crate::from_bytes(&[2]);
        assert_eq!(r, Err(WireError::InvalidTag(2)));
    }

    #[test]
    fn fixed_width_endianness() {
        let mut e = Encoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.bytes(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0f64, -1.5, std::f64::consts::PI, f64::MAX] {
            rt(v);
        }
    }
}
