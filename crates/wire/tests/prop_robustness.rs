//! Decoder robustness: arbitrary input bytes must produce `Ok` or a clean
//! `Err` — never a panic, never an oversized allocation.

use pathdump_wire::{from_bytes, Frame};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_primitives(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = from_bytes::<u64>(&data);
        let _ = from_bytes::<String>(&data);
        let _ = from_bytes::<Vec<u32>>(&data);
        let _ = from_bytes::<Vec<(u64, u64)>>(&data);
        let _ = from_bytes::<Option<Vec<u16>>>(&data);
    }

    #[test]
    fn arbitrary_bytes_never_panic_domain_types(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        use pathdump_topology::{FlowId, LinkPattern, Path, TimeRange};
        let _ = from_bytes::<FlowId>(&data);
        let _ = from_bytes::<Path>(&data);
        let _ = from_bytes::<LinkPattern>(&data);
        let _ = from_bytes::<TimeRange>(&data);
        let _ = from_bytes::<Vec<Path>>(&data);
    }

    #[test]
    fn arbitrary_bytes_never_panic_frames(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::from_wire(&data);
        let _ = pathdump_wire::frame::split_stream(&data);
    }

    /// Corrupting any single byte of a valid frame is always detected
    /// (checksum) or yields a clean parse result — never a wrong payload
    /// accepted silently with the same type tag and length.
    #[test]
    fn single_byte_corruption_detected(
        typ in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let f = Frame::new(typ, payload);
        let mut wire = f.to_wire();
        let idx = flip_at % wire.len();
        wire[idx] ^= 1 << flip_bit;
        if let Ok((decoded, _)) = Frame::from_wire(&wire) {
            // A flip in the length prefix can re-frame the bytes; the
            // CRC over the new extent must then have matched by
            // construction impossibility — so the only acceptable Ok is
            // the original frame (flip was in trailing slack: none here).
            prop_assert_eq!(decoded, f, "corruption accepted silently");
        }
    }

    /// Every proper prefix of a valid frame fails to parse cleanly: a
    /// truncated frame is never accepted (full or re-framed) and never
    /// panics — the length prefix promises bytes the input doesn't have.
    #[test]
    fn truncation_never_accepted(
        typ in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_sel in any::<usize>(),
    ) {
        let wire = Frame::new(typ, payload).to_wire();
        let cut = cut_sel % wire.len(); // strictly shorter than the frame
        prop_assert!(Frame::from_wire(&wire[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte frame parsed", cut, wire.len());
        // (An empty stream is legitimately zero frames, not an error.)
        if cut > 0 {
            prop_assert!(pathdump_wire::frame::split_stream(&wire[..cut]).is_err());
        }
    }

    /// Corrupting specifically the length prefix (which the CRC does NOT
    /// cover) must still never mis-accept: a shrunk length re-frames the
    /// bytes and the CRC over the new extent fails; a grown length runs
    /// past the input and fails as truncation; and no length value causes
    /// a panic or an oversized allocation.
    #[test]
    fn length_field_corruption_never_misaccepts(
        typ in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        new_len in any::<u32>(),
    ) {
        let f = Frame::new(typ, payload);
        let mut wire = f.to_wire();
        wire[0..4].copy_from_slice(&new_len.to_le_bytes());
        if let Ok((decoded, used)) = Frame::from_wire(&wire) {
            // Only the original length can satisfy the CRC.
            prop_assert_eq!(&decoded, &f, "re-framed bytes accepted");
            prop_assert_eq!(used, wire.len());
        }
        // Trailing garbage after a corrupted length must not break the
        // stream splitter either.
        let mut stream = wire.clone();
        stream.extend_from_slice(&f.to_wire());
        let _ = pathdump_wire::frame::split_stream(&stream);
    }
}
