//! Query-engine equivalence: the bucketed/aggregate [`Tib`] — and the
//! tiered [`TieredTib`] under arbitrary insert/seal/evict interleavings —
//! must answer every Host API query identically to a naive linear scan
//! over the raw records, for arbitrary record sets, time ranges, link
//! patterns, and bucket widths (so bucket-boundary and lookback paths
//! are exercised).
//!
//! Inputs are kept deliberately small: the vendored proptest stub does
//! not shrink failures.

use pathdump_tib::{Tib, TibRead, TibRecord, TieredTib, VecWal};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn flow(sport: u16) -> FlowId {
    FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
}

/// A small pool of paths over switches 0..=5, including a loopy one
/// (routing-loop scenarios) that repeats a link and a switch.
fn path_pool() -> Vec<Path> {
    [
        &[0u16, 2, 4][..],
        &[0, 3, 4],
        &[1, 2, 5],
        &[1, 3, 5],
        &[0, 2, 0, 2, 4], // loop: repeats link 0->2 and switches 0, 2
    ]
    .iter()
    .map(|ids| Path::new(ids.iter().map(|&i| SwitchId(i)).collect()))
    .collect()
}

/// One generated record: (sport, path index, t0, duration, bytes).
type RecTuple = (u16, usize, u64, u64, u64);

fn build(recs: &[RecTuple], width: u64) -> (Tib, Vec<TibRecord>) {
    let pool = path_pool();
    let mut tib = Tib::with_bucket_width(Nanos(width));
    let mut raw = Vec::new();
    for &(sport, pidx, t0, dur, bytes) in recs {
        let rec = TibRecord {
            flow: flow(1 + sport % 4),
            path: pool[pidx % pool.len()].clone(),
            stime: Nanos(t0 % 120),
            etime: Nanos(t0 % 120 + dur % 50),
            bytes: 1 + bytes % 1000,
            pkts: 1 + bytes % 7,
        };
        tib.insert(rec.clone());
        raw.push(rec);
    }
    (tib, raw)
}

/// The queries under test, over every interesting pattern/range combo.
fn patterns() -> Vec<LinkPattern> {
    let mut v = vec![LinkPattern::ANY];
    for s in 0..6 {
        v.push(LinkPattern::into(SwitchId(s)));
        v.push(LinkPattern::out_of(SwitchId(s)));
    }
    for (f, t) in [(0, 2), (2, 4), (1, 3), (3, 5), (4, 0)] {
        v.push(LinkPattern::exact(SwitchId(f), SwitchId(t)));
    }
    v
}

fn ranges(a: u64, b: u64) -> Vec<TimeRange> {
    let (a, b) = (a % 130, b % 130);
    let (lo, hi) = (a.min(b), a.max(b) + 1);
    vec![
        TimeRange::ANY,
        TimeRange::since(Nanos(lo)),
        TimeRange::until(Nanos(hi)),
        TimeRange::between(Nanos(lo), Nanos(hi)),
    ]
}

// --- naive linear-scan reference implementations ---

fn rec_matches(rec: &TibRecord, link: LinkPattern) -> bool {
    link.is_any() || rec.path.links().any(|l| link.matches(l))
}

fn ref_get_flows(raw: &[TibRecord], link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for rec in raw {
        if rec.overlaps(&range) && rec_matches(rec, link) && seen.insert(rec.flow) {
            out.push(rec.flow);
        }
    }
    out
}

fn ref_counts(
    raw: &[TibRecord],
    link: LinkPattern,
    range: TimeRange,
) -> HashMap<FlowId, (u64, u64)> {
    let mut out: HashMap<FlowId, (u64, u64)> = HashMap::new();
    for rec in raw {
        if rec.overlaps(&range) && rec_matches(rec, link) {
            let e = out.entry(rec.flow).or_insert((0, 0));
            e.0 += rec.bytes;
            e.1 += rec.pkts;
        }
    }
    out
}

fn ref_get_paths(raw: &[TibRecord], f: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for rec in raw {
        if rec.flow == f
            && rec.overlaps(&range)
            && rec_matches(rec, link)
            && seen.insert(rec.path.clone())
        {
            out.push(rec.path.clone());
        }
    }
    out
}

fn ref_get_count(raw: &[TibRecord], f: FlowId, range: TimeRange) -> (u64, u64) {
    let mut acc = (0, 0);
    for rec in raw.iter().filter(|r| r.flow == f && r.overlaps(&range)) {
        acc.0 += rec.bytes;
        acc.1 += rec.pkts;
    }
    acc
}

fn ref_get_duration(raw: &[TibRecord], f: FlowId, range: TimeRange) -> Nanos {
    let mut lo = Nanos::MAX;
    let mut hi = Nanos::ZERO;
    for rec in raw.iter().filter(|r| r.flow == f && r.overlaps(&range)) {
        let (s, e) = range.clamp(rec.stime, rec.etime).unwrap();
        lo = lo.min(s);
        hi = hi.max(e);
    }
    if lo >= hi {
        Nanos::ZERO
    } else {
        hi - lo
    }
}

fn ref_top_k(raw: &[TibRecord], k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
    let mut v: Vec<(u64, FlowId)> = ref_counts(raw, LinkPattern::ANY, range)
        .into_iter()
        .map(|(f, (b, _))| (b, f))
        .collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v.truncate(k);
    v
}

/// Boundary-interesting offsets within a bucket of width `w`: the first
/// stime of a bucket, one past it, the last stime of the bucket, and the
/// middle. Deduplicated so `w = 1` collapses to `{0}`.
fn boundary_offsets(w: u64) -> Vec<u64> {
    let mut v = vec![0, 1 % w, w - 1, w / 2];
    v.sort_unstable();
    v.dedup();
    v
}

/// Builds records whose stimes/etimes land exactly on bucket-width
/// multiples (and one off either side): the inputs the uniform generator
/// above almost never produces for widths > a few ns.
fn build_aligned(
    recs: &[(u16, usize, u64, usize, u64, usize, u64)],
    width: u64,
) -> (Tib, Vec<TibRecord>) {
    let pool = path_pool();
    let offs = boundary_offsets(width);
    let mut tib = Tib::with_bucket_width(Nanos(width));
    let mut raw = Vec::new();
    for &(sport, pidx, sbucket, soff, dbuckets, doff, bytes) in recs {
        let stime = sbucket * width + offs[soff % offs.len()];
        // Durations of whole buckets plus a boundary offset, including
        // zero-duration records (stime == etime).
        let etime = stime + dbuckets * width + offs[doff % offs.len()];
        let rec = TibRecord {
            flow: flow(1 + sport % 4),
            path: pool[pidx % pool.len()].clone(),
            stime: Nanos(stime),
            etime: Nanos(etime),
            bytes: 1 + bytes % 1000,
            pkts: 1 + bytes % 7,
        };
        tib.insert(rec.clone());
        raw.push(rec);
    }
    (tib, raw)
}

/// Ranges whose endpoints sit exactly on bucket edges (and one off either
/// side), plus ranges pinned to the exact stime/etime of a stored record —
/// the `TimeRange`-endpoint cases called out by the half-open-bucket /
/// closed-range convention documented in `tib.rs`.
fn aligned_ranges(
    (ab, ao): (u64, usize),
    (bb, bo): (u64, usize),
    width: u64,
    raw: &[TibRecord],
) -> Vec<TimeRange> {
    let offs = boundary_offsets(width);
    let x = ab * width + offs[ao % offs.len()];
    let y = bb * width + offs[bo % offs.len()];
    let (lo, hi) = (x.min(y), x.max(y));
    let mut v = vec![
        TimeRange::ANY,
        TimeRange::since(Nanos(lo)),
        TimeRange::until(Nanos(hi)),
        TimeRange::between(Nanos(lo), Nanos(hi)),
        TimeRange::between(Nanos(lo), Nanos(lo)),
    ];
    if let Some(rec) = raw.first() {
        v.push(TimeRange::between(rec.stime, rec.etime));
        v.push(TimeRange::between(rec.etime, rec.etime));
        v.push(TimeRange::since(rec.etime));
        if rec.stime > Nanos::ZERO {
            // Ends exactly one below the record's start: must exclude it.
            v.push(TimeRange::until(Nanos(rec.stime.0 - 1)));
        }
    }
    v
}

fn assert_all_queries_match<T: TibRead>(
    tib: &T,
    raw: &[TibRecord],
    range: TimeRange,
    k: usize,
    width: u64,
) -> Result<(), TestCaseError> {
    for link in patterns() {
        prop_assert_eq!(
            tib.get_flows(link, range),
            ref_get_flows(raw, link, range),
            "get_flows({:?}, {:?}) width={}",
            link,
            range,
            width
        );
        prop_assert_eq!(
            tib.link_flow_counts(link, range),
            ref_counts(raw, link, range),
            "link_flow_counts({:?}, {:?}) width={}",
            link,
            range,
            width
        );
    }
    for sport in 1..=4u16 {
        let f = flow(sport);
        prop_assert_eq!(
            tib.get_count(f, None, range),
            ref_get_count(raw, f, range),
            "get_count({:?}) width={}",
            range,
            width
        );
        prop_assert_eq!(
            tib.get_duration(f, None, range),
            ref_get_duration(raw, f, range),
            "get_duration({:?}) width={}",
            range,
            width
        );
        prop_assert_eq!(
            tib.get_paths(f, LinkPattern::ANY, range),
            ref_get_paths(raw, f, LinkPattern::ANY, range),
            "get_paths({:?}) width={}",
            range,
            width
        );
    }
    prop_assert_eq!(
        tib.top_k_flows(k, range),
        ref_top_k(raw, k, range),
        "top_k({}, {:?}) width={}",
        k,
        range,
        width
    );
    Ok(())
}

/// Per-case unique eviction directory (proptest cases share a thread).
static EVICT_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn evict_dir() -> std::path::PathBuf {
    let seq = EVICT_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pathdump-prop-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create evict dir");
    dir
}

/// Replays `recs` into a tiered store, applying the per-record action
/// (`0..=2` plain insert, `3` seal, `4` seal + evict all-but-one cold):
/// the arbitrary insert/seal/evict interleaving under test.
fn tiered_build(
    recs: &[RecTuple],
    acts: &[u8],
    width: u64,
    dir: &std::path::Path,
) -> (TieredTib, Vec<TibRecord>) {
    let pool = path_pool();
    let mut tib = TieredTib::with_bucket_width(Nanos(width));
    tib.attach_wal(Box::new(VecWal::new()));
    let mut raw = Vec::new();
    for (i, &(sport, pidx, t0, dur, bytes)) in recs.iter().enumerate() {
        let rec = TibRecord {
            flow: flow(1 + sport % 4),
            path: pool[pidx % pool.len()].clone(),
            stime: Nanos(t0 % 120),
            etime: Nanos(t0 % 120 + dur % 50),
            bytes: 1 + bytes % 1000,
            pkts: 1 + bytes % 7,
        };
        tib.insert(rec.clone());
        raw.push(rec);
        match acts.get(i).copied().unwrap_or(0) {
            3 => tib.seal(),
            4 => {
                tib.seal();
                tib.evict_cold(1, dir).expect("evict");
            }
            _ => {}
        }
    }
    (tib, raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucketed_engine_matches_linear_scan(
        recs in proptest::collection::vec(
            (0u16..6, 0usize..5, 0u64..140, 0u64..60, 0u64..2000), 0..25),
        width in 1u64..200,
        a in 0u64..140,
        b in 0u64..140,
        k in 0usize..8,
    ) {
        let (tib, raw) = build(&recs, width);
        for range in ranges(a, b) {
            assert_all_queries_match(&tib, &raw, range, k, width)?;
        }
    }

    /// The uniform generator above almost never lands a record or a range
    /// endpoint exactly on a bucket-width multiple once widths grow past a
    /// few ns. This case targets the boundary paths directly: records with
    /// stime/etime at exact `k·width` multiples (± 1), ranges whose
    /// endpoints sit on bucket edges or on a record's exact stime/etime,
    /// and zero-duration records — pinning the half-open bucket span
    /// `[k·w, (k+1)·w)` against the closed `TimeRange` convention.
    #[test]
    fn boundary_aligned_engine_matches_linear_scan(
        recs in proptest::collection::vec(
            (0u16..6, 0usize..5, 0u64..5, 0usize..4, 0u64..3, 0usize..4, 0u64..2000), 0..20),
        width_sel in 0usize..5,
        qa in (0u64..6, 0usize..4),
        qb in (0u64..6, 0usize..4),
        k in 0usize..8,
    ) {
        let width = [1u64, 2, 7, 32, 100][width_sel];
        let (tib, raw) = build_aligned(&recs, width);
        for range in aligned_ranges(qa, qb, width, &raw) {
            assert_all_queries_match(&tib, &raw, range, k, width)?;
        }
    }

    /// The tiered engine under arbitrary insert/seal/evict/query
    /// interleavings: queried mid-build (against the raw prefix — sealed
    /// and cold segments answering alongside a part-filled head) and at
    /// the end, it must be bit-identical to the linear-scan reference.
    /// Recovery equivalence (kill + snapshot/WAL replay) lives in
    /// `crash_recovery.rs`.
    #[test]
    fn tiered_engine_matches_linear_scan(
        recs in proptest::collection::vec(
            (0u16..6, 0usize..5, 0u64..140, 0u64..60, 0u64..2000), 0..25),
        acts in proptest::collection::vec(0u8..5, 25),
        width in 1u64..200,
        a in 0u64..140,
        b in 0u64..140,
        k in 0usize..8,
    ) {
        let dir = evict_dir();
        // Mid-build: stop at an action-derived prefix and query there.
        let mid = if recs.is_empty() { 0 } else { (a as usize) % recs.len() + 1 };
        let (tib_mid, raw_mid) = tiered_build(&recs[..mid], &acts, width, &dir);
        for range in ranges(a, b) {
            assert_all_queries_match(&tib_mid, &raw_mid, range, k, width)?;
        }
        // Full build (fresh store so eviction files don't collide).
        let dir2 = evict_dir();
        let (tib, raw) = tiered_build(&recs, &acts, width, &dir2);
        prop_assert_eq!(tib.records_vec(), raw.clone(), "insertion order");
        prop_assert_eq!(tib.len(), raw.len());
        for range in ranges(a, b) {
            assert_all_queries_match(&tib, &raw, range, k, width)?;
        }
        prop_assert_eq!(tib.read_failures(), 0);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
}
