//! Crash-recovery differential gate (blocking in CI).
//!
//! The durability contract under test: a host that dies mid-ingest loses
//! at most the unflushed WAL tail. Concretely, for a kill at an
//! **arbitrary byte offset** into the log — including mid-frame —
//! `TieredTib::recover(snapshot, wal_prefix)` must reproduce exactly the
//! records durable at that point: everything in the last checkpoint plus
//! every *fully framed* WAL append, in order, answering all queries
//! bit-identically to a linear-scan reference over that prefix.
//!
//! The asymmetry pinned here (and unit-tested below) is deliberate:
//! a torn WAL tail is an expected crash artifact and is tolerated, but a
//! truncated *snapshot* — or any WAL damage other than the tail — is
//! corruption and must be rejected loudly.

use pathdump_tib::wal::frame_record;
use pathdump_tib::{FileWal, Tib, TibRead, TibRecord, TieredTib, VecWal};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn flow(sport: u16) -> FlowId {
    FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
}

fn path_pool() -> Vec<Path> {
    vec![
        Path(vec![SwitchId(1), SwitchId(9), SwitchId(2)]),
        Path(vec![SwitchId(1), SwitchId(17), SwitchId(2)]),
        Path(vec![SwitchId(3)]),
    ]
}

/// One generated event: record shape + an action selector
/// (0..=1 insert, 2 insert+seal, 3 insert+checkpoint).
type Ev = (u16, usize, u64, u64, u64, u8);

fn record_of(ev: &Ev, pool: &[Path]) -> TibRecord {
    let &(sport, pidx, t0, dur, bytes, _) = ev;
    TibRecord {
        flow: flow(1 + sport % 5),
        path: pool[pidx % pool.len()].clone(),
        stime: Nanos(t0 % 100),
        etime: Nanos(t0 % 100 + dur % 40),
        bytes: 1 + bytes % 500,
        pkts: 1 + bytes % 5,
    }
}

/// Runs the ingest schedule, returning the last checkpoint's snapshot,
/// the full WAL contents at death, and the records each covers.
fn run_ingest(evs: &[Ev]) -> (Vec<u8>, Vec<u8>, Vec<TibRecord>, Vec<TibRecord>) {
    let pool = path_pool();
    let mut store = TieredTib::new();
    store.attach_wal(Box::new(VecWal::new()));
    // An empty store's checkpoint: recovery must work from t=0 too.
    let mut snapshot = Vec::new();
    store.checkpoint(&mut snapshot).expect("checkpoint");
    let mut in_snapshot = Vec::new();
    let mut in_wal = Vec::new();
    for ev in evs {
        let rec = record_of(ev, &pool);
        store.insert(rec.clone());
        in_wal.push(rec);
        match ev.5 % 4 {
            2 => store.seal(),
            3 => {
                snapshot.clear();
                store.checkpoint(&mut snapshot).expect("checkpoint");
                in_snapshot.append(&mut in_wal);
            }
            _ => {}
        }
    }
    let wal = store.wal_bytes().expect("wal bytes");
    (snapshot, wal, in_snapshot, in_wal)
}

/// Linear-scan reference answers over the durable prefix.
fn assert_matches_reference(recovered: &TieredTib, durable: &[TibRecord]) {
    let mut flat = Tib::new();
    for r in durable {
        flat.insert(r.clone());
    }
    assert_eq!(recovered.records_vec(), durable);
    let ranges = [
        TimeRange::ANY,
        TimeRange::between(Nanos(10), Nanos(70)),
        TimeRange::until(Nanos(40)),
    ];
    for range in ranges {
        assert_eq!(
            recovered.get_flows(LinkPattern::ANY, range),
            flat.get_flows(LinkPattern::ANY, range)
        );
        assert_eq!(recovered.top_k_flows(4, range), flat.top_k_flows(4, range));
        assert_eq!(
            recovered.link_flow_counts(LinkPattern::ANY, range),
            flat.link_flow_counts(LinkPattern::ANY, range)
        );
        for r in durable {
            assert_eq!(
                recovered.get_count(r.flow, None, range),
                flat.get_count(r.flow, None, range)
            );
            assert_eq!(
                recovered.get_paths(r.flow, LinkPattern::ANY, range),
                flat.get_paths(r.flow, LinkPattern::ANY, range)
            );
        }
    }
    if let Some(r) = durable.first() {
        assert_eq!(
            recovered.get_duration(r.flow, None, TimeRange::ANY),
            flat.get_duration(r.flow, None, TimeRange::ANY)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill the host at an arbitrary WAL byte offset — before, inside,
    /// or after any frame — and recover. The recovered store must hold
    /// exactly the durable records (snapshot + complete WAL frames) and
    /// answer every query like a flat reference over them.
    #[test]
    fn kill_at_any_wal_offset_recovers_durable_prefix(
        evs in proptest::collection::vec(
            (0u16..5, 0usize..3, 0u64..100, 0u64..40, 0u64..500, 0u8..8), 0..18),
        cut_sel in 0u64..10_000,
    ) {
        let (snapshot, wal, in_snapshot, in_wal) = run_ingest(&evs);
        // Frame-end offsets let us predict the durable WAL prefix.
        let mut ends = Vec::new();
        let mut off = 0usize;
        for r in &in_wal {
            off += frame_record(r).len();
            ends.push(off);
        }
        prop_assert_eq!(off, wal.len());

        let cut = (cut_sel as usize) % (wal.len() + 1);
        let (recovered, report) =
            TieredTib::recover(&snapshot, &wal[..cut]).expect("torn tail must recover");
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let durable_bytes = if complete == 0 { 0 } else { ends[complete - 1] };
        prop_assert_eq!(report.snapshot_records, in_snapshot.len());
        prop_assert_eq!(report.wal_records, complete);
        prop_assert_eq!(report.dropped_tail, cut - durable_bytes);

        let mut durable = in_snapshot.clone();
        durable.extend_from_slice(&in_wal[..complete]);
        assert_matches_reference(&recovered, &durable);
    }

    /// Every strict snapshot prefix must be rejected outright — partial
    /// snapshots are corruption, never silently-accepted data loss —
    /// even when a healthy WAL would paper over the damage.
    #[test]
    fn truncated_snapshot_never_recovers(
        evs in proptest::collection::vec(
            (0u16..5, 0usize..3, 0u64..100, 0u64..40, 0u64..500, 0u8..8), 1..10),
        cut_sel in 0u64..10_000,
    ) {
        let (snapshot, wal, _, _) = run_ingest(&evs);
        let cut = (cut_sel as usize) % snapshot.len();
        prop_assert!(TieredTib::recover(&snapshot[..cut], &wal).is_err(),
            "snapshot truncated to {cut}/{} bytes must be rejected", snapshot.len());
    }
}

/// The boundary-semantics distinction in one place: the same store, the
/// same crash, and the two artifacts treated oppositely — WAL tail
/// dropped and counted, snapshot truncation fatal.
#[test]
fn torn_wal_tolerated_truncated_snapshot_rejected() {
    let pool = path_pool();
    let mut store = TieredTib::new();
    store.attach_wal(Box::new(VecWal::new()));
    for i in 0..6u16 {
        store.insert(record_of(&(i, i as usize, i as u64 * 9, 5, 100, 0), &pool));
    }
    store.seal();
    let mut snapshot = Vec::new();
    store.checkpoint(&mut snapshot).expect("checkpoint");
    let tail_recs: Vec<TibRecord> = (6..9u16)
        .map(|i| record_of(&(i, i as usize, i as u64 * 9, 5, 100, 0), &pool))
        .collect();
    for r in &tail_recs {
        store.insert(r.clone());
    }
    let wal = store.wal_bytes().expect("wal bytes");

    // Mid-frame kill: last frame torn, first two replay, tail counted.
    let torn = wal.len() - 3;
    let (rec, report) = TieredTib::recover(&snapshot, &wal[..torn]).expect("recover");
    assert_eq!(report.snapshot_records, 6);
    assert_eq!(report.wal_records, 2);
    assert!(report.dropped_tail > 0);
    assert_eq!(rec.len(), 8);
    assert_eq!(&rec.records_vec()[6..], &tail_recs[..2]);

    // The same cut applied to the snapshot instead: hard error.
    assert!(TieredTib::recover(&snapshot[..snapshot.len() - 3], &wal).is_err());

    // Non-tail WAL damage (flipped payload byte) is corruption, not a
    // torn tail: replay must fail, not skip the frame.
    let mut corrupt = wal.clone();
    corrupt[8] ^= 0xFF;
    assert!(TieredTib::recover(&snapshot, &corrupt).is_err());
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> std::path::PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pathdump-crash-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// End-to-end with real files: ingest through a `FileWal`, "crash" by
/// dropping the store, chop the on-disk log mid-frame, recover from the
/// snapshot file + damaged log, and resume ingest on a fresh WAL.
#[test]
fn file_wal_crash_and_resume_round_trip() {
    let dir = temp_dir();
    let pool = path_pool();
    let wal_path = dir.join("host.wal");
    let snap_path = dir.join("host.tib3");

    let mut store = TieredTib::new();
    store.attach_wal(Box::new(FileWal::create(&wal_path).expect("create wal")));
    let recs: Vec<TibRecord> = (0..7u16)
        .map(|i| record_of(&(i, i as usize, i as u64 * 11, 6, 200, 0), &pool))
        .collect();
    for r in &recs[..4] {
        store.insert(r.clone());
    }
    store.seal();
    let mut snapshot = Vec::new();
    store.checkpoint(&mut snapshot).expect("checkpoint");
    std::fs::write(&snap_path, &snapshot).expect("write snapshot");
    assert_eq!(store.wal_len(), 0, "checkpoint resets the on-disk log");
    for r in &recs[4..] {
        store.insert(r.clone());
    }
    drop(store); // the crash

    // Tear the last frame on disk, then recover from the two files.
    let mut log = std::fs::read(&wal_path).expect("read wal");
    log.truncate(log.len() - 2);
    let snap = std::fs::read(&snap_path).expect("read snapshot");
    let (mut recovered, report) = TieredTib::recover(&snap, &log).expect("recover");
    assert_eq!(report.snapshot_records, 4);
    assert_eq!(report.wal_records, 2);
    assert!(report.dropped_tail > 0);
    assert_eq!(recovered.records_vec(), &recs[..6]);

    // Resume: re-attach a fresh WAL and keep ingesting.
    recovered.attach_wal(Box::new(FileWal::create(&wal_path).expect("recreate wal")));
    recovered.insert(recs[6].clone());
    assert_eq!(recovered.len(), 7);
    assert!(recovered.wal_len() > 0);
    assert_eq!(recovered.wal_errors(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// An empty WAL and an empty snapshot are both legitimate recovery
/// inputs (first boot, clean shutdown).
#[test]
fn recovery_from_clean_shutdown_and_first_boot() {
    let mut empty = Vec::new();
    TieredTib::new().checkpoint(&mut empty).expect("checkpoint");
    let (store, report) = TieredTib::recover(&empty, &[]).expect("first boot");
    assert!(store.is_empty());
    assert_eq!(report.snapshot_records + report.wal_records, 0);
    assert_eq!(report.dropped_tail, 0);
}
