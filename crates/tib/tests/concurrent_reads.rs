//! Lock-free-reader contract: queries proceed concurrently with ingest
//! and never observe a torn state.
//!
//! A [`TibReader`] snapshot is defined to be *exactly* the records sealed
//! by some prefix of the writer's seal sequence — never a partial
//! segment, never records out of order. With seal boundaries known in
//! advance, every answer a reader can legally produce is precomputable:
//! the threads below hammer snapshots while the writer ingests, seals,
//! and evicts, and every observed view must match one of the
//! precomputed boundary answers bit-for-bit. Views grabbed early must
//! keep answering unchanged after later seals and cold eviction
//! (including the lazy reload path under concurrency).

use pathdump_tib::{SealedView, Tib, TibRead, TibReader, TibRecord, TieredTib};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

fn flow(sport: u16) -> FlowId {
    FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
}

fn rec(i: usize) -> TibRecord {
    TibRecord {
        flow: flow(1 + (i % 7) as u16),
        path: Path(vec![SwitchId(1 + (i % 3) as u16), SwitchId(99)]),
        stime: Nanos(i as u64 * 3),
        etime: Nanos(i as u64 * 3 + 2),
        bytes: 100 + (i as u64 % 11) * 10,
        pkts: 1 + i as u64 % 4,
    }
}

/// The answers a consistent sealed view of `n` records must give.
#[derive(PartialEq, Debug)]
struct Expected {
    flows: Vec<FlowId>,
    top3: Vec<(u64, FlowId)>,
    counts: HashMap<FlowId, (u64, u64)>,
}

fn expected_at(recs: &[TibRecord]) -> Expected {
    let mut flat = Tib::new();
    for r in recs {
        flat.insert(r.clone());
    }
    Expected {
        flows: flat.get_flows(LinkPattern::ANY, TimeRange::ANY),
        top3: flat.top_k_flows(3, TimeRange::ANY),
        counts: flat.link_flow_counts(LinkPattern::ANY, TimeRange::ANY),
    }
}

fn check_view(view: &SealedView, expected: &HashMap<usize, Expected>) {
    let n = view.num_records();
    let want = expected
        .get(&n)
        .unwrap_or_else(|| panic!("torn view: {n} records is not a seal boundary"));
    let got = Expected {
        flows: view.get_flows(LinkPattern::ANY, TimeRange::ANY),
        top3: view.top_k_flows(3, TimeRange::ANY),
        counts: view.link_flow_counts(LinkPattern::ANY, TimeRange::ANY),
    };
    assert_eq!(&got, want, "view of {n} records diverged from reference");
}

const PHASES: usize = 8;
const PER_PHASE: usize = 40;
const READERS: usize = 4;

#[test]
fn readers_race_ingest_across_seals_and_eviction() {
    let all: Vec<TibRecord> = (0..PHASES * PER_PHASE).map(rec).collect();
    // Legal boundary answers: one per seal point (incl. the empty view).
    let expected: HashMap<usize, Expected> = (0..=PHASES)
        .map(|p| (p * PER_PHASE, expected_at(&all[..p * PER_PHASE])))
        .collect();

    let dir = std::env::temp_dir().join(format!("pathdump-concur-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create evict dir");

    let mut store = TieredTib::new();
    let reader = store.reader();
    let start = Barrier::new(READERS + 1);
    let done = AtomicBool::new(false);
    let snapshots_taken = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let r: TibReader = reader.clone();
            let (start, done, taken, expected) = (&start, &done, &snapshots_taken, &expected);
            s.spawn(move || {
                start.wait();
                let mut last_len = 0;
                while !done.load(Ordering::Acquire) {
                    let view = r.snapshot();
                    assert!(
                        view.num_records() >= last_len,
                        "sealed prefix went backwards"
                    );
                    last_len = view.num_records();
                    check_view(&view, expected);
                    taken.fetch_add(1, Ordering::Relaxed);
                }
                // One final look after the writer stops.
                check_view(&r.snapshot(), expected);
            });
        }

        let (start, done, expected) = (&start, &done, &expected);
        let all = &all;
        let dir = &dir;
        s.spawn(move || {
            start.wait();
            // A view held from before any ingest: must stay empty forever.
            let genesis = store.reader().snapshot();
            let mut held: Vec<(Arc<SealedView>, usize)> = vec![(genesis, 0)];
            for (p, chunk) in all.chunks(PER_PHASE).enumerate() {
                for r in chunk {
                    store.insert(r.clone());
                }
                store.seal();
                held.push((store.reader().snapshot(), (p + 1) * PER_PHASE));
                // Push older segments cold while readers are live: lazy
                // reload must serve them transparently.
                if p % 3 == 2 {
                    store.evict_cold(1, dir).expect("evict");
                }
            }
            // Every held view still answers as of its seal point, even
            // though segments behind it have since gone cold.
            for (view, len) in &held {
                assert_eq!(view.num_records(), *len);
                check_view(view, expected);
            }
            assert_eq!(store.len(), PHASES * PER_PHASE);
            assert_eq!(store.read_failures(), 0);
            done.store(true, Ordering::Release);
        });
    });

    assert!(
        snapshots_taken.load(Ordering::Relaxed) >= READERS,
        "readers made progress during ingest"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The writer-side store answers the full dataset (sealed + head) while
/// reader views answer the sealed prefix — the two stay consistent at
/// the moment of a seal.
#[test]
fn store_and_view_agree_at_seal_boundaries() {
    let mut store = TieredTib::new();
    let reader = store.reader();
    for p in 0..4 {
        for i in p * 10..(p + 1) * 10 {
            store.insert(rec(i));
        }
        store.seal();
        let view = reader.snapshot();
        assert_eq!(view.num_records(), store.num_records());
        assert_eq!(
            view.get_flows(LinkPattern::ANY, TimeRange::ANY),
            store.get_flows(LinkPattern::ANY, TimeRange::ANY)
        );
        assert_eq!(
            view.top_k_flows(5, TimeRange::ANY),
            store.top_k_flows(5, TimeRange::ANY)
        );
        assert_eq!(view.num_segments(), p + 1);
    }
}
