//! Per-host write-ahead log for the tiered TIB.
//!
//! Every [`TieredTib::insert`](crate::segment::TieredTib::insert) with a
//! WAL attached appends one frame *before* the record becomes queryable,
//! so a crash loses at most the unflushed tail: recovery loads the last
//! snapshot and replays the WAL over it
//! ([`TieredTib::recover`](crate::segment::TieredTib::recover)). After a
//! successful snapshot ([`checkpoint`](crate::segment::TieredTib::checkpoint))
//! the log is reset — it only ever holds the records inserted since.
//!
//! # Framing
//!
//! Frames reuse the wire codec's [`Frame`] layout verbatim
//! (`len:u32 | typ:u16 | payload | crc:u32`, CRC over `typ + payload`)
//! with `typ` = [`WAL_FRAME_RECORD`] and the payload a wire-encoded
//! [`TibRecord`] — the exact bytes the rpc plane ships, so the codec
//! robustness suite's truncation/corruption guarantees carry over.
//!
//! # Torn-tail tolerance (and what is NOT tolerated)
//!
//! A crash mid-append leaves a *prefix* of a valid frame at the end of
//! the log. [`replay`] stops at the first [`WireError::UnexpectedEof`]
//! and reports the dropped byte count — that is the explicitly-tolerated
//! truncation. Everything else is corruption and fails the replay hard:
//! a CRC mismatch ([`WireError::BadChecksum`]), an unknown frame type, a
//! payload that does not decode, or trailing payload bytes. Snapshot
//! loading ([`crate::snapshot`]) tolerates no truncation at all; the
//! crash-recovery suite pins the distinction.

use crate::record::TibRecord;
use pathdump_wire::{from_bytes, to_bytes, Frame, WireError, WireResult};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame type tag of a WAL record append.
pub const WAL_FRAME_RECORD: u16 = 0x0A17;

/// Encodes one record as a WAL frame (the bytes an append writes).
pub fn frame_record(rec: &TibRecord) -> Vec<u8> {
    Frame::new(WAL_FRAME_RECORD, to_bytes(rec)).to_wire()
}

/// The outcome of a successful WAL replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Fully-framed records, in append order.
    pub records: Vec<TibRecord>,
    /// Bytes of torn tail dropped after the last complete frame (0 for a
    /// cleanly-closed log).
    pub dropped_tail: usize,
}

/// Replays a WAL byte stream. A torn tail (the stream ending mid-frame)
/// is tolerated and reported via [`WalReplay::dropped_tail`]; any other
/// malformation — bad CRC, unknown frame type, undecodable payload — is
/// an error (see the module docs for why the two are different).
pub fn replay(bytes: &[u8]) -> WireResult<WalReplay> {
    let mut rest = bytes;
    let mut records = Vec::new();
    while !rest.is_empty() {
        match Frame::from_wire(rest) {
            Ok((frame, used)) => {
                if frame.typ != WAL_FRAME_RECORD {
                    return Err(WireError::InvalidTag(u32::from(frame.typ)));
                }
                records.push(from_bytes::<TibRecord>(&frame.payload)?);
                rest = &rest[used..];
            }
            // The torn tail: a crash cut the final append short. The CRC
            // was checked on every complete frame before this point.
            Err(WireError::UnexpectedEof) => {
                return Ok(WalReplay {
                    records,
                    dropped_tail: rest.len(),
                })
            }
            Err(e) => return Err(e),
        }
    }
    Ok(WalReplay {
        records,
        dropped_tail: 0,
    })
}

/// Where WAL frames durably land. Implementations must make `bytes`
/// return exactly the appended-and-not-reset frame stream; beyond that
/// the engine is storage-agnostic ([`VecWal`] for tests and crash
/// simulation, [`FileWal`] for real per-host logs).
pub trait WalStore: std::fmt::Debug + Send {
    /// Appends pre-framed bytes (one whole frame per call).
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()>;

    /// Discards the log contents (called after a successful snapshot —
    /// every logged record is now durable in the snapshot).
    fn reset(&mut self) -> std::io::Result<()>;

    /// The current log contents.
    fn bytes(&self) -> std::io::Result<Vec<u8>>;

    /// Current log length in bytes.
    fn len(&self) -> u64;

    /// True when the log holds no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory WAL: the crash-recovery suite truncates its buffer at
/// arbitrary offsets to simulate kills mid-append.
#[derive(Clone, Debug, Default)]
pub struct VecWal {
    buf: Vec<u8>,
}

impl VecWal {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        VecWal::default()
    }
}

impl WalStore for VecWal {
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.buf.extend_from_slice(frame);
        Ok(())
    }

    fn reset(&mut self) -> std::io::Result<()> {
        self.buf.clear();
        Ok(())
    }

    fn bytes(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.buf.clone())
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }
}

/// A file-backed WAL. Appends are written and flushed immediately; reset
/// truncates in place. The file is created (or truncated) on open — pass
/// its prior contents through [`replay`] *before* reopening when
/// recovering.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: std::fs::File,
    written: u64,
}

impl FileWal {
    /// Creates (truncating any previous log) a WAL at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileWal {
            path: path.to_path_buf(),
            file,
            written: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl WalStore for FileWal {
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.file.write_all(frame)?;
        self.file.flush()?;
        self.written += frame.len() as u64;
        Ok(())
    }

    fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.written = 0;
        Ok(())
    }

    fn bytes(&self) -> std::io::Result<Vec<u8>> {
        std::fs::read(&self.path)
    }

    fn len(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FlowId, Ip, Nanos, Path as TPath, SwitchId};

    fn rec(sport: u16, t0: u64) -> TibRecord {
        TibRecord {
            flow: FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80),
            path: TPath::new(vec![SwitchId(0), SwitchId(8), SwitchId(4)]),
            stime: Nanos(t0),
            etime: Nanos(t0 + 50),
            bytes: 1000 + u64::from(sport),
            pkts: 3,
        }
    }

    fn log_of(recs: &[TibRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in recs {
            out.extend(frame_record(r));
        }
        out
    }

    #[test]
    fn replay_roundtrip() {
        let recs = vec![rec(1, 0), rec(2, 100), rec(3, 200)];
        let rep = replay(&log_of(&recs)).unwrap();
        assert_eq!(rep.records, recs);
        assert_eq!(rep.dropped_tail, 0);
        assert_eq!(replay(&[]).unwrap(), WalReplay::default());
    }

    #[test]
    fn every_truncation_recovers_the_durable_prefix() {
        let recs = vec![rec(1, 0), rec(2, 100), rec(3, 200)];
        let log = log_of(&recs);
        // Byte offset at which each frame ends (frames vary in size —
        // varint-encoded stimes).
        let mut ends = Vec::new();
        let mut off = 0;
        for r in &recs {
            off += frame_record(r).len();
            ends.push(off);
        }
        for cut in 0..=log.len() {
            let rep = replay(&log[..cut]).unwrap();
            // Exactly the records whose frames fit entirely below `cut`.
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            let durable = if complete == 0 { 0 } else { ends[complete - 1] };
            assert_eq!(rep.records, recs[..complete], "cut at {cut}");
            assert_eq!(rep.dropped_tail, cut - durable);
        }
    }

    #[test]
    fn corruption_is_not_tolerated() {
        let log = log_of(&[rec(1, 0), rec(2, 100)]);
        // Flip one payload bit in the first frame: CRC catches it.
        let mut bad = log.clone();
        bad[8] ^= 0x01;
        assert_eq!(replay(&bad), Err(WireError::BadChecksum));
        // An unknown frame type is corruption, not a tolerated tail.
        let mut stream = Frame::new(0x7777, to_bytes(&rec(9, 0))).to_wire();
        stream.extend(log_of(&[rec(2, 100)]));
        assert_eq!(replay(&stream), Err(WireError::InvalidTag(0x7777)));
        // A frame whose payload has trailing garbage fails decode.
        let mut payload = to_bytes(&rec(1, 0));
        payload.push(0xEE);
        let framed = Frame::new(WAL_FRAME_RECORD, payload).to_wire();
        assert!(replay(&framed).is_err());
    }

    #[test]
    fn vec_wal_append_reset() {
        let mut w = VecWal::new();
        assert!(w.is_empty());
        w.append(&frame_record(&rec(1, 0))).unwrap();
        w.append(&frame_record(&rec(2, 50))).unwrap();
        assert_eq!(w.len(), 2 * frame_record(&rec(1, 0)).len() as u64);
        let rep = replay(&w.bytes().unwrap()).unwrap();
        assert_eq!(rep.records.len(), 2);
        w.reset().unwrap();
        assert!(w.is_empty());
        assert!(w.bytes().unwrap().is_empty());
    }

    #[test]
    fn file_wal_append_reset() {
        let dir = std::env::temp_dir().join(format!("pathdump-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("host.wal");
        let mut w = FileWal::create(&path).unwrap();
        w.append(&frame_record(&rec(1, 0))).unwrap();
        w.append(&frame_record(&rec(2, 50))).unwrap();
        assert_eq!(w.len(), w.bytes().unwrap().len() as u64);
        let rep = replay(&w.bytes().unwrap()).unwrap();
        assert_eq!(rep.records, vec![rec(1, 0), rec(2, 50)]);
        // Reopening truncates: a fresh log after checkpoint.
        w.reset().unwrap();
        assert!(w.is_empty());
        w.append(&frame_record(&rec(3, 99))).unwrap();
        assert_eq!(
            replay(&w.bytes().unwrap()).unwrap().records,
            vec![rec(3, 99)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
