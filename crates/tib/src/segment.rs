//! The tiered TIB storage engine: a mutable head segment sealing into
//! immutable time-partitioned segments, with WAL-backed crash recovery,
//! cold-segment eviction to disk, and a swap-a-pointer concurrent read
//! path.
//!
//! # Tiers
//!
//! - **Head** — today's [`Tib`] arena + indexes, the only mutable tier.
//!   Every insert lands here (after the optional WAL append).
//! - **Sealed segments** — when the head reaches the seal threshold (or
//!   [`TieredTib::seal`] is called) it is frozen wholesale into an
//!   immutable [`SealedSegment`]: the already-built indexes become the
//!   segment's pre-summed per-segment indexes, and its `(min stime, max
//!   etime)` hull prunes ranged queries.
//! - **Cold segments** — [`TieredTib::evict_cold`] writes a sealed
//!   segment's compact record block to disk and drops the in-memory
//!   index; a ranged query that reaches into it lazily reloads and
//!   re-caches it ([`TieredTib::cold_reloads`] counts these).
//!
//! # Query semantics
//!
//! [`TieredTib`] implements [`TibRead`] **bit-identically** to a single
//! [`Tib`] holding the same records in the same insertion order — pinned
//! by `prop_equivalence` across arbitrary insert/seal/evict/query
//! interleavings. Segments fold in seal order (then the head), so
//! insertion-order outputs concatenate with global dedup; count maps sum;
//! duration merges via [`Tib::duration_bounds`]. Whole-store aggregates
//! (`get_flows(ANY, ANY)`, all-time `get_count`/`top_k_flows`/
//! `link_flow_counts`) are answered from global running aggregates the
//! seal/evict lifecycle never touches — no segment access, hence no cold
//! reloads, on those paths.
//!
//! # Concurrent reads
//!
//! Sealing publishes an [`Arc<SealedView>`] into a shared slot (the
//! arc-swap pattern, built on a briefly-held [`Mutex`] since the
//! workspace vendors no lock-free crate). A [`TibReader`] — cheap to
//! clone, `Send + Sync` — snapshots that slot and queries the immutable
//! sealed prefix with no further coordination: readers never observe a
//! partially-built segment and never block the ingest path, which only
//! touches the slot for one pointer store per seal. Readers see every
//! record up to the last seal; the standing engine instead rides the
//! insert path itself (fed exactly once per record, before and after any
//! seal boundary), so its incremental state never misses head records.
//!
//! # Durability
//!
//! With a WAL attached ([`TieredTib::attach_wal`]), every insert appends
//! a CRC-framed record ([`crate::wal`]) before it becomes queryable.
//! [`TieredTib::checkpoint`] writes a TIB3 snapshot (see
//! [`crate::snapshot`]) and resets the log; [`TieredTib::recover`] loads
//! a snapshot and replays a WAL over it, tolerating a torn tail but no
//! other corruption. A WAL append failure must not take down the
//! datapath: it is counted ([`TieredTib::wal_errors`]) and ingest
//! continues with degraded durability.

use crate::record::TibRecord;
use crate::tib::{select_top_k, FlowSet, Tib, TibRead};
use crate::wal::{self, WalStore};
use pathdump_topology::{FlowId, LinkPattern, Nanos, Path, TimeRange};
use pathdump_wire::{from_bytes, to_bytes, WireError, WireResult};
use std::collections::{HashMap, HashSet};
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Failures of the tiered store's disk interactions: WAL/segment file
/// I/O, or decoding a snapshot/segment/WAL byte stream.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing a segment/WAL/snapshot file failed.
    Io(std::io::Error),
    /// Stored bytes did not decode (truncation, corruption).
    Wire(WireError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "segment store i/o: {e}"),
            StoreError::Wire(e) => write!(f, "segment store decode: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

/// Result alias for tiered-store disk paths.
pub type StoreResult<T> = Result<T, StoreError>;

/// Locks a mutex, recovering the guard from a poisoned lock: the data
/// under every lock here is a plain pointer swap or cache fill, valid
/// even if some other thread panicked mid-hold, and the datapath must
/// not panic in sympathy.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Where a sealed segment's data currently lives. At least one of the
/// three is always present.
#[derive(Debug, Default)]
struct SegState {
    /// The queryable index, when hot.
    tib: Option<Arc<Tib>>,
    /// The compact record block (`varint count + records`, the exact
    /// bytes `save_into` streams), cached at first save/evict/reload.
    encoded: Option<Arc<Vec<u8>>>,
    /// The on-disk block, once evicted cold.
    file: Option<PathBuf>,
}

/// One immutable sealed segment of the tiered store.
#[derive(Debug)]
pub struct SealedSegment {
    /// Records in the segment (fixed at seal).
    len: usize,
    /// `(min stime, max etime)` hull; `None` only for an empty segment
    /// decoded from a (degenerate but well-formed) snapshot.
    span: Option<(Nanos, Nanos)>,
    bucket_width: Nanos,
    state: Mutex<SegState>,
    /// Cold→hot index rebuilds served (lazy reloads).
    reloads: AtomicU64,
    /// Reads that failed to materialize the segment (I/O or decode): the
    /// query degraded to the loadable subset.
    read_failures: AtomicU64,
}

impl SealedSegment {
    /// Seals a head arena wholesale: its indexes become the segment's.
    fn from_tib(tib: Tib) -> Self {
        SealedSegment {
            len: tib.len(),
            span: tib.span(),
            bucket_width: tib.bucket_width(),
            state: Mutex::new(SegState {
                tib: Some(Arc::new(tib)),
                encoded: None,
                file: None,
            }),
            reloads: AtomicU64::new(0),
            read_failures: AtomicU64::new(0),
        }
    }

    /// Rebuilds a segment from a snapshot's record block. The index is
    /// built lazily on first query; `records` is the block's decoded
    /// contents (already validated by the caller).
    fn from_encoded(encoded: Arc<Vec<u8>>, records: &[TibRecord], bucket_width: Nanos) -> Self {
        let mut span: Option<(Nanos, Nanos)> = None;
        for rec in records {
            span = Some(match span {
                Some((lo, hi)) => (lo.min(rec.stime), hi.max(rec.etime)),
                None => (rec.stime, rec.etime),
            });
        }
        SealedSegment {
            len: records.len(),
            span,
            bucket_width,
            state: Mutex::new(SegState {
                tib: None,
                encoded: Some(encoded),
                file: None,
            }),
            reloads: AtomicU64::new(0),
            read_failures: AtomicU64::new(0),
        }
    }

    /// Records in the segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a (degenerate) empty segment.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Can any record in this segment overlap `range`? (Hull test — a
    /// superset, like bucket pruning; exact overlap is re-checked by the
    /// per-segment query.)
    fn overlaps(&self, range: &TimeRange) -> bool {
        match self.span {
            Some((lo, hi)) => range.overlaps(lo, hi),
            None => false,
        }
    }

    /// True when the segment currently has no in-memory index.
    pub fn is_cold(&self) -> bool {
        lock(&self.state).tib.is_none()
    }

    /// The compact record block, producing and caching it on first use
    /// (from the hot index, or from the cold file).
    fn encoded_block(&self) -> StoreResult<Arc<Vec<u8>>> {
        let mut st = lock(&self.state);
        if let Some(enc) = &st.encoded {
            return Ok(Arc::clone(enc));
        }
        let enc = if let Some(tib) = &st.tib {
            Arc::new(to_bytes(tib.records()))
        } else if let Some(path) = &st.file {
            Arc::new(std::fs::read(path)?)
        } else {
            // Unreachable by construction; treat as an empty block.
            Arc::new(to_bytes(&[] as &[TibRecord]))
        };
        st.encoded = Some(Arc::clone(&enc));
        Ok(enc)
    }

    /// The segment's queryable index, lazily reloading (and re-caching)
    /// a cold segment from its encoded block or disk file.
    fn tib(&self) -> StoreResult<Arc<Tib>> {
        let mut st = lock(&self.state);
        if let Some(tib) = &st.tib {
            return Ok(Arc::clone(tib));
        }
        let encoded = if let Some(enc) = &st.encoded {
            Arc::clone(enc)
        } else if let Some(path) = &st.file {
            let enc = Arc::new(std::fs::read(path)?);
            st.encoded = Some(Arc::clone(&enc));
            enc
        } else {
            return Err(StoreError::Wire(WireError::UnexpectedEof));
        };
        let records: Vec<TibRecord> = from_bytes(&encoded).map_err(StoreError::Wire)?;
        let mut tib = Tib::with_bucket_width(self.bucket_width);
        for rec in records {
            tib.insert(rec);
        }
        let tib = Arc::new(tib);
        st.tib = Some(Arc::clone(&tib));
        self.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(tib)
    }

    /// Like [`tib`](Self::tib), but a failure degrades the query to the
    /// loadable subset (counted) instead of panicking the read path.
    fn tib_or_skip(&self) -> Option<Arc<Tib>> {
        match self.tib() {
            Ok(t) => Some(t),
            Err(_) => {
                self.read_failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Evicts the segment cold: writes the record block to
    /// `dir/seg-<seq>.tibseg` and drops the in-memory index and block
    /// cache. Returns `false` when the segment is already cold.
    fn evict(&self, dir: &FsPath, seq: u64) -> StoreResult<bool> {
        let encoded = {
            let st = lock(&self.state);
            if st.tib.is_none() {
                return Ok(false);
            }
            drop(st);
            self.encoded_block()?
        };
        let path = dir.join(format!("seg-{seq:06}.tibseg"));
        std::fs::write(&path, encoded.as_slice())?;
        let mut st = lock(&self.state);
        st.file = Some(path);
        st.tib = None;
        st.encoded = None;
        Ok(true)
    }

    /// Approximate resident bytes (hot index, or cached block, or ~0
    /// when fully cold).
    fn approx_bytes(&self) -> usize {
        let st = lock(&self.state);
        if let Some(tib) = &st.tib {
            tib.approx_bytes()
        } else {
            st.encoded.as_ref().map_or(0, |e| e.len())
        }
    }
}

/// An immutable snapshot of the sealed prefix: every record sealed at
/// publish time, none of the head. Obtained from a [`TibReader`]; query
/// it via [`TibRead`] with no coordination with the writer.
#[derive(Debug, Clone, Default)]
pub struct SealedView {
    segments: Vec<Arc<SealedSegment>>,
    len: usize,
}

impl SealedView {
    /// Sealed segments in the view.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

/// A cloneable, `Send + Sync` handle for querying the sealed prefix
/// concurrently with ingest. [`snapshot`](Self::snapshot) costs one
/// brief lock + `Arc` clone; everything after is on immutable data.
#[derive(Debug, Clone)]
pub struct TibReader {
    slot: Arc<Mutex<Arc<SealedView>>>,
}

impl TibReader {
    /// The current sealed prefix (consistent: exactly the records sealed
    /// by some prefix of the writer's seal sequence).
    pub fn snapshot(&self) -> Arc<SealedView> {
        Arc::clone(&lock(&self.slot))
    }
}

/// What a crash recovery replayed. See [`TieredTib::recover`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records restored from the snapshot.
    pub snapshot_records: usize,
    /// Records replayed from the WAL tail.
    pub wal_records: usize,
    /// Torn-tail bytes dropped from the WAL (0 for a clean shutdown).
    pub dropped_tail: usize,
}

/// The tiered per-host TIB. See the module docs for the design; the
/// default configuration (no seal threshold, no WAL) behaves exactly
/// like a plain [`Tib`].
#[derive(Debug)]
pub struct TieredTib {
    head: Tib,
    sealed: Vec<Arc<SealedSegment>>,
    sealed_len: usize,
    bucket_width: Nanos,
    /// Auto-seal the head when it reaches this many records.
    seal_after: Option<usize>,
    /// Monotonic segment sequence (names eviction files).
    next_seq: u64,
    /// Global insertion-ordered distinct flows (never touched by
    /// seal/evict — serves `get_flows(ANY, ANY)` with no segment access).
    flows_any: FlowSet,
    /// Global all-time per-flow `(bytes, pkts)` (serves all-time
    /// `get_count`/`top_k_flows`/`link_flow_counts` likewise).
    flow_totals: HashMap<FlowId, (u64, u64)>,
    wal: Option<Box<dyn WalStore>>,
    wal_errors: u64,
    /// The published reader view, swapped on every seal.
    published: Arc<Mutex<Arc<SealedView>>>,
}

impl Default for TieredTib {
    fn default() -> Self {
        TieredTib::with_bucket_width(crate::tib::DEFAULT_BUCKET_WIDTH)
    }
}

impl TieredTib {
    /// An empty tiered store with the default bucket width, no seal
    /// threshold and no WAL.
    pub fn new() -> Self {
        TieredTib::default()
    }

    /// An empty tiered store whose segments index stimes with
    /// `width`-wide buckets.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero (as [`Tib::with_bucket_width`]).
    pub fn with_bucket_width(width: Nanos) -> Self {
        TieredTib {
            head: Tib::with_bucket_width(width),
            sealed: Vec::new(),
            sealed_len: 0,
            bucket_width: width,
            seal_after: None,
            next_seq: 0,
            flows_any: FlowSet::default(),
            flow_totals: HashMap::new(),
            wal: None,
            wal_errors: 0,
            published: Arc::new(Mutex::new(Arc::new(SealedView::default()))),
        }
    }

    /// Sets (or clears) the auto-seal threshold: the head seals whenever
    /// it reaches `n` records.
    pub fn set_seal_after(&mut self, n: Option<usize>) {
        self.seal_after = n.filter(|&n| n > 0);
    }

    /// Attaches a write-ahead log; subsequent inserts append to it
    /// before becoming queryable. Replaces any previous log.
    pub fn attach_wal(&mut self, wal: Box<dyn WalStore>) {
        self.wal = Some(wal);
    }

    /// The configured stime bucket width.
    pub fn bucket_width(&self) -> Nanos {
        self.bucket_width
    }

    /// Total records across all tiers.
    pub fn len(&self) -> usize {
        self.sealed_len + self.head.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mutable head segment (today's arena), for callers that want
    /// the unsealed tail specifically.
    pub fn head(&self) -> &Tib {
        &self.head
    }

    /// Number of sealed segments.
    pub fn num_sealed(&self) -> usize {
        self.sealed.len()
    }

    /// Number of sealed segments currently without an in-memory index.
    pub fn num_cold(&self) -> usize {
        self.sealed.iter().filter(|s| s.is_cold()).count()
    }

    /// Lazy cold→hot reloads served so far.
    pub fn cold_reloads(&self) -> u64 {
        self.sealed
            .iter()
            .map(|s| s.reloads.load(Ordering::Relaxed))
            .sum()
    }

    /// Reads that degraded because a segment failed to load.
    pub fn read_failures(&self) -> u64 {
        self.sealed
            .iter()
            .map(|s| s.read_failures.load(Ordering::Relaxed))
            .sum()
    }

    /// WAL appends that failed (durability degraded; ingest continued).
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors
    }

    /// Current WAL length in bytes (0 when none is attached).
    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.len())
    }

    /// The WAL's current contents (empty when none is attached).
    pub fn wal_bytes(&self) -> std::io::Result<Vec<u8>> {
        match &self.wal {
            Some(w) => w.bytes(),
            None => Ok(Vec::new()),
        }
    }

    /// Inserts one record: WAL append first (when attached), then the
    /// global aggregates, then the head arena; finally the auto-seal
    /// check. The record is observable to queries exactly once,
    /// regardless of seal boundaries.
    pub fn insert(&mut self, rec: TibRecord) {
        if let Some(w) = self.wal.as_mut() {
            if w.append(&wal::frame_record(&rec)).is_err() {
                self.wal_errors += 1;
            }
        }
        self.flows_any.insert(rec.flow);
        let t = self.flow_totals.entry(rec.flow).or_insert((0, 0));
        t.0 += rec.bytes;
        t.1 += rec.pkts;
        self.head.insert(rec);
        if let Some(n) = self.seal_after {
            if self.head.len() >= n {
                self.seal();
            }
        }
    }

    /// Seals the head into an immutable segment (no-op on an empty head)
    /// and publishes the new sealed prefix to readers.
    pub fn seal(&mut self) {
        if self.head.is_empty() {
            return;
        }
        let head = std::mem::replace(&mut self.head, Tib::with_bucket_width(self.bucket_width));
        self.sealed_len += head.len();
        self.sealed.push(Arc::new(SealedSegment::from_tib(head)));
        self.next_seq += 1;
        self.publish();
    }

    /// Swap-publishes the current sealed prefix for readers.
    fn publish(&mut self) {
        let view = Arc::new(SealedView {
            segments: self.sealed.clone(),
            len: self.sealed_len,
        });
        *lock(&self.published) = view;
    }

    /// A concurrent-read handle over the sealed prefix. Clones of it
    /// (and the views it snapshots) stay valid across later seals and
    /// evictions.
    pub fn reader(&self) -> TibReader {
        TibReader {
            slot: Arc::clone(&self.published),
        }
    }

    /// Evicts all but the newest `keep_hot` sealed segments to disk
    /// under `dir` (which must exist), bounding resident memory to the
    /// head + hot tail. Returns how many segments went cold.
    pub fn evict_cold(&mut self, keep_hot: usize, dir: &FsPath) -> StoreResult<usize> {
        let n = self.sealed.len().saturating_sub(keep_hot);
        let mut evicted = 0;
        for (i, seg) in self.sealed.iter().enumerate().take(n) {
            if seg.evict(dir, i as u64)? {
                evicted += 1;
            }
        }
        Ok(evicted)
    }

    /// Serializes a TIB3 snapshot and, on success, resets the WAL (its
    /// records are now durable in the snapshot). The delta property:
    /// sealed segments reuse their cached encoded blocks, so only the
    /// head is re-encoded on repeated checkpoints.
    pub fn checkpoint(&mut self, out: &mut Vec<u8>) -> StoreResult<()> {
        crate::snapshot::save_tiered_into(self, out)?;
        if let Some(w) = self.wal.as_mut() {
            w.reset()?;
        }
        Ok(())
    }

    /// Crash recovery: loads a snapshot (TIB2 or TIB3) and replays a WAL
    /// byte stream over it. A torn WAL tail is tolerated and reported;
    /// snapshot truncation or any WAL corruption besides the tail is an
    /// error. The recovered store has no WAL attached — re-attach one
    /// before resuming ingest.
    pub fn recover(snapshot: &[u8], wal_bytes: &[u8]) -> WireResult<(TieredTib, RecoveryReport)> {
        let mut store = crate::snapshot::load_tiered(snapshot)?;
        let snapshot_records = store.len();
        let replayed = wal::replay(wal_bytes)?;
        let wal_records = replayed.records.len();
        for rec in replayed.records {
            store.insert(rec);
        }
        Ok((
            store,
            RecoveryReport {
                snapshot_records,
                wal_records,
                dropped_tail: replayed.dropped_tail,
            },
        ))
    }

    /// Appends a sealed segment rebuilt from a snapshot's record block
    /// (snapshot loading only: keeps the global aggregates in the
    /// original insertion order).
    pub(crate) fn push_sealed_block(&mut self, encoded: Arc<Vec<u8>>, records: &[TibRecord]) {
        for rec in records {
            self.flows_any.insert(rec.flow);
            let t = self.flow_totals.entry(rec.flow).or_insert((0, 0));
            t.0 += rec.bytes;
            t.1 += rec.pkts;
        }
        self.sealed_len += records.len();
        self.sealed.push(Arc::new(SealedSegment::from_encoded(
            encoded,
            records,
            self.bucket_width,
        )));
        self.next_seq += 1;
        self.publish();
    }

    /// Each sealed segment's encoded record block, oldest first
    /// (snapshot serialization).
    pub(crate) fn sealed_blocks(&self) -> StoreResult<Vec<Arc<Vec<u8>>>> {
        self.sealed.iter().map(|s| s.encoded_block()).collect()
    }

    /// Approximate resident bytes across tiers (cold segments count only
    /// their cached blocks, if any).
    pub fn approx_bytes(&self) -> usize {
        self.head.approx_bytes() + self.sealed.iter().map(|s| s.approx_bytes()).sum::<usize>()
    }
}

// ---------------------------------------------------------------------
// The query fold: segments in seal order, then the head. Shared between
// `TieredTib` (segments + head) and `SealedView` (segments only).
// ---------------------------------------------------------------------

fn fold_flows(
    segs: &[Arc<SealedSegment>],
    head: Option<&Tib>,
    link: LinkPattern,
    range: TimeRange,
) -> Vec<FlowId> {
    let mut seen: HashSet<FlowId> = HashSet::new();
    let mut out = Vec::new();
    let mut take = |flows: Vec<FlowId>| {
        for f in flows {
            if seen.insert(f) {
                out.push(f);
            }
        }
    };
    for seg in segs {
        if !seg.overlaps(&range) {
            continue;
        }
        if let Some(t) = seg.tib_or_skip() {
            take(t.get_flows(link, range));
        }
    }
    if let Some(h) = head {
        take(h.get_flows(link, range));
    }
    out
}

fn fold_paths(
    segs: &[Arc<SealedSegment>],
    head: Option<&Tib>,
    flow: FlowId,
    link: LinkPattern,
    range: TimeRange,
) -> Vec<Path> {
    let mut seen: HashSet<Path> = HashSet::new();
    let mut out = Vec::new();
    let mut take = |paths: Vec<Path>| {
        for p in paths {
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
    };
    for seg in segs {
        if !seg.overlaps(&range) {
            continue;
        }
        if let Some(t) = seg.tib_or_skip() {
            take(t.get_paths(flow, link, range));
        }
    }
    if let Some(h) = head {
        take(h.get_paths(flow, link, range));
    }
    out
}

fn fold_count(
    segs: &[Arc<SealedSegment>],
    head: Option<&Tib>,
    flow: FlowId,
    path: Option<&Path>,
    range: TimeRange,
) -> (u64, u64) {
    let mut bytes = 0;
    let mut pkts = 0;
    for seg in segs {
        if !seg.overlaps(&range) {
            continue;
        }
        if let Some(t) = seg.tib_or_skip() {
            let (b, p) = t.get_count(flow, path, range);
            bytes += b;
            pkts += p;
        }
    }
    if let Some(h) = head {
        let (b, p) = h.get_count(flow, path, range);
        bytes += b;
        pkts += p;
    }
    (bytes, pkts)
}

fn fold_duration(
    segs: &[Arc<SealedSegment>],
    head: Option<&Tib>,
    flow: FlowId,
    path: Option<&Path>,
    range: TimeRange,
) -> Nanos {
    let mut bounds: Option<(Nanos, Nanos)> = None;
    let mut merge = |b: Option<(Nanos, Nanos)>| {
        if let Some((s, e)) = b {
            bounds = Some(match bounds {
                Some((lo, hi)) => (lo.min(s), hi.max(e)),
                None => (s, e),
            });
        }
    };
    for seg in segs {
        if !seg.overlaps(&range) {
            continue;
        }
        if let Some(t) = seg.tib_or_skip() {
            merge(t.duration_bounds(flow, path, range));
        }
    }
    if let Some(h) = head {
        merge(h.duration_bounds(flow, path, range));
    }
    match bounds {
        Some((lo, hi)) if lo < hi => hi - lo,
        _ => Nanos::ZERO,
    }
}

fn fold_counts_map(
    segs: &[Arc<SealedSegment>],
    head: Option<&Tib>,
    link: LinkPattern,
    range: TimeRange,
) -> HashMap<FlowId, (u64, u64)> {
    let mut out: HashMap<FlowId, (u64, u64)> = HashMap::new();
    let mut merge = |m: HashMap<FlowId, (u64, u64)>| {
        for (flow, (b, p)) in m {
            let e = out.entry(flow).or_insert((0, 0));
            e.0 += b;
            e.1 += p;
        }
    };
    for seg in segs {
        if !seg.overlaps(&range) {
            continue;
        }
        if let Some(t) = seg.tib_or_skip() {
            merge(t.link_flow_counts(link, range));
        }
    }
    if let Some(h) = head {
        merge(h.link_flow_counts(link, range));
    }
    out
}

fn fold_each(segs: &[Arc<SealedSegment>], head: Option<&Tib>, f: &mut dyn FnMut(&TibRecord)) {
    for seg in segs {
        if let Some(t) = seg.tib_or_skip() {
            for rec in t.records() {
                f(rec);
            }
        }
    }
    if let Some(h) = head {
        for rec in h.records() {
            f(rec);
        }
    }
}

impl TibRead for TieredTib {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&TibRecord)) {
        fold_each(&self.sealed, Some(&self.head), f);
    }

    fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
        if link.is_any() && range == TimeRange::ANY {
            // Global aggregate: no segment access, no cold reloads.
            return self.flows_any.order.clone();
        }
        fold_flows(&self.sealed, Some(&self.head), link, range)
    }

    fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
        fold_paths(&self.sealed, Some(&self.head), flow, link, range)
    }

    fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64) {
        if path.is_none() && range == TimeRange::ANY {
            return self.flow_totals.get(&flow).copied().unwrap_or((0, 0));
        }
        fold_count(&self.sealed, Some(&self.head), flow, path, range)
    }

    fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos {
        fold_duration(&self.sealed, Some(&self.head), flow, path, range)
    }

    fn link_flow_counts(&self, link: LinkPattern, range: TimeRange) -> HashMap<FlowId, (u64, u64)> {
        if link.is_any() && range == TimeRange::ANY {
            return self.flow_totals.clone();
        }
        fold_counts_map(&self.sealed, Some(&self.head), link, range)
    }

    fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
        let v: Vec<(u64, FlowId)> = if range == TimeRange::ANY {
            self.flow_totals
                .iter()
                .map(|(flow, &(bytes, _))| (bytes, *flow))
                .collect()
        } else {
            fold_counts_map(&self.sealed, Some(&self.head), LinkPattern::ANY, range)
                .into_iter()
                .map(|(flow, (bytes, _))| (bytes, flow))
                .collect()
        };
        select_top_k(v, k)
    }
}

impl TibRead for SealedView {
    fn num_records(&self) -> usize {
        self.len
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&TibRecord)) {
        fold_each(&self.segments, None, f);
    }

    fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
        fold_flows(&self.segments, None, link, range)
    }

    fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
        fold_paths(&self.segments, None, flow, link, range)
    }

    fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64) {
        fold_count(&self.segments, None, flow, path, range)
    }

    fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos {
        fold_duration(&self.segments, None, flow, path, range)
    }

    fn link_flow_counts(&self, link: LinkPattern, range: TimeRange) -> HashMap<FlowId, (u64, u64)> {
        fold_counts_map(&self.segments, None, link, range)
    }

    fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
        let v = fold_counts_map(&self.segments, None, LinkPattern::ANY, range)
            .into_iter()
            .map(|(flow, (bytes, _))| (bytes, flow))
            .collect();
        select_top_k(v, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::VecWal;
    use pathdump_topology::{Ip, SwitchId};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    fn rec(sport: u16, p: &[u16], t0: u64, t1: u64, bytes: u64) -> TibRecord {
        TibRecord {
            flow: flow(sport),
            path: path(p),
            stime: Nanos(t0),
            etime: Nanos(t1),
            bytes,
            pkts: bytes / 1000 + 1,
        }
    }

    fn sample_records() -> Vec<TibRecord> {
        vec![
            rec(1, &[0, 8, 4], 0, 100, 5000),
            rec(1, &[0, 9, 4], 50, 150, 3000),
            rec(2, &[0, 8, 4], 200, 300, 10_000),
            rec(3, &[1, 9, 5], 0, 400, 70_000),
            rec(2, &[0, 9, 4], 500, 600, 2_000),
            rec(4, &[1, 8, 5], 700, 900, 400),
        ]
    }

    /// Inserts `recs` sealing after every `every` records.
    fn tiered(recs: &[TibRecord], every: usize) -> TieredTib {
        let mut t = TieredTib::with_bucket_width(Nanos(64));
        t.set_seal_after(Some(every));
        for r in recs {
            t.insert(r.clone());
        }
        t
    }

    fn flat(recs: &[TibRecord]) -> Tib {
        let mut t = Tib::with_bucket_width(Nanos(64));
        for r in recs {
            t.insert(r.clone());
        }
        t
    }

    fn assert_matches_flat(t: &TieredTib, flat: &Tib) {
        let ranges = [
            TimeRange::ANY,
            TimeRange::between(Nanos(60), Nanos(220)),
            TimeRange::since(Nanos(180)),
            TimeRange::until(Nanos(120)),
        ];
        let links = [
            LinkPattern::ANY,
            LinkPattern::exact(SwitchId(0), SwitchId(8)),
            LinkPattern::into(SwitchId(4)),
            LinkPattern::out_of(SwitchId(1)),
        ];
        for range in ranges {
            for link in links {
                assert_eq!(
                    TibRead::get_flows(t, link, range),
                    flat.get_flows(link, range),
                    "get_flows {link:?} {range:?}"
                );
                assert_eq!(
                    TibRead::link_flow_counts(t, link, range),
                    flat.link_flow_counts(link, range),
                    "link_flow_counts {link:?} {range:?}"
                );
            }
            for sport in 1..=5 {
                assert_eq!(
                    TibRead::get_paths(t, flow(sport), LinkPattern::ANY, range),
                    flat.get_paths(flow(sport), LinkPattern::ANY, range)
                );
                assert_eq!(
                    TibRead::get_count(t, flow(sport), None, range),
                    flat.get_count(flow(sport), None, range)
                );
                assert_eq!(
                    TibRead::get_duration(t, flow(sport), None, range),
                    flat.get_duration(flow(sport), None, range)
                );
            }
            for k in [0, 2, 10] {
                assert_eq!(
                    TibRead::top_k_flows(t, k, range),
                    flat.top_k_flows(k, range)
                );
            }
        }
        assert_eq!(t.records_vec(), flat.records().to_vec());
    }

    #[test]
    fn no_threshold_means_single_head() {
        let recs = sample_records();
        let mut t = TieredTib::with_bucket_width(Nanos(64));
        for r in &recs {
            t.insert(r.clone());
        }
        assert_eq!(t.num_sealed(), 0);
        assert_eq!(t.len(), recs.len());
        assert_matches_flat(&t, &flat(&recs));
    }

    #[test]
    fn sealed_segments_match_flat_store() {
        let recs = sample_records();
        for every in [1, 2, 3, 5] {
            let t = tiered(&recs, every);
            assert!(t.num_sealed() >= 1, "seal_after={every}");
            assert_matches_flat(&t, &flat(&recs));
        }
    }

    #[test]
    fn manual_seal_and_empty_seal() {
        let mut t = TieredTib::new();
        t.seal();
        assert_eq!(t.num_sealed(), 0, "empty head does not seal");
        t.insert(rec(1, &[0, 8, 4], 0, 10, 100));
        t.seal();
        t.seal();
        assert_eq!(t.num_sealed(), 1, "second seal is a no-op");
        assert_eq!(t.head().len(), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evict_cold_and_lazy_reload() {
        let dir = std::env::temp_dir().join(format!("pathdump-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let recs = sample_records();
        let mut t = tiered(&recs, 2);
        assert_eq!(t.num_sealed(), 3);
        let evicted = t.evict_cold(1, &dir).unwrap();
        assert_eq!(evicted, 2);
        assert_eq!(t.num_cold(), 2);
        assert_eq!(t.cold_reloads(), 0);

        // The all-time aggregate paths never touch segments.
        assert_eq!(
            TibRead::get_flows(&t, LinkPattern::ANY, TimeRange::ANY).len(),
            4
        );
        assert_eq!(
            TibRead::get_count(&t, flow(3), None, TimeRange::ANY).0,
            70_000
        );
        assert_eq!(t.num_cold(), 2, "aggregate queries reload nothing");

        // A ranged query over only the newest records prunes the cold
        // segments by their time hull.
        let late = TibRead::get_flows(&t, LinkPattern::ANY, TimeRange::since(Nanos(650)));
        assert_eq!(late, vec![flow(4)]);
        assert_eq!(t.num_cold(), 2, "hull-pruned: still cold");

        // A ranged query reaching into the old era lazily reloads.
        assert_matches_flat(&t, &flat(&recs));
        assert!(t.cold_reloads() >= 2);
        assert_eq!(t.num_cold(), 0, "reloaded segments re-cache hot");
        assert_eq!(t.read_failures(), 0);

        // Evicting again works (files are rewritten in place).
        assert_eq!(t.evict_cold(0, &dir).unwrap(), 3);
        assert_eq!(t.num_cold(), 3);
        assert_matches_flat(&t, &flat(&recs));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_sees_consistent_sealed_prefix() {
        let recs = sample_records();
        let mut t = TieredTib::with_bucket_width(Nanos(64));
        let reader = t.reader();
        assert_eq!(reader.snapshot().num_records(), 0);
        for r in &recs[..4] {
            t.insert(r.clone());
        }
        let before_seal = reader.snapshot();
        assert_eq!(before_seal.num_records(), 0, "head not visible to readers");
        t.seal();
        let after_seal = reader.snapshot();
        assert_eq!(after_seal.num_records(), 4);
        assert_eq!(after_seal.num_segments(), 1);
        // The old view is still valid and still answers for its prefix.
        assert_eq!(before_seal.num_records(), 0);
        // The sealed view matches a flat store over the sealed prefix.
        let prefix = flat(&recs[..4]);
        assert_eq!(
            after_seal.get_flows(LinkPattern::ANY, TimeRange::ANY),
            prefix.get_flows(LinkPattern::ANY, TimeRange::ANY)
        );
        assert_eq!(
            after_seal.top_k_flows(3, TimeRange::ANY),
            prefix.top_k_flows(3, TimeRange::ANY)
        );
        assert_eq!(
            after_seal.get_count(flow(1), None, TimeRange::between(Nanos(0), Nanos(120))),
            prefix.get_count(flow(1), None, TimeRange::between(Nanos(0), Nanos(120)))
        );
        assert_eq!(after_seal.records_vec(), prefix.records().to_vec());
        // Later inserts stay invisible until the next seal.
        for r in &recs[4..] {
            t.insert(r.clone());
        }
        assert_eq!(reader.snapshot().num_records(), 4);
        t.seal();
        assert_eq!(reader.snapshot().num_records(), recs.len());
    }

    #[test]
    fn wal_records_every_insert_and_checkpoint_resets() {
        let mut t = TieredTib::with_bucket_width(Nanos(64));
        t.attach_wal(Box::new(VecWal::new()));
        let recs = sample_records();
        for r in &recs[..3] {
            t.insert(r.clone());
        }
        let replay = wal::replay(&t.wal_bytes().unwrap()).unwrap();
        assert_eq!(replay.records, recs[..3].to_vec());
        assert_eq!(t.wal_errors(), 0);

        let mut snap = Vec::new();
        t.checkpoint(&mut snap).unwrap();
        assert_eq!(t.wal_len(), 0, "checkpoint resets the log");
        for r in &recs[3..] {
            t.insert(r.clone());
        }
        let replay = wal::replay(&t.wal_bytes().unwrap()).unwrap();
        assert_eq!(
            replay.records,
            recs[3..].to_vec(),
            "only post-snapshot tail"
        );

        // Snapshot + WAL reconstruct the full store.
        let (back, report) = TieredTib::recover(&snap, &t.wal_bytes().unwrap()).unwrap();
        assert_eq!(report.snapshot_records, 3);
        assert_eq!(report.wal_records, 3);
        assert_eq!(report.dropped_tail, 0);
        assert_matches_flat(&back, &flat(&recs));
    }
}
