//! The Trajectory Information Base (TIB): PathDump's per-host storage and
//! query engine (§3.2, Figure 2).
//!
//! Pipeline: arriving packets update the [`TrajectoryMemory`] (per-path
//! flow records keyed by flow ID + raw link IDs); FIN/RST or a 5-second
//! idle timeout evicts records; trajectory construction (in
//! `pathdump-cherrypick`) turns link IDs into full paths; the finished
//! `<flowID, path, stime, etime, #bytes, #pkts>` records land in the
//! indexed [`Tib`], which answers the Host API queries of Table 1.
//!
//! The paper stores TIB records in MongoDB; this crate substitutes an
//! in-memory indexed store with binary snapshots (DESIGN.md §3).

pub mod diff;
pub mod memory;
pub mod record;
pub mod snapshot;
pub mod tib;

pub use diff::{diff_snapshots, PathDelta, TibDiff};
pub use memory::{canonical_order, MemKey, TrajectoryMemory};
pub use record::{PendingRecord, TibRecord};
pub use snapshot::{load, save, save_into, snapshot_size, SNAPSHOT_MAGIC};
pub use tib::{Tib, DEFAULT_BUCKET_WIDTH};
