//! The Trajectory Information Base (TIB): PathDump's per-host storage and
//! query engine (§3.2, Figure 2).
//!
//! Pipeline: arriving packets update the [`TrajectoryMemory`] (per-path
//! flow records keyed by flow ID + raw link IDs); FIN/RST or a 5-second
//! idle timeout evicts records; trajectory construction (in
//! `pathdump-cherrypick`) turns link IDs into full paths; the finished
//! `<flowID, path, stime, etime, #bytes, #pkts>` records land in the
//! indexed store, which answers the Host API queries of Table 1.
//!
//! Storage is tiered ([`TieredTib`], `segment.rs`): a mutable head
//! [`Tib`] arena seals into immutable time-partitioned segments, cold
//! segments evict to disk with lazy reload, a per-host WAL (`wal.rs`)
//! bounds crash loss to the unflushed tail, and readers query published
//! sealed prefixes concurrently with ingest ([`TibReader`]). Everything
//! answers the same eight queries through the [`TibRead`] trait, pinned
//! bit-identical across engines by `tests/prop_equivalence.rs`.
//!
//! Persistence is the TIB2/TIB3 snapshot envelope (`snapshot.rs`): TIB2
//! is the flat whole-store format, TIB3 adds a versioned segment
//! directory for delta checkpoints; TIB2 files still load everywhere.
//!
//! The paper stores TIB records in MongoDB; this crate substitutes an
//! in-memory indexed store with binary snapshots (DESIGN.md §3).

pub mod diff;
pub mod memory;
pub mod record;
pub mod segment;
pub mod snapshot;
pub mod tib;
pub mod wal;

pub use diff::{diff_snapshots, PathDelta, TibDiff};
pub use memory::{canonical_order, MemKey, TrajectoryMemory};
pub use record::{PendingRecord, TibRecord};
pub use segment::{
    RecoveryReport, SealedSegment, SealedView, StoreError, StoreResult, TibReader, TieredTib,
};
pub use snapshot::{
    load, load_tiered, save, save_into, save_tiered, save_tiered_into, snapshot_size,
    SNAPSHOT_MAGIC, SNAPSHOT_MAGIC_V3,
};
pub use tib::{Tib, TibRead, DEFAULT_BUCKET_WIDTH};
pub use wal::{FileWal, VecWal, WalReplay, WalStore, WAL_FRAME_RECORD};
