//! Trajectory memory: the in-kernel-datapath aggregation stage (Figure 2).
//!
//! "Using the flow ID and link IDs together as a key, we create or update a
//! per-path flow record in trajectory memory. ... Similar to NetFlow, if
//! FIN or RST packet is seen or a per-path flow record is not updated for a
//! certain time period (e.g., 5 seconds), the flow record is evicted from
//! the trajectory memory and forwarded to the trajectory construction
//! sub-module." (§3.2)

use crate::record::PendingRecord;
use pathdump_topology::{FlowId, Nanos, SECONDS};
use std::collections::HashMap;

// The datapath-hot-path hasher now lives in `pathdump_topology::fnv`
// (shared with the cherrypick decode memo); re-exported here so existing
// `pathdump_tib::memory::{FnvHasher, FnvBuild}` imports keep working.
pub use pathdump_topology::{FnvBuild, FnvHasher};

/// Key of a per-path flow record: flow ID plus raw trajectory samples.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemKey {
    /// The 5-tuple.
    pub flow: FlowId,
    /// VL2 DSCP sample.
    pub dscp_sample: Option<u8>,
    /// VLAN tags in push order.
    pub tags: Vec<u16>,
}

#[derive(Clone, Debug)]
struct MemValue {
    stime: Nanos,
    etime: Nanos,
    bytes: u64,
    pkts: u64,
}

/// Builds the exported record for an evicted (key, value) pair.
fn pending(k: &MemKey, v: &MemValue, closed: bool) -> PendingRecord {
    PendingRecord {
        flow: k.flow,
        dscp_sample: k.dscp_sample,
        tags: k.tags.clone(),
        stime: v.stime,
        etime: v.etime,
        bytes: v.bytes,
        pkts: v.pkts,
        closed,
    }
}

/// The active per-path flow records of one edge device.
#[derive(Clone, Debug)]
pub struct TrajectoryMemory {
    records: HashMap<MemKey, MemValue, FnvBuild>,
    idle_timeout: Nanos,
    /// Flows marked closed (FIN/RST seen) pending eviction.
    updates: u64,
    lookups: u64,
}

impl Default for TrajectoryMemory {
    fn default() -> Self {
        TrajectoryMemory::new(Nanos(5 * SECONDS))
    }
}

impl TrajectoryMemory {
    /// Creates a trajectory memory with the given idle eviction timeout
    /// (the paper uses 5 seconds).
    pub fn new(idle_timeout: Nanos) -> Self {
        TrajectoryMemory {
            records: HashMap::default(),
            idle_timeout,
            updates: 0,
            lookups: 0,
        }
    }

    /// Records one packet: creates or updates the per-path flow record.
    pub fn update(&mut self, key: MemKey, bytes: u32, now: Nanos) {
        self.updates += 1;
        self.lookups += 1;
        let v = self.records.entry(key).or_insert(MemValue {
            stime: now,
            etime: now,
            bytes: 0,
            pkts: 0,
        });
        v.etime = now;
        v.bytes += bytes as u64;
        v.pkts += 1;
    }

    /// Allocation-free probe-and-update for the edge fast paths (datapath
    /// and host agent): looks up with a borrowed key and clones it only
    /// when the record is new (once per flow-path, not once per packet —
    /// the differential Figure 13 measures). Returns `true` when this
    /// packet *created* the record, i.e. first sight of the (flow, path)
    /// pair — the signal the agent's real-time invariant checks key on.
    #[inline]
    pub fn update_borrowed(&mut self, key: &MemKey, bytes: u32, now: Nanos) -> bool {
        self.updates += 1;
        self.lookups += 1;
        if let Some(v) = self.records.get_mut(key) {
            v.etime = now;
            v.bytes += bytes as u64;
            v.pkts += 1;
            false
        } else {
            self.records.insert(
                key.clone(),
                MemValue {
                    stime: now,
                    etime: now,
                    bytes: bytes as u64,
                    pkts: 1,
                },
            );
            true
        }
    }

    /// Evicts every record of `flow` (FIN or RST observed).
    ///
    /// Single `retain` pass: evicted keys move out without the collect-
    /// then-re-hash round trip the flush path used to make.
    pub fn evict_flow(&mut self, flow: &FlowId, _now: Nanos) -> Vec<PendingRecord> {
        let mut out = Vec::new();
        self.records.retain(|k, v| {
            if k.flow == *flow {
                out.push(pending(k, v, true));
                false
            } else {
                true
            }
        });
        out
    }

    /// Evicts records idle longer than the timeout.
    pub fn evict_idle(&mut self, now: Nanos) -> Vec<PendingRecord> {
        let cutoff = now.saturating_sub(self.idle_timeout);
        let mut out = Vec::new();
        self.records.retain(|k, v| {
            if v.etime <= cutoff {
                out.push(pending(k, v, false));
                false
            } else {
                true
            }
        });
        out
    }

    /// Evicts everything (end of run / shutdown flush). Drains the map in
    /// place, so keys (including their tag vectors) move into the pending
    /// records instead of being cloned and re-hashed per entry.
    pub fn flush(&mut self, _now: Nanos) -> Vec<PendingRecord> {
        self.records
            .drain()
            .map(|(k, v)| PendingRecord {
                flow: k.flow,
                dscp_sample: k.dscp_sample,
                tags: k.tags,
                stime: v.stime,
                etime: v.etime,
                bytes: v.bytes,
                pkts: v.pkts,
                closed: false,
            })
            .collect()
    }

    /// Live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when no records are active.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total updates performed (the lookups/updates rate of §5.3).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Approximate resident bytes (§5.3 storage accounting).
    pub fn approx_bytes(&self) -> usize {
        self.records
            .keys()
            .map(|k| {
                std::mem::size_of::<MemKey>() + k.tags.len() * 2 + std::mem::size_of::<MemValue>()
            })
            .sum()
    }

    /// Peek at a live record's (bytes, pkts) for monitors.
    pub fn peek(&self, key: &MemKey) -> Option<(u64, u64)> {
        self.records.get(key).map(|v| (v.bytes, v.pkts))
    }

    /// Iterates over live record keys (the agent uses this to answer
    /// queries whose window includes not-yet-exported data, §3.2 "the
    /// server agent [can] look up the trajectory memory").
    pub fn live_keys(&self) -> impl Iterator<Item = &MemKey> {
        self.records.keys()
    }

    /// Snapshot of a live record as a pending record (not evicted).
    pub fn snapshot(&self, key: &MemKey) -> Option<PendingRecord> {
        self.records.get(key).map(|v| PendingRecord {
            flow: key.flow,
            dscp_sample: key.dscp_sample,
            tags: key.tags.clone(),
            stime: v.stime,
            etime: v.etime,
            bytes: v.bytes,
            pkts: v.pkts,
            closed: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::Ip;

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn key(sport: u16, tags: &[u16]) -> MemKey {
        MemKey {
            flow: flow(sport),
            dscp_sample: None,
            tags: tags.to_vec(),
        }
    }

    #[test]
    fn per_path_aggregation() {
        let mut m = TrajectoryMemory::default();
        m.update(key(1, &[5]), 1000, Nanos(1));
        m.update(key(1, &[5]), 500, Nanos(2));
        m.update(key(1, &[6]), 200, Nanos(3));
        assert_eq!(m.len(), 2, "same flow, two paths = two records");
        assert_eq!(m.peek(&key(1, &[5])), Some((1500, 2)));
        assert_eq!(m.peek(&key(1, &[6])), Some((200, 1)));
    }

    #[test]
    fn fin_eviction_collects_all_paths_of_flow() {
        let mut m = TrajectoryMemory::default();
        m.update(key(1, &[5]), 1000, Nanos(1));
        m.update(key(1, &[6]), 500, Nanos(2));
        m.update(key(2, &[5]), 77, Nanos(3));
        let evicted = m.evict_flow(&flow(1), Nanos(10));
        assert_eq!(evicted.len(), 2);
        assert!(evicted.iter().all(|r| r.closed));
        assert_eq!(m.len(), 1, "other flows untouched");
    }

    #[test]
    fn idle_eviction_after_timeout() {
        let mut m = TrajectoryMemory::new(Nanos::from_secs(5));
        m.update(key(1, &[]), 10, Nanos::from_secs(1));
        m.update(key(2, &[]), 10, Nanos::from_secs(4));
        let evicted = m.evict_idle(Nanos::from_secs(7));
        assert_eq!(evicted.len(), 1, "only the 6s-idle record evicts");
        assert_eq!(evicted[0].flow, flow(1));
        assert!(!evicted[0].closed);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn eviction_preserves_counts_and_times() {
        let mut m = TrajectoryMemory::default();
        m.update(key(9, &[1, 2]), 100, Nanos(50));
        m.update(key(9, &[1, 2]), 200, Nanos(90));
        let r = m.evict_flow(&flow(9), Nanos(100)).remove(0);
        assert_eq!(r.bytes, 300);
        assert_eq!(r.pkts, 2);
        assert_eq!(r.stime, Nanos(50));
        assert_eq!(r.etime, Nanos(90));
        assert_eq!(r.tags, vec![1, 2]);
    }

    #[test]
    fn flush_drains_everything() {
        let mut m = TrajectoryMemory::default();
        for i in 0..10 {
            m.update(key(i, &[]), 1, Nanos(i as u64));
        }
        let all = m.flush(Nanos(100));
        assert_eq!(all.len(), 10);
        assert!(m.is_empty());
    }

    #[test]
    fn update_borrowed_reports_new_records() {
        let mut m = TrajectoryMemory::default();
        assert!(
            m.update_borrowed(&key(1, &[5]), 100, Nanos(1)),
            "first sight"
        );
        assert!(!m.update_borrowed(&key(1, &[5]), 50, Nanos(2)));
        assert!(m.update_borrowed(&key(1, &[6]), 10, Nanos(3)), "new path");
        assert_eq!(m.peek(&key(1, &[5])), Some((150, 2)));
        // Eviction then re-sight: the record is new again.
        m.evict_flow(&flow(1), Nanos(4));
        assert!(m.update_borrowed(&key(1, &[5]), 1, Nanos(5)));
    }

    #[test]
    fn update_counters() {
        let mut m = TrajectoryMemory::default();
        for _ in 0..5 {
            m.update(key(1, &[]), 1, Nanos(1));
        }
        assert_eq!(m.update_count(), 5);
        assert!(m.approx_bytes() > 0);
    }
}
