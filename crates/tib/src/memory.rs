//! Trajectory memory: the in-kernel-datapath aggregation stage (Figure 2).
//!
//! "Using the flow ID and link IDs together as a key, we create or update a
//! per-path flow record in trajectory memory. ... Similar to NetFlow, if
//! FIN or RST packet is seen or a per-path flow record is not updated for a
//! certain time period (e.g., 5 seconds), the flow record is evicted from
//! the trajectory memory and forwarded to the trajectory construction
//! sub-module." (§3.2)
//!
//! # Internal representation
//!
//! The public key type, [`MemKey`], carries its tag stack in a `Vec<u16>`
//! — convenient at the edges, but poison on the per-packet path: hashing
//! and comparing a stored key then chases a heap pointer per probe (a
//! cache miss that profiling shows dominates the whole PathDump datapath
//! overhead). Internally the map therefore stores a `StoreKey` that
//! inlines up to [`INLINE_TAGS`] tags into the entry itself and hashes by
//! packing the entire key into a handful of `u64` words (one FNV mix per
//! word instead of one per field). Keys with deeper stacks — beyond
//! anything the bounded parser emits — spill the remainder to a boxed
//! slice. A resident probe scratch makes `update`/`update_borrowed`
//! allocation-free on the hit path; [`TrajectoryMemory::update_wire`]
//! goes one step further and builds the probe straight from the parse
//! products, with the 0/1-tag shapes specialized.
//!
//! # Eviction order
//!
//! `evict_flow`, `evict_idle` and `flush` emit pending records in the
//! canonical `(stime, flow, dscp_sample, tags)` order ([`canonical_order`])
//! rather than hash-map iteration order. That makes eviction output a pure
//! function of the record *set*, so a flow-sharded memory (see
//! `pathdump_core`'s sharded agent) merges to exactly the bytes a single
//! map would have produced.

use crate::record::PendingRecord;
use pathdump_topology::{FlowId, Ip, Nanos, Protocol, SECONDS};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

// The datapath-hot-path hasher now lives in `pathdump_topology::fnv`
// (shared with the cherrypick decode memo); re-exported here so existing
// `pathdump_tib::memory::{FnvHasher, FnvBuild}` imports keep working.
pub use pathdump_topology::{FnvBuild, FnvHasher};

/// Key of a per-path flow record: flow ID plus raw trajectory samples.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemKey {
    /// The 5-tuple.
    pub flow: FlowId,
    /// VL2 DSCP sample.
    pub dscp_sample: Option<u8>,
    /// VLAN tags in push order.
    pub tags: Vec<u16>,
}

/// Tags stored inline in a [`StoreKey`] before spilling to the heap.
/// Double the parser's `MAX_TAGS`, so wire-parsed keys never spill.
const INLINE_TAGS: usize = 8;

/// Internal storage key: a [`MemKey`] with the tag stack flattened into
/// the entry. Invariants:
///
/// - inline slots at index `>= tag_len` are zero (so the derived `Eq`
///   over the whole array agrees with logical tag equality);
/// - `spill` is empty unless `tag_len > INLINE_TAGS`.
#[derive(Clone, Debug)]
struct StoreKey {
    flow: FlowId,
    dscp_sample: Option<u8>,
    tag_len: u32,
    tags: [u16; INLINE_TAGS],
    spill: Box<[u16]>,
}

impl PartialEq for StoreKey {
    /// Equality is written by hand so the per-packet probe compiles to
    /// straight-line compares: the spill slice (a `bcmp` call in the
    /// derived impl, a serializing stall in the middle of the hashbrown
    /// probe loop) is only consulted for tag stacks deep enough to have
    /// one. Unused inline slots are zero on both sides (invariant above),
    /// so the whole-array compare is exact.
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.flow == other.flow
            && self.dscp_sample == other.dscp_sample
            && self.tag_len == other.tag_len
            && self.tags == other.tags
            && (self.tag_len as usize <= INLINE_TAGS || self.spill == other.spill)
    }
}

impl Eq for StoreKey {}

impl StoreKey {
    fn empty() -> Self {
        StoreKey {
            flow: FlowId::tcp(Ip(0), 0, Ip(0), 0),
            dscp_sample: None,
            tag_len: 0,
            tags: [0; INLINE_TAGS],
            spill: Box::default(),
        }
    }

    /// Loads `key` into this scratch without allocating (unless the tag
    /// stack spills past the inline capacity).
    fn assign(&mut self, key: &MemKey) {
        self.flow = key.flow;
        self.dscp_sample = key.dscp_sample;
        self.set_tags(key.tags.iter().copied());
    }

    /// Fills the tag slots from an iterator already in push order.
    fn set_tags(&mut self, tags: impl ExactSizeIterator<Item = u16>) {
        let n = tags.len();
        self.tag_len = n as u32;
        self.tags = [0; INLINE_TAGS];
        let mut it = tags;
        for slot in self.tags.iter_mut().take(n) {
            *slot = it.next().unwrap_or(0);
        }
        if n > INLINE_TAGS {
            self.spill = it.collect();
        } else if !self.spill.is_empty() {
            self.spill = Box::default();
        }
    }

    fn from_mem_key(key: &MemKey) -> Self {
        let mut s = StoreKey::empty();
        s.assign(key);
        s
    }

    /// Reassembles the logical tag stack (push order).
    fn tags_vec(&self) -> Vec<u16> {
        let n = self.tag_len as usize;
        let used = n.min(INLINE_TAGS);
        let mut v = Vec::with_capacity(n);
        v.extend_from_slice(&self.tags[..used]);
        v.extend_from_slice(&self.spill);
        v
    }

    fn to_mem_key(&self) -> MemKey {
        MemKey {
            flow: self.flow,
            dscp_sample: self.dscp_sample,
            tags: self.tags_vec(),
        }
    }
}

impl Hash for StoreKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        let f = &self.flow;
        state.write_u64(((f.src_ip.0 as u64) << 32) | f.dst_ip.0 as u64);
        // Pack ports, protocol (discriminant-tagged: `Tcp` and `Other(6)`
        // are distinct keys), DSCP sample presence+value and the tag
        // count into one word.
        let proto = match f.proto {
            Protocol::Tcp => 0u64,
            Protocol::Udp => 1,
            Protocol::Other(n) => 0x100 | n as u64,
        };
        let dscp = match self.dscp_sample {
            None => 0x100u64,
            Some(v) => v as u64,
        };
        state.write_u64(
            ((f.src_port as u64) << 48)
                | ((f.dst_port as u64) << 32)
                | (proto << 20)
                | (dscp << 8)
                | (self.tag_len as u64 & 0xFF),
        );
        let used = (self.tag_len as usize).min(INLINE_TAGS);
        for chunk in self.tags[..used].chunks(4) {
            let mut w = 0u64;
            for &t in chunk {
                w = (w << 16) | t as u64;
            }
            state.write_u64(w);
        }
        for chunk in self.spill.chunks(4) {
            let mut w = 0u64;
            for &t in chunk {
                w = (w << 16) | t as u64;
            }
            state.write_u64(w);
        }
    }
}

#[derive(Clone, Debug)]
struct MemValue {
    stime: Nanos,
    etime: Nanos,
    bytes: u64,
    pkts: u64,
}

/// Builds the exported record for an evicted (key, value) pair.
fn pending(k: &StoreKey, v: &MemValue, closed: bool) -> PendingRecord {
    PendingRecord {
        flow: k.flow,
        dscp_sample: k.dscp_sample,
        tags: k.tags_vec(),
        stime: v.stime,
        etime: v.etime,
        bytes: v.bytes,
        pkts: v.pkts,
        closed,
    }
}

/// Canonical deterministic order of eviction/flush output:
/// `(stime, flow, dscp_sample, tags)`. Record keys are unique within one
/// memory (and across flow-partitioned shards), so this is a total order
/// — merging per-shard eviction batches under it reproduces exactly what
/// one unsharded memory emits.
pub fn canonical_order(a: &PendingRecord, b: &PendingRecord) -> Ordering {
    (a.stime, a.flow, a.dscp_sample, &a.tags).cmp(&(b.stime, b.flow, b.dscp_sample, &b.tags))
}

/// The active per-path flow records of one edge device.
#[derive(Clone, Debug)]
pub struct TrajectoryMemory {
    records: HashMap<StoreKey, MemValue, FnvBuild>,
    /// Resident probe key, so lookups never build a key on the heap.
    probe: StoreKey,
    idle_timeout: Nanos,
    updates: u64,
    lookups: u64,
}

impl Default for TrajectoryMemory {
    fn default() -> Self {
        TrajectoryMemory::new(Nanos(5 * SECONDS))
    }
}

impl TrajectoryMemory {
    /// Creates a trajectory memory with the given idle eviction timeout
    /// (the paper uses 5 seconds).
    pub fn new(idle_timeout: Nanos) -> Self {
        TrajectoryMemory {
            records: HashMap::default(),
            probe: StoreKey::empty(),
            idle_timeout,
            updates: 0,
            lookups: 0,
        }
    }

    /// Records one packet: creates or updates the per-path flow record.
    pub fn update(&mut self, key: MemKey, bytes: u32, now: Nanos) {
        self.probe.assign(&key);
        self.touch_probe(bytes, now);
    }

    /// Allocation-free probe-and-update for the edge fast paths (datapath
    /// and host agent): looks up with a borrowed key and clones it only
    /// when the record is new (once per flow-path, not once per packet —
    /// the differential Figure 13 measures). Returns `true` when this
    /// packet *created* the record, i.e. first sight of the (flow, path)
    /// pair — the signal the agent's real-time invariant checks key on.
    #[inline]
    pub fn update_borrowed(&mut self, key: &MemKey, bytes: u32, now: Nanos) -> bool {
        self.probe.assign(key);
        self.touch_probe(bytes, now)
    }

    /// Hot-path update taking the parse products directly: the tag stack
    /// arrives **outermost-first** (exactly as `parse_into` leaves it) and
    /// is reversed into push order while filling the probe, so the caller
    /// needs no intermediate `MemKey`/`Vec` at all. The 0- and 1-tag
    /// shapes — the overwhelmingly common ones — skip the reversal loop
    /// entirely. Returns first-sight like [`Self::update_borrowed`].
    #[inline]
    pub fn update_wire(
        &mut self,
        flow: &FlowId,
        dscp_sample: Option<u8>,
        tags_outermost_first: &[u16],
        bytes: u32,
        now: Nanos,
    ) -> bool {
        self.probe.flow = *flow;
        self.probe.dscp_sample = dscp_sample;
        let n = tags_outermost_first.len();
        if n <= INLINE_TAGS {
            self.probe.tag_len = n as u32;
            self.probe.tags = [0; INLINE_TAGS];
            match tags_outermost_first {
                [] => {}
                [t] => self.probe.tags[0] = *t,
                _ => {
                    for (slot, &t) in self
                        .probe
                        .tags
                        .iter_mut()
                        .zip(tags_outermost_first.iter().rev())
                    {
                        *slot = t;
                    }
                }
            }
            if !self.probe.spill.is_empty() {
                self.probe.spill = Box::default();
            }
        } else {
            self.probe
                .set_tags(tags_outermost_first.iter().rev().copied());
        }
        self.touch_probe(bytes, now)
    }

    /// Probes with the resident scratch key and creates/bumps the record.
    ///
    /// Force-inlined: when this lookup stays a standalone function the
    /// out-of-order window can't overlap the table loads of consecutive
    /// packets, and each update eats the full cache-miss latency (~10x
    /// on the bench box). Flattened into the caller's per-packet loop the
    /// misses pipeline.
    #[inline(always)]
    fn touch_probe(&mut self, bytes: u32, now: Nanos) -> bool {
        self.updates += 1;
        self.lookups += 1;
        if let Some(v) = self.records.get_mut(&self.probe) {
            v.etime = now;
            v.bytes += bytes as u64;
            v.pkts += 1;
            false
        } else {
            self.records.insert(
                self.probe.clone(),
                MemValue {
                    stime: now,
                    etime: now,
                    bytes: bytes as u64,
                    pkts: 1,
                },
            );
            true
        }
    }

    /// Evicts every record of `flow` (FIN or RST observed), in
    /// [`canonical_order`].
    pub fn evict_flow(&mut self, flow: &FlowId, _now: Nanos) -> Vec<PendingRecord> {
        let mut out = Vec::new();
        self.records.retain(|k, v| {
            if k.flow == *flow {
                out.push(pending(k, v, true));
                false
            } else {
                true
            }
        });
        out.sort_unstable_by(canonical_order);
        out
    }

    /// Evicts records idle longer than the timeout, in [`canonical_order`].
    pub fn evict_idle(&mut self, now: Nanos) -> Vec<PendingRecord> {
        let cutoff = now.saturating_sub(self.idle_timeout);
        let mut out = Vec::new();
        self.records.retain(|k, v| {
            if v.etime <= cutoff {
                out.push(pending(k, v, false));
                false
            } else {
                true
            }
        });
        out.sort_unstable_by(canonical_order);
        out
    }

    /// Evicts everything (end of run / shutdown flush), in
    /// [`canonical_order`].
    pub fn flush(&mut self, _now: Nanos) -> Vec<PendingRecord> {
        let mut out: Vec<PendingRecord> = self
            .records
            .drain()
            .map(|(k, v)| pending(&k, &v, false))
            .collect();
        out.sort_unstable_by(canonical_order);
        out
    }

    /// Live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when no records are active.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total updates performed (the lookups/updates rate of §5.3).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Approximate resident bytes (§5.3 storage accounting), reported in
    /// terms of the logical `MemKey` so the figure stays comparable
    /// across internal representations.
    pub fn approx_bytes(&self) -> usize {
        self.records
            .keys()
            .map(|k| {
                std::mem::size_of::<MemKey>()
                    + k.tag_len as usize * 2
                    + std::mem::size_of::<MemValue>()
            })
            .sum()
    }

    /// Peek at a live record's (bytes, pkts) for monitors.
    pub fn peek(&self, key: &MemKey) -> Option<(u64, u64)> {
        self.records
            .get(&StoreKey::from_mem_key(key))
            .map(|v| (v.bytes, v.pkts))
    }

    /// Iterates over live record keys (the agent uses this to answer
    /// queries whose window includes not-yet-exported data, §3.2 "the
    /// server agent [can] look up the trajectory memory"). Keys are
    /// materialized from the inline storage form, so the iterator yields
    /// them by value.
    pub fn live_keys(&self) -> impl Iterator<Item = MemKey> + '_ {
        self.records.keys().map(StoreKey::to_mem_key)
    }

    /// Snapshot of a live record as a pending record (not evicted).
    pub fn snapshot(&self, key: &MemKey) -> Option<PendingRecord> {
        self.records
            .get(&StoreKey::from_mem_key(key))
            .map(|v| PendingRecord {
                flow: key.flow,
                dscp_sample: key.dscp_sample,
                tags: key.tags.clone(),
                stime: v.stime,
                etime: v.etime,
                bytes: v.bytes,
                pkts: v.pkts,
                closed: false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::Ip;

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn key(sport: u16, tags: &[u16]) -> MemKey {
        MemKey {
            flow: flow(sport),
            dscp_sample: None,
            tags: tags.to_vec(),
        }
    }

    #[test]
    fn per_path_aggregation() {
        let mut m = TrajectoryMemory::default();
        m.update(key(1, &[5]), 1000, Nanos(1));
        m.update(key(1, &[5]), 500, Nanos(2));
        m.update(key(1, &[6]), 200, Nanos(3));
        assert_eq!(m.len(), 2, "same flow, two paths = two records");
        assert_eq!(m.peek(&key(1, &[5])), Some((1500, 2)));
        assert_eq!(m.peek(&key(1, &[6])), Some((200, 1)));
    }

    #[test]
    fn fin_eviction_collects_all_paths_of_flow() {
        let mut m = TrajectoryMemory::default();
        m.update(key(1, &[5]), 1000, Nanos(1));
        m.update(key(1, &[6]), 500, Nanos(2));
        m.update(key(2, &[5]), 77, Nanos(3));
        let evicted = m.evict_flow(&flow(1), Nanos(10));
        assert_eq!(evicted.len(), 2);
        assert!(evicted.iter().all(|r| r.closed));
        assert_eq!(m.len(), 1, "other flows untouched");
    }

    #[test]
    fn idle_eviction_after_timeout() {
        let mut m = TrajectoryMemory::new(Nanos::from_secs(5));
        m.update(key(1, &[]), 10, Nanos::from_secs(1));
        m.update(key(2, &[]), 10, Nanos::from_secs(4));
        let evicted = m.evict_idle(Nanos::from_secs(7));
        assert_eq!(evicted.len(), 1, "only the 6s-idle record evicts");
        assert_eq!(evicted[0].flow, flow(1));
        assert!(!evicted[0].closed);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn eviction_preserves_counts_and_times() {
        let mut m = TrajectoryMemory::default();
        m.update(key(9, &[1, 2]), 100, Nanos(50));
        m.update(key(9, &[1, 2]), 200, Nanos(90));
        let r = m.evict_flow(&flow(9), Nanos(100)).remove(0);
        assert_eq!(r.bytes, 300);
        assert_eq!(r.pkts, 2);
        assert_eq!(r.stime, Nanos(50));
        assert_eq!(r.etime, Nanos(90));
        assert_eq!(r.tags, vec![1, 2]);
    }

    #[test]
    fn flush_drains_everything() {
        let mut m = TrajectoryMemory::default();
        for i in 0..10 {
            m.update(key(i, &[]), 1, Nanos(i as u64));
        }
        let all = m.flush(Nanos(100));
        assert_eq!(all.len(), 10);
        assert!(m.is_empty());
    }

    #[test]
    fn update_borrowed_reports_new_records() {
        let mut m = TrajectoryMemory::default();
        assert!(
            m.update_borrowed(&key(1, &[5]), 100, Nanos(1)),
            "first sight"
        );
        assert!(!m.update_borrowed(&key(1, &[5]), 50, Nanos(2)));
        assert!(m.update_borrowed(&key(1, &[6]), 10, Nanos(3)), "new path");
        assert_eq!(m.peek(&key(1, &[5])), Some((150, 2)));
        // Eviction then re-sight: the record is new again.
        m.evict_flow(&flow(1), Nanos(4));
        assert!(m.update_borrowed(&key(1, &[5]), 1, Nanos(5)));
    }

    #[test]
    fn update_counters() {
        let mut m = TrajectoryMemory::default();
        for _ in 0..5 {
            m.update(key(1, &[]), 1, Nanos(1));
        }
        assert_eq!(m.update_count(), 5);
        assert!(m.approx_bytes() > 0);
    }

    #[test]
    fn update_wire_matches_update_borrowed() {
        // `update_wire` takes tags outermost-first; `MemKey.tags` is push
        // order (innermost-first). The two must land on the same record.
        for tags in [
            vec![],
            vec![7],
            vec![3, 9],
            vec![1, 2, 3, 4],
            (0..11u16).collect::<Vec<_>>(), // spills past the inline slots
        ] {
            let mut a = TrajectoryMemory::default();
            let mut b = TrajectoryMemory::default();
            let push_order: Vec<u16> = tags.iter().rev().copied().collect();
            let k = MemKey {
                flow: flow(4),
                dscp_sample: Some(3),
                tags: push_order,
            };
            let first_a = a.update_borrowed(&k, 100, Nanos(1));
            let first_b = b.update_wire(&flow(4), Some(3), &tags, 100, Nanos(1));
            assert_eq!(first_a, first_b);
            assert!(!b.update_wire(&flow(4), Some(3), &tags, 50, Nanos(2)));
            assert_eq!(b.peek(&k), Some((150, 2)), "tags {tags:?}");
            assert_eq!(
                a.flush(Nanos(9)).first().map(|r| r.tags.clone()),
                b.flush(Nanos(9)).first().map(|r| r.tags.clone())
            );
        }
    }

    #[test]
    fn deep_tag_stacks_round_trip_through_spill() {
        let mut m = TrajectoryMemory::default();
        let deep: Vec<u16> = (100..100 + 2 * INLINE_TAGS as u16).collect();
        let k = key(1, &deep);
        assert!(m.update_borrowed(&k, 10, Nanos(1)));
        assert!(!m.update_borrowed(&k, 10, Nanos(2)));
        assert_eq!(m.peek(&k), Some((20, 2)));
        let keys: Vec<MemKey> = m.live_keys().collect();
        assert_eq!(keys, vec![k.clone()]);
        let r = m.evict_flow(&flow(1), Nanos(3)).remove(0);
        assert_eq!(r.tags, deep);
    }

    #[test]
    fn inline_keys_distinguish_truncated_prefixes() {
        // A stack of n tags must not collide with its own prefix padded
        // by zeroed slots, nor with a zero-valued tag in the next slot.
        let mut m = TrajectoryMemory::default();
        m.update(key(1, &[5]), 1, Nanos(1));
        m.update(key(1, &[5, 0]), 2, Nanos(1));
        m.update(key(1, &[5, 0, 0]), 3, Nanos(1));
        assert_eq!(m.len(), 3);
        assert_eq!(m.peek(&key(1, &[5])), Some((1, 1)));
        assert_eq!(m.peek(&key(1, &[5, 0])), Some((2, 1)));
        assert_eq!(m.peek(&key(1, &[5, 0, 0])), Some((3, 1)));
    }

    #[test]
    fn evictions_come_out_in_canonical_order() {
        let mut m = TrajectoryMemory::default();
        // Insert in scrambled order; eviction must sort by
        // (stime, flow, dscp_sample, tags) regardless.
        m.update(key(3, &[2]), 1, Nanos(30));
        m.update(key(1, &[9, 1]), 1, Nanos(10));
        m.update(key(2, &[]), 1, Nanos(10));
        m.update(key(1, &[0]), 1, Nanos(10));
        let out = m.flush(Nanos(99));
        let order: Vec<(Nanos, u16, Vec<u16>)> = out
            .iter()
            .map(|r| (r.stime, r.flow.src_port, r.tags.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                (Nanos(10), 1, vec![0]),
                (Nanos(10), 1, vec![9, 1]),
                (Nanos(10), 2, vec![]),
                (Nanos(30), 3, vec![2]),
            ]
        );
    }
}
