//! TIB snapshots: full serialization of a store, for persistence and the
//! §5.3 disk-footprint accounting ("about 110 MB of disk space to store
//! 240K flow entries").

use crate::record::TibRecord;
use crate::tib::Tib;
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireResult};

/// Magic bytes marking a TIB snapshot.
pub const SNAPSHOT_MAGIC: u32 = 0x5449_4231; // "TIB1"

/// Serializes the whole TIB to a byte vector (what a disk file would hold).
pub fn save(tib: &Tib) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64 + tib.len() * 48);
    enc.put_u32(SNAPSHOT_MAGIC);
    enc.put_varint(tib.len() as u64);
    for rec in tib.records() {
        rec.encode(&mut enc);
    }
    enc.into_bytes()
}

/// Restores a TIB from snapshot bytes.
pub fn load(bytes: &[u8]) -> WireResult<Tib> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(pathdump_wire::WireError::InvalidTag(magic));
    }
    let n = dec.get_varint()? as usize;
    let mut tib = Tib::new();
    for _ in 0..n {
        tib.insert(TibRecord::decode(&mut dec)?);
    }
    dec.finish()?;
    Ok(tib)
}

/// Snapshot size in bytes without materializing the buffer.
pub fn snapshot_size(tib: &Tib) -> usize {
    save(tib).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FlowId, Ip, Nanos, Path, SwitchId, TimeRange};

    fn populate(n: u16) -> Tib {
        let mut t = Tib::new();
        for i in 0..n {
            t.insert(TibRecord {
                flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 1000 + i, Ip::new(10, 1, 0, 2), 80),
                path: Path::new(vec![SwitchId(0), SwitchId(8 + i % 4), SwitchId(4)]),
                stime: Nanos(i as u64 * 100),
                etime: Nanos(i as u64 * 100 + 50),
                bytes: i as u64 * 1000,
                pkts: i as u64,
            });
        }
        t
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let t = populate(200);
        let bytes = save(&t);
        let back = load(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(
            back.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY),
            t.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY)
        );
        assert_eq!(
            back.top_k_flows(5, TimeRange::ANY),
            t.top_k_flows(5, TimeRange::ANY)
        );
    }

    #[test]
    fn corrupt_magic_rejected() {
        let t = populate(3);
        let mut bytes = save(&t);
        bytes[0] ^= 0xFF;
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let t = populate(10);
        let bytes = save(&t);
        assert!(load(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn per_record_footprint_is_compact() {
        let t = populate(1000);
        let per_record = snapshot_size(&t) as f64 / 1000.0;
        // The paper's MongoDB footprint is ~480 B/record; the binary
        // snapshot must be well under that.
        assert!(per_record < 64.0, "snapshot uses {per_record:.1} B/record");
    }
}
