//! TIB snapshots: full serialization of a store, for persistence and the
//! §5.3 disk-footprint accounting ("about 110 MB of disk space to store
//! 240K flow entries").
//!
//! # Formats
//!
//! Two envelope versions, distinguished by the leading magic:
//!
//! **TIB2** ([`SNAPSHOT_MAGIC`], flat store):
//!
//! ```text
//! u32 magic "TIB2" | varint bucket_width | varint n_records | records...
//! ```
//!
//! **TIB3** ([`SNAPSHOT_MAGIC_V3`], tiered store — adds a versioned
//! segment directory so delta snapshots reuse sealed segments' cached
//! encoded blocks instead of re-serializing the whole store):
//!
//! ```text
//! u32 magic "TIB3" | varint bucket_width
//!   | varint n_sealed
//!   | n_sealed × ( varint block_len | block )   -- sealed segments, oldest first
//!   | block                                      -- the head segment
//! ```
//!
//! where each `block` is the TIB2 record-slice encoding (`varint count`
//! then each record) — the exact bytes `save_into` streams, and the exact
//! bytes a cold segment file holds.
//!
//! # Compatibility
//!
//! - TIB2 files still load: [`load_tiered`] accepts either magic (a TIB2
//!   file becomes a head-only tiered store), and the plain [`load`]
//!   flattens a TIB3 file into one arena, so `diff_snapshots` and the
//!   CLI work across both.
//! - The TIB2 *write* path (`save`/`save_into`) is byte-for-byte
//!   unchanged.
//!
//! # Truncation is corruption here
//!
//! Unlike the WAL (whose torn tail is explicitly tolerated — see
//! [`crate::wal`]), a snapshot is written atomically: every load path
//! rejects truncated or trailing bytes (`Decoder::finish`), and each
//! segment block must decode to exactly its declared length. The
//! crash-recovery suite regression-tests that distinction.

use crate::record::TibRecord;
use crate::segment::{StoreResult, TieredTib};
use crate::tib::Tib;
use pathdump_wire::{from_bytes, Decode, Decoder, Encode, Encoder, WireError, WireResult};
use std::sync::Arc;

/// Magic bytes marking a flat TIB snapshot. "TIB2" since the header
/// gained the bucket width (v1 snapshots carried only the record count).
pub const SNAPSHOT_MAGIC: u32 = 0x5449_4232; // "TIB2"

/// Magic bytes marking a tiered TIB snapshot with a segment directory.
pub const SNAPSHOT_MAGIC_V3: u32 = 0x5449_4233; // "TIB3"

/// Serializes the whole TIB to a byte vector (what a disk file would hold).
pub fn save(tib: &Tib) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + tib.len() * 48);
    save_into(tib, &mut out);
    out
}

/// Streaming save: appends the snapshot to a caller-provided buffer via
/// the wire codec's `encode_into` path, so periodic snapshotters reuse
/// one buffer instead of allocating per save.
pub fn save_into(tib: &Tib, out: &mut Vec<u8>) {
    let mut enc = Encoder::from_vec(std::mem::take(out));
    enc.put_u32(SNAPSHOT_MAGIC);
    // Persist the time-index configuration so a tuned bucket width
    // survives the round trip.
    enc.put_varint(tib.bucket_width().0);
    // The slice impl writes `varint(len)` then each record — byte-for-byte
    // the format `load` expects.
    tib.records().encode(&mut enc);
    *out = enc.into_bytes();
}

/// Serializes a tiered store as a TIB3 snapshot. Sealed segments
/// contribute their cached encoded blocks (a cold segment's block is
/// read back from disk), so repeated checkpoints only re-encode the
/// head — the delta-snapshot property.
pub fn save_tiered(tib: &TieredTib) -> StoreResult<Vec<u8>> {
    let mut out = Vec::with_capacity(64 + tib.head().len() * 48);
    save_tiered_into(tib, &mut out)?;
    Ok(out)
}

/// Streaming tiered save; see [`save_tiered`]. Appends to `out`.
pub fn save_tiered_into(tib: &TieredTib, out: &mut Vec<u8>) -> StoreResult<()> {
    let blocks = tib.sealed_blocks()?;
    let mut enc = Encoder::from_vec(std::mem::take(out));
    enc.put_u32(SNAPSHOT_MAGIC_V3);
    enc.put_varint(tib.bucket_width().0);
    enc.put_varint(blocks.len() as u64);
    for block in &blocks {
        enc.put_varint(block.len() as u64);
        enc.put_raw(block);
    }
    tib.head().records().encode(&mut enc);
    *out = enc.into_bytes();
    Ok(())
}

/// Restores a TIB from snapshot bytes. Accepts both envelopes: a TIB3
/// file is flattened into one arena (segment boundaries are a storage
/// detail; record order is preserved), so diffing and the CLI work on
/// either version.
pub fn load(bytes: &[u8]) -> WireResult<Tib> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32()?;
    match magic {
        SNAPSHOT_MAGIC => {
            let width = header_width(&mut dec)?;
            let n = dec.get_varint()? as usize;
            let mut tib = Tib::with_bucket_width(width);
            for _ in 0..n {
                tib.insert(TibRecord::decode(&mut dec)?);
            }
            dec.finish()?;
            Ok(tib)
        }
        SNAPSHOT_MAGIC_V3 => {
            let width = header_width(&mut dec)?;
            let mut tib = Tib::with_bucket_width(width);
            each_v3_block(&mut dec, &mut |records, _| {
                for rec in records {
                    tib.insert(rec);
                }
            })?;
            Ok(tib)
        }
        other => Err(WireError::InvalidTag(other)),
    }
}

/// Restores a tiered store from snapshot bytes. A TIB3 file rebuilds its
/// sealed segments (indexes built lazily on first query — recovery stays
/// cheap); a TIB2 file loads as a head-only store.
pub fn load_tiered(bytes: &[u8]) -> WireResult<TieredTib> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32()?;
    match magic {
        SNAPSHOT_MAGIC => {
            let width = header_width(&mut dec)?;
            let n = dec.get_varint()? as usize;
            let mut tib = TieredTib::with_bucket_width(width);
            for _ in 0..n {
                tib.insert(TibRecord::decode(&mut dec)?);
            }
            dec.finish()?;
            Ok(tib)
        }
        SNAPSHOT_MAGIC_V3 => {
            let width = header_width(&mut dec)?;
            let mut tib = TieredTib::with_bucket_width(width);
            each_v3_block(&mut dec, &mut |records, block| match block {
                Some(encoded) => tib.push_sealed_block(encoded, &records),
                None => {
                    for rec in records {
                        tib.insert(rec);
                    }
                }
            })?;
            Ok(tib)
        }
        other => Err(WireError::InvalidTag(other)),
    }
}

/// Decodes and validates the bucket width common to both headers.
fn header_width(dec: &mut Decoder<'_>) -> WireResult<pathdump_topology::Nanos> {
    let width = dec.get_varint()?;
    if width == 0 {
        return Err(WireError::InvalidTag(0));
    }
    Ok(pathdump_topology::Nanos(width))
}

/// Walks a TIB3 body after the header: yields each sealed segment's
/// decoded records (with its raw block) then the head's records (block
/// `None`), enforcing exact block lengths and full consumption.
fn each_v3_block(
    dec: &mut Decoder<'_>,
    f: &mut dyn FnMut(Vec<TibRecord>, Option<Arc<Vec<u8>>>),
) -> WireResult<()> {
    let n_sealed = dec.get_varint()? as usize;
    for _ in 0..n_sealed {
        let block_len = dec.get_varint()? as usize;
        let block = dec.get_raw(block_len)?.to_vec();
        // `from_bytes` enforces that the block decodes to exactly its
        // declared length — a short or overlong block is corruption.
        let records: Vec<TibRecord> = from_bytes(&block)?;
        f(records, Some(Arc::new(block)));
    }
    let n_head = dec.get_varint()? as usize;
    let mut head = Vec::with_capacity(n_head.min(1 << 16));
    for _ in 0..n_head {
        head.push(TibRecord::decode(dec)?);
    }
    dec.finish()?;
    f(head, None);
    Ok(())
}

/// Snapshot size in bytes without materializing the buffer.
pub fn snapshot_size(tib: &Tib) -> usize {
    save(tib).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tib::TibRead;
    use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};

    fn populate(n: u16) -> Tib {
        let mut t = Tib::new();
        for i in 0..n {
            t.insert(TibRecord {
                flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 1000 + i, Ip::new(10, 1, 0, 2), 80),
                path: Path::new(vec![SwitchId(0), SwitchId(8 + i % 4), SwitchId(4)]),
                stime: Nanos(i as u64 * 100),
                etime: Nanos(i as u64 * 100 + 50),
                bytes: i as u64 * 1000,
                pkts: i as u64,
            });
        }
        t
    }

    fn populate_tiered(n: u16, seal_every: usize) -> TieredTib {
        let mut t = TieredTib::new();
        t.set_seal_after(Some(seal_every));
        for rec in populate(n).records() {
            t.insert(rec.clone());
        }
        t
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let t = populate(200);
        let bytes = save(&t);
        let back = load(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(
            back.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY),
            t.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY)
        );
        assert_eq!(
            back.top_k_flows(5, TimeRange::ANY),
            t.top_k_flows(5, TimeRange::ANY)
        );
    }

    #[test]
    fn bucket_width_survives_roundtrip() {
        let mut t = crate::tib::Tib::with_bucket_width(Nanos(1000));
        t.insert(TibRecord {
            flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 1, Ip::new(10, 1, 0, 2), 80),
            path: Path::new(vec![SwitchId(0), SwitchId(4)]),
            stime: Nanos(5),
            etime: Nanos(9),
            bytes: 42,
            pkts: 1,
        });
        let back = load(&save(&t)).unwrap();
        assert_eq!(back.bucket_width(), Nanos(1000));
        assert_eq!(
            load(&save(&populate(3))).unwrap().bucket_width(),
            crate::tib::DEFAULT_BUCKET_WIDTH
        );
    }

    #[test]
    fn save_into_appends_same_bytes() {
        let t = populate(50);
        let mut buf = vec![0xEE];
        save_into(&t, &mut buf);
        assert_eq!(buf[0], 0xEE, "caller prefix preserved");
        // Independently hand-built expectation (save delegates to
        // save_into, so comparing the two would be a tautology).
        let mut exp = Encoder::new();
        exp.put_u32(SNAPSHOT_MAGIC);
        exp.put_varint(t.bucket_width().0);
        exp.put_varint(t.len() as u64);
        for rec in t.records() {
            rec.encode(&mut exp);
        }
        assert_eq!(&buf[1..], exp.bytes());
        let back = load(&buf[1..]).unwrap();
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let t = populate(3);
        let mut bytes = save(&t);
        bytes[0] ^= 0xFF;
        assert!(load(&bytes).is_err());
        assert!(load_tiered(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let t = populate(10);
        let bytes = save(&t);
        assert!(load(&bytes[..bytes.len() - 3]).is_err());
        assert!(load_tiered(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn tiered_roundtrip_preserves_queries() {
        let t = populate_tiered(200, 64);
        assert!(t.num_sealed() >= 3);
        let bytes = save_tiered(&t).unwrap();
        let back = load_tiered(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.num_sealed(), t.num_sealed());
        assert_eq!(back.bucket_width(), t.bucket_width());
        assert_eq!(back.records_vec(), t.records_vec());
        assert_eq!(
            back.top_k_flows(7, TimeRange::ANY),
            t.top_k_flows(7, TimeRange::ANY)
        );
        assert_eq!(
            back.get_flows(LinkPattern::into(SwitchId(4)), TimeRange::since(Nanos(900))),
            t.get_flows(LinkPattern::into(SwitchId(4)), TimeRange::since(Nanos(900)))
        );
    }

    #[test]
    fn flat_load_flattens_tiered_snapshot() {
        let t = populate_tiered(120, 32);
        let bytes = save_tiered(&t).unwrap();
        let flat = load(&bytes).unwrap();
        assert_eq!(flat.records().to_vec(), t.records_vec());
        assert_eq!(flat.bucket_width(), t.bucket_width());
        // And a flat TIB2 file loads as a head-only tiered store.
        let t2 = populate(40);
        let tiered = load_tiered(&save(&t2)).unwrap();
        assert_eq!(tiered.num_sealed(), 0);
        assert_eq!(tiered.records_vec(), t2.records().to_vec());
    }

    #[test]
    fn tiered_truncation_rejected_at_every_cut() {
        // Unlike the WAL torn tail, snapshot truncation is always
        // corruption: every strict prefix must fail to load.
        let t = populate_tiered(24, 8);
        let bytes = save_tiered(&t).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                load_tiered(&bytes[..cut]).is_err(),
                "truncated snapshot ({cut}/{} bytes) must not load",
                bytes.len()
            );
            assert!(load(&bytes[..cut]).is_err(), "flat load too (cut {cut})");
        }
    }

    #[test]
    fn tiered_trailing_bytes_rejected() {
        let t = populate_tiered(12, 4);
        let mut bytes = save_tiered(&t).unwrap();
        bytes.push(0x00);
        assert!(load_tiered(&bytes).is_err());
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn tiered_corrupt_block_rejected() {
        // Two records per block keeps block_len a single-byte varint.
        let t = populate_tiered(6, 2);
        let bytes = save_tiered(&t).unwrap();
        // Overstate the first block's length: the directory then walks
        // into record bytes and must fail (no silent misparse).
        let mut grown = bytes.clone();
        // Header is magic(4) + width varint; first varint after is
        // n_sealed, then the first block_len varint.
        let mut dec = Decoder::new(&bytes);
        dec.get_u32().unwrap();
        dec.get_varint().unwrap();
        dec.get_varint().unwrap();
        let off = bytes.len() - dec.remaining();
        assert!(grown[off] < 0x7F, "test assumes single-byte block_len");
        grown[off] += 1;
        assert!(load_tiered(&grown).is_err());
        let mut shrunk = bytes;
        shrunk[off] -= 1;
        assert!(load_tiered(&shrunk).is_err());
    }

    #[test]
    fn per_record_footprint_is_compact() {
        let t = populate(1000);
        let per_record = snapshot_size(&t) as f64 / 1000.0;
        // The paper's MongoDB footprint is ~480 B/record; the binary
        // snapshot must be well under that.
        assert!(per_record < 64.0, "snapshot uses {per_record:.1} B/record");
    }

    #[test]
    fn delta_checkpoint_reuses_sealed_blocks() {
        // The point of the segment directory: a second checkpoint after
        // more inserts re-encodes only the head.
        let mut t = populate_tiered(100, 32);
        let first = save_tiered(&t).unwrap();
        for rec in populate(10).records() {
            let mut r = rec.clone();
            r.stime = Nanos(r.stime.0 + 1_000_000);
            r.etime = Nanos(r.etime.0 + 1_000_000);
            t.insert(r);
        }
        let second = save_tiered(&t).unwrap();
        assert!(second.len() > first.len());
        let back = load_tiered(&second).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.records_vec(), t.records_vec());
    }
}
