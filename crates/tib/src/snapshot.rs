//! TIB snapshots: full serialization of a store, for persistence and the
//! §5.3 disk-footprint accounting ("about 110 MB of disk space to store
//! 240K flow entries").

use crate::record::TibRecord;
use crate::tib::Tib;
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireResult};

/// Magic bytes marking a TIB snapshot. "TIB2" since the header gained
/// the bucket width (v1 snapshots carried only the record count).
pub const SNAPSHOT_MAGIC: u32 = 0x5449_4232; // "TIB2"

/// Serializes the whole TIB to a byte vector (what a disk file would hold).
pub fn save(tib: &Tib) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + tib.len() * 48);
    save_into(tib, &mut out);
    out
}

/// Streaming save: appends the snapshot to a caller-provided buffer via
/// the wire codec's `encode_into` path, so periodic snapshotters reuse
/// one buffer instead of allocating per save.
pub fn save_into(tib: &Tib, out: &mut Vec<u8>) {
    let mut enc = Encoder::from_vec(std::mem::take(out));
    enc.put_u32(SNAPSHOT_MAGIC);
    // Persist the time-index configuration so a tuned bucket width
    // survives the round trip.
    enc.put_varint(tib.bucket_width().0);
    // The slice impl writes `varint(len)` then each record — byte-for-byte
    // the format `load` expects.
    tib.records().encode(&mut enc);
    *out = enc.into_bytes();
}

/// Restores a TIB from snapshot bytes.
pub fn load(bytes: &[u8]) -> WireResult<Tib> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.get_u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(pathdump_wire::WireError::InvalidTag(magic));
    }
    let width = dec.get_varint()?;
    if width == 0 {
        return Err(pathdump_wire::WireError::InvalidTag(0));
    }
    let n = dec.get_varint()? as usize;
    let mut tib = Tib::with_bucket_width(pathdump_topology::Nanos(width));
    for _ in 0..n {
        tib.insert(TibRecord::decode(&mut dec)?);
    }
    dec.finish()?;
    Ok(tib)
}

/// Snapshot size in bytes without materializing the buffer.
pub fn snapshot_size(tib: &Tib) -> usize {
    save(tib).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{FlowId, Ip, Nanos, Path, SwitchId, TimeRange};

    fn populate(n: u16) -> Tib {
        let mut t = Tib::new();
        for i in 0..n {
            t.insert(TibRecord {
                flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 1000 + i, Ip::new(10, 1, 0, 2), 80),
                path: Path::new(vec![SwitchId(0), SwitchId(8 + i % 4), SwitchId(4)]),
                stime: Nanos(i as u64 * 100),
                etime: Nanos(i as u64 * 100 + 50),
                bytes: i as u64 * 1000,
                pkts: i as u64,
            });
        }
        t
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let t = populate(200);
        let bytes = save(&t);
        let back = load(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(
            back.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY),
            t.get_flows(pathdump_topology::LinkPattern::ANY, TimeRange::ANY)
        );
        assert_eq!(
            back.top_k_flows(5, TimeRange::ANY),
            t.top_k_flows(5, TimeRange::ANY)
        );
    }

    #[test]
    fn bucket_width_survives_roundtrip() {
        let mut t = crate::tib::Tib::with_bucket_width(Nanos(1000));
        t.insert(TibRecord {
            flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 1, Ip::new(10, 1, 0, 2), 80),
            path: Path::new(vec![SwitchId(0), SwitchId(4)]),
            stime: Nanos(5),
            etime: Nanos(9),
            bytes: 42,
            pkts: 1,
        });
        let back = load(&save(&t)).unwrap();
        assert_eq!(back.bucket_width(), Nanos(1000));
        assert_eq!(
            load(&save(&populate(3))).unwrap().bucket_width(),
            crate::tib::DEFAULT_BUCKET_WIDTH
        );
    }

    #[test]
    fn save_into_appends_same_bytes() {
        let t = populate(50);
        let mut buf = vec![0xEE];
        save_into(&t, &mut buf);
        assert_eq!(buf[0], 0xEE, "caller prefix preserved");
        // Independently hand-built expectation (save delegates to
        // save_into, so comparing the two would be a tautology).
        let mut exp = Encoder::new();
        exp.put_u32(SNAPSHOT_MAGIC);
        exp.put_varint(t.bucket_width().0);
        exp.put_varint(t.len() as u64);
        for rec in t.records() {
            rec.encode(&mut exp);
        }
        assert_eq!(&buf[1..], exp.bytes());
        let back = load(&buf[1..]).unwrap();
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let t = populate(3);
        let mut bytes = save(&t);
        bytes[0] ^= 0xFF;
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let t = populate(10);
        let bytes = save(&t);
        assert!(load(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn per_record_footprint_is_compact() {
        let t = populate(1000);
        let per_record = snapshot_size(&t) as f64 / 1000.0;
        // The paper's MongoDB footprint is ~480 B/record; the binary
        // snapshot must be well under that.
        assert!(per_record < 64.0, "snapshot uses {per_record:.1} B/record");
    }
}
