//! TIB records: `<flow ID, path, stime, etime, #bytes, #pkts>` (Figure 2).

use pathdump_topology::{FlowId, Nanos, Path, TimeRange};
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireResult};

/// One per-path flow record, the unit the TIB stores.
///
/// "One per-path flow record corresponds to statistics on packets of the
/// same flow that traversed the same path. Thus, at a given point in time,
/// more than one per-path flow record can be associated with a flow" (§3.2)
/// — e.g. under packet spraying.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TibRecord {
    /// The 5-tuple.
    pub flow: FlowId,
    /// The reconstructed end-to-end switch path.
    pub path: Path,
    /// First packet time covered by this record.
    pub stime: Nanos,
    /// Last packet time covered by this record.
    pub etime: Nanos,
    /// Bytes counted.
    pub bytes: u64,
    /// Packets counted.
    pub pkts: u64,
}

impl TibRecord {
    /// Returns true if the record's active interval overlaps `range`.
    pub fn overlaps(&self, range: &TimeRange) -> bool {
        range.overlaps(self.stime, self.etime)
    }

    /// Record duration.
    pub fn duration(&self) -> Nanos {
        self.etime.saturating_sub(self.stime)
    }
}

impl Encode for TibRecord {
    fn encode(&self, enc: &mut Encoder) {
        self.flow.encode(enc);
        self.path.encode(enc);
        self.stime.encode(enc);
        // Delta-encode etime relative to stime (records are short-lived).
        enc.put_varint(self.etime.0 - self.stime.0);
        enc.put_varint(self.bytes);
        enc.put_varint(self.pkts);
    }
}

impl Decode for TibRecord {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let flow = FlowId::decode(dec)?;
        let path = Path::decode(dec)?;
        let stime = Nanos::decode(dec)?;
        let delta = dec.get_varint()?;
        let bytes = dec.get_varint()?;
        let pkts = dec.get_varint()?;
        Ok(TibRecord {
            flow,
            path,
            stime,
            etime: Nanos(stime.0 + delta),
            bytes,
            pkts,
        })
    }
}

/// A record evicted from trajectory memory, before path construction: the
/// key still holds raw link IDs (Figure 2's "export per-path flow record").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PendingRecord {
    /// The 5-tuple.
    pub flow: FlowId,
    /// VL2 DSCP sample, if any.
    pub dscp_sample: Option<u8>,
    /// VLAN tags in push order.
    pub tags: Vec<u16>,
    /// First packet time.
    pub stime: Nanos,
    /// Last packet time.
    pub etime: Nanos,
    /// Bytes counted.
    pub bytes: u64,
    /// Packets counted.
    pub pkts: u64,
    /// Whether eviction was triggered by FIN/RST (vs idle timeout).
    pub closed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{Ip, SwitchId};
    use pathdump_wire::{from_bytes, to_bytes};

    fn rec() -> TibRecord {
        TibRecord {
            flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 40000, Ip::new(10, 1, 0, 2), 80),
            path: Path::new(vec![
                SwitchId(0),
                SwitchId(8),
                SwitchId(16),
                SwitchId(12),
                SwitchId(4),
            ]),
            stime: Nanos::from_millis(10),
            etime: Nanos::from_millis(250),
            bytes: 123_456,
            pkts: 89,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let r = rec();
        let bytes = to_bytes(&r);
        let back: TibRecord = from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compact_encoding() {
        // A record should be tens of bytes, not hundreds (the paper's
        // 240K-records-in-110MB MongoDB baseline is ~480B/record; our wire
        // format is far tighter).
        let n = to_bytes(&rec()).len();
        assert!(n < 64, "record encodes to {n} bytes");
    }

    #[test]
    fn overlap_and_duration() {
        let r = rec();
        assert!(r.overlaps(&TimeRange::ANY));
        assert!(r.overlaps(&TimeRange::between(Nanos::ZERO, Nanos::from_millis(10))));
        assert!(!r.overlaps(&TimeRange::since(Nanos::from_secs(1))));
        assert_eq!(r.duration(), Nanos::from_millis(240));
    }
}
