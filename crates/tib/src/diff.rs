//! Ranged TIB diffing: the time-travel primitive behind the operator
//! question "what changed about flow F's path before vs after time T?"
//! (the §4.1 path-change debugging workflow, made a first-class `Tib`
//! operation instead of two ad-hoc queries glued together).
//!
//! A diff compares two *views* — each a `(Tib, TimeRange)` pair — by the
//! distinct path set every flow took within the view's range. The two
//! views may be the same store with two ranges (time travel within one
//! TIB), or two different stores (e.g. two TIB2 snapshots loaded with
//! [`crate::snapshot::load`], diffed via [`diff_snapshots`]).

use crate::record::TibRecord;
use crate::segment::TieredTib;
use crate::tib::{Tib, TibRead};
use pathdump_topology::{FlowId, LinkPattern, Nanos, Path, TimeRange};
use pathdump_wire::WireResult;
use std::collections::HashSet;

/// One flow whose distinct path set differs between the two views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathDelta {
    /// The flow.
    pub flow: FlowId,
    /// Distinct paths in the *before* view (insertion order).
    pub before: Vec<Path>,
    /// Distinct paths in the *after* view (insertion order).
    pub after: Vec<Path>,
}

impl PathDelta {
    /// Paths present after but not before (new routes).
    pub fn added(&self) -> Vec<&Path> {
        let seen: HashSet<&Path> = self.before.iter().collect();
        self.after.iter().filter(|p| !seen.contains(*p)).collect()
    }

    /// Paths present before but not after (retired routes).
    pub fn removed(&self) -> Vec<&Path> {
        let seen: HashSet<&Path> = self.after.iter().collect();
        self.before.iter().filter(|p| !seen.contains(*p)).collect()
    }
}

/// The result of diffing two TIB views.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TibDiff {
    /// Flows whose path sets differ, in first-observation order (before
    /// view first, then flows only seen in the after view).
    pub deltas: Vec<PathDelta>,
    /// Records overlapping the before range.
    pub before_records: usize,
    /// Records overlapping the after range.
    pub after_records: usize,
}

impl TibDiff {
    /// True when no flow changed paths between the views.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Diffs two views: per-flow distinct path sets within each range.
    /// Flows whose path sets are identical in both views are omitted; a
    /// flow present in only one view appears with the other side empty.
    pub fn between<B: TibRead + ?Sized, A: TibRead + ?Sized>(
        before: &B,
        before_range: TimeRange,
        after: &A,
        after_range: TimeRange,
    ) -> TibDiff {
        let mut flows = before.get_flows(LinkPattern::ANY, before_range);
        let seen: HashSet<FlowId> = flows.iter().copied().collect();
        flows.extend(
            after
                .get_flows(LinkPattern::ANY, after_range)
                .into_iter()
                .filter(|f| !seen.contains(f)),
        );
        let mut deltas = Vec::new();
        for flow in flows {
            let b = before.get_paths(flow, LinkPattern::ANY, before_range);
            let a = after.get_paths(flow, LinkPattern::ANY, after_range);
            if b != a {
                deltas.push(PathDelta {
                    flow,
                    before: b,
                    after: a,
                });
            }
        }
        fn count<T: TibRead + ?Sized>(tib: &T, range: &TimeRange) -> usize {
            let mut n = 0;
            tib.for_each_record(&mut |r| {
                if r.overlaps(range) {
                    n += 1;
                }
            });
            n
        }
        TibDiff {
            deltas,
            before_records: count(before, &before_range),
            after_records: count(after, &after_range),
        }
    }

    /// The delta for one flow, if it changed.
    pub fn for_flow(&self, flow: FlowId) -> Option<&PathDelta> {
        self.deltas.iter().find(|d| d.flow == flow)
    }
}

impl Tib {
    /// Time-travel diff within one store: path sets of every flow up to
    /// and including `t` vs from `t` onward. A record spanning `t` is
    /// active in both eras and contributes to both sides (`TimeRange` is
    /// closed on both ends — see the convention note in [`crate::tib`]).
    pub fn diff_at(&self, t: Nanos) -> TibDiff {
        TibDiff::between(self, TimeRange::until(t), self, TimeRange::since(t))
    }
}

impl TieredTib {
    /// Time-travel diff within one tiered store; see [`Tib::diff_at`].
    pub fn diff_at(&self, t: Nanos) -> TibDiff {
        TibDiff::between(self, TimeRange::until(t), self, TimeRange::since(t))
    }
}

/// Diffs two TIB2 snapshots (whole stores, `TimeRange::ANY` on both
/// sides) — "what changed between yesterday's snapshot and today's?".
pub fn diff_snapshots(before: &[u8], after: &[u8]) -> WireResult<TibDiff> {
    let b = crate::snapshot::load(before)?;
    let a = crate::snapshot::load(after)?;
    Ok(TibDiff::between(&b, TimeRange::ANY, &a, TimeRange::ANY))
}

/// Convenience used by tests and the CLI: records overlapping a range.
pub fn records_in(tib: &Tib, range: TimeRange) -> Vec<&TibRecord> {
    tib.records()
        .iter()
        .filter(|r| r.overlaps(&range))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::save;
    use pathdump_topology::{Ip, SwitchId};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    fn rec(sport: u16, p: &[u16], t0: u64, t1: u64) -> TibRecord {
        TibRecord {
            flow: flow(sport),
            path: path(p),
            stime: Nanos(t0),
            etime: Nanos(t1),
            bytes: 100,
            pkts: 1,
        }
    }

    #[test]
    fn diff_at_catches_reroute() {
        let mut t = Tib::new();
        t.insert(rec(1, &[0, 8, 4], 0, 100)); // before: via 8
        t.insert(rec(1, &[0, 9, 4], 200, 300)); // after: via 9
        t.insert(rec(2, &[1, 8, 5], 0, 300)); // spans the split: no delta
        let d = t.diff_at(Nanos(150));
        assert_eq!(d.deltas.len(), 1);
        let delta = d.for_flow(flow(1)).expect("flow 1 changed");
        assert_eq!(delta.before, vec![path(&[0, 8, 4])]);
        assert_eq!(delta.after, vec![path(&[0, 9, 4])]);
        assert_eq!(delta.added(), vec![&path(&[0, 9, 4])]);
        assert_eq!(delta.removed(), vec![&path(&[0, 8, 4])]);
        assert!(d.for_flow(flow(2)).is_none(), "stable flow omitted");
        assert_eq!(d.before_records, 2);
        assert_eq!(d.after_records, 2);
    }

    #[test]
    fn record_spanning_split_lands_on_both_sides() {
        let mut t = Tib::new();
        t.insert(rec(1, &[0, 8, 4], 0, 100));
        // Diff exactly at the record's etime: closed ranges put it in
        // both eras, so the path set is identical and the diff is empty.
        let d = t.diff_at(Nanos(100));
        assert!(d.is_empty());
        assert_eq!(d.before_records, 1);
        assert_eq!(d.after_records, 1);
        // One past the etime: the record exists only before the split.
        let d = t.diff_at(Nanos(101));
        assert_eq!(d.deltas.len(), 1);
        let delta = &d.deltas[0];
        assert_eq!(delta.before, vec![path(&[0, 8, 4])]);
        assert!(delta.after.is_empty());
    }

    #[test]
    fn snapshot_diff_reports_new_and_lost_flows() {
        let mut old = Tib::new();
        old.insert(rec(1, &[0, 8, 4], 0, 100));
        old.insert(rec(3, &[1, 9, 5], 0, 50));
        let mut new = Tib::new();
        new.insert(rec(1, &[0, 8, 4], 0, 100)); // unchanged
        new.insert(rec(2, &[0, 9, 4], 200, 250)); // new flow
        let d = diff_snapshots(&save(&old), &save(&new)).expect("valid snapshots");
        assert_eq!(d.deltas.len(), 2);
        assert!(d.for_flow(flow(1)).is_none());
        let lost = d.for_flow(flow(3)).expect("flow 3 disappeared");
        assert!(lost.after.is_empty());
        let gained = d.for_flow(flow(2)).expect("flow 2 appeared");
        assert!(gained.before.is_empty());
        assert_eq!(gained.after, vec![path(&[0, 9, 4])]);
    }

    #[test]
    fn snapshot_diff_rejects_garbage() {
        assert!(diff_snapshots(&[1, 2, 3], &[4, 5, 6]).is_err());
    }

    #[test]
    fn identical_views_diff_empty() {
        let mut t = Tib::new();
        t.insert(rec(1, &[0, 8, 4], 0, 100));
        let d = TibDiff::between(&t, TimeRange::ANY, &t, TimeRange::ANY);
        assert!(d.is_empty());
        assert!(TibDiff::default().is_empty());
    }
}
