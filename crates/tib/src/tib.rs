//! The Trajectory Information Base: an indexed, queryable store of
//! per-path flow records (replacing the paper's MongoDB instance).
//!
//! # Storage layout
//!
//! Records are kept in one insertion-ordered arena (`records`, ids are
//! arena offsets) with four families of indexes maintained on `insert`:
//!
//! - **Posting lists** — `by_flow` (flow → ids) and `by_link`
//!   (directed link → ids) serve the exact-match Host API lookups
//!   (`getPaths`, `getCount`, `getDuration`, exact-link `getFlows`).
//! - **Switch indexes** — `by_switch_in` / `by_switch_out` map a switch
//!   to the ids (and the deduplicated flow list) of every record whose
//!   path enters / leaves it, so wildcard link patterns `<?, Sj>` and
//!   `<Si, ?>` resolve in one lookup instead of iterating every
//!   `by_link` key.
//! - **Live aggregates** — `flow_totals` (running per-flow
//!   `(bytes, pkts)`) and `flows_any` (insertion-ordered deduplicated
//!   flow list) answer `top_k_flows`, `link_flow_counts(ANY, ANY)` and
//!   `get_flows(ANY, ANY)` without touching a single record.
//! - **Time buckets** — records land in fixed-width stime buckets
//!   (default [`DEFAULT_BUCKET_WIDTH`], ~O(√n) buckets at the paper's
//!   240K-records-per-hour Table-1 scale); each bucket carries its own
//!   per-flow totals and the max etime of its records. A `timeRange`
//!   aggregate sums whole buckets that lie inside the range and
//!   clamp-scans only the boundary buckets.
//!
//! # Time-boundary convention
//!
//! Two interval conventions meet in this module and must not be mixed up:
//!
//! - A **`TimeRange` is closed on both ends**: a record matches when its
//!   `[stime, etime]` span intersects `[start, end]` inclusively
//!   (`etime >= start && stime <= end`). A record whose `etime` equals
//!   `range.start`, or whose `stime` equals `range.end`, *is* a match —
//!   and a zero-duration record (`stime == etime`) matches any range
//!   containing that instant.
//! - A **bucket's stime span is half-open**: bucket `k` owns stimes in
//!   `[k·w, (k+1)·w)`, i.e. a record whose stime is an exact multiple of
//!   the width starts the *next* bucket (`stime / width` rounds down).
//!
//! The translation happens in exactly two places: `bucket_contained`
//! converts bucket `k`'s half-open span to its inclusive last stime
//! (`k·w + w − 1`) before comparing against the closed range, and
//! `range_ids` maps the inclusive range end to the *inclusive* last
//! bucket index `end / w`. Everything else re-checks candidates with
//! `rec.overlaps`, so bucket pruning only ever has to be a superset.
//! `prop_equivalence`'s boundary-aligned case pins these edges (records
//! and range endpoints exactly on width multiples) against the
//! linear-scan reference.
//!
//! Records are assumed well-formed (`stime <= etime`); a record with
//! `etime < stime` could be double-counted by whole-bucket aggregation
//! while failing the closed-interval overlap check.
//!
//! # Query complexity (n records, f distinct flows, b buckets)
//!
//! | query                          | cost                                |
//! |--------------------------------|-------------------------------------|
//! | `get_paths/get_count/get_duration` | O(records of the flow)          |
//! | `get_flows(exact, range)`      | O(posting list of the link)         |
//! | `get_flows(wildcard, ANY)`     | O(distinct flows at the switch) — a memcpy |
//! | `get_flows(wildcard, range)`   | O(ids at the switch)                |
//! | `get_flows(ANY, ANY)`          | O(f) — a memcpy of `flows_any`      |
//! | `link_flow_counts(ANY, ANY)`   | O(f) — a clone of `flow_totals`     |
//! | `link_flow_counts(ANY, range)` | O(b + flows in buckets overlapping the range) |
//! | `top_k_flows(k, ANY)`          | O(f) select + O(k log k) sort       |
//!
//! Indexes mirror the Host API's access patterns (Table 1): by flow ID,
//! by traversed link, by switch, by time, plus live aggregates for the
//! traffic-measurement queries (§4.2: flow size distribution, top-k,
//! load imbalance).

use crate::record::TibRecord;
use pathdump_topology::{FlowId, LinkDir, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Default stime bucket width: 8 seconds. At the paper's Table-1 scale
/// (240K records spread over "roughly an hour of flows at a server") this
/// yields ~450 buckets — on the order of √n — so range aggregates touch
/// O(√n) bucket headers plus the two boundary buckets' records.
pub const DEFAULT_BUCKET_WIDTH: Nanos = Nanos(8 * pathdump_topology::SECONDS);

/// An insertion-ordered set of flow ids: the `order` vec is the query
/// answer (a memcpy away), the `seen` set enforces dedup on insert.
/// Crate-visible so the tiered engine ([`crate::segment`]) can maintain
/// the same global first-appearance order across sealed segments.
#[derive(Clone, Debug, Default)]
pub(crate) struct FlowSet {
    pub(crate) order: Vec<FlowId>,
    seen: HashSet<FlowId>,
}

impl FlowSet {
    pub(crate) fn insert(&mut self, flow: FlowId) {
        if self.seen.insert(flow) {
            self.order.push(flow);
        }
    }

    pub(crate) fn approx_bytes(&self) -> usize {
        // Vec entry + hash-set entry (pointer-ish overhead included).
        self.order.len() * (std::mem::size_of::<FlowId>() * 2 + 16)
    }
}

/// Keeps the top `k` entries of `v` by `(bytes, flow)` descending — the
/// documented [`Tib::top_k_flows`] tie-break — using O(f) selection, then
/// sorts only those `k`. Shared by the single-arena and tiered engines so
/// both produce bit-identical rankings.
pub(crate) fn select_top_k(mut v: Vec<(u64, FlowId)>, k: usize) -> Vec<(u64, FlowId)> {
    if k == 0 {
        return Vec::new();
    }
    if v.len() > k {
        v.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
        v.truncate(k);
    }
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// Per-switch secondary index: every record whose path enters (or
/// leaves) the switch, plus the deduplicated flows among them.
#[derive(Clone, Debug, Default)]
struct SwitchIndex {
    /// Record ids in insertion order, deduplicated per record.
    ids: Vec<u32>,
    /// Distinct flows in insertion order (the `<?, Sj>` ANY-range answer).
    flows: FlowSet,
}

/// One fixed-width stime bucket with its incremental aggregates.
#[derive(Clone, Debug, Default)]
struct Bucket {
    /// Ids of records whose stime falls in this bucket (insertion order).
    ids: Vec<u32>,
    /// Per-flow `(bytes, pkts)` pre-summed over this bucket's records.
    flow_totals: HashMap<FlowId, (u64, u64)>,
    /// Latest etime among this bucket's records (bounds the lookback a
    /// range query needs: a bucket left of the range can only contribute
    /// when some record in it is still alive at the range start).
    max_etime: Nanos,
}

/// The per-host TIB.
#[derive(Clone, Debug)]
pub struct Tib {
    records: Vec<TibRecord>,
    by_flow: HashMap<FlowId, Vec<u32>>,
    by_link: HashMap<LinkDir, Vec<u32>>,
    by_switch_in: HashMap<SwitchId, SwitchIndex>,
    by_switch_out: HashMap<SwitchId, SwitchIndex>,
    flows_any: FlowSet,
    flow_totals: HashMap<FlowId, (u64, u64)>,
    /// stime bucket index (`stime / bucket_width`) → bucket.
    buckets: BTreeMap<u64, Bucket>,
    bucket_width: u64,
}

impl Default for Tib {
    fn default() -> Self {
        Tib::with_bucket_width(DEFAULT_BUCKET_WIDTH)
    }
}

impl Tib {
    /// Creates an empty TIB with the default bucket width.
    pub fn new() -> Self {
        Tib::default()
    }

    /// Creates an empty TIB whose time index uses `width`-wide stime
    /// buckets. Pick a width so the expected time span divides into
    /// roughly √n buckets.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_bucket_width(width: Nanos) -> Self {
        assert!(width.0 > 0, "bucket width must be positive");
        Tib {
            records: Vec::new(),
            by_flow: HashMap::new(),
            by_link: HashMap::new(),
            by_switch_in: HashMap::new(),
            by_switch_out: HashMap::new(),
            flows_any: FlowSet::default(),
            flow_totals: HashMap::new(),
            buckets: BTreeMap::new(),
            bucket_width: width.0,
        }
    }

    /// The configured stime bucket width.
    pub fn bucket_width(&self) -> Nanos {
        Nanos(self.bucket_width)
    }

    /// Number of live time buckets (diagnostics / tests).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts one record, updating all indexes and aggregates.
    pub fn insert(&mut self, rec: TibRecord) {
        let id = self.records.len() as u32;
        self.by_flow.entry(rec.flow).or_default().push(id);
        // Paths are usually simple, but routing-loop scenarios produce
        // repeated switches; dedup per record with small linear scans.
        let mut seen_in: Vec<SwitchId> = Vec::new();
        let mut seen_out: Vec<SwitchId> = Vec::new();
        for link in rec.path.links() {
            match self.by_link.entry(link) {
                Entry::Occupied(mut e) => e.get_mut().push(id),
                Entry::Vacant(e) => {
                    e.insert(vec![id]);
                }
            }
            if !seen_out.contains(&link.from) {
                seen_out.push(link.from);
                let idx = self.by_switch_out.entry(link.from).or_default();
                idx.ids.push(id);
                idx.flows.insert(rec.flow);
            }
            if !seen_in.contains(&link.to) {
                seen_in.push(link.to);
                let idx = self.by_switch_in.entry(link.to).or_default();
                idx.ids.push(id);
                idx.flows.insert(rec.flow);
            }
        }
        self.flows_any.insert(rec.flow);
        let t = self.flow_totals.entry(rec.flow).or_insert((0, 0));
        t.0 += rec.bytes;
        t.1 += rec.pkts;
        let bucket = self
            .buckets
            .entry(rec.stime.0 / self.bucket_width)
            .or_default();
        bucket.ids.push(id);
        let bt = bucket.flow_totals.entry(rec.flow).or_insert((0, 0));
        bt.0 += rec.bytes;
        bt.1 += rec.pkts;
        bucket.max_etime = bucket.max_etime.max(rec.etime);
        self.records.push(rec);
    }

    /// Raw access to every record (scans, snapshots).
    pub fn records(&self) -> &[TibRecord] {
        &self.records
    }

    /// The record ids matching a non-ANY link pattern, in insertion
    /// order. Exact patterns read one `by_link` posting list (a record
    /// may appear more than once if a loopy path repeats the link);
    /// half-wildcards read one pre-deduplicated switch index.
    fn pattern_ids(&self, link: LinkPattern) -> &[u32] {
        debug_assert!(!link.is_any());
        static EMPTY: [u32; 0] = [];
        match (link.from, link.to) {
            (Some(f), Some(t)) => self
                .by_link
                .get(&LinkDir::new(f, t))
                .map_or(&EMPTY[..], |v| &v[..]),
            (Some(f), None) => self
                .by_switch_out
                .get(&f)
                .map_or(&EMPTY[..], |idx| &idx.ids[..]),
            (None, Some(t)) => self
                .by_switch_in
                .get(&t)
                .map_or(&EMPTY[..], |idx| &idx.ids[..]),
            (None, None) => unreachable!("ANY handled by callers"),
        }
    }

    /// The pre-deduplicated flow list for a pattern, when one exists
    /// (ANY and half-wildcard patterns; exact links have none).
    fn pattern_flows(&self, link: LinkPattern) -> Option<&[FlowId]> {
        match (link.from, link.to) {
            (None, None) => Some(&self.flows_any.order),
            (Some(f), None) => Some(
                self.by_switch_out
                    .get(&f)
                    .map_or(&[][..], |idx| &idx.flows.order),
            ),
            (None, Some(t)) => Some(
                self.by_switch_in
                    .get(&t)
                    .map_or(&[][..], |idx| &idx.flows.order),
            ),
            (Some(_), Some(_)) => None,
        }
    }

    /// `getFlows(linkID, timeRange)`: flows that traversed a matching link
    /// during the range (deduplicated, insertion order).
    pub fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
        if range == TimeRange::ANY {
            // Served straight from the maintained flow lists.
            if let Some(flows) = self.pattern_flows(link) {
                return flows.to_vec();
            }
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut push = |rec: &TibRecord| {
            if rec.overlaps(&range) && seen.insert(rec.flow) {
                out.push(rec.flow);
            }
        };
        if link.is_any() {
            match self.range_ids(range, self.records.len()) {
                // Record ids are insertion order, so a sorted candidate-id
                // walk preserves the documented ordering.
                Some(ids) => {
                    for id in ids {
                        push(&self.records[id as usize]);
                    }
                }
                // Broad range: one pass over the arena beats collecting
                // and sorting nearly every id.
                None => {
                    for rec in &self.records {
                        push(rec);
                    }
                }
            }
        } else {
            for &id in &self.pattern_range_ids(link, range) {
                push(&self.records[id as usize]);
            }
        }
        out
    }

    /// Record ids matching a non-ANY pattern, pruned by the time index
    /// when the range is narrow: the sorted posting list is intersected
    /// with the bucket candidate set, so a ranged wildcard query visits
    /// only records that can overlap instead of every record at the
    /// switch. Falls back to the raw posting list for broad ranges.
    fn pattern_range_ids(&self, link: LinkPattern, range: TimeRange) -> Vec<u32> {
        let pattern = self.pattern_ids(link);
        if range == TimeRange::ANY {
            return pattern.to_vec();
        }
        // Budget the candidate collection by the posting-list size: when
        // the pattern matches few records, a direct overlaps-scan of the
        // posting list beats building the candidate set at all.
        match self.range_ids(range, pattern.len()) {
            Some(candidates) => {
                // Both lists ascend (ids are insertion order); duplicates
                // in exact posting lists (loopy paths) are preserved.
                let mut out = Vec::new();
                let mut j = 0;
                for &id in pattern {
                    while j < candidates.len() && candidates[j] < id {
                        j += 1;
                    }
                    if j == candidates.len() {
                        break;
                    }
                    if candidates[j] == id {
                        out.push(id);
                    }
                }
                out
            }
            None => pattern.to_vec(),
        }
    }

    /// Candidate record ids for a time range, ascending: whole buckets
    /// inside the range plus clamp-checked boundary/lookback buckets.
    /// Returns `None` when the candidates are not meaningfully fewer
    /// than `budget` (the records the caller would otherwise visit) —
    /// the caller should then scan directly instead of paying for an id
    /// copy and sort that selects almost nothing out.
    fn range_ids(&self, range: TimeRange, budget: usize) -> Option<Vec<u32>> {
        let hi = range.end.map_or(u64::MAX, |e| e.0 / self.bucket_width);
        let lo = range.start.unwrap_or(Nanos::ZERO);
        // Buckets entirely left of the range contribute only if a record
        // in them is still alive at the range start (max_etime lookback).
        let live = |b: &&Bucket| b.max_etime >= lo;
        let candidates: usize = self
            .buckets
            .range(..=hi)
            .map(|(_, b)| b)
            .filter(live)
            .map(|b| b.ids.len())
            .sum();
        if candidates * 2 > budget {
            return None;
        }
        let mut ids: Vec<u32> = Vec::with_capacity(candidates);
        for bucket in self.buckets.range(..=hi).map(|(_, b)| b).filter(live) {
            ids.extend_from_slice(&bucket.ids);
        }
        ids.sort_unstable();
        Some(ids)
    }

    /// `getPaths(flowID, linkID, timeRange)`: distinct paths of `flow` that
    /// include a matching link within the range.
    pub fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                let matches = link.is_any() || rec.path.links().any(|l| link.matches(l));
                if matches && seen.insert(rec.path.clone()) {
                    out.push(rec.path.clone());
                }
            }
        }
        out
    }

    /// `getCount(Flow, timeRange)`: (bytes, pkts) of a flow within the
    /// range; `path = None` sums across all paths, `Some` restricts to one
    /// path (the paper's `Flow` is a `(flowID, Path)` pair).
    pub fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64) {
        if path.is_none() && range == TimeRange::ANY {
            // All-time flow totals are maintained incrementally.
            return self.flow_totals.get(&flow).copied().unwrap_or((0, 0));
        }
        let mut bytes = 0;
        let mut pkts = 0;
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                if let Some(p) = path {
                    if rec.path != *p {
                        continue;
                    }
                }
                bytes += rec.bytes;
                pkts += rec.pkts;
            }
        }
        (bytes, pkts)
    }

    /// `getDuration(Flow, timeRange)`: active span of a flow within the
    /// range (max etime − min stime over matching records, clamped).
    pub fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos {
        match self.duration_bounds(flow, path, range) {
            Some((lo, hi)) if lo < hi => hi - lo,
            _ => Nanos::ZERO,
        }
    }

    /// The clamped `(min stime, max etime)` bounds behind
    /// [`get_duration`](Self::get_duration), or `None` when no record of
    /// the flow matches. Exposed because — unlike the duration itself —
    /// the bounds merge across stores: the tiered engine min/maxes them
    /// over every segment before taking the difference.
    pub fn duration_bounds(
        &self,
        flow: FlowId,
        path: Option<&Path>,
        range: TimeRange,
    ) -> Option<(Nanos, Nanos)> {
        let mut bounds: Option<(Nanos, Nanos)> = None;
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                if let Some(p) = path {
                    if rec.path != *p {
                        continue;
                    }
                }
                let (s, e) = range.clamp(rec.stime, rec.etime).expect("overlap checked");
                bounds = Some(match bounds {
                    Some((lo, hi)) => (lo.min(s), hi.max(e)),
                    None => (s, e),
                });
            }
        }
        bounds
    }

    /// The hull `(min stime, max etime)` over every stored record, or
    /// `None` when empty. A record can only overlap a `TimeRange` that
    /// overlaps this hull, so the tiered engine prunes whole sealed
    /// segments (avoiding cold reloads) with one comparison.
    pub fn span(&self) -> Option<(Nanos, Nanos)> {
        let mut it = self.records.iter();
        let first = it.next()?;
        let mut lo = first.stime;
        let mut hi = first.etime;
        for rec in it {
            lo = lo.min(rec.stime);
            hi = hi.max(rec.etime);
        }
        Some((lo, hi))
    }

    /// True when the stime span `[k·w, (k+1)·w)` of bucket `k` lies fully
    /// inside `range` — every record in it then overlaps the range (its
    /// stime does), so its pre-summed aggregates apply wholesale.
    fn bucket_contained(&self, k: u64, range: &TimeRange) -> bool {
        let start = k * self.bucket_width;
        // Inclusive last stime; saturate for the topmost u64 bucket.
        let end = start.saturating_add(self.bucket_width - 1);
        range.start.is_none_or(|s| s.0 <= start) && range.end.is_none_or(|e| end <= e.0)
    }

    /// Per-flow byte/packet totals over matching links — the building block
    /// of the flow-size-distribution and load-imbalance queries (§4.2).
    pub fn link_flow_counts(
        &self,
        link: LinkPattern,
        range: TimeRange,
    ) -> HashMap<FlowId, (u64, u64)> {
        if link.is_any() {
            if range == TimeRange::ANY {
                // The live aggregate IS the answer.
                return self.flow_totals.clone();
            }
            return self.range_flow_counts(range);
        }
        let mut out: HashMap<FlowId, (u64, u64)> = HashMap::new();
        let exact = link.from.is_some() && link.to.is_some();
        // Exact posting lists may repeat an id when a loopy path repeats
        // the link; switch indexes are pre-deduplicated per record.
        let mut seen = HashSet::new();
        for &id in &self.pattern_range_ids(link, range) {
            if exact && !seen.insert(id) {
                continue;
            }
            let rec = &self.records[id as usize];
            if rec.overlaps(&range) {
                let e = out.entry(rec.flow).or_insert((0, 0));
                e.0 += rec.bytes;
                e.1 += rec.pkts;
            }
        }
        out
    }

    /// Range-restricted all-links totals: whole-bucket sums for buckets
    /// inside the range, clamp-scans for boundary/lookback buckets.
    fn range_flow_counts(&self, range: TimeRange) -> HashMap<FlowId, (u64, u64)> {
        let hi = range.end.map_or(u64::MAX, |e| e.0 / self.bucket_width);
        let lo = range.start.unwrap_or(Nanos::ZERO);
        let mut out: HashMap<FlowId, (u64, u64)> = HashMap::new();
        for (&k, bucket) in self.buckets.range(..=hi) {
            if bucket.max_etime < lo {
                continue;
            }
            if self.bucket_contained(k, &range) {
                for (flow, &(b, p)) in &bucket.flow_totals {
                    let e = out.entry(*flow).or_insert((0, 0));
                    e.0 += b;
                    e.1 += p;
                }
            } else {
                for &id in &bucket.ids {
                    let rec = &self.records[id as usize];
                    if rec.overlaps(&range) {
                        let e = out.entry(rec.flow).or_insert((0, 0));
                        e.0 += rec.bytes;
                        e.1 += rec.pkts;
                    }
                }
            }
        }
        out
    }

    /// Top-`k` flows by byte count within a range (§2.3's top-k example).
    ///
    /// Ties are broken by flow id (descending), making the result
    /// deterministic regardless of construction order.
    pub fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
        let v: Vec<(u64, FlowId)> = if range == TimeRange::ANY {
            // Served from the live aggregate: no per-record work at all.
            self.flow_totals
                .iter()
                .map(|(flow, &(bytes, _))| (bytes, *flow))
                .collect()
        } else {
            self.range_flow_counts(range)
                .into_iter()
                .map(|(flow, (bytes, _))| (bytes, flow))
                .collect()
        };
        select_top_k(v, k)
    }

    /// Approximate resident bytes of records + indexes (§5.3).
    pub fn approx_bytes(&self) -> usize {
        let recs: usize = self
            .records
            .iter()
            .map(|r| std::mem::size_of::<TibRecord>() + r.path.len() * 2)
            .sum();
        let flows = self.by_flow.len() * (std::mem::size_of::<FlowId>() + 16);
        let links: usize = self
            .by_link
            .values()
            .map(|v| std::mem::size_of::<LinkDir>() + v.len() * 4)
            .sum();
        let switches: usize = self
            .by_switch_in
            .values()
            .chain(self.by_switch_out.values())
            .map(|idx| {
                std::mem::size_of::<SwitchId>() + idx.ids.len() * 4 + idx.flows.approx_bytes()
            })
            .sum();
        let aggregates = self.flows_any.approx_bytes()
            + self.flow_totals.len() * (std::mem::size_of::<FlowId>() + 16 + 16);
        let buckets: usize = self
            .buckets
            .values()
            .map(|b| {
                std::mem::size_of::<Bucket>()
                    + b.ids.len() * 4
                    + b.flow_totals.len() * (std::mem::size_of::<FlowId>() + 16 + 16)
            })
            .sum();
        recs + flows + links + switches + aggregates + buckets
    }
}

/// The read side of the Host API (Table 1), abstracted over storage
/// engines: the single-arena [`Tib`], the tiered
/// [`TieredTib`](crate::segment::TieredTib), and the lock-free
/// [`SealedView`](crate::segment::SealedView) reader snapshot all
/// implement it, so query evaluators (`execute_on_tib`, the standing
/// engine, the rpc plane) are written once against this trait.
///
/// Semantics are exactly the documented [`Tib`] method semantics —
/// insertion-order outputs, closed `TimeRange`s, `(bytes, flow)`
/// descending top-k tie-break. `prop_equivalence` pins every
/// implementation to the same linear-scan reference.
pub trait TibRead {
    /// Number of records visible to this view.
    fn num_records(&self) -> usize;

    /// Visits every visible record in insertion order. The tiered engine
    /// may lazily reload cold segments to honor this — callers on hot
    /// paths should prefer the aggregate queries below.
    fn for_each_record(&self, f: &mut dyn FnMut(&TibRecord));

    /// See [`Tib::get_flows`].
    fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId>;

    /// See [`Tib::get_paths`].
    fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path>;

    /// See [`Tib::get_count`].
    fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64);

    /// See [`Tib::get_duration`].
    fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos;

    /// See [`Tib::link_flow_counts`].
    fn link_flow_counts(&self, link: LinkPattern, range: TimeRange) -> HashMap<FlowId, (u64, u64)>;

    /// See [`Tib::top_k_flows`].
    fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)>;

    /// Every visible record, cloned, in insertion order (snapshots,
    /// replays, diffs — not a hot-path call).
    fn records_vec(&self) -> Vec<TibRecord> {
        let mut out = Vec::with_capacity(self.num_records());
        self.for_each_record(&mut |r| out.push(r.clone()));
        out
    }
}

impl TibRead for Tib {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn for_each_record(&self, f: &mut dyn FnMut(&TibRecord)) {
        for rec in &self.records {
            f(rec);
        }
    }

    fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
        Tib::get_flows(self, link, range)
    }

    fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
        Tib::get_paths(self, flow, link, range)
    }

    fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64) {
        Tib::get_count(self, flow, path, range)
    }

    fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos {
        Tib::get_duration(self, flow, path, range)
    }

    fn link_flow_counts(&self, link: LinkPattern, range: TimeRange) -> HashMap<FlowId, (u64, u64)> {
        Tib::link_flow_counts(self, link, range)
    }

    fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
        Tib::top_k_flows(self, k, range)
    }

    fn records_vec(&self) -> Vec<TibRecord> {
        self.records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{Ip, SwitchId};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    fn rec(sport: u16, p: &[u16], t0: u64, t1: u64, bytes: u64) -> TibRecord {
        TibRecord {
            flow: flow(sport),
            path: path(p),
            stime: Nanos(t0),
            etime: Nanos(t1),
            bytes,
            pkts: bytes / 1000 + 1,
        }
    }

    fn sample_tib() -> Tib {
        let mut t = Tib::new();
        t.insert(rec(1, &[0, 8, 4], 0, 100, 5000));
        t.insert(rec(1, &[0, 9, 4], 50, 150, 3000));
        t.insert(rec(2, &[0, 8, 4], 200, 300, 10_000));
        t.insert(rec(3, &[1, 9, 5], 0, 400, 70_000));
        t
    }

    /// Same population, tiny buckets, so the bucket boundary paths run.
    fn sample_tib_narrow() -> Tib {
        let mut t = Tib::with_bucket_width(Nanos(64));
        t.insert(rec(1, &[0, 8, 4], 0, 100, 5000));
        t.insert(rec(1, &[0, 9, 4], 50, 150, 3000));
        t.insert(rec(2, &[0, 8, 4], 200, 300, 10_000));
        t.insert(rec(3, &[1, 9, 5], 0, 400, 70_000));
        t
    }

    #[test]
    fn get_flows_by_link() {
        let t = sample_tib();
        let l = LinkPattern::exact(SwitchId(0), SwitchId(8));
        let flows = t.get_flows(l, TimeRange::ANY);
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&flow(1)) && flows.contains(&flow(2)));
        // Time-restricted: only flow 2 is active after t=180.
        let flows = t.get_flows(l, TimeRange::since(Nanos(180)));
        assert_eq!(flows, vec![flow(2)]);
    }

    #[test]
    fn get_flows_wildcards() {
        let t = sample_tib();
        // <?, S4>: all incoming links of switch 4.
        let into4 = t.get_flows(LinkPattern::into(SwitchId(4)), TimeRange::ANY);
        assert_eq!(into4.len(), 2);
        // <*, *>: everything.
        assert_eq!(t.get_flows(LinkPattern::ANY, TimeRange::ANY).len(), 3);
    }

    #[test]
    fn get_flows_wildcards_with_range() {
        for t in [sample_tib(), sample_tib_narrow()] {
            // <?, S4> after t=120: flow 1's second record and flow 2.
            let r = TimeRange::since(Nanos(120));
            let into4 = t.get_flows(LinkPattern::into(SwitchId(4)), r);
            assert_eq!(into4, vec![flow(1), flow(2)]);
            // <S0, ?> within [0, 40]: only flow 1's first record overlaps.
            let out0 = t.get_flows(
                LinkPattern::out_of(SwitchId(0)),
                TimeRange::between(Nanos(0), Nanos(40)),
            );
            assert_eq!(out0, vec![flow(1)]);
            // <*, *> in [160, 199]: only the long-lived flow 3 is active
            // (found via the bucket max_etime lookback).
            assert_eq!(
                t.get_flows(LinkPattern::ANY, TimeRange::between(Nanos(160), Nanos(199))),
                vec![flow(3)]
            );
        }
    }

    #[test]
    fn get_paths_dedup_and_filter() {
        let mut t = sample_tib();
        // A second record on the same path must not duplicate.
        t.insert(rec(1, &[0, 8, 4], 500, 600, 100));
        let paths = t.get_paths(flow(1), LinkPattern::ANY, TimeRange::ANY);
        assert_eq!(paths.len(), 2);
        let via9 = t.get_paths(
            flow(1),
            LinkPattern::exact(SwitchId(9), SwitchId(4)),
            TimeRange::ANY,
        );
        assert_eq!(via9, vec![path(&[0, 9, 4])]);
        assert!(t
            .get_paths(flow(99), LinkPattern::ANY, TimeRange::ANY)
            .is_empty());
    }

    #[test]
    fn get_count_across_and_per_path() {
        let t = sample_tib();
        let (b, _) = t.get_count(flow(1), None, TimeRange::ANY);
        assert_eq!(b, 8000, "sums across both paths");
        let (b, _) = t.get_count(flow(1), Some(&path(&[0, 8, 4])), TimeRange::ANY);
        assert_eq!(b, 5000);
        let (b, _) = t.get_count(flow(1), None, TimeRange::since(Nanos(120)));
        assert_eq!(b, 3000, "only the second record overlaps");
        assert_eq!(t.get_count(flow(99), None, TimeRange::ANY), (0, 0));
    }

    #[test]
    fn get_duration_clamped() {
        let t = sample_tib();
        assert_eq!(t.get_duration(flow(1), None, TimeRange::ANY), Nanos(150));
        assert_eq!(
            t.get_duration(flow(3), None, TimeRange::between(Nanos(100), Nanos(200))),
            Nanos(100)
        );
        assert_eq!(t.get_duration(flow(99), None, TimeRange::ANY), Nanos::ZERO);
    }

    #[test]
    fn link_flow_counts_no_double_count() {
        let t = sample_tib();
        // Pattern <0, ?> matches links 0->8 and 0->9; flow 1 has one record
        // on each, flow 2 one record; each record counted once.
        let counts = t.link_flow_counts(LinkPattern::out_of(SwitchId(0)), TimeRange::ANY);
        assert_eq!(counts[&flow(1)], (8000, 8000 / 1000 + 2));
        assert_eq!(counts[&flow(2)].0, 10_000);
        assert!(!counts.contains_key(&flow(3)));
    }

    #[test]
    fn link_flow_counts_loopy_path_counted_once() {
        let mut t = Tib::new();
        // Path 0->8->0->8->4 repeats link 0->8: one record, counted once.
        t.insert(rec(7, &[0, 8, 0, 8, 4], 0, 10, 900));
        let counts =
            t.link_flow_counts(LinkPattern::exact(SwitchId(0), SwitchId(8)), TimeRange::ANY);
        assert_eq!(counts[&flow(7)].0, 900);
        // The switch indexes are deduplicated too.
        let counts = t.link_flow_counts(LinkPattern::into(SwitchId(8)), TimeRange::ANY);
        assert_eq!(counts[&flow(7)].0, 900);
        assert_eq!(
            t.get_flows(LinkPattern::out_of(SwitchId(0)), TimeRange::ANY),
            vec![flow(7)]
        );
    }

    #[test]
    fn range_aggregates_match_scan_on_narrow_buckets() {
        let t = sample_tib_narrow();
        assert!(t.num_buckets() > 1, "narrow buckets split the population");
        // [60, 220] overlaps all four records (flow 3 spans the range).
        let r = TimeRange::between(Nanos(60), Nanos(220));
        let counts = t.link_flow_counts(LinkPattern::ANY, r);
        assert_eq!(counts[&flow(1)].0, 8000);
        assert_eq!(counts[&flow(2)].0, 10_000);
        assert_eq!(counts[&flow(3)].0, 70_000);
        // [201, 399]: flow 2 (200-300) and flow 3 (0-400) overlap.
        let r = TimeRange::between(Nanos(201), Nanos(399));
        let counts = t.link_flow_counts(LinkPattern::ANY, r);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[&flow(2)].0, 10_000);
    }

    #[test]
    fn top_k() {
        let t = sample_tib();
        let top = t.top_k_flows(2, TimeRange::ANY);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (70_000, flow(3)));
        assert_eq!(top[1], (10_000, flow(2)));
        // k larger than the population returns everything, sorted.
        assert_eq!(t.top_k_flows(10, TimeRange::ANY).len(), 3);
        assert!(t.top_k_flows(0, TimeRange::ANY).is_empty());
        // Range-restricted: flow 1's totals shrink to the overlap.
        let top = t.top_k_flows(3, TimeRange::since(Nanos(120)));
        assert_eq!(top[0], (70_000, flow(3)));
        assert_eq!(top[1], (10_000, flow(2)));
        assert_eq!(top[2], (3000, flow(1)));
    }

    #[test]
    fn size_accounting_grows() {
        let mut t = Tib::new();
        let a = t.approx_bytes();
        t.insert(rec(1, &[0, 8, 4], 0, 1, 1));
        assert!(t.approx_bytes() > a);
    }

    #[test]
    fn bucket_structure() {
        let mut t = Tib::with_bucket_width(Nanos(100));
        t.insert(rec(1, &[0, 8, 4], 0, 10, 5));
        t.insert(rec(1, &[0, 8, 4], 50, 60, 5));
        t.insert(rec(2, &[0, 8, 4], 250, 260, 5));
        assert_eq!(t.num_buckets(), 2, "stimes 0/50 share a bucket, 250 not");
        assert_eq!(t.bucket_width(), Nanos(100));
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_width_rejected() {
        let _ = Tib::with_bucket_width(Nanos(0));
    }
}
