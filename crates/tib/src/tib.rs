//! The Trajectory Information Base: an indexed, queryable store of
//! per-path flow records (replacing the paper's MongoDB instance).
//!
//! Indexes mirror the Host API's access patterns (Table 1): by flow ID
//! (`getPaths`, `getCount`, `getDuration`), by traversed link
//! (`getFlows`), plus full scans for traffic measurement queries.

use crate::record::TibRecord;
use pathdump_topology::{FlowId, LinkDir, LinkPattern, Nanos, Path, TimeRange};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The per-host TIB.
#[derive(Clone, Debug, Default)]
pub struct Tib {
    records: Vec<TibRecord>,
    by_flow: HashMap<FlowId, Vec<u32>>,
    by_link: HashMap<LinkDir, Vec<u32>>,
}

impl Tib {
    /// Creates an empty TIB.
    pub fn new() -> Self {
        Tib::default()
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts one record, updating all indexes.
    pub fn insert(&mut self, rec: TibRecord) {
        let id = self.records.len() as u32;
        self.by_flow.entry(rec.flow).or_default().push(id);
        for link in rec.path.links() {
            match self.by_link.entry(link) {
                Entry::Occupied(mut e) => e.get_mut().push(id),
                Entry::Vacant(e) => {
                    e.insert(vec![id]);
                }
            }
        }
        self.records.push(rec);
    }

    /// Raw access to every record (scans, snapshots, top-k).
    pub fn records(&self) -> &[TibRecord] {
        &self.records
    }

    /// `getFlows(linkID, timeRange)`: flows that traversed a matching link
    /// during the range (deduplicated, insertion order).
    pub fn get_flows(&self, link: LinkPattern, range: TimeRange) -> Vec<FlowId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut push = |rec: &TibRecord| {
            if rec.overlaps(&range) && seen.insert(rec.flow) {
                out.push(rec.flow);
            }
        };
        if link.is_any() {
            for rec in &self.records {
                push(rec);
            }
        } else {
            for (l, ids) in &self.by_link {
                if link.matches(*l) {
                    for &id in ids {
                        push(&self.records[id as usize]);
                    }
                }
            }
        }
        out
    }

    /// `getPaths(flowID, linkID, timeRange)`: distinct paths of `flow` that
    /// include a matching link within the range.
    pub fn get_paths(&self, flow: FlowId, link: LinkPattern, range: TimeRange) -> Vec<Path> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                let matches = link.is_any() || rec.path.links().any(|l| link.matches(l));
                if matches && seen.insert(rec.path.clone()) {
                    out.push(rec.path.clone());
                }
            }
        }
        out
    }

    /// `getCount(Flow, timeRange)`: (bytes, pkts) of a flow within the
    /// range; `path = None` sums across all paths, `Some` restricts to one
    /// path (the paper's `Flow` is a `(flowID, Path)` pair).
    pub fn get_count(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> (u64, u64) {
        let mut bytes = 0;
        let mut pkts = 0;
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                if let Some(p) = path {
                    if rec.path != *p {
                        continue;
                    }
                }
                bytes += rec.bytes;
                pkts += rec.pkts;
            }
        }
        (bytes, pkts)
    }

    /// `getDuration(Flow, timeRange)`: active span of a flow within the
    /// range (max etime − min stime over matching records, clamped).
    pub fn get_duration(&self, flow: FlowId, path: Option<&Path>, range: TimeRange) -> Nanos {
        let mut lo = Nanos::MAX;
        let mut hi = Nanos::ZERO;
        if let Some(ids) = self.by_flow.get(&flow) {
            for &id in ids {
                let rec = &self.records[id as usize];
                if !rec.overlaps(&range) {
                    continue;
                }
                if let Some(p) = path {
                    if rec.path != *p {
                        continue;
                    }
                }
                let (s, e) = range.clamp(rec.stime, rec.etime).expect("overlap checked");
                lo = lo.min(s);
                hi = hi.max(e);
            }
        }
        if lo >= hi {
            Nanos::ZERO
        } else {
            hi - lo
        }
    }

    /// Per-flow byte/packet totals over matching links — the building block
    /// of the flow-size-distribution and load-imbalance queries (§4.2).
    pub fn link_flow_counts(
        &self,
        link: LinkPattern,
        range: TimeRange,
    ) -> HashMap<FlowId, (u64, u64)> {
        let mut out: HashMap<FlowId, (u64, u64)> = HashMap::new();
        let mut add = |rec: &TibRecord| {
            if rec.overlaps(&range) {
                let e = out.entry(rec.flow).or_insert((0, 0));
                e.0 += rec.bytes;
                e.1 += rec.pkts;
            }
        };
        if link.is_any() {
            for rec in &self.records {
                add(rec);
            }
        } else {
            let mut seen = std::collections::HashSet::new();
            for (l, ids) in &self.by_link {
                if link.matches(*l) {
                    for &id in ids {
                        if seen.insert(id) {
                            add(&self.records[id as usize]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Top-`k` flows by byte count within a range (§2.3's top-k example).
    pub fn top_k_flows(&self, k: usize, range: TimeRange) -> Vec<(u64, FlowId)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let totals = self.link_flow_counts(LinkPattern::ANY, range);
        // Min-heap of size k, exactly like the paper's heapq snippet.
        let mut heap: BinaryHeap<Reverse<(u64, FlowId)>> = BinaryHeap::new();
        for (flow, (bytes, _)) in totals {
            if heap.len() < k {
                heap.push(Reverse((bytes, flow)));
            } else if let Some(Reverse((min_bytes, _))) = heap.peek() {
                if bytes > *min_bytes {
                    heap.pop();
                    heap.push(Reverse((bytes, flow)));
                }
            }
        }
        let mut out: Vec<(u64, FlowId)> = heap.into_iter().map(|Reverse(x)| x).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Approximate resident bytes of records + indexes (§5.3).
    pub fn approx_bytes(&self) -> usize {
        let recs: usize = self
            .records
            .iter()
            .map(|r| std::mem::size_of::<TibRecord>() + r.path.len() * 2)
            .sum();
        let flows = self.by_flow.len() * (std::mem::size_of::<FlowId>() + 16);
        let links: usize = self
            .by_link
            .values()
            .map(|v| std::mem::size_of::<LinkDir>() + v.len() * 4)
            .sum();
        recs + flows + links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{Ip, SwitchId};

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(ids.iter().map(|&i| SwitchId(i)).collect())
    }

    fn rec(sport: u16, p: &[u16], t0: u64, t1: u64, bytes: u64) -> TibRecord {
        TibRecord {
            flow: flow(sport),
            path: path(p),
            stime: Nanos(t0),
            etime: Nanos(t1),
            bytes,
            pkts: bytes / 1000 + 1,
        }
    }

    fn sample_tib() -> Tib {
        let mut t = Tib::new();
        t.insert(rec(1, &[0, 8, 4], 0, 100, 5000));
        t.insert(rec(1, &[0, 9, 4], 50, 150, 3000));
        t.insert(rec(2, &[0, 8, 4], 200, 300, 10_000));
        t.insert(rec(3, &[1, 9, 5], 0, 400, 70_000));
        t
    }

    #[test]
    fn get_flows_by_link() {
        let t = sample_tib();
        let l = LinkPattern::exact(SwitchId(0), SwitchId(8));
        let flows = t.get_flows(l, TimeRange::ANY);
        assert_eq!(flows.len(), 2);
        assert!(flows.contains(&flow(1)) && flows.contains(&flow(2)));
        // Time-restricted: only flow 2 is active after t=180.
        let flows = t.get_flows(l, TimeRange::since(Nanos(180)));
        assert_eq!(flows, vec![flow(2)]);
    }

    #[test]
    fn get_flows_wildcards() {
        let t = sample_tib();
        // <?, S4>: all incoming links of switch 4.
        let into4 = t.get_flows(LinkPattern::into(SwitchId(4)), TimeRange::ANY);
        assert_eq!(into4.len(), 2);
        // <*, *>: everything.
        assert_eq!(t.get_flows(LinkPattern::ANY, TimeRange::ANY).len(), 3);
    }

    #[test]
    fn get_paths_dedup_and_filter() {
        let mut t = sample_tib();
        // A second record on the same path must not duplicate.
        t.insert(rec(1, &[0, 8, 4], 500, 600, 100));
        let paths = t.get_paths(flow(1), LinkPattern::ANY, TimeRange::ANY);
        assert_eq!(paths.len(), 2);
        let via9 = t.get_paths(
            flow(1),
            LinkPattern::exact(SwitchId(9), SwitchId(4)),
            TimeRange::ANY,
        );
        assert_eq!(via9, vec![path(&[0, 9, 4])]);
        assert!(t
            .get_paths(flow(99), LinkPattern::ANY, TimeRange::ANY)
            .is_empty());
    }

    #[test]
    fn get_count_across_and_per_path() {
        let t = sample_tib();
        let (b, _) = t.get_count(flow(1), None, TimeRange::ANY);
        assert_eq!(b, 8000, "sums across both paths");
        let (b, _) = t.get_count(flow(1), Some(&path(&[0, 8, 4])), TimeRange::ANY);
        assert_eq!(b, 5000);
        let (b, _) = t.get_count(flow(1), None, TimeRange::since(Nanos(120)));
        assert_eq!(b, 3000, "only the second record overlaps");
    }

    #[test]
    fn get_duration_clamped() {
        let t = sample_tib();
        assert_eq!(t.get_duration(flow(1), None, TimeRange::ANY), Nanos(150));
        assert_eq!(
            t.get_duration(flow(3), None, TimeRange::between(Nanos(100), Nanos(200))),
            Nanos(100)
        );
        assert_eq!(t.get_duration(flow(99), None, TimeRange::ANY), Nanos::ZERO);
    }

    #[test]
    fn link_flow_counts_no_double_count() {
        let t = sample_tib();
        // Pattern <0, ?> matches links 0->8 and 0->9; flow 1 has one record
        // on each, flow 2 one record; each record counted once.
        let counts = t.link_flow_counts(LinkPattern::out_of(SwitchId(0)), TimeRange::ANY);
        assert_eq!(counts[&flow(1)], (8000, 8000 / 1000 + 2));
        assert_eq!(counts[&flow(2)].0, 10_000);
        assert!(!counts.contains_key(&flow(3)));
    }

    #[test]
    fn top_k() {
        let t = sample_tib();
        let top = t.top_k_flows(2, TimeRange::ANY);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (70_000, flow(3)));
        assert_eq!(top[1], (10_000, flow(2)));
        // k larger than the population returns everything, sorted.
        assert_eq!(t.top_k_flows(10, TimeRange::ANY).len(), 3);
    }

    #[test]
    fn size_accounting_grows() {
        let mut t = Tib::new();
        let a = t.approx_bytes();
        t.insert(rec(1, &[0, 8, 4], 0, 1, 1));
        assert!(t.approx_bytes() > a);
    }
}
