//! Transport integration tests: the TCP engine over the simulated fabric.

use pathdump_simnet::{FaultState, NoTagging, SimConfig, Simulator};
use pathdump_topology::{FatTree, FatTreeParams, FlowId, Nanos, UpDownRouting};
use pathdump_transport::{install_flows, FlowSpec, TcpConfig, TcpEngine, TcpWorld};

fn ft4() -> FatTree {
    FatTree::build(FatTreeParams { k: 4 })
}

fn sim(ft: &FatTree) -> Simulator<TcpWorld> {
    Simulator::new(
        ft,
        SimConfig::for_tests(),
        Box::new(NoTagging),
        TcpWorld::new(TcpEngine::new(TcpConfig::default())),
    )
}

fn spec(
    ft: &FatTree,
    src: (usize, usize, usize),
    dst: (usize, usize, usize),
    sport: u16,
    size: u64,
) -> FlowSpec {
    let s = ft.host(src.0, src.1, src.2);
    let d = ft.host(dst.0, dst.1, dst.2);
    let t = ft.topology();
    FlowSpec {
        flow: FlowId::tcp(t.host(s).ip, sport, t.host(d).ip, 80),
        src: s,
        dst: d,
        size,
        start: Nanos::ZERO,
    }
}

#[test]
fn single_flow_completes_cleanly() {
    let ft = ft4();
    let mut s = sim(&ft);
    let sp = spec(&ft, (0, 0, 0), (2, 1, 1), 5000, 1_000_000);
    install_flows(&mut s, &[sp], |w| &mut w.engine);
    s.run_until(Nanos::from_secs(30));
    let r = s.world.engine.report(0);
    assert!(r.completed_at.is_some(), "flow must complete");
    assert_eq!(r.acked, 1_000_000);
    assert_eq!(r.received, 1_000_000, "receiver saw every byte in order");
    assert_eq!(r.retrans_total, 0, "healthy fabric: no retransmissions");
    // 1 MB at 100 Mb/s is at least 80 ms; sanity-check FCT ordering.
    let fct = r.fct().unwrap();
    assert!(fct >= Nanos::from_millis(80), "FCT {fct} too fast");
    assert!(fct < Nanos::from_secs(5), "FCT {fct} too slow");
    // FIN reached the receiver.
    assert!(s.world.engine.flow(0).receiver.fin_seen);
}

#[test]
fn many_flows_all_complete_with_conservation() {
    let ft = ft4();
    let mut s = sim(&ft);
    let mut specs = Vec::new();
    let mut sport = 6000;
    for p in 0..4 {
        for t in 0..2 {
            let src = (p, t, 0);
            let dst = ((p + 1) % 4, t, 1);
            specs.push(spec(&ft, src, dst, sport, 200_000 + (sport as u64) * 10));
            sport += 1;
        }
    }
    install_flows(&mut s, &specs, |w| &mut w.engine);
    s.run_until(Nanos::from_secs(60));
    assert!(s.world.engine.all_complete());
    for r in s.world.engine.reports() {
        assert_eq!(r.acked, r.size);
        assert_eq!(r.received, r.size);
    }
}

#[test]
fn silent_random_drops_cause_retransmissions_but_flows_recover() {
    let ft = ft4();
    let mut s = sim(&ft);
    // Intra-pod flow pinned by ECMP; 5% silent drop on one direction of the
    // ToR(0,0) uplink toward Agg(0,0) AND Agg(0,1): whatever path is
    // hashed, data packets cross a lossy interface.
    for a in 0..2 {
        s.set_directed_fault(
            ft.tor(0, 0),
            ft.agg(0, a),
            FaultState {
                silent_drop_rate: 0.05,
                ..FaultState::HEALTHY
            },
        );
    }
    let sp = spec(&ft, (0, 0, 0), (0, 1, 0), 7000, 500_000);
    install_flows(&mut s, &[sp], |w| &mut w.engine);
    s.run_until(Nanos::from_secs(60));
    let r = s.world.engine.report(0);
    assert!(r.completed_at.is_some(), "TCP must recover from 5% loss");
    assert!(r.retrans_total > 0, "5% loss must cause retransmissions");
    assert_eq!(r.received, 500_000);
}

#[test]
fn blackhole_stalls_flow_and_raises_consecutive_retrans() {
    let ft = ft4();
    let mut s = sim(&ft);
    // Blackhole every uplink of the source ToR: the flow cannot make any
    // progress at all.
    for a in 0..2 {
        s.set_directed_fault(
            ft.tor(0, 0),
            ft.agg(0, a),
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
    }
    let sp = spec(&ft, (0, 0, 0), (1, 0, 0), 7500, 100_000);
    install_flows(&mut s, &[sp], |w| &mut w.engine);
    s.run_until(Nanos::from_secs(20));
    let r = s.world.engine.report(0);
    assert!(r.completed_at.is_none(), "blackholed flow cannot complete");
    assert!(r.acked == 0);
    assert!(
        r.consecutive_retrans >= 3,
        "timeouts must accumulate: {}",
        r.consecutive_retrans
    );
    assert_eq!(
        s.world.engine.poor_flows(2),
        vec![sp.flow],
        "getPoorTCPFlows must flag the victim"
    );
}

#[test]
fn congestion_tail_drops_recovered() {
    let ft = ft4();
    let mut cfg = SimConfig::for_tests();
    // Tiny queues to force tail drops at the shared final egress.
    cfg.fabric_link.queue_pkts = 8;
    let mut s = Simulator::new(
        &ft,
        cfg,
        Box::new(NoTagging),
        TcpWorld::new(TcpEngine::new(TcpConfig::default())),
    );
    // Two competing flows into the same destination host: the final ToR
    // egress is a guaranteed 2-into-1 bottleneck that overflows the
    // 8-packet queue.
    let a = spec(&ft, (0, 0, 0), (0, 1, 0), 8000, 600_000);
    let b = spec(&ft, (0, 0, 1), (0, 1, 0), 8001, 600_000);
    install_flows(&mut s, &[a, b], |w| &mut w.engine);
    s.run_until(Nanos::from_secs(60));
    assert!(s.world.engine.all_complete());
    let total_retrans: u64 = s.world.engine.reports().map(|r| r.retrans_total).sum();
    let total_drops: u64 = s.stats.total_actual_drops();
    assert!(total_drops > 0, "setup must actually overflow queues");
    assert!(
        total_retrans > 0,
        "drops must be repaired by retransmission"
    );
    for r in s.world.engine.reports() {
        assert_eq!(r.received, r.size, "every byte delivered exactly");
    }
}

#[test]
fn fast_retransmit_fires_on_mid_window_loss() {
    let ft = ft4();
    let mut s = sim(&ft);
    // A low random-loss rate on a long flow with a large steady window:
    // losses land mid-window, so dup-ACKs accumulate and fast retransmit
    // (not just RTO) must fire.
    for a in 0..2 {
        s.set_directed_fault(
            ft.tor(0, 0),
            ft.agg(0, a),
            FaultState {
                silent_drop_rate: 0.005,
                ..FaultState::HEALTHY
            },
        );
    }
    let sp = spec(&ft, (0, 0, 0), (2, 0, 0), 8100, 4_000_000);
    install_flows(&mut s, &[sp], |w| &mut w.engine);
    s.run_until(Nanos::from_secs(120));
    let r = s.world.engine.report(0);
    assert!(
        r.completed_at.is_some(),
        "flow must complete under 0.5% loss"
    );
    assert!(
        r.fast_retrans > 0,
        "mid-window losses should trigger dup-ack recovery (fast={}, timeout={})",
        r.fast_retrans,
        r.timeout_retrans
    );
}

#[test]
fn deterministic_under_seed() {
    let ft = ft4();
    let run = || {
        let mut s = sim(&ft);
        let sp = spec(&ft, (0, 0, 0), (3, 1, 1), 9000, 300_000);
        install_flows(&mut s, &[sp], |w| &mut w.engine);
        s.run_until(Nanos::from_secs(20));
        (
            s.world.engine.report(0).fct(),
            s.stats.events,
            s.stats.delivered_pkts,
        )
    };
    assert_eq!(run(), run());
}
