//! Per-flow TCP sender/receiver state machines.
//!
//! A deliberately small but behaviorally faithful TCP: slow start and AIMD
//! congestion avoidance, duplicate-ACK fast retransmit, retransmission
//! timeouts with exponential backoff, cumulative ACKs with out-of-order
//! buffering, and FIN on completion (the signal PathDump's trajectory
//! memory uses for eviction, §3.2).
//!
//! The retransmission counters exported here replace the paper's
//! `tcpretrans` (perf-tools) probe: the active monitoring module reads
//! them to raise `POOR_PERF` alarms (§3.2).

use pathdump_topology::{FlowId, HostId, Nanos, MILLIS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static description of one flow to run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The 5-tuple (data direction).
    pub flow: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Bytes to transfer.
    pub size: u64,
    /// When the sender starts.
    pub start: Nanos,
}

/// Transport configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Base retransmission timeout (the paper's "default TCP timeout value"
    /// of 200 ms, §4.6).
    pub base_rto: Nanos,
    /// Initial congestion window in segments.
    pub init_cwnd: f64,
    /// Slow-start threshold in segments at flow start.
    pub init_ssthresh: f64,
    /// Maximum RTO backoff doublings.
    pub max_backoff: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            base_rto: Nanos(200 * MILLIS),
            init_cwnd: 10.0,
            init_ssthresh: 64.0,
            max_backoff: 6,
        }
    }
}

/// Sender-side connection state.
#[derive(Clone, Debug)]
pub struct SenderState {
    /// Next byte to transmit for the first time.
    pub next_seq: u64,
    /// Highest cumulative ACK received.
    pub acked: u64,
    /// Congestion window, in segments.
    pub cwnd: f64,
    /// Slow-start threshold, in segments.
    pub ssthresh: f64,
    /// Consecutive duplicate ACKs seen.
    pub dup_acks: u32,
    /// Current RTO backoff exponent.
    pub backoff: u32,
    /// Timer epoch (stale-timer suppression).
    pub timer_epoch: u32,
    /// Total retransmitted segments.
    pub retrans_total: u64,
    /// Retransmissions by fast retransmit.
    pub fast_retrans: u64,
    /// Retransmissions by timeout.
    pub timeout_retrans: u64,
    /// Retransmissions since the last forward progress.
    pub consecutive_retrans: u32,
    /// Largest `consecutive_retrans` ever observed.
    pub max_consecutive_retrans: u32,
    /// Set once every byte is acknowledged.
    pub completed_at: Option<Nanos>,
    /// FIN transmitted.
    pub fin_sent: bool,
    /// Started (first segment sent).
    pub started: bool,
}

impl SenderState {
    /// Fresh sender state under a configuration.
    pub fn new(cfg: &TcpConfig) -> Self {
        SenderState {
            next_seq: 0,
            acked: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: cfg.init_ssthresh,
            dup_acks: 0,
            backoff: 0,
            timer_epoch: 0,
            retrans_total: 0,
            fast_retrans: 0,
            timeout_retrans: 0,
            consecutive_retrans: 0,
            max_consecutive_retrans: 0,
            completed_at: None,
            fin_sent: false,
            started: false,
        }
    }

    /// Bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.next_seq - self.acked
    }

    /// Current effective RTO including backoff.
    pub fn rto(&self, cfg: &TcpConfig) -> Nanos {
        Nanos(cfg.base_rto.0 << self.backoff.min(cfg.max_backoff))
    }

    /// Window in bytes.
    pub fn window_bytes(&self, cfg: &TcpConfig) -> u64 {
        (self.cwnd.max(1.0) * cfg.mss as f64) as u64
    }

    /// Registers forward progress (a new cumulative ACK).
    pub fn on_progress(&mut self, ack: u64, cfg: &TcpConfig) {
        debug_assert!(ack > self.acked);
        self.acked = ack;
        if self.next_seq < self.acked {
            // A retransmission can cover bytes past next_seq bookkeeping.
            self.next_seq = self.acked;
        }
        self.dup_acks = 0;
        self.backoff = 0;
        self.consecutive_retrans = 0;
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
        let _ = cfg;
    }

    /// Registers a duplicate ACK; returns true when fast retransmit fires.
    pub fn on_dup_ack(&mut self) -> bool {
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.note_retransmission();
            self.fast_retrans += 1;
            true
        } else {
            false
        }
    }

    /// Registers a timeout; collapses the window.
    pub fn on_timeout(&mut self, cfg: &TcpConfig) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.backoff = (self.backoff + 1).min(cfg.max_backoff);
        self.dup_acks = 0;
        self.note_retransmission();
        self.timeout_retrans += 1;
        // A timeout invalidates in-flight accounting: resend from `acked`.
        self.next_seq = self.acked;
    }

    fn note_retransmission(&mut self) {
        self.retrans_total += 1;
        self.consecutive_retrans += 1;
        self.max_consecutive_retrans = self.max_consecutive_retrans.max(self.consecutive_retrans);
    }
}

/// Receiver-side connection state.
#[derive(Clone, Debug, Default)]
pub struct ReceiverState {
    /// Next expected in-order byte.
    pub rcv_next: u64,
    /// Out-of-order segments: start -> length.
    ooo: BTreeMap<u64, u32>,
    /// Total payload bytes received (including retransmitted duplicates).
    pub bytes_received: u64,
    /// Unique in-order bytes delivered.
    pub bytes_in_order: u64,
    /// FIN observed at or below `rcv_next`.
    pub fin_seen: bool,
    /// First data arrival.
    pub first_arrival: Option<Nanos>,
    /// Most recent data arrival.
    pub last_arrival: Option<Nanos>,
}

impl ReceiverState {
    /// Ingests a data segment; returns the cumulative ACK to send.
    pub fn on_data(&mut self, seq: u64, len: u32, fin: bool, now: Nanos) -> u64 {
        self.first_arrival.get_or_insert(now);
        self.last_arrival = Some(now);
        self.bytes_received += len as u64;
        if len > 0 {
            let end = seq + len as u64;
            if end > self.rcv_next {
                if seq <= self.rcv_next {
                    self.rcv_next = end;
                } else {
                    // Merge overlapping out-of-order segments conservatively.
                    let cur = self.ooo.entry(seq).or_insert(0);
                    *cur = (*cur).max(len);
                }
                // Drain any now-contiguous segments.
                while let Some((&s, &l)) = self.ooo.range(..=self.rcv_next).next() {
                    self.ooo.remove(&s);
                    let e = s + l as u64;
                    if e > self.rcv_next {
                        self.rcv_next = e;
                    }
                }
            }
            self.bytes_in_order = self.rcv_next;
        }
        if fin && seq <= self.rcv_next {
            self.fin_seen = true;
        }
        self.rcv_next
    }
}

/// Encodes a host timer token: flow index, kind, epoch.
pub mod token {
    /// Timer kinds multiplexed on one token space.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Kind {
        /// Flow start.
        Start,
        /// Retransmission timeout.
        Rto,
    }

    /// Packs a token.
    pub fn pack(flow_idx: u32, kind: Kind, epoch: u32) -> u64 {
        let k = match kind {
            Kind::Start => 0u64,
            Kind::Rto => 1,
        };
        ((flow_idx as u64) << 32) | (k << 30) | (epoch as u64 & 0x3FFF_FFFF)
    }

    /// Unpacks a token.
    pub fn unpack(tok: u64) -> (u32, Kind, u32) {
        let kind = match (tok >> 30) & 0x3 {
            0 => Kind::Start,
            _ => Kind::Rto,
        };
        ((tok >> 32) as u32, kind, (tok & 0x3FFF_FFFF) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    #[test]
    fn sender_progress_grows_window() {
        let c = cfg();
        let mut s = SenderState::new(&c);
        s.next_seq = 20_000;
        let w0 = s.cwnd;
        s.on_progress(1460, &c);
        assert!(s.cwnd > w0, "slow start grows cwnd");
        assert_eq!(s.acked, 1460);
        assert_eq!(s.inflight(), 20_000 - 1460);
    }

    #[test]
    fn congestion_avoidance_after_ssthresh() {
        let c = cfg();
        let mut s = SenderState::new(&c);
        s.cwnd = 100.0;
        s.ssthresh = 50.0;
        s.next_seq = 1_000_000;
        s.on_progress(1460, &c);
        assert!(s.cwnd - 100.0 < 0.5, "linear growth in CA: {}", s.cwnd);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let c = cfg();
        let mut s = SenderState::new(&c);
        s.cwnd = 20.0;
        s.next_seq = 50_000;
        assert!(!s.on_dup_ack());
        assert!(!s.on_dup_ack());
        assert!(s.on_dup_ack(), "third dupack fires");
        assert_eq!(s.fast_retrans, 1);
        assert_eq!(s.cwnd, 10.0);
        assert!(!s.on_dup_ack(), "only once per recovery");
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let c = cfg();
        let mut s = SenderState::new(&c);
        s.cwnd = 32.0;
        s.next_seq = 100_000;
        s.acked = 20_000;
        let rto0 = s.rto(&c);
        s.on_timeout(&c);
        assert_eq!(s.cwnd, 1.0);
        assert_eq!(s.next_seq, 20_000, "resend from the hole");
        assert_eq!(s.rto(&c), Nanos(rto0.0 * 2));
        s.on_timeout(&c);
        assert_eq!(s.rto(&c), Nanos(rto0.0 * 4));
        assert_eq!(s.consecutive_retrans, 2);
        // Progress resets backoff and the consecutive counter.
        s.on_progress(21_460, &c);
        assert_eq!(s.rto(&c), rto0);
        assert_eq!(s.consecutive_retrans, 0);
        assert_eq!(s.max_consecutive_retrans, 2);
    }

    #[test]
    fn receiver_in_order() {
        let mut r = ReceiverState::default();
        assert_eq!(r.on_data(0, 1000, false, Nanos(1)), 1000);
        assert_eq!(r.on_data(1000, 500, false, Nanos(2)), 1500);
        assert_eq!(r.bytes_received, 1500);
        assert!(!r.fin_seen);
    }

    #[test]
    fn receiver_out_of_order_reassembly() {
        let mut r = ReceiverState::default();
        assert_eq!(r.on_data(1000, 1000, false, Nanos(1)), 0, "gap -> dup ack");
        assert_eq!(r.on_data(2000, 1000, false, Nanos(2)), 0);
        assert_eq!(r.on_data(0, 1000, false, Nanos(3)), 3000, "hole filled");
    }

    #[test]
    fn receiver_duplicate_segments_idempotent() {
        let mut r = ReceiverState::default();
        r.on_data(0, 1000, false, Nanos(1));
        assert_eq!(r.on_data(0, 1000, false, Nanos(2)), 1000);
        assert_eq!(r.rcv_next, 1000);
        assert_eq!(r.bytes_in_order, 1000);
    }

    #[test]
    fn fin_requires_in_order_delivery() {
        let mut r = ReceiverState::default();
        r.on_data(2000, 0, true, Nanos(1));
        assert!(!r.fin_seen, "FIN beyond the hole must wait");
        r.on_data(0, 1000, false, Nanos(2));
        r.on_data(1000, 1000, false, Nanos(3));
        r.on_data(2000, 0, true, Nanos(4));
        assert!(r.fin_seen);
    }

    #[test]
    fn token_roundtrip() {
        for (idx, kind, epoch) in [
            (0u32, token::Kind::Start, 0u32),
            (77, token::Kind::Rto, 12345),
            (u32::MAX, token::Kind::Rto, 0x3FFF_FFFF),
        ] {
            let t = token::pack(idx, kind, epoch);
            assert_eq!(token::unpack(t), (idx, kind, epoch));
        }
    }
}
