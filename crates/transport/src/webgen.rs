//! Workload generation: the web traffic model of the paper's experiments.
//!
//! §4.2/§4.3 generate traffic "based on the web traffic model in [10]"
//! (pFabric's web-search workload, itself from production datacenter
//! measurements): a heavy-tailed flow-size distribution where most flows
//! are mice but most *bytes* live in elephant flows, with Poisson flow
//! arrivals tuned to a target fractional load of the edge links.

use crate::tcp::FlowSpec;
use pathdump_topology::{FlowId, HostId, Ip, Nanos, SECONDS};
use rand::Rng;

/// Piecewise-linear CDF of flow sizes (bytes, cumulative probability).
///
/// Breakpoints follow the widely used web-search workload shape: ~50% of
/// flows under 35 KB, ~95% under 1.3 MB, a 20 MB elephant tail carrying
/// roughly half the bytes.
pub const WEB_SEARCH_CDF: &[(u64, f64)] = &[
    (1_000, 0.0),
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.45),
    (33_000, 0.60),
    (53_000, 0.70),
    (133_000, 0.80),
    (667_000, 0.90),
    (1_300_000, 0.95),
    (6_700_000, 0.98),
    (20_000_000, 1.0),
];

/// Samples one flow size from a piecewise-linear CDF.
///
/// # Panics
///
/// Panics if the CDF is empty or not monotone.
pub fn sample_size<R: Rng + ?Sized>(cdf: &[(u64, f64)], rng: &mut R) -> u64 {
    assert!(!cdf.is_empty(), "empty CDF");
    let u: f64 = rng.gen();
    let mut prev = cdf[0];
    for &(bytes, p) in cdf {
        if u <= p {
            let (b0, p0) = prev;
            if p <= p0 {
                return bytes;
            }
            let frac = (u - p0) / (p - p0);
            return b0 + ((bytes - b0) as f64 * frac) as u64;
        }
        prev = (bytes, p);
    }
    cdf.last().expect("non-empty").0
}

/// Mean of a piecewise-linear CDF (trapezoidal).
pub fn cdf_mean(cdf: &[(u64, f64)]) -> f64 {
    let mut mean = 0.0;
    for w in cdf.windows(2) {
        let (b0, p0) = w[0];
        let (b1, p1) = w[1];
        mean += (p1 - p0) * (b0 + b1) as f64 / 2.0;
    }
    mean
}

/// Web workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WebWorkload {
    /// Target load as a fraction of each sender's edge-link rate (0..1).
    pub load: f64,
    /// Edge link rate in bits/s (used to convert load to arrival rate).
    pub link_rate_bps: u64,
    /// Workload duration.
    pub duration: Nanos,
    /// Base source port (flows get consecutive ports).
    pub base_port: u16,
}

impl WebWorkload {
    /// Generates Poisson-arrival web flows among `senders` → `receivers`
    /// (self-pairs skipped). Each sender offers `load × link_rate` on
    /// average.
    ///
    /// `addr_of` maps hosts to IPs (from the topology).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        senders: &[HostId],
        receivers: &[HostId],
        addr_of: impl Fn(HostId) -> Ip,
        rng: &mut R,
    ) -> Vec<FlowSpec> {
        assert!(self.load > 0.0 && self.load < 1.0, "load must be in (0,1)");
        let mean_size = cdf_mean(WEB_SEARCH_CDF);
        // flows/sec/sender so that mean bytes/sec = load * rate / 8.
        let lambda = self.load * self.link_rate_bps as f64 / 8.0 / mean_size;
        let mut specs = Vec::new();
        let mut port = self.base_port;
        for &src in senders {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / lambda;
                let start = Nanos((t * SECONDS as f64) as u64);
                if start >= self.duration {
                    break;
                }
                let dst = loop {
                    let cand = receivers[rng.gen_range(0..receivers.len())];
                    if cand != src {
                        break cand;
                    }
                };
                let size = sample_size(WEB_SEARCH_CDF, rng).max(1);
                let flow = FlowId::tcp(addr_of(src), port, addr_of(dst), 80);
                port = port.wrapping_add(1).max(1024);
                specs.push(FlowSpec {
                    flow,
                    src,
                    dst,
                    size,
                    start,
                });
            }
        }
        specs.sort_by_key(|s| s.start);
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_within_cdf_support() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = sample_size(WEB_SEARCH_CDF, &mut rng);
            assert!((1_000..=20_000_000).contains(&s), "size {s} out of range");
        }
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| sample_size(WEB_SEARCH_CDF, &mut rng))
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(
            mean > 5.0 * median as f64,
            "mean {mean} should dwarf median {median}"
        );
        // Empirical mean tracks the analytic CDF mean within 10%.
        let analytic = cdf_mean(WEB_SEARCH_CDF);
        assert!((mean - analytic).abs() / analytic < 0.1);
    }

    #[test]
    fn empirical_cdf_matches_breakpoints() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<u64> = (0..n)
            .map(|_| sample_size(WEB_SEARCH_CDF, &mut rng))
            .collect();
        for &(bytes, p) in WEB_SEARCH_CDF.iter().skip(1) {
            let frac = samples.iter().filter(|&&s| s <= bytes).count() as f64 / n as f64;
            assert!(
                (frac - p).abs() < 0.02,
                "P[size <= {bytes}] = {frac}, expected {p}"
            );
        }
    }

    #[test]
    fn generator_hits_target_load() {
        let mut rng = SmallRng::seed_from_u64(4);
        let senders: Vec<HostId> = (0..8).map(HostId).collect();
        let wl = WebWorkload {
            load: 0.5,
            link_rate_bps: 100_000_000,
            duration: Nanos::from_secs(20),
            base_port: 1024,
        };
        let specs = wl.generate(&senders, &senders, |h| Ip(h.0 + 1), &mut rng);
        let total_bytes: u64 = specs.iter().map(|s| s.size).sum();
        let offered = total_bytes as f64 * 8.0 / 20.0; // bits/s aggregate
        let target = 0.5 * 100_000_000.0 * 8.0;
        assert!(
            (offered - target).abs() / target < 0.35,
            "offered {offered} vs target {target}"
        );
        // Starts sorted and within duration; no self-flows.
        assert!(specs.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(specs.iter().all(|s| s.start < wl.duration));
        assert!(specs.iter().all(|s| s.src != s.dst));
    }

    #[test]
    fn deterministic_under_seed() {
        let senders: Vec<HostId> = (0..4).map(HostId).collect();
        let wl = WebWorkload {
            load: 0.3,
            link_rate_bps: 100_000_000,
            duration: Nanos::from_secs(5),
            base_port: 2000,
        };
        let a = wl.generate(
            &senders,
            &senders,
            |h| Ip(h.0 + 1),
            &mut SmallRng::seed_from_u64(9),
        );
        let b = wl.generate(
            &senders,
            &senders,
            |h| Ip(h.0 + 1),
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.flow == y.flow && x.size == y.size && x.start == y.start));
    }

    #[test]
    fn mean_is_stable() {
        let m = cdf_mean(WEB_SEARCH_CDF);
        assert!(m > 300_000.0 && m < 1_000_000.0, "web mean ~0.5MB, got {m}");
    }
}
