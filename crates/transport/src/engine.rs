//! The fleet-level TCP engine: drives every registered flow from the
//! simulator's host callbacks.

use crate::tcp::{token, FlowSpec, ReceiverState, SenderState, TcpConfig};
use pathdump_simnet::{HostApi, Packet, TcpFlags, World};
use pathdump_topology::{FlowId, HostId, Nanos};
use std::collections::HashMap;

/// One flow's complete transport state.
#[derive(Clone, Debug)]
pub struct FlowEntry {
    /// Static description.
    pub spec: FlowSpec,
    /// Sender side (lives at `spec.src`).
    pub sender: SenderState,
    /// Receiver side (lives at `spec.dst`).
    pub receiver: ReceiverState,
}

/// Summary statistics for one flow, as read by monitors and experiments.
#[derive(Clone, Copy, Debug)]
pub struct FlowReport {
    /// The 5-tuple.
    pub flow: FlowId,
    /// Sender host.
    pub src: HostId,
    /// Receiver host.
    pub dst: HostId,
    /// Bytes requested.
    pub size: u64,
    /// Bytes cumulatively acknowledged.
    pub acked: u64,
    /// Unique in-order bytes at the receiver.
    pub received: u64,
    /// Total retransmitted segments.
    pub retrans_total: u64,
    /// Fast retransmissions.
    pub fast_retrans: u64,
    /// Timeout retransmissions.
    pub timeout_retrans: u64,
    /// Current consecutive retransmissions without progress.
    pub consecutive_retrans: u32,
    /// Peak consecutive retransmissions.
    pub max_consecutive_retrans: u32,
    /// Flow start time.
    pub start: Nanos,
    /// Completion time (all bytes acked), if finished.
    pub completed_at: Option<Nanos>,
}

impl FlowReport {
    /// Flow completion time, if completed.
    pub fn fct(&self) -> Option<Nanos> {
        self.completed_at.map(|t| t.saturating_sub(self.start))
    }

    /// Goodput in bits/s over the flow's active life (up to `now` for
    /// unfinished flows).
    pub fn goodput_bps(&self, now: Nanos) -> f64 {
        let end = self.completed_at.unwrap_or(now);
        let dur = end.saturating_sub(self.start).as_secs_f64();
        if dur <= 0.0 {
            0.0
        } else {
            self.acked as f64 * 8.0 / dur
        }
    }
}

/// Fleet-level TCP engine (all hosts share it; dispatch is by flow ID).
#[derive(Debug)]
pub struct TcpEngine {
    cfg: TcpConfig,
    flows: Vec<FlowEntry>,
    by_id: HashMap<FlowId, u32>,
}

impl TcpEngine {
    /// Creates an engine.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpEngine {
            cfg,
            flows: Vec::new(),
            by_id: HashMap::new(),
        }
    }

    /// The transport configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Registers a flow; the caller must schedule its start timer with
    /// [`TcpEngine::start_token`] on host `spec.src` at `spec.start`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate flow IDs.
    pub fn add_flow(&mut self, spec: FlowSpec) -> u32 {
        let idx = self.flows.len() as u32;
        assert!(
            self.by_id.insert(spec.flow, idx).is_none(),
            "duplicate flow {}",
            spec.flow
        );
        self.flows.push(FlowEntry {
            spec,
            sender: SenderState::new(&self.cfg),
            receiver: ReceiverState::default(),
        });
        idx
    }

    /// The timer token that starts flow `idx`.
    pub fn start_token(idx: u32) -> u64 {
        token::pack(idx, token::Kind::Start, 0)
    }

    /// Number of registered flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Direct access to a flow entry.
    pub fn flow(&self, idx: u32) -> &FlowEntry {
        &self.flows[idx as usize]
    }

    /// Looks up a flow index by ID.
    pub fn index_of(&self, flow: &FlowId) -> Option<u32> {
        self.by_id.get(flow).copied()
    }

    /// Summary for one flow.
    pub fn report(&self, idx: u32) -> FlowReport {
        let e = &self.flows[idx as usize];
        FlowReport {
            flow: e.spec.flow,
            src: e.spec.src,
            dst: e.spec.dst,
            size: e.spec.size,
            acked: e.sender.acked,
            received: e.receiver.bytes_in_order,
            retrans_total: e.sender.retrans_total,
            fast_retrans: e.sender.fast_retrans,
            timeout_retrans: e.sender.timeout_retrans,
            consecutive_retrans: e.sender.consecutive_retrans,
            max_consecutive_retrans: e.sender.max_consecutive_retrans,
            start: e.spec.start,
            completed_at: e.sender.completed_at,
        }
    }

    /// Summaries for every flow.
    pub fn reports(&self) -> impl Iterator<Item = FlowReport> + '_ {
        (0..self.flows.len() as u32).map(|i| self.report(i))
    }

    /// The paper's `getPoorTCPFlows(threshold)`: flows whose consecutive
    /// retransmissions currently exceed `threshold`.
    pub fn poor_flows(&self, threshold: u32) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|e| e.sender.completed_at.is_none())
            .filter(|e| e.sender.consecutive_retrans > threshold)
            .map(|e| e.spec.flow)
            .collect()
    }

    /// True when every registered flow has completed.
    pub fn all_complete(&self) -> bool {
        self.flows.iter().all(|e| e.sender.completed_at.is_some())
    }

    // --- dataplane hooks ---------------------------------------------------

    /// Handles a packet arriving at `api.host()`.
    pub fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: &Packet) {
        if pkt.is_pure_ack() {
            // ACK for the reversed data flow, delivered to the sender.
            if let Some(&idx) = self.by_id.get(&pkt.flow.reversed()) {
                if self.flows[idx as usize].spec.src == api.host() {
                    self.on_ack(api, idx, pkt.ack);
                }
            }
        } else if let Some(&idx) = self.by_id.get(&pkt.flow) {
            if self.flows[idx as usize].spec.dst == api.host() {
                self.on_data(api, idx, pkt);
            }
        }
    }

    /// Handles a timer firing at `api.host()`.
    pub fn on_timer(&mut self, api: &mut HostApi<'_>, tok: u64) {
        let (idx, kind, epoch) = token::unpack(tok);
        if (idx as usize) >= self.flows.len() {
            return;
        }
        match kind {
            token::Kind::Start => self.on_start(api, idx),
            token::Kind::Rto => self.on_rto(api, idx, epoch),
        }
    }

    fn on_start(&mut self, api: &mut HostApi<'_>, idx: u32) {
        let e = &mut self.flows[idx as usize];
        if e.sender.started {
            return;
        }
        e.sender.started = true;
        self.pump(api, idx);
        self.arm_rto(api, idx);
    }

    /// Sends as much new data as the window allows.
    fn pump(&mut self, api: &mut HostApi<'_>, idx: u32) {
        let mss = self.cfg.mss;
        let e = &mut self.flows[idx as usize];
        let window = e.sender.window_bytes(&self.cfg);
        while e.sender.inflight() < window && e.sender.next_seq < e.spec.size {
            let len = mss.min((e.spec.size - e.sender.next_seq) as u32);
            let uid = api.alloc_uid();
            let mut pkt = Packet::data(uid, e.spec.flow, e.sender.next_seq, len, api.now());
            pkt.flow_size_hint = e.spec.size;
            e.sender.next_seq += len as u64;
            api.send(pkt);
        }
    }

    fn retransmit_hole(&mut self, api: &mut HostApi<'_>, idx: u32) {
        let mss = self.cfg.mss;
        let e = &mut self.flows[idx as usize];
        let seq = e.sender.acked;
        let len = mss.min((e.spec.size - seq) as u32);
        if len == 0 {
            return;
        }
        let uid = api.alloc_uid();
        let mut pkt = Packet::data(uid, e.spec.flow, seq, len, api.now());
        pkt.flow_size_hint = e.spec.size;
        if e.sender.next_seq < seq + len as u64 {
            e.sender.next_seq = seq + len as u64;
        }
        api.send(pkt);
    }

    fn arm_rto(&mut self, api: &mut HostApi<'_>, idx: u32) {
        let e = &mut self.flows[idx as usize];
        if e.sender.completed_at.is_some() || e.sender.inflight() == 0 {
            return;
        }
        e.sender.timer_epoch = e.sender.timer_epoch.wrapping_add(1) & 0x3FFF_FFFF;
        let delay = e.sender.rto(&self.cfg);
        api.set_timer(
            delay,
            token::pack(idx, token::Kind::Rto, e.sender.timer_epoch),
        );
    }

    fn on_ack(&mut self, api: &mut HostApi<'_>, idx: u32, ack: u64) {
        let size = self.flows[idx as usize].spec.size;
        let e = &mut self.flows[idx as usize];
        if e.sender.completed_at.is_some() {
            return;
        }
        if ack > e.sender.acked {
            e.sender.on_progress(ack, &self.cfg);
            if e.sender.acked >= size {
                e.sender.completed_at = Some(api.now());
                if !e.sender.fin_sent {
                    e.sender.fin_sent = true;
                    let uid = api.alloc_uid();
                    let mut fin = Packet::data(uid, e.spec.flow, size, 0, api.now());
                    fin.flags = TcpFlags::FIN;
                    fin.flow_size_hint = size;
                    api.send(fin);
                }
                return;
            }
            self.pump(api, idx);
            self.arm_rto(api, idx);
        } else if ack == self.flows[idx as usize].sender.acked {
            let fires = self.flows[idx as usize].sender.on_dup_ack();
            if fires {
                self.retransmit_hole(api, idx);
                self.arm_rto(api, idx);
            }
        }
    }

    fn on_rto(&mut self, api: &mut HostApi<'_>, idx: u32, epoch: u32) {
        let e = &mut self.flows[idx as usize];
        if e.sender.timer_epoch != epoch
            || e.sender.completed_at.is_some()
            || e.sender.inflight() == 0
        {
            return; // Stale timer.
        }
        e.sender.on_timeout(&self.cfg);
        self.retransmit_hole(api, idx);
        self.arm_rto(api, idx);
    }

    fn on_data(&mut self, api: &mut HostApi<'_>, idx: u32, pkt: &Packet) {
        let e = &mut self.flows[idx as usize];
        let fin = pkt.flags.contains(TcpFlags::FIN);
        let ack = e.receiver.on_data(pkt.seq, pkt.payload, fin, api.now());
        let uid = api.alloc_uid();
        api.send(Packet::ack(uid, e.spec.flow.reversed(), ack, api.now()));
    }
}

/// A [`World`] that runs the TCP engine alone (no PathDump agents) —
/// transport tests and baseline runs.
#[derive(Debug)]
pub struct TcpWorld {
    /// The engine.
    pub engine: TcpEngine,
}

impl TcpWorld {
    /// Wraps an engine.
    pub fn new(engine: TcpEngine) -> Self {
        TcpWorld { engine }
    }
}

impl World for TcpWorld {
    fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
        self.engine.on_packet(api, &pkt);
    }
    fn on_timer(&mut self, api: &mut HostApi<'_>, tok: u64) {
        self.engine.on_timer(api, tok);
    }
}

/// Registers `specs` into a fresh engine and schedules their start timers
/// on `sim`. Returns the flow indices in registration order.
pub fn install_flows<W>(
    sim: &mut pathdump_simnet::Simulator<W>,
    specs: &[FlowSpec],
    take_engine: impl FnOnce(&mut W) -> &mut TcpEngine,
) -> Vec<u32>
where
    W: World,
{
    let engine = take_engine(&mut sim.world);
    let mut idxs = Vec::with_capacity(specs.len());
    for spec in specs {
        idxs.push(engine.add_flow(*spec));
    }
    for (i, spec) in specs.iter().enumerate() {
        sim.schedule_timer(spec.src, spec.start, TcpEngine::start_token(idxs[i]));
    }
    idxs
}
