//! Simplified TCP transport and workload generation over `pathdump-simnet`.
//!
//! Substitutes for the paper's real Linux TCP stacks and `tcpretrans`
//! probe: slow start + AIMD, fast retransmit, RTO with backoff, FIN-based
//! completion, per-flow retransmission counters (the `getPoorTCPFlows`
//! signal), and the pFabric-style web traffic generator used by the §4
//! experiments.

pub mod engine;
pub mod tcp;
pub mod webgen;

pub use engine::{install_flows, FlowEntry, FlowReport, TcpEngine, TcpWorld};
pub use tcp::{FlowSpec, ReceiverState, SenderState, TcpConfig};
pub use webgen::{cdf_mean, sample_size, WebWorkload, WEB_SEARCH_CDF};
