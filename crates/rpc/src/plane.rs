//! The poll-driven aggregation-tree query plane.
//!
//! [`TreePlane`] owns one [`AgentServer`](self) state machine per host plus
//! the controller, all exchanging wire frames over one [`Channel`]. See the
//! crate docs for the protocol semantics (timeouts, retries, hedging,
//! deadlines, backpressure, coverage).

use crate::channel::{Channel, Delivery, NodeId, CONTROLLER};
use crate::coverage::Coverage;
use crate::msg::{AckMsg, ReplyMsg, RequestMsg, FRAME_RPC_ACK, FRAME_RPC_REPLY, FRAME_RPC_REQUEST};
use pathdump_core::{build_tree, execute_on_tib, Query, Response, TreeNode};
use pathdump_tib::Tib;
use pathdump_topology::Nanos;
use std::collections::{BTreeMap, VecDeque};

/// Identifies one submitted query (also the on-wire `req_id` shared by
/// every hop of that query).
pub type QueryId = u64;

/// Protocol knobs. All times are virtual.
#[derive(Clone, Copy, Debug)]
pub struct RpcConfig {
    /// Per-hop retransmit timeout for the first attempt.
    pub rto: Nanos,
    /// Resends after the first attempt before a child is written off.
    pub max_retries: u32,
    /// Multiplier applied to `rto` per attempt (exponential backoff).
    pub backoff_mult: u32,
    /// If set, one extra request copy is sent this long after the first
    /// unanswered send (straggler hedging).
    pub hedge_after: Option<Nanos>,
    /// End-to-end budget per query, measured from admission.
    pub deadline: Nanos,
    /// Per-level deadline shrink: a child must reply this much earlier
    /// than its parent finalizes, leaving time for the reply to climb.
    pub hop_slack: Nanos,
    /// Outstanding child calls per aggregation (the rest queue).
    pub max_children_inflight: usize,
    /// Concurrently admitted queries at the controller (the rest queue).
    pub max_queries_inflight: usize,
    /// Per-agent cached replies kept for duplicate-request suppression.
    pub reply_cache_cap: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            rto: Nanos::from_millis(2),
            max_retries: 3,
            backoff_mult: 2,
            hedge_after: Some(Nanos::from_millis(1)),
            deadline: Nanos::from_millis(200),
            hop_slack: Nanos::from_millis(5),
            max_children_inflight: 8,
            max_queries_inflight: 4,
            reply_cache_cap: 1024,
        }
    }
}

impl RpcConfig {
    /// Clamps degenerate values that would break timer progress.
    fn sanitized(mut self) -> Self {
        self.rto = self.rto.max(Nanos(1));
        self.deadline = self.deadline.max(Nanos(1));
        self.backoff_mult = self.backoff_mult.max(1);
        self.max_children_inflight = self.max_children_inflight.max(1);
        self.max_queries_inflight = self.max_queries_inflight.max(1);
        self.reply_cache_cap = self.reply_cache_cap.max(1);
        self
    }

    fn retry_interval(&self, attempt: u32) -> Nanos {
        let mult = (self.backoff_mult as u64).saturating_pow(attempt);
        Nanos(self.rto.0.saturating_mul(mult))
    }
}

/// Protocol-level counters (channel-level counts live on the channel).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlaneStats {
    /// Retransmits after an unanswered `rto`.
    pub retries: u64,
    /// Hedged duplicate requests.
    pub hedges: u64,
    /// Frames that failed CRC/decode and were dropped.
    pub decode_failures: u64,
    /// Well-formed frames that violated the protocol (unknown type,
    /// mismatched response variant, request addressed to the controller).
    pub protocol_errors: u64,
    /// Duplicate requests answered from the reply cache.
    pub cache_replies: u64,
    /// Duplicate requests ignored because execution was still in flight.
    pub duplicate_requests: u64,
    /// Replies that arrived after their subtree was written off.
    pub late_replies: u64,
}

/// The result of one query over the plane.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The merged (possibly partial) response.
    pub response: Response,
    /// Exact per-host accounting; see the crate docs for the guarantees.
    pub coverage: Coverage,
    /// The host set the query was submitted over (sorted).
    pub hosts: Vec<u32>,
    /// Admission → completion, in virtual time.
    pub elapsed: Nanos,
    /// Submission → admission wait under query backpressure.
    pub queued_wait: Nanos,
    /// Whether `elapsed` stayed within the configured deadline.
    pub deadline_met: bool,
}

#[derive(Clone, Copy, Debug)]
enum ChildState {
    /// Waiting for an in-flight slot (backpressure).
    Queued,
    /// Request sent, reply pending. Once `acked`, the child is known
    /// alive and retry/hedge timers park — only the deadline applies.
    Inflight {
        attempt: u32,
        first_sent: Nanos,
        retry_at: Nanos,
        hedged: bool,
        acked: bool,
    },
    /// Reply merged.
    Done,
    /// Retries exhausted; subtree counted missed.
    Failed,
}

struct ChildCall {
    subtree: TreeNode,
    state: ChildState,
}

/// One in-progress aggregation at a node (agents run at most one per
/// `req_id`; distinct queries pipeline freely).
struct Agg {
    /// Where the merged reply goes (`None` at the controller).
    parent: Option<NodeId>,
    query: Query,
    finalize_at: Nanos,
    acc: Response,
    cov: Coverage,
    children: Vec<ChildCall>,
    queued: VecDeque<usize>,
    inflight: usize,
}

impl Agg {
    fn terminal(&self) -> bool {
        self.inflight == 0 && self.queued.is_empty()
    }
}

#[derive(Default)]
struct Node {
    aggs: BTreeMap<u64, Agg>,
    reply_cache: BTreeMap<u64, Vec<u8>>,
}

struct PendingSubmit {
    query: Query,
    roots: Vec<TreeNode>,
    hosts: Vec<u32>,
    submitted_at: Nanos,
}

/// A timer event, in deterministic firing order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TimerKind {
    Finalize,
    Hedge(usize),
    Retry(usize),
}

/// The fan-out/fan-in aggregation-tree driver: all agent state machines,
/// the controller, and the virtual clock.
pub struct TreePlane<C: Channel> {
    cfg: RpcConfig,
    channel: C,
    tibs: Vec<Tib>,
    agents: Vec<Node>,
    controller: Node,
    meta: BTreeMap<u64, PendingSubmit>,
    admitted_at: BTreeMap<u64, Nanos>,
    submit_queue: VecDeque<u64>,
    outcomes: BTreeMap<u64, QueryOutcome>,
    admitted: usize,
    now: Nanos,
    next_req: u64,
    stats: PlaneStats,
}

fn subtree_hosts(node: &TreeNode, out: &mut Vec<u32>) {
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        out.push(n.host as u32);
        for c in &n.children {
            stack.push(c);
        }
    }
}

fn same_variant(a: &Response, b: &Response) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

impl<C: Channel> TreePlane<C> {
    /// A plane over per-host TIBs (index = host = channel address).
    pub fn new(channel: C, cfg: RpcConfig, tibs: Vec<Tib>) -> Self {
        let agents = (0..tibs.len()).map(|_| Node::default()).collect();
        TreePlane {
            cfg: cfg.sanitized(),
            channel,
            tibs,
            agents,
            controller: Node::default(),
            meta: BTreeMap::new(),
            admitted_at: BTreeMap::new(),
            submit_queue: VecDeque::new(),
            outcomes: BTreeMap::new(),
            admitted: 0,
            now: Nanos::ZERO,
            next_req: 1,
            stats: PlaneStats::default(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Protocol counters.
    pub fn stats(&self) -> PlaneStats {
        self.stats
    }

    /// The underlying channel (fault logs, traffic counters).
    pub fn channel(&self) -> &C {
        &self.channel
    }

    /// Effective (sanitized) configuration.
    pub fn config(&self) -> RpcConfig {
        self.cfg
    }

    /// Submits `query` over `hosts` with the given tree fan-outs. The
    /// query is admitted immediately if an in-flight slot is free,
    /// otherwise it queues (bounded pipelining). Invalid host indexes are
    /// ignored.
    pub fn submit(&mut self, query: &Query, hosts: &[usize], fanouts: &[usize]) -> QueryId {
        let hosts: Vec<usize> = hosts
            .iter()
            .copied()
            .filter(|&h| h < self.tibs.len())
            .collect();
        let roots = build_tree(&hosts, fanouts);
        let mut host_ids: Vec<u32> = hosts.iter().map(|&h| h as u32).collect();
        host_ids.sort_unstable();
        host_ids.dedup();
        let id = self.next_req;
        self.next_req += 1;
        self.meta.insert(
            id,
            PendingSubmit {
                query: query.clone(),
                roots,
                hosts: host_ids,
                submitted_at: self.now,
            },
        );
        self.submit_queue.push_back(id);
        self.try_admit();
        id
    }

    /// The finished outcome for `id`, if completed.
    pub fn outcome(&self, id: QueryId) -> Option<&QueryOutcome> {
        self.outcomes.get(&id)
    }

    /// Removes and returns the finished outcome for `id`.
    pub fn take_outcome(&mut self, id: QueryId) -> Option<QueryOutcome> {
        self.outcomes.remove(&id)
    }

    /// Advances the virtual clock to the next event (channel delivery or
    /// protocol timer) and runs everything due. Returns `false` when the
    /// plane is idle.
    pub fn step(&mut self) -> bool {
        let mut next = self.channel.next_delivery_at();
        if let Some(t) = self.next_timer() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        let Some(t) = next else {
            return false;
        };
        if t > self.now {
            self.now = t;
        }
        loop {
            let mut progressed = false;
            while let Some(d) = self.channel.recv_due(self.now) {
                self.on_frame(d);
                progressed = true;
            }
            if let Some((owner, req_id, kind)) = self.pop_due_timer() {
                self.fire_timer(owner, req_id, kind);
                progressed = true;
            }
            if !progressed {
                return true;
            }
        }
    }

    /// Drives the plane until `id` completes; `None` only if the plane
    /// goes idle first (a protocol bug — deadlines guarantee completion).
    pub fn run(&mut self, id: QueryId) -> Option<QueryOutcome> {
        loop {
            if self.outcomes.contains_key(&id) {
                return self.take_outcome(id);
            }
            if !self.step() {
                return self.take_outcome(id);
            }
        }
    }

    /// Drives the plane until every event is drained.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    // --- admission -------------------------------------------------------

    fn try_admit(&mut self) {
        while self.admitted < self.cfg.max_queries_inflight {
            let Some(id) = self.submit_queue.pop_front() else {
                return;
            };
            let Some(pending) = self.meta.get(&id) else {
                continue;
            };
            self.admitted_at.insert(id, self.now);
            self.admitted += 1;
            let finalize_at = self.now + self.cfg.deadline;
            let children: Vec<ChildCall> = pending
                .roots
                .iter()
                .map(|r| ChildCall {
                    subtree: r.clone(),
                    state: ChildState::Queued,
                })
                .collect();
            let queued: VecDeque<usize> = (0..children.len()).collect();
            let mut agg = Agg {
                parent: None,
                query: pending.query.clone(),
                finalize_at,
                acc: Response::empty_for(&pending.query),
                cov: Coverage::new(),
                children,
                queued,
                inflight: 0,
            };
            self.pump(CONTROLLER, id, &mut agg);
            if agg.terminal() {
                // Zero hosts: complete on the spot.
                self.complete_controller(id, agg);
            } else {
                self.controller.aggs.insert(id, agg);
            }
        }
    }

    // --- sending ---------------------------------------------------------

    fn send_request(&mut self, owner: NodeId, req_id: u64, agg: &Agg, child: &TreeNode) {
        let child_deadline =
            Nanos(agg.finalize_at.0.saturating_sub(self.cfg.hop_slack.0)).max(self.now);
        let msg = RequestMsg {
            req_id,
            deadline: child_deadline,
            query: agg.query.clone(),
            subtree: child.clone(),
        };
        let frame = pathdump_wire::Frame::new(FRAME_RPC_REQUEST, pathdump_wire::to_bytes(&msg));
        self.channel
            .send(owner, child.host as NodeId, frame.to_wire(), self.now);
    }

    fn send_ack(&mut self, owner: NodeId, parent: NodeId, req_id: u64) {
        let frame =
            pathdump_wire::Frame::new(FRAME_RPC_ACK, pathdump_wire::to_bytes(&AckMsg { req_id }));
        self.channel.send(owner, parent, frame.to_wire(), self.now);
    }

    /// Starts queued child calls while in-flight slots are free.
    fn pump(&mut self, owner: NodeId, req_id: u64, agg: &mut Agg) {
        while agg.inflight < self.cfg.max_children_inflight {
            let Some(idx) = agg.queued.pop_front() else {
                return;
            };
            let child_host = agg.children[idx].subtree.host;
            if child_host >= self.tibs.len() {
                // Unroutable child (cannot happen with a well-formed tree):
                // count its subtree missed without burning retries.
                let mut hosts = Vec::new();
                subtree_hosts(&agg.children[idx].subtree, &mut hosts);
                agg.cov.missed.extend(hosts);
                agg.children[idx].state = ChildState::Failed;
                continue;
            }
            let subtree = agg.children[idx].subtree.clone();
            self.send_request(owner, req_id, agg, &subtree);
            agg.children[idx].state = ChildState::Inflight {
                attempt: 0,
                first_sent: self.now,
                retry_at: self.now + self.cfg.retry_interval(0),
                hedged: self.cfg.hedge_after.is_none(),
                acked: false,
            };
            agg.inflight += 1;
        }
    }

    // --- receiving -------------------------------------------------------

    fn on_frame(&mut self, d: Delivery) {
        let parsed = pathdump_wire::Frame::from_wire(&d.bytes);
        let Ok((frame, used)) = parsed else {
            self.stats.decode_failures += 1;
            return;
        };
        if used != d.bytes.len() {
            self.stats.decode_failures += 1;
            return;
        }
        match frame.typ {
            FRAME_RPC_REQUEST => {
                let Ok(msg) = pathdump_wire::from_bytes::<RequestMsg>(&frame.payload) else {
                    self.stats.decode_failures += 1;
                    return;
                };
                if d.to == CONTROLLER || (d.to as usize) >= self.agents.len() {
                    self.stats.protocol_errors += 1;
                    return;
                }
                self.on_request(d.to, d.from, msg);
            }
            FRAME_RPC_REPLY => {
                let Ok(msg) = pathdump_wire::from_bytes::<ReplyMsg>(&frame.payload) else {
                    self.stats.decode_failures += 1;
                    return;
                };
                self.on_reply(d.to, d.from, msg);
            }
            FRAME_RPC_ACK => {
                let Ok(msg) = pathdump_wire::from_bytes::<AckMsg>(&frame.payload) else {
                    self.stats.decode_failures += 1;
                    return;
                };
                self.on_ack(d.to, d.from, msg);
            }
            _ => self.stats.protocol_errors += 1,
        }
    }

    fn on_request(&mut self, to: NodeId, from: NodeId, msg: RequestMsg) {
        let me = to as usize;
        if msg.subtree.host != me {
            self.stats.protocol_errors += 1;
            return;
        }
        if let Some(cached) = self.agents[me].reply_cache.get(&msg.req_id) {
            // At-least-once delivery, at-most-once execution: duplicate
            // requests re-send the cached reply frame.
            let bytes = cached.clone();
            self.stats.cache_replies += 1;
            self.channel.send(to, from, bytes, self.now);
            return;
        }
        if self.agents[me].aggs.contains_key(&msg.req_id) {
            // Still aggregating: re-ack (the first ack may have been lost)
            // so the parent keeps waiting instead of retrying.
            self.stats.duplicate_requests += 1;
            self.send_ack(to, from, msg.req_id);
            return;
        }
        if !msg.subtree.children.is_empty() {
            // Non-leaf work can legitimately outlast many RTOs (e.g. its
            // own dead grandchildren burn retries first); the ack parks
            // the parent's retry clock. A leaf replies immediately below,
            // so its reply doubles as the ack.
            self.send_ack(to, from, msg.req_id);
        }
        let local = execute_on_tib(&self.tibs[me], &msg.query);
        let children: Vec<ChildCall> = msg
            .subtree
            .children
            .into_iter()
            .map(|subtree| ChildCall {
                subtree,
                state: ChildState::Queued,
            })
            .collect();
        let queued: VecDeque<usize> = (0..children.len()).collect();
        let mut agg = Agg {
            parent: Some(from),
            query: msg.query,
            finalize_at: msg.deadline,
            acc: local,
            cov: Coverage::answered_one(me as u32),
            children,
            queued,
            inflight: 0,
        };
        self.pump(to, msg.req_id, &mut agg);
        if agg.terminal() {
            self.reply_up(to, msg.req_id, agg);
        } else {
            self.agents[me].aggs.insert(msg.req_id, agg);
        }
    }

    fn on_reply(&mut self, to: NodeId, from: NodeId, msg: ReplyMsg) {
        let node = if to == CONTROLLER {
            &mut self.controller
        } else if (to as usize) < self.agents.len() {
            &mut self.agents[to as usize]
        } else {
            self.stats.protocol_errors += 1;
            return;
        };
        let Some(agg) = node.aggs.get_mut(&msg.req_id) else {
            // The aggregation already finalized (or never existed here):
            // a duplicate or post-deadline straggler.
            self.stats.late_replies += 1;
            return;
        };
        let Some(idx) = agg
            .children
            .iter()
            .position(|c| c.subtree.host == from as usize)
        else {
            self.stats.protocol_errors += 1;
            return;
        };
        if !matches!(agg.children[idx].state, ChildState::Inflight { .. }) {
            // Duplicate reply (hedge or channel dup) or post-write-off.
            self.stats.late_replies += 1;
            return;
        }
        if !same_variant(&agg.acc, &msg.response) {
            self.stats.protocol_errors += 1;
            return;
        }
        agg.acc.merge(msg.response);
        agg.cov.absorb(msg.coverage);
        agg.children[idx].state = ChildState::Done;
        agg.inflight -= 1;
        let Some(mut agg) = node.aggs.remove(&msg.req_id) else {
            return;
        };
        self.pump(to, msg.req_id, &mut agg);
        if agg.terminal() {
            self.finalize(to, msg.req_id, agg);
        } else {
            let node = if to == CONTROLLER {
                &mut self.controller
            } else {
                &mut self.agents[to as usize]
            };
            node.aggs.insert(msg.req_id, agg);
        }
    }

    fn on_ack(&mut self, to: NodeId, from: NodeId, msg: AckMsg) {
        let node = if to == CONTROLLER {
            &mut self.controller
        } else if (to as usize) < self.agents.len() {
            &mut self.agents[to as usize]
        } else {
            self.stats.protocol_errors += 1;
            return;
        };
        let Some(agg) = node.aggs.get_mut(&msg.req_id) else {
            return; // Ack after finalize: nothing to park.
        };
        let Some(idx) = agg
            .children
            .iter()
            .position(|c| c.subtree.host == from as usize)
        else {
            self.stats.protocol_errors += 1;
            return;
        };
        if let ChildState::Inflight { acked, .. } = &mut agg.children[idx].state {
            *acked = true;
        }
    }

    // --- timers ----------------------------------------------------------

    fn agg_timer(cfg: &RpcConfig, agg: &Agg) -> Option<Nanos> {
        let mut t = Some(agg.finalize_at);
        for c in &agg.children {
            if let ChildState::Inflight {
                first_sent,
                retry_at,
                hedged,
                acked,
                ..
            } = c.state
            {
                if acked {
                    continue; // parked: only the finalize deadline applies
                }
                let mut cand = retry_at;
                if !hedged {
                    if let Some(h) = cfg.hedge_after {
                        cand = cand.min(first_sent + h);
                    }
                }
                t = Some(t.map_or(cand, |x| x.min(cand)));
            }
        }
        t
    }

    fn next_timer(&self) -> Option<Nanos> {
        let mut t: Option<Nanos> = None;
        let fold = |t: Option<Nanos>, cand: Nanos| Some(t.map_or(cand, |x| x.min(cand)));
        for agg in self.controller.aggs.values() {
            if let Some(cand) = Self::agg_timer(&self.cfg, agg) {
                t = fold(t, cand);
            }
        }
        for node in &self.agents {
            for agg in node.aggs.values() {
                if let Some(cand) = Self::agg_timer(&self.cfg, agg) {
                    t = fold(t, cand);
                }
            }
        }
        t
    }

    /// The first timer due at or before `now`, in deterministic order:
    /// controller before agents, agents by index, aggregations by id;
    /// within one aggregation, finalize > hedge > retry, children in
    /// order.
    fn pop_due_timer(&self) -> Option<(NodeId, u64, TimerKind)> {
        let now = self.now;
        let cfg = self.cfg;
        let scan = |owner: NodeId, aggs: &BTreeMap<u64, Agg>| -> Option<(NodeId, u64, TimerKind)> {
            for (&req_id, agg) in aggs {
                if agg.finalize_at <= now {
                    return Some((owner, req_id, TimerKind::Finalize));
                }
                for (idx, c) in agg.children.iter().enumerate() {
                    if let ChildState::Inflight {
                        first_sent,
                        retry_at,
                        hedged,
                        acked,
                        ..
                    } = c.state
                    {
                        if acked {
                            continue;
                        }
                        if !hedged {
                            if let Some(h) = cfg.hedge_after {
                                if first_sent + h <= now {
                                    return Some((owner, req_id, TimerKind::Hedge(idx)));
                                }
                            }
                        }
                        if retry_at <= now {
                            return Some((owner, req_id, TimerKind::Retry(idx)));
                        }
                    }
                }
            }
            None
        };
        if let Some(ev) = scan(CONTROLLER, &self.controller.aggs) {
            return Some(ev);
        }
        for (i, node) in self.agents.iter().enumerate() {
            if let Some(ev) = scan(i as NodeId, &node.aggs) {
                return Some(ev);
            }
        }
        None
    }

    fn fire_timer(&mut self, owner: NodeId, req_id: u64, kind: TimerKind) {
        let node = if owner == CONTROLLER {
            &mut self.controller
        } else {
            &mut self.agents[owner as usize]
        };
        match kind {
            TimerKind::Finalize => {
                if let Some(agg) = node.aggs.remove(&req_id) {
                    self.finalize(owner, req_id, agg);
                }
            }
            TimerKind::Hedge(idx) => {
                let Some(agg) = node.aggs.get_mut(&req_id) else {
                    return;
                };
                if let ChildState::Inflight { hedged, .. } = &mut agg.children[idx].state {
                    *hedged = true;
                }
                let Some(mut agg) = node.aggs.remove(&req_id) else {
                    return;
                };
                let subtree = agg.children[idx].subtree.clone();
                self.stats.hedges += 1;
                self.send_request(owner, req_id, &agg, &subtree);
                self.reinsert(owner, req_id, &mut agg);
            }
            TimerKind::Retry(idx) => {
                let Some(mut agg) = node.aggs.remove(&req_id) else {
                    return;
                };
                let exhausted =
                    if let ChildState::Inflight { attempt, .. } = agg.children[idx].state {
                        attempt >= self.cfg.max_retries
                    } else {
                        true
                    };
                if exhausted {
                    // Peer presumed dead: its whole subtree is missed.
                    let mut hosts = Vec::new();
                    subtree_hosts(&agg.children[idx].subtree, &mut hosts);
                    agg.cov.missed.extend(hosts);
                    agg.children[idx].state = ChildState::Failed;
                    agg.inflight -= 1;
                    self.pump(owner, req_id, &mut agg);
                    if agg.terminal() {
                        self.finalize(owner, req_id, agg);
                        return;
                    }
                } else if let ChildState::Inflight {
                    attempt, retry_at, ..
                } = &mut agg.children[idx].state
                {
                    *attempt += 1;
                    let next = self.now + self.cfg.retry_interval(*attempt);
                    *retry_at = next;
                    let subtree = agg.children[idx].subtree.clone();
                    self.stats.retries += 1;
                    self.send_request(owner, req_id, &agg, &subtree);
                }
                self.reinsert(owner, req_id, &mut agg);
            }
        }
    }

    /// Puts an aggregation back unless it was consumed by a finalize.
    fn reinsert(&mut self, owner: NodeId, req_id: u64, agg: &mut Agg) {
        let node = if owner == CONTROLLER {
            &mut self.controller
        } else {
            &mut self.agents[owner as usize]
        };
        let placeholder = Agg {
            parent: None,
            query: agg.query.clone(),
            finalize_at: Nanos::ZERO,
            acc: Response::Count { bytes: 0, pkts: 0 },
            cov: Coverage::new(),
            children: Vec::new(),
            queued: VecDeque::new(),
            inflight: 0,
        };
        node.aggs
            .insert(req_id, std::mem::replace(agg, placeholder));
    }

    // --- completion ------------------------------------------------------

    /// Writes off outstanding subtrees as timed-out, normalizes coverage,
    /// and routes the result up (agents) or out (controller).
    fn finalize(&mut self, owner: NodeId, req_id: u64, mut agg: Agg) {
        for c in &agg.children {
            if matches!(c.state, ChildState::Queued | ChildState::Inflight { .. }) {
                let mut hosts = Vec::new();
                subtree_hosts(&c.subtree, &mut hosts);
                agg.cov.timed_out.extend(hosts);
            }
        }
        agg.queued.clear();
        agg.inflight = 0;
        if owner == CONTROLLER {
            self.complete_controller(req_id, agg);
        } else {
            self.reply_up(owner, req_id, agg);
        }
    }

    fn reply_up(&mut self, owner: NodeId, req_id: u64, mut agg: Agg) {
        agg.cov.normalize();
        let Some(parent) = agg.parent else {
            return;
        };
        let msg = ReplyMsg {
            req_id,
            response: agg.acc,
            coverage: agg.cov,
        };
        let frame = pathdump_wire::Frame::new(FRAME_RPC_REPLY, pathdump_wire::to_bytes(&msg));
        let wire = frame.to_wire();
        let me = owner as usize;
        let cache = &mut self.agents[me].reply_cache;
        if cache.len() >= self.cfg.reply_cache_cap {
            cache.pop_first();
        }
        cache.insert(req_id, wire.clone());
        self.channel.send(owner, parent, wire, self.now);
    }

    fn complete_controller(&mut self, req_id: u64, mut agg: Agg) {
        agg.cov.normalize();
        let (hosts, submitted_at) = match self.meta.remove(&req_id) {
            Some(p) => (p.hosts, p.submitted_at),
            None => (Vec::new(), self.now),
        };
        let admitted = self.admitted_at.remove(&req_id).unwrap_or(self.now);
        let elapsed = self.now - admitted;
        self.outcomes.insert(
            req_id,
            QueryOutcome {
                response: agg.acc,
                coverage: agg.cov,
                hosts,
                elapsed,
                queued_wait: admitted - submitted_at,
                deadline_met: elapsed <= self.cfg.deadline,
            },
        );
        self.admitted = self.admitted.saturating_sub(1);
        self.try_admit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Loopback;
    use pathdump_core::{Cluster, MgmtNet};
    use pathdump_tib::TibRecord;
    use pathdump_topology::{FlowId, Ip, Path, SwitchId, TimeRange};

    fn tib_with(host: usize, n: usize) -> Tib {
        let mut t = Tib::new();
        for i in 0..n {
            t.insert(TibRecord {
                flow: FlowId::tcp(
                    Ip::new(10, host as u8, 0, 2),
                    1000 + i as u16,
                    Ip::new(10, 99, 0, 2),
                    80,
                ),
                path: Path::new(vec![SwitchId(0), SwitchId(8), SwitchId(4)]),
                stime: Nanos(i as u64),
                etime: Nanos(i as u64 + 10),
                bytes: (host * 1000 + i * 17) as u64,
                pkts: 1,
            });
        }
        t
    }

    fn tibs(n_hosts: usize, records: usize) -> Vec<Tib> {
        (0..n_hosts).map(|h| tib_with(h, records)).collect()
    }

    #[test]
    fn lossless_tree_matches_multilevel_oracle() {
        let data = tibs(30, 40);
        let cluster = Cluster::new(data.clone(), MgmtNet::default());
        let hosts: Vec<usize> = (0..30).collect();
        let q = Query::TopK {
            k: 25,
            range: TimeRange::ANY,
        };
        let oracle = cluster.multilevel_query(&hosts, &q, &[7, 4, 4]);

        let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), data);
        let id = plane.submit(&q, &hosts, &[7, 4, 4]);
        let out = plane.run(id).expect("completes");
        assert_eq!(out.response, oracle.response);
        assert!(out.coverage.is_complete());
        assert_eq!(out.coverage.answered.len(), 30);
        assert!(out.coverage.partitions(&(0..30u32).collect::<Vec<_>>()));
        assert!(out.deadline_met);
        assert_eq!(plane.stats().retries, 0);
        assert_eq!(plane.stats().decode_failures, 0);
    }

    #[test]
    fn pipelined_queries_all_complete() {
        let data = tibs(12, 20);
        let cluster = Cluster::new(data.clone(), MgmtNet::default());
        let hosts: Vec<usize> = (0..12).collect();
        let cfg = RpcConfig {
            max_queries_inflight: 2, // force queueing
            ..RpcConfig::default()
        };
        let mut plane = TreePlane::new(Loopback::default(), cfg, data);
        let queries = [
            Query::TopK {
                k: 5,
                range: TimeRange::ANY,
            },
            Query::TrafficMatrix {
                range: TimeRange::ANY,
            },
            Query::GetFlows {
                link: pathdump_topology::LinkPattern::ANY,
                range: TimeRange::ANY,
            },
            Query::HeavyHitters {
                min_bytes: 5_000,
                range: TimeRange::ANY,
            },
            Query::FlowSizeDist {
                link: pathdump_topology::LinkPattern::ANY,
                range: TimeRange::ANY,
                bin_bytes: 1000,
            },
        ];
        let ids: Vec<QueryId> = queries
            .iter()
            .map(|q| plane.submit(q, &hosts, &[3, 2, 2]))
            .collect();
        plane.run_until_idle();
        for (q, id) in queries.iter().zip(ids) {
            let out = plane.take_outcome(id).expect("completed");
            let oracle = cluster.multilevel_query(&hosts, q, &[3, 2, 2]);
            assert_eq!(out.response, oracle.response, "query {q:?}");
            assert!(out.coverage.is_complete());
            assert!(out.deadline_met);
        }
    }

    #[test]
    fn empty_host_set_completes_immediately() {
        let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), tibs(4, 5));
        let id = plane.submit(
            &Query::TopK {
                k: 3,
                range: TimeRange::ANY,
            },
            &[],
            &[7, 4, 4],
        );
        let out = plane.run(id).expect("completes");
        assert_eq!(
            out.response,
            Response::TopK {
                k: 3,
                entries: vec![]
            }
        );
        assert_eq!(out.coverage.total(), 0);
        assert!(out.deadline_met);
    }

    #[test]
    fn single_host_tree() {
        let data = tibs(1, 10);
        let cluster = Cluster::new(data.clone(), MgmtNet::default());
        let q = Query::TrafficMatrix {
            range: TimeRange::ANY,
        };
        let oracle = cluster.multilevel_query(&[0], &q, &[7, 4, 4]);
        let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), data);
        let id = plane.submit(&q, &[0], &[7, 4, 4]);
        let out = plane.run(id).expect("completes");
        assert_eq!(out.response, oracle.response);
        assert_eq!(out.coverage.answered, vec![0]);
    }

    #[test]
    fn backpressure_bounds_child_inflight() {
        // A flat 1-level tree over 20 hosts with max_children_inflight=2:
        // the controller may never have more than 2 outstanding calls, yet
        // everything completes and matches the oracle.
        let data = tibs(20, 10);
        let cluster = Cluster::new(data.clone(), MgmtNet::default());
        let hosts: Vec<usize> = (0..20).collect();
        let q = Query::TopK {
            k: 10,
            range: TimeRange::ANY,
        };
        let oracle = cluster.multilevel_query(&hosts, &q, &[20]);
        let cfg = RpcConfig {
            max_children_inflight: 2,
            ..RpcConfig::default()
        };
        let mut plane = TreePlane::new(Loopback::default(), cfg, data);
        let id = plane.submit(&q, &hosts, &[20]);
        let out = plane.run(id).expect("completes");
        assert_eq!(out.response, oracle.response);
        assert!(out.coverage.is_complete());
    }
}
