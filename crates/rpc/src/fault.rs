//! The fault-injecting channel harness: every degradation path of a real
//! management network, reproducible from a seed.

use crate::channel::{Channel, Delivery, NodeId};
use pathdump_core::MgmtNet;
use pathdump_topology::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// What to inject, with what probability. All draws come from one seeded
/// RNG in send order, so a fault pattern is a pure function of the seed
/// and the (deterministic) send sequence.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is delivered twice (the copy lands after an
    /// extra `jitter`-bounded delay).
    pub dup_prob: f64,
    /// Probability one payload bit (CRC-covered region) is flipped.
    pub corrupt_prob: f64,
    /// Uniform extra delay in `[0, jitter]` added per frame — with enough
    /// spread this reorders deliveries between nodes.
    pub jitter: Nanos,
    /// Extra fixed delay for every frame to or from these nodes
    /// (stragglers).
    pub straggle: Vec<(NodeId, Nanos)>,
    /// Nodes that neither receive nor send: every frame touching them is
    /// swallowed.
    pub dead: Vec<NodeId>,
}

impl FaultPlan {
    /// A lossless plan (useful as a base to customize).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            jitter: Nanos::ZERO,
            straggle: Vec::new(),
            dead: Vec::new(),
        }
    }
}

/// Counts of injected faults, for asserting a chaos test was not vacuous.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultLog {
    /// Frames dropped by `drop_prob`.
    pub dropped: u64,
    /// Extra copies enqueued by `dup_prob`.
    pub duplicated: u64,
    /// Frames with a flipped payload bit.
    pub corrupted: u64,
    /// Frames swallowed because an endpoint was dead.
    pub dead_dropped: u64,
    /// Frames that got a nonzero jitter or straggler delay.
    pub delayed: u64,
}

/// A [`Channel`] that perturbs frames per a [`FaultPlan`] before queueing
/// them on the same deterministic timeline as [`Loopback`]
/// (`crate::channel::Loopback`).
#[derive(Debug)]
pub struct FaultyChannel {
    net: MgmtNet,
    plan: FaultPlan,
    rng: SmallRng,
    log: FaultLog,
    queue: BTreeMap<(Nanos, u64), Delivery>,
    seq: u64,
    frames: u64,
    bytes: u64,
}

impl FaultyChannel {
    /// A faulty channel over the given latency model and plan.
    pub fn new(net: MgmtNet, plan: FaultPlan) -> Self {
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultyChannel {
            net,
            plan,
            rng,
            log: FaultLog::default(),
            queue: BTreeMap::new(),
            seq: 0,
            frames: 0,
            bytes: 0,
        }
    }

    /// Injection counts so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }

    fn extra_delay(&mut self, from: NodeId, to: NodeId) -> Nanos {
        let mut extra = if self.plan.jitter.0 > 0 {
            Nanos(self.rng.gen_range(0..=self.plan.jitter.0))
        } else {
            Nanos::ZERO
        };
        for &(node, delay) in &self.plan.straggle {
            if node == from || node == to {
                extra += delay;
            }
        }
        extra
    }

    fn enqueue(&mut self, d: Delivery) {
        let key = (d.at, self.seq);
        self.seq += 1;
        self.queue.insert(key, d);
    }
}

impl Channel for FaultyChannel {
    fn send(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>, now: Nanos) {
        self.frames += 1;
        self.bytes += bytes.len() as u64;
        if self.plan.dead.contains(&from) || self.plan.dead.contains(&to) {
            self.log.dead_dropped += 1;
            return;
        }
        if self.plan.drop_prob > 0.0 && self.rng.gen_bool(self.plan.drop_prob) {
            self.log.dropped += 1;
            return;
        }
        let mut payload = bytes;
        if self.plan.corrupt_prob > 0.0
            && payload.len() > 4
            && self.rng.gen_bool(self.plan.corrupt_prob)
        {
            // Flip one bit past the length prefix: the CRC-covered region,
            // so corruption is always *detectable* (the length field is
            // exercised separately by the codec-robustness suite).
            let at = self.rng.gen_range(4..payload.len());
            let bit = self.rng.gen_range(0..8u8);
            payload[at] ^= 1 << bit;
            self.log.corrupted += 1;
        }
        let base = self.net.transfer(payload.len());
        let extra = self.extra_delay(from, to);
        if extra.0 > 0 {
            self.log.delayed += 1;
        }
        let at = now + base + extra;
        let dup = self.plan.dup_prob > 0.0 && self.rng.gen_bool(self.plan.dup_prob);
        let dup_extra = if dup && self.plan.jitter.0 > 0 {
            Nanos(self.rng.gen_range(0..=self.plan.jitter.0))
        } else {
            Nanos::ZERO
        };
        if dup {
            self.log.duplicated += 1;
            self.enqueue(Delivery {
                from,
                to,
                at: at + dup_extra,
                bytes: payload.clone(),
            });
        }
        self.enqueue(Delivery {
            from,
            to,
            at,
            bytes: payload,
        });
    }

    fn next_delivery_at(&self) -> Option<Nanos> {
        self.queue.keys().next().map(|(t, _)| *t)
    }

    fn recv_due(&mut self, now: Nanos) -> Option<Delivery> {
        let key = *self.queue.keys().next()?;
        if key.0 > now {
            return None;
        }
        self.queue.remove(&key)
    }

    fn frames_sent(&self) -> u64 {
        self.frames
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> MgmtNet {
        MgmtNet::default()
    }

    #[test]
    fn lossless_plan_behaves_like_loopback() {
        use crate::channel::Loopback;
        let mut faulty = FaultyChannel::new(net(), FaultPlan::none(1));
        let mut clean = Loopback::new(net());
        for i in 0..10u8 {
            faulty.send(0, 1, vec![i; 20], Nanos(i as u64 * 100));
            clean.send(0, 1, vec![i; 20], Nanos(i as u64 * 100));
        }
        loop {
            let a = faulty.recv_due(Nanos(u64::MAX));
            let b = clean.recv_due(Nanos(u64::MAX));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(faulty.log(), FaultLog::default());
    }

    #[test]
    fn dead_peer_swallows_both_directions() {
        let mut plan = FaultPlan::none(2);
        plan.dead = vec![3];
        let mut ch = FaultyChannel::new(net(), plan);
        ch.send(0, 3, vec![1], Nanos(0));
        ch.send(3, 0, vec![2], Nanos(0));
        ch.send(0, 1, vec![3], Nanos(0));
        assert_eq!(ch.log().dead_dropped, 2);
        let d = ch.recv_due(Nanos(u64::MAX)).expect("live frame");
        assert_eq!(d.bytes, vec![3]);
        assert!(ch.recv_due(Nanos(u64::MAX)).is_none());
    }

    #[test]
    fn drop_duplicate_corrupt_are_seeded_and_logged() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::none(seed);
            plan.drop_prob = 0.3;
            plan.dup_prob = 0.3;
            plan.corrupt_prob = 0.3;
            plan.jitter = Nanos(50_000);
            let mut ch = FaultyChannel::new(net(), plan);
            for i in 0..200u64 {
                ch.send(0, 1, vec![0xAB; 64], Nanos(i * 1000));
            }
            let mut deliveries = Vec::new();
            while let Some(d) = ch.recv_due(Nanos(u64::MAX)) {
                deliveries.push(d);
            }
            (ch.log(), deliveries)
        };
        let (log, deliveries) = run(7);
        assert!(log.dropped > 20, "{log:?}");
        assert!(log.duplicated > 20, "{log:?}");
        assert!(log.corrupted > 20, "{log:?}");
        assert_eq!(
            log.delayed,
            200 - log.dropped,
            "every surviving frame draws a nonzero jitter here: {log:?}"
        );
        assert_eq!(
            deliveries.len() as u64,
            200 - log.dropped + log.duplicated,
            "every surviving frame (plus dup copies) is delivered"
        );
        // Determinism: the same seed reproduces the identical timeline.
        let (log2, deliveries2) = run(7);
        assert_eq!(log, log2);
        assert_eq!(deliveries, deliveries2);
        // A different seed gives a different pattern.
        let (log3, _) = run(8);
        assert_ne!(log, log3);
    }

    #[test]
    fn corruption_is_always_crc_detectable() {
        use pathdump_wire::Frame;
        let mut plan = FaultPlan::none(5);
        plan.corrupt_prob = 1.0;
        let mut ch = FaultyChannel::new(net(), plan);
        for _ in 0..50 {
            let wire = Frame::new(7, vec![1, 2, 3, 4, 5, 6, 7, 8]).to_wire();
            ch.send(0, 1, wire, Nanos(0));
        }
        let mut n = 0;
        while let Some(d) = ch.recv_due(Nanos(u64::MAX)) {
            assert!(
                Frame::from_wire(&d.bytes).is_err(),
                "flipped bit must fail the CRC"
            );
            n += 1;
        }
        assert_eq!(n, 50);
    }
}
