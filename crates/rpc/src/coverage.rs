//! Per-host coverage accounting for degraded queries.

use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireError, WireResult};

/// Which hosts contributed to a merged response, and what happened to the
/// rest. The three classes are sorted, deduplicated and mutually disjoint;
/// together they partition the queried host set (see the crate docs for
/// the guarantees the plane maintains).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Coverage {
    /// Hosts whose complete local answer is in the merged response.
    pub answered: Vec<u32>,
    /// Hosts written off after retry exhaustion (peer dead/unreachable).
    pub missed: Vec<u32>,
    /// Hosts still outstanding when a deadline fired.
    pub timed_out: Vec<u32>,
}

impl Coverage {
    /// Empty coverage.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Coverage for a single answered host.
    pub fn answered_one(host: u32) -> Self {
        Coverage {
            answered: vec![host],
            missed: Vec::new(),
            timed_out: Vec::new(),
        }
    }

    /// Total hosts accounted for.
    pub fn total(&self) -> usize {
        self.answered.len() + self.missed.len() + self.timed_out.len()
    }

    /// True when every accounted host answered.
    pub fn is_complete(&self) -> bool {
        self.missed.is_empty() && self.timed_out.is_empty()
    }

    /// Folds a child's coverage into this one.
    pub fn absorb(&mut self, other: Coverage) {
        self.answered.extend(other.answered);
        self.missed.extend(other.missed);
        self.timed_out.extend(other.timed_out);
    }

    /// Restores the sorted/deduplicated normal form after `absorb`s.
    pub fn normalize(&mut self) {
        self.answered.sort_unstable();
        self.answered.dedup();
        self.missed.sort_unstable();
        self.missed.dedup();
        self.timed_out.sort_unstable();
        self.timed_out.dedup();
    }

    /// True when the classes are sorted, deduplicated, pairwise disjoint
    /// and together equal exactly `hosts` (order-insensitive). The test
    /// suites assert this on every outcome.
    pub fn partitions(&self, hosts: &[u32]) -> bool {
        let mut all: Vec<u32> = self
            .answered
            .iter()
            .chain(&self.missed)
            .chain(&self.timed_out)
            .copied()
            .collect();
        all.sort_unstable();
        let mut want: Vec<u32> = hosts.to_vec();
        want.sort_unstable();
        let no_dups = all.windows(2).all(|w| w[0] != w[1]);
        no_dups && all == want
    }
}

impl Encode for Coverage {
    fn encode(&self, enc: &mut Encoder) {
        self.answered.encode(enc);
        self.missed.encode(enc);
        self.timed_out.encode(enc);
    }
}

impl Decode for Coverage {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let cov = Coverage {
            answered: Vec::<u32>::decode(dec)?,
            missed: Vec::<u32>::decode(dec)?,
            timed_out: Vec::<u32>::decode(dec)?,
        };
        // Reject wire forms that are not in normal form: a tampered frame
        // must not smuggle a host into two classes.
        let mut check = cov.clone();
        check.normalize();
        if check != cov {
            return Err(WireError::InvalidTag(u32::MAX));
        }
        let mut all: Vec<u32> = cov
            .answered
            .iter()
            .chain(&cov.missed)
            .chain(&cov.timed_out)
            .copied()
            .collect();
        all.sort_unstable();
        if all.windows(2).any(|w| w[0] == w[1]) {
            return Err(WireError::InvalidTag(u32::MAX));
        }
        Ok(cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_wire::{from_bytes, to_bytes};

    #[test]
    fn absorb_and_partition() {
        let mut c = Coverage::answered_one(3);
        c.absorb(Coverage {
            answered: vec![1],
            missed: vec![7, 5],
            timed_out: vec![2],
        });
        c.normalize();
        assert_eq!(c.answered, vec![1, 3]);
        assert_eq!(c.missed, vec![5, 7]);
        assert_eq!(c.timed_out, vec![2]);
        assert_eq!(c.total(), 5);
        assert!(!c.is_complete());
        assert!(c.partitions(&[1, 2, 3, 5, 7]));
        assert!(!c.partitions(&[1, 2, 3, 5]));
        assert!(!c.partitions(&[1, 2, 3, 5, 7, 9]));
    }

    #[test]
    fn wire_roundtrip_and_tamper_rejection() {
        let c = Coverage {
            answered: vec![0, 4, 9],
            missed: vec![2],
            timed_out: vec![3, 8],
        };
        let back: Coverage = from_bytes(&to_bytes(&c)).unwrap();
        assert_eq!(back, c);
        // A host in two classes decodes to an error, not a bogus coverage.
        let twice = Coverage {
            answered: vec![1],
            missed: vec![1],
            timed_out: vec![],
        };
        assert!(from_bytes::<Coverage>(&to_bytes(&twice)).is_err());
        // Unsorted classes are rejected too.
        let unsorted = Coverage {
            answered: vec![4, 1],
            missed: vec![],
            timed_out: vec![],
        };
        assert!(from_bytes::<Coverage>(&to_bytes(&unsorted)).is_err());
    }
}
