//! The rpc envelope: source-routed requests and merged replies.
//!
//! Both messages ride the `pathdump_wire` frame format (length prefix +
//! type tag + CRC-32 trailer); the frame `typ` distinguishes them on the
//! wire, so a payload never needs a redundant discriminant.

use crate::coverage::Coverage;
use pathdump_core::{Query, Response, TreeNode};
use pathdump_topology::Nanos;
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireResult};

/// Frame type tag for a query request traveling down the tree.
pub const FRAME_RPC_REQUEST: u16 = 0x10;
/// Frame type tag for a merged reply traveling up the tree.
pub const FRAME_RPC_REPLY: u16 = 0x11;
/// Frame type tag for an accept-ack (request received, work started).
pub const FRAME_RPC_ACK: u16 = 0x12;

/// An accept-ack: the child has the request and is aggregating. The parent
/// parks its retry/hedge timers for this child — from here on, only the
/// deadline limits the wait. Without this, a parent's RTO cannot tell a
/// dead child from a live one whose own subtree legitimately needs longer
/// than a few RTOs (e.g. it is burning retries on a dead grandchild).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AckMsg {
    /// Echoed query id.
    pub req_id: u64,
}

impl Encode for AckMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.req_id);
    }
}

impl Decode for AckMsg {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(AckMsg {
            req_id: dec.get_varint()?,
        })
    }
}

/// A query request: the recipient executes `query` locally, fans out to
/// the children of `subtree` (whose root is the recipient itself — source
/// routing, no membership state at agents), and replies to the sender by
/// `deadline` with whatever it has merged.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestMsg {
    /// Globally unique query id (shared by every hop of one query).
    pub req_id: u64,
    /// Absolute virtual-time deadline for the *recipient's* reply.
    pub deadline: Nanos,
    /// The query.
    pub query: Query,
    /// The recipient's subtree of the aggregation tree.
    pub subtree: TreeNode,
}

/// A merged reply: the sender's local answer folded with every child reply
/// it collected, plus exact per-host coverage for its subtree.
#[derive(Clone, PartialEq, Debug)]
pub struct ReplyMsg {
    /// Echoed query id.
    pub req_id: u64,
    /// The (possibly partial) merged response.
    pub response: Response,
    /// Per-host accounting for the sender's subtree.
    pub coverage: Coverage,
}

impl Encode for RequestMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.req_id);
        self.deadline.encode(enc);
        self.query.encode(enc);
        self.subtree.encode(enc);
    }
}

impl Decode for RequestMsg {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(RequestMsg {
            req_id: dec.get_varint()?,
            deadline: Nanos::decode(dec)?,
            query: Query::decode(dec)?,
            subtree: TreeNode::decode(dec)?,
        })
    }
}

impl Encode for ReplyMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.req_id);
        self.response.encode(enc);
        self.coverage.encode(enc);
    }
}

impl Decode for ReplyMsg {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ReplyMsg {
            req_id: dec.get_varint()?,
            response: Response::decode(dec)?,
            coverage: Coverage::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_core::build_tree;
    use pathdump_topology::TimeRange;
    use pathdump_wire::{from_bytes, to_bytes, Frame};

    #[test]
    fn request_roundtrips_through_frame() {
        let hosts: Vec<usize> = (0..13).collect();
        let subtree = build_tree(&hosts, &[1, 3, 3]).remove(0);
        let req = RequestMsg {
            req_id: 42,
            deadline: Nanos::from_millis(250),
            query: Query::TopK {
                k: 10,
                range: TimeRange::ANY,
            },
            subtree,
        };
        let frame = Frame::new(FRAME_RPC_REQUEST, to_bytes(&req));
        let wire = frame.to_wire();
        let (back, used) = Frame::from_wire(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.typ, FRAME_RPC_REQUEST);
        let msg: RequestMsg = from_bytes(&back.payload).unwrap();
        assert_eq!(msg, req);
    }

    #[test]
    fn reply_roundtrips() {
        let reply = ReplyMsg {
            req_id: 7,
            response: Response::Count {
                bytes: 100,
                pkts: 3,
            },
            coverage: Coverage {
                answered: vec![0, 2],
                missed: vec![1],
                timed_out: vec![],
            },
        };
        let back: ReplyMsg = from_bytes(&to_bytes(&reply)).unwrap();
        assert_eq!(back, reply);
    }
}
