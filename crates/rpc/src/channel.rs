//! The pluggable datagram fabric and its lossless reference backend.

use pathdump_core::MgmtNet;
use pathdump_topology::Nanos;
use std::collections::BTreeMap;

/// A plane endpoint: host index, or [`CONTROLLER`].
pub type NodeId = u32;

/// The controller's address (never a valid host index).
pub const CONTROLLER: NodeId = u32::MAX;

/// One frame arriving at a node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Virtual delivery time.
    pub at: Nanos,
    /// Raw frame bytes (length-delimited wire format, CRC included).
    pub bytes: Vec<u8>,
}

/// An unreliable, unordered datagram fabric (see the crate docs for the
/// full contract). Implementations must be deterministic: the same send
/// sequence produces the same delivery sequence.
pub trait Channel {
    /// Queues `bytes` from `from` to `to` at virtual time `now`. The
    /// channel may drop, duplicate, delay or corrupt the frame.
    fn send(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>, now: Nanos);

    /// Earliest pending delivery time, if any — the plane's clock source.
    fn next_delivery_at(&self) -> Option<Nanos>;

    /// Pops the next delivery due at or before `now`, in deterministic
    /// `(time, enqueue-sequence)` order.
    fn recv_due(&mut self, now: Nanos) -> Option<Delivery>;

    /// Total frames handed to `send` so far.
    fn frames_sent(&self) -> u64;

    /// Total frame bytes handed to `send` so far.
    fn bytes_sent(&self) -> u64;
}

/// The deterministic in-memory reference backend: every frame is delivered
/// exactly once, uncorrupted, after the [`MgmtNet`] latency + serialization
/// delay (the paper's dedicated 1 GbE management channel). This is the
/// lossless channel the tree-equivalence differential suite pins against
/// `Cluster::multilevel_query`.
#[derive(Debug)]
pub struct Loopback {
    net: MgmtNet,
    queue: BTreeMap<(Nanos, u64), Delivery>,
    seq: u64,
    frames: u64,
    bytes: u64,
}

impl Loopback {
    /// A loopback over the given latency/bandwidth model.
    pub fn new(net: MgmtNet) -> Self {
        Loopback {
            net,
            queue: BTreeMap::new(),
            seq: 0,
            frames: 0,
            bytes: 0,
        }
    }

    /// The latency model in use.
    pub fn net(&self) -> MgmtNet {
        self.net
    }
}

impl Default for Loopback {
    fn default() -> Self {
        Loopback::new(MgmtNet::default())
    }
}

impl Channel for Loopback {
    fn send(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>, now: Nanos) {
        self.frames += 1;
        self.bytes += bytes.len() as u64;
        let at = now + self.net.transfer(bytes.len());
        let key = (at, self.seq);
        self.seq += 1;
        self.queue.insert(
            key,
            Delivery {
                from,
                to,
                at,
                bytes,
            },
        );
    }

    fn next_delivery_at(&self) -> Option<Nanos> {
        self.queue.keys().next().map(|(t, _)| *t)
    }

    fn recv_due(&mut self, now: Nanos) -> Option<Delivery> {
        let key = *self.queue.keys().next()?;
        if key.0 > now {
            return None;
        }
        self.queue.remove(&key)
    }

    fn frames_sent(&self) -> u64 {
        self.frames
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_in_time_order_exactly_once() {
        let mut ch = Loopback::new(MgmtNet {
            one_way_latency: Nanos(1000),
            bandwidth_bps: 1_000_000_000,
        });
        // 125 bytes at 1 Gb/s = 1 us wire + 1 us latency = 2 us.
        ch.send(0, 1, vec![0; 125], Nanos(0));
        ch.send(2, 1, vec![0; 1], Nanos(0));
        assert_eq!(ch.frames_sent(), 2);
        assert_eq!(ch.bytes_sent(), 126);
        // The 1-byte frame lands first despite being sent second.
        assert_eq!(ch.next_delivery_at(), Some(Nanos(1008)));
        assert!(ch.recv_due(Nanos(1000)).is_none(), "not due yet");
        let d = ch.recv_due(Nanos(3000)).expect("due");
        assert_eq!((d.from, d.to, d.at), (2, 1, Nanos(1008)));
        let d = ch.recv_due(Nanos(3000)).expect("due");
        assert_eq!((d.from, d.to, d.at), (0, 1, Nanos(2000)));
        assert!(ch.recv_due(Nanos(u64::MAX)).is_none());
        assert_eq!(ch.next_delivery_at(), None);
    }

    #[test]
    fn same_instant_deliveries_keep_send_order() {
        let mut ch = Loopback::default();
        for i in 0..5u8 {
            ch.send(i as NodeId, 9, vec![i], Nanos(0));
        }
        let mut seen = Vec::new();
        while let Some(d) = ch.recv_due(Nanos(u64::MAX)) {
            seen.push(d.bytes[0]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
