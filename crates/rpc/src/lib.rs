//! The distributed query plane: agent servers answering queries over a
//! pluggable [`Channel`], organized into the paper's fan-out/fan-in
//! aggregation tree (§3.2) — promoted from the in-process latency formula
//! of `pathdump_core::Cluster` to a message-passing request/response
//! protocol with every production failure mode modeled and tested.
//!
//! # Architecture
//!
//! The plane is **poll-driven over virtual time** (no executor, no
//! threads): [`TreePlane::step`] advances a virtual clock to the next
//! channel delivery or protocol timer and runs every state machine due at
//! that instant. Determinism is total — same channel, same seed, same
//! submissions ⇒ same outcome, byte for byte — which is what lets the
//! chaos suite make *exact* assertions about degraded queries.
//!
//! A query fans out down the aggregation tree (built by
//! `pathdump_core::cluster::build_tree`, shipped inside each request as a
//! source-routed subtree) and partial [`Response`] merges stream back up:
//! every interior agent executes the query locally, merges child replies
//! as they arrive, and sends one merged reply to its parent. All frames
//! ride the `pathdump_wire` codec (length-delimited, CRC-32 trailer), so
//! corruption is detected at the frame boundary and surfaces as a retry,
//! never as a wrong answer.
//!
//! # Channel contract
//!
//! A [`Channel`] is an unreliable, unordered datagram fabric:
//!
//! - [`Channel::send`] **may** deliver the frame to its destination, once
//!   or more than once, after an arbitrary finite delay; it may corrupt
//!   payload bytes; it may silently drop the frame. It never invents
//!   frames and never delivers to a node other than `to`.
//! - [`Channel::next_delivery_at`] must return the earliest pending
//!   delivery time (the plane's clock source). A channel that holds a
//!   frame forever without exposing a delivery time is equivalent to a
//!   drop — the protocol's timers own liveness, not the channel.
//! - Delivery order between distinct frames is unspecified; the plane
//!   never assumes FIFO.
//!
//! Two backends ship: [`Loopback`] (lossless, fixed latency model — the
//! differential reference pinned bit-identical to
//! `Cluster::multilevel_query`) and [`FaultyChannel`] (seeded
//! drop/duplicate/reorder/delay/corrupt/dead-peer injection — every
//! degradation path is a first-class test target).
//!
//! # Timeout, retry and hedging semantics
//!
//! Each parent→child call runs per-hop timers, all configured in
//! [`RpcConfig`]:
//!
//! - **Accept-ack**: a non-leaf child acks a request the moment it starts
//!   aggregating (a leaf's immediate reply doubles as its ack). The ack
//!   parks the parent's retransmit and hedge timers for that child — a
//!   parent's RTO cannot tell a dead child from a live one whose subtree
//!   legitimately needs many RTOs (e.g. it is burning retries on a dead
//!   grandchild of its own), so unacked silence means "presumed dead"
//!   while acked silence means "still working; wait for the deadline".
//! - **Retransmit**: an unacked, unanswered call retries at `rto`, backing
//!   off by `backoff_mult` per attempt, at most `max_retries` resends.
//!   Exhaustion marks the child's whole subtree **missed** (peer presumed
//!   dead). A live agent receiving a duplicate request re-acks, so a lost
//!   ack costs a retransmit, never a false write-off of a live peer.
//! - **Hedging**: if `hedge_after` is set and no ack or reply has arrived
//!   by then, one extra copy of the request is sent immediately (straggler
//!   insurance against a dropped frame) without touching the retry clock.
//! - **Deadline**: every query carries an absolute deadline; each level
//!   grants its children `hop_slack` less than its own budget, so leaves
//!   time out first and partial merges have time to climb back up. When a
//!   node's deadline fires, outstanding subtrees are marked **timed-out**
//!   and the partial merge is sent up immediately. The controller
//!   finalizes at the full deadline unconditionally — a degraded query
//!   *returns*, it never hangs.
//! - **Backpressure**: a node keeps at most `max_children_inflight` child
//!   calls outstanding (the rest queue), and the controller admits at most
//!   `max_queries_inflight` concurrent queries (later submissions queue
//!   and are admitted as slots free — request pipelining with a bound).
//!
//! Duplicate requests are answered from a bounded per-agent reply cache
//! (at-most-once *execution*, at-least-once *delivery*); duplicate replies
//! are ignored at the parent, so fault-injected duplication can never
//! double-merge a response (pinned by the chaos suite on `Count` queries,
//! where a double merge would double the sum).
//!
//! # Coverage accounting guarantees
//!
//! Every [`QueryOutcome`] carries a [`Coverage`]: three sorted, disjoint
//! host lists — **answered** (the host's local answer is in the merged
//! response), **missed** (retries exhausted; peer unreachable or dead) and
//! **timed-out** (still outstanding when a deadline fired). The plane
//! guarantees:
//!
//! - the three classes partition the queried host set exactly (every host
//!   appears in exactly one class);
//! - an answered host's *complete* local answer was merged — there are no
//!   partially-merged hosts, so the degraded response equals the oracle
//!   (`Cluster::direct_query`) evaluated over exactly `coverage.answered`;
//! - a host below a missed/timed-out interior node is itself counted
//!   missed/timed-out (it was unreachable through the tree), and interior
//!   agents fold their children's coverage into their reply, so the
//!   controller's view is the exact per-host truth;
//! - `elapsed ≤ deadline` whenever `deadline_met` is reported, and
//!   termination within the deadline holds under arbitrary channel
//!   behavior (liveness comes from timers, not the channel).
//!
//! Late replies (arriving after their subtree was written off) are
//! dropped, not re-classified: coverage is the state at finalize time.

pub mod channel;
pub mod coverage;
pub mod fault;
pub mod msg;
pub mod plane;

pub use channel::{Channel, Delivery, Loopback, NodeId, CONTROLLER};
pub use coverage::Coverage;
pub use fault::{FaultLog, FaultPlan, FaultyChannel};
pub use msg::{AckMsg, ReplyMsg, RequestMsg, FRAME_RPC_ACK, FRAME_RPC_REPLY, FRAME_RPC_REQUEST};
pub use plane::{PlaneStats, QueryId, QueryOutcome, RpcConfig, TreePlane};
