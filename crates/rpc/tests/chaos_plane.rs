//! Chaos suite: the plane under every injected fault class must
//!
//! 1. **terminate within the deadline** — every query gets a
//!    [`QueryOutcome`] with `elapsed <= deadline`, no matter what the
//!    channel does;
//! 2. **account exactly** — the coverage classes partition the queried
//!    host set, and for deterministic fault sets (dead peers, stragglers)
//!    they match the *predicted* set computed independently from the tree
//!    shape;
//! 3. **merge soundly** — the degraded response equals the flat fold of
//!    `execute_on_tib` over exactly `coverage.answered` (no partial host
//!    data, no double merge), for every query variant including top-k;
//! 4. **reproduce** — the same fault seed yields the identical outcome.

use pathdump_core::{build_tree, execute_on_tib, MgmtNet, Query, Response, TreeNode};
use pathdump_rpc::{FaultLog, FaultPlan, FaultyChannel, NodeId, RpcConfig, TreePlane};
use pathdump_tib::{Tib, TibRecord};
use pathdump_topology::{FlowId, Ip, Nanos, Path, SwitchId, TimeRange};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mk_tibs(seed: u64, n_hosts: usize) -> Vec<Tib> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_hosts)
        .map(|_| {
            let mut t = Tib::new();
            for _ in 0..rng.gen_range(1..20usize) {
                let stime = Nanos(rng.gen_range(0..5000u64));
                t.insert(TibRecord {
                    flow: FlowId::tcp(
                        Ip::new(10, rng.gen_range(0..6u8), 0, 2),
                        1000 + rng.gen_range(0..8u16),
                        Ip::new(10, rng.gen_range(0..6u8), 1, 2),
                        80,
                    ),
                    path: Path::new(vec![
                        SwitchId(rng.gen_range(0..5u16) * 4),
                        SwitchId(rng.gen_range(0..5u16) * 4),
                    ]),
                    stime,
                    etime: stime + Nanos(rng.gen_range(1..500u64)),
                    bytes: rng.gen_range(1..100_000u64),
                    pkts: rng.gen_range(1..10u64),
                });
            }
            t
        })
        .collect()
}

/// The plane's answered-set semantics, computed independently: fold each
/// answered host's local answer into `empty_for`, in any order (the merge
/// is canonical, so order is irrelevant).
fn flat_fold(tibs: &[Tib], q: &Query, answered: &[u32]) -> Response {
    let mut acc = Response::empty_for(q);
    for &h in answered {
        acc.merge(execute_on_tib(&tibs[h as usize], q));
    }
    acc
}

/// Hosts of every subtree rooted at a node in `roots` whose host is in
/// `cut` — the set an independent observer predicts as unreachable.
fn hosts_under(roots: &[TreeNode], cut: &[NodeId]) -> Vec<u32> {
    fn walk(n: &TreeNode, cut: &[NodeId], cut_above: bool, out: &mut Vec<u32>) {
        let cut_here = cut_above || cut.contains(&(n.host as NodeId));
        if cut_here {
            out.push(n.host as u32);
        }
        for c in &n.children {
            walk(c, cut, cut_here, out);
        }
    }
    let mut out = Vec::new();
    for r in roots {
        walk(r, cut, false, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn sorted_hosts(hosts: &[usize]) -> Vec<u32> {
    let mut v: Vec<u32> = hosts.iter().map(|&h| h as u32).collect();
    v.sort_unstable();
    v
}

#[test]
fn dead_interior_nodes_yield_exact_missed_sets() {
    // 30 hosts, fanouts [5, 3, 2]: kill one root-level aggregator and one
    // leaf. Everything in the aggregator's subtree plus the leaf must land
    // in `missed`; everyone else must answer; nothing times out (retries
    // exhaust well inside the deadline).
    let n = 30usize;
    let hosts: Vec<usize> = (0..n).collect();
    let fanouts = [5usize, 3, 2];
    let roots = build_tree(&hosts, &fanouts);
    let interior = roots[1].host as NodeId; // a root-level aggregator
    let leaf = roots[0]
        .children
        .last()
        .map(|c| c.host as NodeId)
        .unwrap_or(0);
    let dead = vec![interior, leaf];
    let expect_missed = hosts_under(&roots, &dead);
    assert!(
        expect_missed.len() > 2,
        "the interior node must drag a subtree with it: {expect_missed:?}"
    );

    let tibs = mk_tibs(11, n);
    let q = Query::TopK {
        k: 12,
        range: TimeRange::ANY,
    };
    let mut plan = FaultPlan::none(0);
    plan.dead = dead;
    let mut plane = TreePlane::new(
        FaultyChannel::new(MgmtNet::default(), plan),
        RpcConfig::default(),
        tibs.clone(),
    );
    let id = plane.submit(&q, &hosts, &fanouts);
    let out = plane.run(id).expect("deadline guarantees completion");

    assert_eq!(out.coverage.missed, expect_missed, "exact fault accounting");
    assert!(out.coverage.timed_out.is_empty(), "{:?}", out.coverage);
    let expect_answered: Vec<u32> = sorted_hosts(&hosts)
        .into_iter()
        .filter(|h| !expect_missed.contains(h))
        .collect();
    assert_eq!(out.coverage.answered, expect_answered);
    assert!(out.coverage.partitions(&sorted_hosts(&hosts)));
    assert!(out.elapsed <= plane.config().deadline);
    assert_eq!(out.response, flat_fold(&tibs, &q, &out.coverage.answered));
    assert!(
        plane.channel().log().dead_dropped > 0,
        "fault was exercised"
    );
    assert!(plane.stats().retries > 0, "dead peers must burn retries");
}

#[test]
fn straggler_beyond_deadline_times_out_exactly() {
    // One straggler delayed past the whole deadline, retries effectively
    // unbounded so exhaustion can never reclassify it as missed: its
    // subtree must be `timed_out`, everyone else answered, and the query
    // still returns at the deadline.
    let n = 18usize;
    let hosts: Vec<usize> = (0..n).collect();
    let fanouts = [3usize, 3, 2];
    let roots = build_tree(&hosts, &fanouts);
    let straggler = roots[2].host as NodeId;
    let expect_timed_out = hosts_under(&roots, &[straggler]);

    let cfg = RpcConfig {
        max_retries: 1_000,
        hedge_after: None,
        ..RpcConfig::default()
    };
    let mut plan = FaultPlan::none(0);
    plan.straggle = vec![(straggler, cfg.deadline + cfg.deadline)];

    let tibs = mk_tibs(13, n);
    let q = Query::TrafficMatrix {
        range: TimeRange::ANY,
    };
    let mut plane = TreePlane::new(
        FaultyChannel::new(MgmtNet::default(), plan),
        cfg,
        tibs.clone(),
    );
    let id = plane.submit(&q, &hosts, &fanouts);
    let out = plane.run(id).expect("deadline guarantees completion");

    assert_eq!(out.coverage.timed_out, expect_timed_out);
    assert!(out.coverage.missed.is_empty(), "{:?}", out.coverage);
    assert!(out.coverage.partitions(&sorted_hosts(&hosts)));
    assert!(out.elapsed <= plane.config().deadline);
    assert!(!out.coverage.is_complete());
    assert_eq!(out.response, flat_fold(&tibs, &q, &out.coverage.answered));
}

#[test]
fn duplicated_frames_never_double_merge() {
    // Every frame delivered twice: the reply cache and the per-child Done
    // state must keep the result bit-identical to a lossless run with
    // complete coverage — a double merge would double Count/TopK bytes.
    let n = 16usize;
    let hosts: Vec<usize> = (0..n).collect();
    let fanouts = [4usize, 2, 2];
    let tibs = mk_tibs(17, n);
    let q = Query::GetCount {
        flow: FlowId::tcp(Ip::new(10, 1, 0, 2), 1001, Ip::new(10, 2, 1, 2), 80),
        path: None,
        range: TimeRange::ANY,
    };
    let mut plan = FaultPlan::none(3);
    plan.dup_prob = 1.0;
    let mut plane = TreePlane::new(
        FaultyChannel::new(MgmtNet::default(), plan),
        RpcConfig::default(),
        tibs.clone(),
    );
    let id = plane.submit(&q, &hosts, &fanouts);
    let out = plane.run(id).expect("completes");
    assert!(plane.channel().log().duplicated > 0);
    assert!(out.coverage.is_complete());
    assert!(out.coverage.partitions(&sorted_hosts(&hosts)));
    assert_eq!(out.response, flat_fold(&tibs, &q, &sorted_hosts(&hosts)));
}

/// Query menu for the randomized chaos sweep (every merge shape).
fn chaos_query(sel: u8) -> Query {
    match sel % 6 {
        0 => Query::TopK {
            k: 8,
            range: TimeRange::ANY,
        },
        1 => Query::TrafficMatrix {
            range: TimeRange::ANY,
        },
        2 => Query::GetFlows {
            link: pathdump_topology::LinkPattern::ANY,
            range: TimeRange::ANY,
        },
        3 => Query::HeavyHitters {
            min_bytes: 10_000,
            range: TimeRange::ANY,
        },
        4 => Query::FlowSizeDist {
            link: pathdump_topology::LinkPattern::ANY,
            range: TimeRange::ANY,
            bin_bytes: 5_000,
        },
        _ => Query::GetCount {
            flow: FlowId::tcp(Ip::new(10, 1, 0, 2), 1001, Ip::new(10, 2, 1, 2), 80),
            path: None,
            range: TimeRange::ANY,
        },
    }
}

struct ChaosRun {
    response: Response,
    cov: pathdump_rpc::Coverage,
    elapsed: Nanos,
    log: FaultLog,
}

impl ChaosRun {
    fn of(
        tibs: &[Tib],
        q: &Query,
        hosts: &[usize],
        fanouts: &[usize],
        plan: FaultPlan,
    ) -> (Self, pathdump_rpc::PlaneStats) {
        let mut plane = TreePlane::new(
            FaultyChannel::new(MgmtNet::default(), plan),
            RpcConfig::default(),
            tibs.to_vec(),
        );
        let id = plane.submit(q, hosts, fanouts);
        let out = plane.run(id).expect("deadline guarantees completion");
        // Drain stragglers so decode/late-reply counters are final.
        plane.run_until_idle();
        (
            ChaosRun {
                response: out.response,
                cov: out.coverage,
                elapsed: out.elapsed,
                log: plane.channel().log(),
            },
            plane.stats(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary drop/dup/corrupt/jitter mixes plus random dead peers:
    /// deadline-bounded termination, exact partition, sound partial merge,
    /// and seed-reproducibility — for every merge shape.
    #[test]
    fn chaos_invariants_hold(
        tib_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        n_hosts in 4usize..28,
        qsel in any::<u8>(),
        drop_pm in 0u32..400,       // drop probability, per-mille
        dup_pm in 0u32..300,
        corrupt_pm in 0u32..300,
        jitter_us in 0u64..2_000,
        dead_sel in proptest::collection::vec(any::<u8>(), 0..3),
    ) {
        let hosts: Vec<usize> = (0..n_hosts).collect();
        let fanouts = [4usize, 3, 3];
        let tibs = mk_tibs(tib_seed, n_hosts);
        let q = chaos_query(qsel);
        let mut dead: Vec<NodeId> = dead_sel.iter().map(|&s| s as NodeId % n_hosts as NodeId).collect();
        dead.sort_unstable();
        dead.dedup();
        let plan = FaultPlan {
            seed: fault_seed,
            drop_prob: drop_pm as f64 / 1000.0,
            dup_prob: dup_pm as f64 / 1000.0,
            corrupt_prob: corrupt_pm as f64 / 1000.0,
            jitter: Nanos(jitter_us * 1000),
            straggle: Vec::new(),
            dead: dead.clone(),
        };

        let (run, stats) = ChaosRun::of(&tibs, &q, &hosts, &fanouts, plan.clone());

        // 1. Deadline-bounded termination.
        prop_assert!(run.elapsed <= RpcConfig::default().deadline,
            "elapsed {:?} breaches deadline under {:?}", run.elapsed, plan);

        // 2. Exact accounting: the classes partition the host set, and
        // every host under a dead node is NOT in `answered`.
        prop_assert!(run.cov.partitions(&sorted_hosts(&hosts)),
            "coverage {:?} must partition hosts under {:?}", run.cov, plan);
        let roots = build_tree(&hosts, &fanouts);
        for h in hosts_under(&roots, &dead) {
            prop_assert!(!run.cov.answered.contains(&h),
                "host {} is unreachable (dead ancestry) yet marked answered", h);
        }

        // 3. Sound partial merge: the degraded response is exactly the
        // fold over the answered set — nothing more, nothing less.
        prop_assert_eq!(&run.response, &flat_fold(&tibs, &q, &run.cov.answered),
            "response must equal the fold over answered={:?} under {:?}",
            &run.cov.answered, &plan);

        // Corrupted frames never poison state — they only count. (A dup
        // copy of a corrupted frame fails the CRC a second time, so the
        // failure count is bounded by corrupted + duplicated.)
        prop_assert!(stats.decode_failures >= run.log.corrupted);
        prop_assert!(stats.decode_failures <= run.log.corrupted + run.log.duplicated);

        // 4. Reproducibility: identical seed, identical everything.
        let (rerun, restats) = ChaosRun::of(&tibs, &q, &hosts, &fanouts, plan);
        prop_assert_eq!(&rerun.response, &run.response);
        prop_assert_eq!(&rerun.cov, &run.cov);
        prop_assert_eq!(rerun.elapsed, run.elapsed);
        prop_assert_eq!(rerun.log, run.log);
        prop_assert_eq!(restats, stats);
    }
}
