//! Differential pin for the rpc plane: a [`TreePlane`] over the lossless
//! [`Loopback`] channel must be **bit-identical** to the in-process
//! [`Cluster::multilevel_query`] oracle — same merged `Response`, complete
//! coverage, deadline met — across arbitrary queries (all nine variants),
//! fan-out shapes, host subsets, and TIB contents.
//!
//! This is the suite that lets every chaos/degradation test trust the
//! plane's merge logic: once the lossless plane is pinned to the oracle,
//! a fault test only has to reason about *which hosts* contributed.
//!
//! Inputs are kept deliberately small: the vendored proptest stub does not
//! shrink failures.

use pathdump_core::{Cluster, MgmtNet, Query};
use pathdump_rpc::{Loopback, RpcConfig, TreePlane};
use pathdump_tib::{Tib, TibRecord};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The switch pool TIB paths draw from (shared with query link patterns so
/// link-scoped queries actually match records).
const SWITCHES: [u16; 5] = [0, 4, 8, 12, 16];

fn mk_tibs(seed: u64, n_hosts: usize) -> Vec<Tib> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_hosts)
        .map(|h| {
            let mut t = Tib::new();
            for _ in 0..rng.gen_range(0..25usize) {
                let src = rng.gen_range(0..6u8);
                let dst = rng.gen_range(0..6u8);
                let sport = 1000 + rng.gen_range(0..8u16);
                let a = SWITCHES[rng.gen_range(0..SWITCHES.len())];
                let b = SWITCHES[rng.gen_range(0..SWITCHES.len())];
                let c = SWITCHES[rng.gen_range(0..SWITCHES.len())];
                let stime = Nanos(rng.gen_range(0..5000u64));
                t.insert(TibRecord {
                    flow: FlowId::tcp(Ip::new(10, src, 0, 2), sport, Ip::new(10, dst, 1, 2), 80),
                    path: Path::new(vec![SwitchId(a), SwitchId(b), SwitchId(c)]),
                    stime,
                    etime: stime + Nanos(rng.gen_range(1..500u64)),
                    bytes: rng.gen_range(1..100_000u64),
                    pkts: rng.gen_range(1..10u64),
                });
            }
            let _ = h;
            t
        })
        .collect()
}

/// Query spec: variant selector plus raw parameter material.
type QuerySpec = (u8, u8, u8, u8, u64);

fn mk_query(spec: QuerySpec) -> Query {
    let (sel, a, b, c, x) = spec;
    let flow = FlowId::tcp(
        Ip::new(10, a % 6, 0, 2),
        1000 + (b % 8) as u16,
        Ip::new(10, c % 6, 1, 2),
        80,
    );
    let link = match a % 3 {
        0 => LinkPattern::ANY,
        1 => LinkPattern {
            from: Some(SwitchId(SWITCHES[b as usize % SWITCHES.len()])),
            to: None,
        },
        _ => LinkPattern {
            from: Some(SwitchId(SWITCHES[b as usize % SWITCHES.len()])),
            to: Some(SwitchId(SWITCHES[c as usize % SWITCHES.len()])),
        },
    };
    let range = match b % 3 {
        0 => TimeRange::ANY,
        1 => TimeRange {
            start: Some(Nanos(x % 3000)),
            end: None,
        },
        _ => {
            let s = x % 3000;
            TimeRange::between(Nanos(s), Nanos(s + 1500))
        }
    };
    match sel % 9 {
        0 => Query::GetFlows { link, range },
        1 => Query::GetPaths { flow, link, range },
        2 => Query::GetCount {
            flow,
            path: None,
            range,
        },
        3 => Query::GetDuration {
            flow,
            path: None,
            range,
        },
        4 => Query::GetPoorTcp {
            threshold: (c % 4) as u32,
        },
        5 => Query::FlowSizeDist {
            link,
            range,
            bin_bytes: 1000 * (1 + (c % 10) as u64),
        },
        6 => Query::TopK {
            k: 1 + (c % 20) as u32,
            range,
        },
        7 => Query::TrafficMatrix { range },
        _ => Query::HeavyHitters {
            min_bytes: x % 50_000,
            range,
        },
    }
}

const FANOUT_MENU: [&[usize]; 6] = [&[7, 4, 4], &[3, 2, 2], &[2, 2, 2, 2], &[1], &[40], &[4, 4]];

/// First-occurrence dedup preserving order — both sides must see the same
/// host sequence, and a host appearing twice in one tree would alias two
/// tree positions onto one agent.
fn host_subset(selectors: &[u8], n_hosts: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for &s in selectors {
        let h = s as usize % n_hosts;
        if !out.contains(&h) {
            out.push(h);
        }
    }
    out
}

fn check_equivalence(
    tib_seed: u64,
    n_hosts: usize,
    selectors: &[u8],
    fanout_sel: u8,
    spec: QuerySpec,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let hosts = host_subset(selectors, n_hosts);
    let fanouts = FANOUT_MENU[fanout_sel as usize % FANOUT_MENU.len()];
    let q = mk_query(spec);
    let tibs = mk_tibs(tib_seed, n_hosts);

    let cluster = Cluster::new(tibs.clone(), MgmtNet::default());
    let oracle = cluster.multilevel_query(&hosts, &q, fanouts);

    let mut plane = TreePlane::new(Loopback::default(), RpcConfig::default(), tibs);
    let id = plane.submit(&q, &hosts, fanouts);
    let Some(out) = plane.run(id) else {
        return Err(proptest::test_runner::TestCaseError::fail(format!(
            "plane went idle without completing {q:?} over {hosts:?}"
        )));
    };

    prop_assert_eq!(
        &out.response,
        &oracle.response,
        "plane vs oracle diverged: q={:?} hosts={:?} fanouts={:?}",
        q,
        hosts,
        fanouts
    );
    prop_assert!(out.coverage.is_complete(), "lossless run must cover all");
    let want: Vec<u32> = {
        let mut w: Vec<u32> = hosts.iter().map(|&h| h as u32).collect();
        w.sort_unstable();
        w
    };
    prop_assert!(
        out.coverage.partitions(&want),
        "coverage {:?} must partition {:?}",
        out.coverage,
        want
    );
    prop_assert!(out.deadline_met);
    prop_assert_eq!(plane.stats().retries, 0);
    prop_assert_eq!(plane.stats().decode_failures, 0);
    prop_assert_eq!(plane.stats().protocol_errors, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All nine query variants over arbitrary host subsets and fan-outs.
    #[test]
    fn loopback_plane_matches_multilevel_oracle(
        tib_seed in any::<u64>(),
        n_hosts in 1usize..40,
        selectors in proptest::collection::vec(any::<u8>(), 1..32),
        fanout_sel in any::<u8>(),
        spec in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
    ) {
        check_equivalence(tib_seed, n_hosts, &selectors, fanout_sel, spec)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipelined: several queries in flight (bounded admission) must each
    /// still match the oracle exactly.
    #[test]
    fn pipelined_queries_match_oracle(
        tib_seed in any::<u64>(),
        n_hosts in 2usize..24,
        fanout_sel in any::<u8>(),
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            2..7,
        ),
        inflight in 1usize..4,
    ) {
        let hosts: Vec<usize> = (0..n_hosts).collect();
        let fanouts = FANOUT_MENU[fanout_sel as usize % FANOUT_MENU.len()];
        let tibs = mk_tibs(tib_seed, n_hosts);
        let cluster = Cluster::new(tibs.clone(), MgmtNet::default());
        let cfg = RpcConfig {
            max_queries_inflight: inflight,
            ..RpcConfig::default()
        };
        let mut plane = TreePlane::new(Loopback::default(), cfg, tibs);
        let queries: Vec<Query> = specs.iter().map(|&s| mk_query(s)).collect();
        let ids: Vec<_> = queries.iter().map(|q| plane.submit(q, &hosts, fanouts)).collect();
        plane.run_until_idle();
        for (q, id) in queries.iter().zip(ids) {
            let Some(out) = plane.take_outcome(id) else {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "query {q:?} never completed"
                )));
            };
            let oracle = cluster.multilevel_query(&hosts, q, fanouts);
            prop_assert_eq!(&out.response, &oracle.response, "q={:?}", q);
            prop_assert!(out.coverage.is_complete());
            prop_assert!(out.deadline_met);
        }
    }
}
