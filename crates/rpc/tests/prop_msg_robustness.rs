//! Decoder robustness for the rpc envelope: arbitrary, truncated and
//! bit-flipped bytes fed to the `RequestMsg`/`ReplyMsg`/`AckMsg` decoders
//! (and the `TreeNode` subtree codec they embed) must produce `Ok` or a
//! clean `Err` — never a panic, never an unbounded recursion or
//! allocation, and never a silently wrong accept of a corrupted frame.
//!
//! This is what lets `TreePlane::on_frame` treat any decode failure as a
//! droppable datagram: the codec layer guarantees corruption cannot
//! poison protocol state.

use pathdump_core::{build_tree, TreeNode};
use pathdump_rpc::{AckMsg, Coverage, ReplyMsg, RequestMsg, FRAME_RPC_REQUEST};
use pathdump_topology::{Nanos, TimeRange};
use pathdump_wire::{from_bytes, to_bytes, Frame};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes never panic any rpc-plane decoder.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<RequestMsg>(&data);
        let _ = from_bytes::<ReplyMsg>(&data);
        let _ = from_bytes::<AckMsg>(&data);
        let _ = from_bytes::<Coverage>(&data);
        let _ = from_bytes::<TreeNode>(&data);
    }

    /// Every proper prefix of a valid request encoding fails cleanly —
    /// the embedded varint-counted subtree cannot read past the input.
    #[test]
    fn truncated_requests_never_accepted(
        n_hosts in 1usize..40,
        fanout_sel in 0usize..3,
        cut_sel in any::<usize>(),
    ) {
        let hosts: Vec<usize> = (0..n_hosts).collect();
        let fanouts: &[usize] = [&[7, 4, 4][..], &[3, 2, 2], &[1]][fanout_sel];
        let subtree = build_tree(&hosts, fanouts).remove(0);
        let req = RequestMsg {
            req_id: 9,
            deadline: Nanos::from_millis(100),
            query: pathdump_core::Query::TopK { k: 5, range: TimeRange::ANY },
            subtree,
        };
        let bytes = to_bytes(&req);
        let cut = cut_sel % bytes.len();
        prop_assert!(from_bytes::<RequestMsg>(&bytes[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte request decoded", cut, bytes.len());
    }

    /// A single bit flip anywhere in a framed request is either caught by
    /// the frame CRC or — if it re-frames to a valid parse — yields the
    /// original frame. A flipped payload can never reach the message
    /// decoder through `Frame::from_wire`.
    #[test]
    fn framed_request_bitflip_always_detected(
        n_hosts in 1usize..24,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let hosts: Vec<usize> = (0..n_hosts).collect();
        let subtree = build_tree(&hosts, &[3, 2, 2]).remove(0);
        let req = RequestMsg {
            req_id: 1,
            deadline: Nanos::from_millis(50),
            query: pathdump_core::Query::TrafficMatrix { range: TimeRange::ANY },
            subtree,
        };
        let frame = Frame::new(FRAME_RPC_REQUEST, to_bytes(&req));
        let mut wire = frame.to_wire();
        let idx = flip_at % wire.len();
        wire[idx] ^= 1 << flip_bit;
        if let Ok((decoded, _)) = Frame::from_wire(&wire) {
            prop_assert_eq!(decoded, frame, "corrupted frame accepted");
        }
    }

    /// Flipping bits in a raw (unframed) coverage encoding either fails
    /// or still decodes to a *well-formed* coverage: sorted, deduplicated,
    /// disjoint classes. A tampered encoding can never smuggle one host
    /// into two classes past the decoder.
    #[test]
    fn coverage_decode_enforces_normal_form(
        answered in proptest::collection::vec(0u32..64, 0..8),
        missed in proptest::collection::vec(0u32..64, 0..8),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut cov = Coverage {
            answered,
            missed,
            timed_out: vec![],
        };
        cov.normalize();
        // Make the classes disjoint (normalize only dedups within one).
        cov.missed.retain(|h| !cov.answered.contains(h));
        let mut bytes = to_bytes(&cov);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        if let Ok(back) = from_bytes::<Coverage>(&bytes) {
            let mut renorm = back.clone();
            renorm.normalize();
            prop_assert_eq!(&renorm, &back, "decoder accepted non-normal form");
            let n = back.total();
            let mut all: Vec<u32> = back.answered.iter()
                .chain(&back.missed)
                .chain(&back.timed_out)
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), n, "decoder accepted overlapping classes");
        }
    }
}
