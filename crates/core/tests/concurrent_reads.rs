//! Agent-layer coverage for the tiered store: sealing must be invisible
//! to everything above it.
//!
//! Differentials here pin that a `HostAgent` (and a `ShardedAgent`)
//! whose TIB auto-seals every few records behaves **bit-identically** to
//! one that never seals — TIB contents, query responses, alarms, and
//! standing-query events. The standing engine is the sharpest edge: its
//! incremental `on_record` feed must observe every record exactly once
//! even when the insert that carried it also sealed the head out from
//! under the store.
//!
//! The thread test drives real packet ingest on the writer while reader
//! threads query published views through [`TibReader`] — the lock-free
//! read path exercised end-to-end from the agent layer.

use pathdump_cherrypick::{FatTreeCherryPick, FatTreeReconstructor};
use pathdump_core::{execute_on_tib, AgentConfig, Fabric, HostAgent, Query, ShardedAgent, TibRead};
use pathdump_core::{StandingPredicate, StandingQuery};
use pathdump_simnet::{Packet, TagPolicy, TcpFlags};
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, LinkPattern, Nanos, Path, PortNo, TimeRange, UpDownRouting,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

fn fabric() -> (FatTree, Fabric, FatTreeCherryPick) {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let f = Fabric::FatTree(FatTreeReconstructor::new(ft.clone()));
    let p = FatTreeCherryPick::new(ft.clone());
    (ft, f, p)
}

/// The packet a given path delivers (tag policy applied hop by hop).
fn pkt_on_path(
    ft: &FatTree,
    policy: &FatTreeCherryPick,
    flow: FlowId,
    path: &Path,
    bytes: u32,
    flags: TcpFlags,
) -> Packet {
    let mut pkt = Packet::data(1, flow, 0, bytes, Nanos::ZERO);
    pkt.flags = flags;
    let topo = ft.topology();
    for (i, &sw) in path.0.iter().enumerate() {
        let in_port = if i == 0 {
            topo.switch(sw)
                .ports
                .iter()
                .position(|p| matches!(p, pathdump_topology::Peer::Host(_)))
                .map(|p| PortNo(p as u8))
        } else {
            topo.switch(sw).port_towards(path.0[i - 1])
        };
        policy.on_forward(sw, in_port, PortNo(0), &mut pkt.headers);
    }
    pkt
}

/// A deterministic multi-flow stream into `dst`: spraying over paths,
/// FINs to force early finalization (TIB inserts while later packets are
/// still in flight).
fn stream(ft: &FatTree, policy: &FatTreeCherryPick, n: usize) -> Vec<(Packet, Nanos)> {
    let topo = ft.topology();
    let dst = ft.host(1, 0, 0);
    let srcs = [ft.host(0, 0, 0), ft.host(2, 1, 0), ft.host(3, 0, 1)];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let src = srcs[i % srcs.len()];
        let flow = FlowId::tcp(
            topo.host(src).ip,
            2000 + (i % 5) as u16,
            topo.host(dst).ip,
            80,
        );
        let paths = ft.all_paths(src, dst);
        let path = paths[i * 7 % paths.len()].clone();
        let flags = if i % 4 == 3 {
            TcpFlags::FIN
        } else {
            TcpFlags(0)
        };
        out.push((
            pkt_on_path(ft, policy, flow, &path, 200 + (i as u32 % 9) * 50, flags),
            Nanos::from_millis(1 + i as u64),
        ));
    }
    out
}

fn watch_all(agent: &mut HostAgent, ft: &FatTree) {
    let topo = ft.topology();
    let dst = ft.host(1, 0, 0);
    let src = ft.host(0, 0, 0);
    let flow = FlowId::tcp(topo.host(src).ip, 2000, topo.host(dst).ip, 80);
    agent.watch(
        StandingQuery::new(StandingPredicate::TopKMember { flow, k: 2 }),
        Nanos::ZERO,
    );
    agent.watch(
        StandingQuery::new(StandingPredicate::RateAbove {
            flow,
            window: Nanos::from_millis(40),
            min_bytes: 500,
            min_pkts: 2,
        }),
        Nanos::ZERO,
    );
    agent.watch(
        StandingQuery::new(StandingPredicate::PathChanged { flow }),
        Nanos::ZERO,
    );
    agent.watch(
        StandingQuery::new(StandingPredicate::LinkFlowsAbove {
            link: LinkPattern::ANY,
            ceiling: 3,
        }),
        Nanos::ZERO,
    );
}

/// Every observable output of a sealing agent vs a never-sealing one,
/// over the same stream: identical. Exercises the exactly-once standing
/// feed across seal boundaries for every seal threshold.
#[test]
fn sealing_agent_matches_non_sealing_agent() {
    let (ft, fab, policy) = fabric();
    let pkts = stream(&ft, &policy, 48);
    let dst = ft.host(1, 0, 0);

    for seal_after in [1usize, 2, 3, 7] {
        let mut plain = HostAgent::new(dst, AgentConfig::default());
        let mut sealing = HostAgent::new(dst, AgentConfig::default());
        sealing.tib.set_seal_after(Some(seal_after));
        watch_all(&mut plain, &ft);
        watch_all(&mut sealing, &ft);

        for (pkt, now) in &pkts {
            plain.on_packet(&fab, pkt, *now);
            sealing.on_packet(&fab, pkt, *now);
        }
        let end = Nanos::from_millis(10_000);
        plain.flush(&fab, end);
        sealing.flush(&fab, end);

        assert_eq!(plain.tib.num_sealed(), 0);
        assert!(
            sealing.tib.num_sealed() > 0,
            "threshold {seal_after} never sealed"
        );
        assert_eq!(
            plain.tib.records_vec(),
            sealing.tib.records_vec(),
            "records diverged at seal_after={seal_after}"
        );
        assert_eq!(
            plain.drain_standing_events(),
            sealing.drain_standing_events(),
            "standing events diverged at seal_after={seal_after}"
        );
        assert_eq!(
            plain.drain_alarms(),
            sealing.drain_alarms(),
            "alarms diverged at seal_after={seal_after}"
        );
        for q in [
            Query::TopK {
                k: 8,
                range: TimeRange::ANY,
            },
            Query::GetFlows {
                link: LinkPattern::ANY,
                range: TimeRange::ANY,
            },
            Query::GetFlows {
                link: LinkPattern::ANY,
                range: TimeRange::until(Nanos::from_millis(20)),
            },
        ] {
            assert_eq!(
                plain.execute(&fab, &q, false),
                sealing.execute(&fab, &q, false),
                "query diverged at seal_after={seal_after}"
            );
        }
    }
}

/// The sharded ingest path over a sealing store: worker fan-in and the
/// deterministic replay into the TIB must be unaffected by seals.
#[test]
fn sharded_agent_with_sealing_matches_host_agent() {
    let (ft, fab, policy) = fabric();
    let pkts = stream(&ft, &policy, 40);
    let dst = ft.host(1, 0, 0);

    let mut single = HostAgent::new(dst, AgentConfig::default());
    let mut sharded = ShardedAgent::new(dst, AgentConfig::default(), 3);
    sharded.tib_mut().set_seal_after(Some(4));

    for (pkt, now) in &pkts {
        single.on_packet(&fab, pkt, *now);
    }
    sharded.ingest(&fab, &pkts);
    let end = Nanos::from_millis(10_000);
    single.flush(&fab, end);
    sharded.flush(&fab, end);

    assert!(sharded.tib().num_sealed() > 0);
    assert_eq!(single.tib.records_vec(), sharded.tib().records_vec());
    assert_eq!(single.tib.len(), sharded.tib().len());
    let q = Query::TopK {
        k: 16,
        range: TimeRange::ANY,
    };
    assert_eq!(
        single.execute(&fab, &q, false),
        sharded.execute(&fab, &q, false)
    );
}

/// Reader threads run `execute_on_tib` over published views while the
/// agent ingests packets and the head seals underneath them. Views must
/// be monotone (never lose records) and every answer internally
/// consistent; the final view must agree with the agent's own store.
#[test]
fn readers_query_agent_store_during_ingest() {
    let (ft, fab, policy) = fabric();
    let pkts = stream(&ft, &policy, 64);
    let dst = ft.host(1, 0, 0);

    let mut agent = HostAgent::new(dst, AgentConfig::default());
    agent.tib.set_seal_after(Some(2));
    let reader = agent.tib.reader();
    const READERS: usize = 3;
    let start = Barrier::new(READERS + 1);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let r = reader.clone();
            let (start, done) = (&start, &done);
            s.spawn(move || {
                start.wait();
                let mut last = 0usize;
                while !done.load(Ordering::Acquire) {
                    let view = r.snapshot();
                    let n = view.num_records();
                    assert!(n >= last, "published view went backwards");
                    last = n;
                    let flows = match execute_on_tib(
                        &*view,
                        &Query::GetFlows {
                            link: LinkPattern::ANY,
                            range: TimeRange::ANY,
                        },
                    ) {
                        pathdump_core::Response::Flows(f) => f,
                        other => panic!("unexpected response {other:?}"),
                    };
                    // A sealed prefix can't mention more flows than it
                    // holds records.
                    assert!(flows.len() <= n);
                    match execute_on_tib(
                        &*view,
                        &Query::TopK {
                            k: 4,
                            range: TimeRange::ANY,
                        },
                    ) {
                        pathdump_core::Response::TopK { entries, .. } => {
                            assert!(entries.len() <= 4)
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }

        let (start, done) = (&start, &done);
        let (fab, pkts) = (&fab, &pkts);
        let agent = &mut agent;
        s.spawn(move || {
            start.wait();
            for (pkt, now) in pkts {
                agent.on_packet(fab, pkt, *now);
            }
            agent.flush(fab, Nanos::from_millis(10_000));
            done.store(true, Ordering::Release);
        });
    });

    // Post-ingest: the published view is exactly the sealed prefix, and
    // a final seal brings it flush with the whole store.
    agent.tib.seal();
    let view = reader.snapshot();
    assert_eq!(view.num_records(), agent.tib.num_records());
    assert_eq!(
        view.get_flows(LinkPattern::ANY, TimeRange::ANY),
        agent.tib.get_flows(LinkPattern::ANY, TimeRange::ANY)
    );
    assert_eq!(
        view.top_k_flows(8, TimeRange::ANY),
        agent.tib.top_k_flows(8, TimeRange::ANY)
    );
    assert!(!agent.tib.is_empty());
}
