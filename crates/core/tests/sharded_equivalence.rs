//! Differential pin for the sharded ingest mode: a [`ShardedAgent`] with
//! ANY worker count, fed the same packet stream in windows, must be
//! bit-identical to a single [`HostAgent`] processing the packets one by
//! one — TIB records (values AND insertion order), per-flow totals, live
//! trajectory-memory contents, cache/memo statistics, alarms, and
//! reconstruction-failure counts.
//!
//! The streams mix multipath spraying, FIN/RST evictions (including
//! FIN-on-first-packet), corrupted tag stacks (infeasible paths), idle
//! ticks between windows, and queries over TIB+live state.

use pathdump_cherrypick::{FatTreeCherryPick, FatTreeReconstructor};
use pathdump_core::{AgentConfig, Fabric, HostAgent, Invariant, Query, ShardedAgent};
use pathdump_simnet::{Packet, TagPolicy, TcpFlags};
use pathdump_tib::{PendingRecord, TibRead};
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, LinkPattern, Nanos, Path, PortNo, TimeRange, UpDownRouting,
};
use proptest::prelude::*;

fn fabric() -> (FatTree, Fabric, FatTreeCherryPick) {
    let ft = FatTree::build(FatTreeParams { k: 4 });
    let f = Fabric::FatTree(FatTreeReconstructor::new(ft.clone()));
    let p = FatTreeCherryPick::new(ft.clone());
    (ft, f, p)
}

/// Builds the packet a given path would deliver (tag policy applied hop
/// by hop, exactly like the dataplane).
fn pkt_on_path(
    ft: &FatTree,
    policy: &FatTreeCherryPick,
    flow: FlowId,
    path: &Path,
    bytes: u32,
    flags: TcpFlags,
) -> Packet {
    let mut pkt = Packet::data(1, flow, 0, bytes, Nanos::ZERO);
    pkt.flags = flags;
    let topo = ft.topology();
    for (i, &sw) in path.0.iter().enumerate() {
        let in_port = if i == 0 {
            topo.switch(sw)
                .ports
                .iter()
                .position(|p| matches!(p, pathdump_topology::Peer::Host(_)))
                .map(|p| PortNo(p as u8))
        } else {
            topo.switch(sw).port_towards(path.0[i - 1])
        };
        policy.on_forward(sw, in_port, PortNo(0), &mut pkt.headers);
    }
    pkt
}

/// One generated packet: source host selector, sport (flow identity),
/// path selector, bytes, flag selector, and a corruption toggle.
type PktSpec = (u8, u16, u8, u16, u8, bool);

/// The generated scenario: packet windows with a tick after each.
fn stream_strategy() -> impl Strategy<Value = Vec<Vec<PktSpec>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u8..16,    // src host selector
                0u16..12,   // sport → flow identity
                0u8..=255,  // path selector
                64u16..900, // bytes
                0u8..8,     // 0..=4 plain, 5 FIN, 6 RST, 7 FIN
                any::<bool>(),
            ),
            1..24,
        ),
        1..4,
    )
}

fn build_packet(
    ft: &FatTree,
    policy: &FatTreeCherryPick,
    dst: pathdump_topology::HostId,
    spec: &PktSpec,
) -> Packet {
    let (src_sel, sport, path_sel, bytes, flag_sel, corrupt) = *spec;
    let topo = ft.topology();
    // Source hosts spread over 4 pods x 2 tors x 2 hosts; the slot that
    // would collide with `dst` maps elsewhere (no self-traffic).
    let mut src = ft.host(
        (src_sel / 4 % 4) as usize,
        (src_sel / 2 % 2) as usize,
        (src_sel % 2) as usize,
    );
    if src == dst {
        src = ft.host(3, 1, 1);
    }
    let flow = FlowId::tcp(topo.host(src).ip, 1024 + sport, topo.host(dst).ip, 80);
    let flags = match flag_sel {
        5 | 7 => TcpFlags::FIN,
        6 => TcpFlags::RST,
        _ => TcpFlags(0),
    };
    if corrupt {
        // A lying tag stack: class-A tag for the wrong position plus a
        // class-B core tag — reconstructs to an infeasible trajectory.
        let mut pkt = Packet::data(1, flow, 0, bytes as u32, Nanos::ZERO);
        pkt.flags = flags;
        pkt.headers.push_tag(3);
        pkt.headers.push_tag(4);
        return pkt;
    }
    let paths = ft.all_paths(src, dst);
    let path = paths[path_sel as usize % paths.len()].clone();
    pkt_on_path(ft, policy, flow, &path, bytes as u32, flags)
}

/// Live trajectory-memory contents as a canonical sorted snapshot list.
fn live_snapshot_single(agent: &HostAgent) -> Vec<PendingRecord> {
    let mut v: Vec<PendingRecord> = agent
        .memory
        .live_keys()
        .filter_map(|k| agent.memory.snapshot(&k))
        .collect();
    v.sort_unstable_by(pathdump_tib::canonical_order);
    v
}

fn run_differential(windows: &[Vec<PktSpec>], workers: usize, with_invariant: bool) {
    let (ft, fab, policy) = fabric();
    let dst = ft.host(1, 0, 0);

    let mut single = HostAgent::new(dst, AgentConfig::default());
    let mut sharded = ShardedAgent::new(dst, AgentConfig::default(), workers);
    assert_eq!(sharded.workers(), workers.max(1));
    if with_invariant {
        let inv = Invariant {
            forbidden: vec![ft.core(0)],
            ..Invariant::default()
        };
        single.install_invariant(inv.clone());
        sharded.install_invariant(inv);
    }

    let mut t = 0u64;
    let mut single_alarms = Vec::new();
    let mut sharded_alarms = Vec::new();
    for window in windows {
        let pkts: Vec<(Packet, Nanos)> = window
            .iter()
            .map(|spec| {
                t += 1;
                (build_packet(&ft, &policy, dst, spec), Nanos::from_millis(t))
            })
            .collect();
        for (pkt, now) in &pkts {
            single.on_packet(&fab, pkt, *now);
        }
        sharded.ingest(&fab, &pkts);

        // Idle-tick both; advance far enough to evict some windows.
        t += 4000;
        single.tick(&fab, Nanos::from_millis(t));
        sharded.tick(&fab, Nanos::from_millis(t));
        single_alarms.extend(single.drain_alarms());
        sharded_alarms.extend(sharded.drain_alarms());
    }

    // Mid-state: live records, queries over TIB + live view.
    assert_eq!(live_snapshot_single(&single).len(), sharded.live_records());
    let q = Query::TopK {
        k: 8,
        range: TimeRange::ANY,
    };
    assert_eq!(
        single.execute(&fab, &q, true),
        sharded.execute(&fab, &q, true),
        "TopK over TIB+live diverged (workers={workers})"
    );
    let q = Query::GetFlows {
        link: LinkPattern::ANY,
        range: TimeRange::ANY,
    };
    assert_eq!(
        single.execute(&fab, &q, true),
        sharded.execute(&fab, &q, true),
        "GetFlows over TIB+live diverged (workers={workers})"
    );

    // Drain everything and compare final state bit-for-bit.
    t += 1;
    single.flush(&fab, Nanos::from_millis(t));
    sharded.flush(&fab, Nanos::from_millis(t));
    single_alarms.extend(single.drain_alarms());
    sharded_alarms.extend(sharded.drain_alarms());

    assert_eq!(
        single.tib.records_vec(),
        sharded.tib().records_vec(),
        "TIB records diverged (workers={workers})"
    );
    assert_eq!(single.packets_seen, sharded.packets_seen());
    assert_eq!(single.recon_failures, sharded.recon_failures());
    assert_eq!(single_alarms, sharded_alarms, "alarms diverged");
    assert_eq!(
        single.cache.stats(),
        sharded.cache_stats(),
        "trajectory-cache stats diverged (workers={workers})"
    );
    assert_eq!(
        single.memo.stats(),
        sharded.memo_stats(),
        "decode-memo stats diverged (workers={workers})"
    );
    assert!(single.memory.is_empty());
    assert_eq!(sharded.live_records(), 0);

    // Per-flow totals through the query engine, post-flush.
    let q = Query::TopK {
        k: 64,
        range: TimeRange::ANY,
    };
    assert_eq!(
        single.execute(&fab, &q, false),
        sharded.execute(&fab, &q, false)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary streams, every worker count, invariants off: storage and
    /// query equivalence.
    #[test]
    fn sharded_matches_single_threaded(windows in stream_strategy()) {
        for workers in [1usize, 2, 3, 4] {
            run_differential(&windows, workers, false);
        }
    }

    /// Same, with a path-conformance invariant installed: alarm streams
    /// and construct-order-sensitive cache/memo stats must also line up.
    #[test]
    fn sharded_matches_single_threaded_with_invariants(windows in stream_strategy()) {
        for workers in [1usize, 2, 4] {
            run_differential(&windows, workers, true);
        }
    }
}

/// FIN on the very first packet of a flow: the first-sight event and the
/// eviction event come from the same packet and must replay in that
/// order.
#[test]
fn fin_on_first_packet_replays_in_order() {
    let (ft, fab, policy) = fabric();
    let dst = ft.host(1, 0, 0);
    let src = ft.host(0, 0, 0);
    let topo = ft.topology();
    let flow = FlowId::tcp(topo.host(src).ip, 5000, topo.host(dst).ip, 80);
    let path = ft.all_paths(src, dst).remove(0);
    let pkt = pkt_on_path(&ft, &policy, flow, &path, 300, TcpFlags::FIN);

    let mut single = HostAgent::new(dst, AgentConfig::default());
    let mut sharded = ShardedAgent::new(dst, AgentConfig::default(), 3);
    single.on_packet(&fab, &pkt, Nanos::from_millis(1));
    sharded.ingest(&fab, &[(pkt, Nanos::from_millis(1))]);

    assert_eq!(single.tib.records_vec(), sharded.tib().records_vec());
    assert_eq!(single.tib.len(), 1);
    assert_eq!(sharded.live_records(), 0);
}
