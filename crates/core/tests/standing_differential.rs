//! Standing-engine equivalence: the incremental [`StandingQueryEngine`]
//! must be bit-identical to a naive model that re-evaluates every
//! registered predicate from the raw record list (and the derived
//! event-time clock, max etime) after **every** insert — for arbitrary
//! record streams, registration orders, and unwatch interleavings.
//!
//! Compared after each operation: the drained flip-event stream (ids,
//! raise/clear direction, and full alarm payloads including evidence
//! paths), every live watch's active flag, and the clock.
//!
//! Inputs are kept deliberately small: the vendored proptest stub does
//! not shrink failures.

use pathdump_core::standing::{
    StandingEvent, StandingPredicate, StandingQuery, StandingQueryEngine, WatchId,
};
use pathdump_core::Alarm;
use pathdump_tib::{Tib, TibRecord};
use pathdump_topology::{FlowId, HostId, Ip, LinkPattern, Nanos, Path, SwitchId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn flow(sport: u16) -> FlowId {
    FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
}

fn path_pool() -> Vec<Path> {
    [
        &[0u16, 2, 4][..],
        &[0, 3, 4],
        &[1, 2, 5],
        &[1, 3, 5],
        &[0, 2, 0, 2, 4], // loopy: repeats a link and two switches
    ]
    .iter()
    .map(|ids| Path::new(ids.iter().map(|&i| SwitchId(i)).collect()))
    .collect()
}

fn link_pool() -> Vec<LinkPattern> {
    vec![
        LinkPattern::ANY,
        LinkPattern::exact(SwitchId(0), SwitchId(2)),
        LinkPattern::exact(SwitchId(2), SwitchId(4)),
        LinkPattern::into(SwitchId(4)),
        LinkPattern::into(SwitchId(5)),
        LinkPattern::out_of(SwitchId(1)),
    ]
}

fn make_rec(sport: u16, pidx: usize, t0: u64, dur: u64, bytes: u64) -> TibRecord {
    let pool = path_pool();
    TibRecord {
        flow: flow(1 + sport % 4),
        path: pool[pidx % pool.len()].clone(),
        stime: Nanos(t0 % 120),
        etime: Nanos(t0 % 120 + dur % 50),
        bytes: 1 + bytes % 1000,
        pkts: 1 + bytes % 7,
    }
}

/// Predicate from three small generator values; every kind reachable.
fn make_query(a: u16, kind: usize, c: u64) -> StandingQuery {
    let f = flow(1 + a % 4);
    StandingQuery::new(match kind % 4 {
        0 => StandingPredicate::TopKMember {
            flow: f,
            k: 1 + (c as usize) % 3,
        },
        1 => StandingPredicate::RateAbove {
            flow: f,
            window: Nanos(5 + c % 60),
            min_bytes: 1 + (c * 37) % 1500,
            min_pkts: c % 4,
        },
        2 => StandingPredicate::PathChanged { flow: f },
        _ => {
            let links = link_pool();
            StandingPredicate::LinkFlowsAbove {
                link: links[(c as usize) % links.len()],
                ceiling: (c as usize) % 4,
            }
        }
    })
}

fn matches_link(p: &Path, link: LinkPattern) -> bool {
    link.is_any() || p.links().any(|l| link.matches(l))
}

struct NaiveWatch {
    id: WatchId,
    query: StandingQuery,
    active: bool,
}

/// The reference model: no indexes, no per-watch state, no skip rules —
/// every evaluation is a full scan of `records`.
struct Naive {
    host: HostId,
    records: Vec<TibRecord>,
    clock: Nanos,
    next_id: u64,
    watches: Vec<NaiveWatch>,
}

impl Naive {
    fn new(host: HostId) -> Self {
        Naive {
            host,
            records: Vec::new(),
            clock: Nanos::ZERO,
            next_id: 0,
            watches: Vec::new(),
        }
    }

    /// Distinct flows whose paths match `link`, first-observation order.
    fn flows_on(&self, link: LinkPattern) -> Vec<FlowId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if matches_link(&r.path, link) && seen.insert(r.flow) {
                out.push(r.flow);
            }
        }
        out
    }

    /// The last two paths of `f`, insertion order: (prev, last).
    fn last_two_paths(&self, f: FlowId) -> (Option<Path>, Option<Path>) {
        let (mut prev, mut last) = (None, None);
        for r in self.records.iter().filter(|r| r.flow == f) {
            prev = last.take();
            last = Some(r.path.clone());
        }
        (prev, last)
    }

    fn eval(&self, p: &StandingPredicate) -> bool {
        match p {
            StandingPredicate::TopKMember { flow, k } => {
                let mut totals: HashMap<FlowId, u64> = HashMap::new();
                for r in &self.records {
                    *totals.entry(r.flow).or_default() += r.bytes;
                }
                let mut ranked: Vec<(u64, FlowId)> =
                    totals.into_iter().map(|(f, b)| (b, f)).collect();
                ranked.sort_unstable_by(|a, b| b.cmp(a));
                ranked.truncate(*k);
                ranked.iter().any(|&(_, f)| f == *flow)
            }
            StandingPredicate::RateAbove {
                flow,
                window,
                min_bytes,
                min_pkts,
            } => {
                let start = self.clock.saturating_sub(*window);
                let (mut b, mut p) = (0u64, 0u64);
                for r in self
                    .records
                    .iter()
                    .filter(|r| r.flow == *flow && r.etime >= start && r.stime <= self.clock)
                {
                    b += r.bytes;
                    p += r.pkts;
                }
                b >= *min_bytes && p >= *min_pkts
            }
            StandingPredicate::PathChanged { flow } => {
                let (prev, last) = self.last_two_paths(*flow);
                matches!((prev, last), (Some(a), Some(b)) if a != b)
            }
            StandingPredicate::LinkFlowsAbove { link, ceiling } => {
                self.flows_on(*link).len() > *ceiling
            }
        }
    }

    fn alarm_of(&self, i: usize, trigger: Option<FlowId>, now: Nanos) -> Alarm {
        let q = &self.watches[i].query;
        let (flow, paths) = match &q.predicate {
            StandingPredicate::TopKMember { flow, .. }
            | StandingPredicate::RateAbove { flow, .. } => (*flow, Vec::new()),
            StandingPredicate::PathChanged { flow } => {
                let (prev, last) = self.last_two_paths(*flow);
                (*flow, prev.into_iter().chain(last).collect())
            }
            StandingPredicate::LinkFlowsAbove { link, .. } => (
                trigger
                    .or_else(|| self.flows_on(*link).last().copied())
                    .unwrap_or(FlowId::tcp(Ip(0), 0, Ip(0), 0)),
                Vec::new(),
            ),
        };
        Alarm {
            flow,
            reason: q.reason,
            paths,
            host: self.host,
            at: now,
        }
    }

    fn insert(&mut self, rec: TibRecord, now: Nanos) -> Vec<StandingEvent> {
        self.records.push(rec.clone());
        if rec.etime > self.clock {
            self.clock = rec.etime;
        }
        let mut evs = Vec::new();
        for i in 0..self.watches.len() {
            let pred = self.watches[i].query.predicate.clone();
            let active = self.eval(&pred);
            if active != self.watches[i].active {
                self.watches[i].active = active;
                evs.push(StandingEvent {
                    watch: self.watches[i].id,
                    raised: active,
                    alarm: self.alarm_of(i, Some(rec.flow), now),
                });
            }
        }
        evs
    }

    fn watch(&mut self, q: StandingQuery, now: Nanos) -> (WatchId, Vec<StandingEvent>) {
        let id = WatchId(self.next_id);
        self.next_id += 1;
        let active = self.eval(&q.predicate);
        self.watches.push(NaiveWatch {
            id,
            query: q,
            active,
        });
        let mut evs = Vec::new();
        if active {
            let i = self.watches.len() - 1;
            evs.push(StandingEvent {
                watch: id,
                raised: true,
                alarm: self.alarm_of(i, None, now),
            });
        }
        (id, evs)
    }

    fn unwatch(&mut self, id: WatchId) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.id != id);
        self.watches.len() != before
    }

    fn active(&self, id: WatchId) -> Option<bool> {
        self.watches.iter().find(|w| w.id == id).map(|w| w.active)
    }
}

// One generated operation tuple (kind, a, b, c, d, e): `kind` < 6
// inserts a record built from the remaining fields; 6..=8 registers a
// watch (fields reinterpreted as the predicate selector); 9 unwatches a
// live id.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_engine_matches_naive_recompute(
        ops in proptest::collection::vec(
            (0usize..10, 0u16..6, 0usize..6, 0u64..120, 0u64..50, 0u64..2000),
            0..40),
    ) {
        let host = HostId(7);
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(host);
        let mut model = Naive::new(host);
        let mut live: Vec<WatchId> = Vec::new();
        for (i, &(kind, a, b, c, d, e)) in ops.iter().enumerate() {
            let now = Nanos(10_000 + i as u64);
            if kind < 6 {
                let rec = make_rec(a, b, c, d, e);
                tib.insert(rec.clone());
                eng.on_record(&tib, &rec, now);
                let expected = model.insert(rec, now);
                prop_assert_eq!(
                    eng.drain_events(), expected, "insert flips diverged at op {}", i);
            } else if kind < 9 {
                let q = make_query(a, b, c);
                let id = eng.watch(&tib, q.clone(), now);
                let (mid, expected) = model.watch(q, now);
                prop_assert_eq!(id, mid, "watch ids diverged at op {}", i);
                live.push(id);
                prop_assert_eq!(
                    eng.drain_events(), expected,
                    "registration raise diverged at op {}", i);
            } else if !live.is_empty() {
                let id = live.remove(b % live.len());
                prop_assert_eq!(eng.unwatch(id), model.unwatch(id));
                prop_assert_eq!(eng.drain_events(), vec![], "unwatch never flips");
            }
            prop_assert_eq!(eng.clock(), model.clock, "clock diverged at op {}", i);
            for &id in &live {
                prop_assert_eq!(
                    eng.active(id), model.active(id),
                    "watch {:?} active flag diverged at op {}", id, i);
            }
        }
    }
}
