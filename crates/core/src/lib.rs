//! PathDump core: the paper's primary contribution assembled.
//!
//! - [`agent`]: the per-host edge agent — trajectory memory → construction
//!   (cache + CherryPick reconstruction) → TIB, with real-time invariant
//!   checks and the Host API of Table 1;
//! - [`query`]/[`cluster`]: serializable queries with merge semantics, and
//!   the direct vs multi-level distributed execution engines of §3.2/§5.2;
//! - [`sharded`]: the per-core flow-sharded ingest mode of the agent,
//!   bit-identical to the single-threaded path by ordered replay;
//! - [`world`]: the full simulation world (agents + TCP + active monitor +
//!   controller trap handler) used by every §4 experiment;
//! - [`standing`]: the standing-query/alarm engine — registered
//!   predicates evaluated incrementally per TIB record, raising on flips;
//! - [`alarm`]: `Alarm(flowID, Reason, Paths)`.

pub mod agent;
pub mod alarm;
pub mod cluster;
pub mod query;
pub mod sharded;
pub mod standing;
pub mod world;

pub use agent::{execute_on_tib, AgentConfig, Fabric, HostAgent, Invariant};
// The storage engine types downstream crates need to talk to `HostAgent::tib`.
pub use alarm::{Alarm, Reason};
pub use cluster::{build_tree, Cluster, MgmtNet, QueryOutcome, TreeNode};
pub use pathdump_tib::{TibRead, TieredTib};
pub use query::{Query, Response};
pub use sharded::{shard_of, ShardedAgent};
pub use standing::{StandingEvent, StandingPredicate, StandingQuery, StandingQueryEngine, WatchId};
pub use world::{InstalledResult, LoopDetection, PathDumpWorld, WorldConfig};
