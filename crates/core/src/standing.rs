//! Standing queries: the controller's continuous-monitoring layer
//! (§2.3, §4 — install a predicate once, get an [`Alarm`] when it flips).
//!
//! A [`StandingQueryEngine`] holds registered [`StandingQuery`] watches
//! and re-evaluates them **incrementally** as each [`TibRecord`] lands in
//! the host's [`Tib`] — riding the store's running per-flow totals and
//! bucketed time index, never rescanning the record arena on the insert
//! path. Registration may scan once (seeding per-watch state and the
//! event-time clock from records inserted before the watch existed); the
//! per-record path afterwards does O(1) work per watch plus, when a cheap
//! flip check says the predicate *could* have changed, one aggregate
//! query (`top_k_flows` / posting-list `get_count`).
//!
//! # Incremental-equals-recompute contract
//!
//! After every insert, each watch's `active` flag is **bit-identical** to
//! evaluating its predicate from scratch against the full record multiset
//! (and the derived event-time clock, `max etime` over all records). The
//! `standing_differential` proptest pins this for arbitrary record
//! streams and registration orders. The only protocol requirement is that
//! every `Tib::insert` after a watch is registered is mirrored by an
//! [`StandingQueryEngine::on_record`] call (the [`crate::HostAgent`]
//! hookup does this in `finalize`).
//!
//! # Hysteresis
//!
//! A watch raises exactly **once per false→true transition** and emits a
//! matching clear event on true→false: a predicate that keeps being
//! re-confirmed by new records while already active stays silent. A watch
//! that is already true at registration raises immediately (the standing
//! condition is surfaced, not hidden).

use crate::alarm::{Alarm, Reason};
use pathdump_tib::{TibRead, TibRecord};
use pathdump_topology::{FlowId, HostId, Ip, LinkPattern, Nanos, Path, TimeRange};
use std::collections::HashSet;

/// Handle to a registered watch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WatchId(pub u64);

/// The predicate of a standing query.
#[derive(Clone, Debug, PartialEq)]
pub enum StandingPredicate {
    /// True while `flow` is among the top `k` flows by all-time bytes
    /// (ties broken like [`Tib::top_k_flows`]: flow id descending).
    TopKMember {
        /// The flow whose membership is watched.
        flow: FlowId,
        /// Top-k size.
        k: usize,
    },
    /// True while the flow's bytes AND packets over the sliding window
    /// `[clock − window, clock]` meet the thresholds, where `clock` is
    /// the event-time clock (max etime over all records). Both bounds
    /// are inclusive — the `TimeRange` convention.
    RateAbove {
        /// The flow whose rate is watched.
        flow: FlowId,
        /// Sliding window length.
        window: Nanos,
        /// Minimum bytes within the window.
        min_bytes: u64,
        /// Minimum packets within the window.
        min_pkts: u64,
    },
    /// True while the flow's two most recent records (insertion order)
    /// disagree on the path — the flow was just rerouted.
    PathChanged {
        /// The flow whose path stability is watched.
        flow: FlowId,
    },
    /// True while more than `ceiling` distinct flows have ever traversed
    /// a link matching `link` (a link fan-in ceiling; monotone, so it
    /// never clears).
    LinkFlowsAbove {
        /// Link pattern (wildcards allowed).
        link: LinkPattern,
        /// Maximum allowed distinct flows.
        ceiling: usize,
    },
}

/// A standing query: a predicate plus the alarm reason to raise with.
#[derive(Clone, Debug, PartialEq)]
pub struct StandingQuery {
    /// The watched predicate.
    pub predicate: StandingPredicate,
    /// Reason attached to raised alarms.
    pub reason: Reason,
}

impl StandingQuery {
    /// A query raising the generic [`Reason::InvariantViolated`].
    pub fn new(predicate: StandingPredicate) -> Self {
        StandingQuery {
            predicate,
            reason: Reason::InvariantViolated,
        }
    }
}

/// One predicate flip: a raise (`raised = true`, false→true) or a clear.
/// The embedded alarm is what the raise put on the agent's alarm bus;
/// clears carry the same shape for symmetric bookkeeping but are not
/// re-sent as alarms (the `Alarm` wire type has no cleared notion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandingEvent {
    /// The watch that flipped.
    pub watch: WatchId,
    /// true = false→true (alarm raised), false = true→false (cleared).
    pub raised: bool,
    /// The alarm payload.
    pub alarm: Alarm,
}

/// Per-watch incremental state.
#[derive(Clone, Debug)]
enum WatchState {
    /// Predicates answered from the TIB's own aggregates.
    Stateless,
    /// Last two paths of the watched flow, insertion order.
    PathChange {
        prev: Option<Path>,
        last: Option<Path>,
    },
    /// Distinct flows seen on the watched link: `order` is the
    /// deterministic answer, `seen` the dedup set.
    LinkFlows {
        order: Vec<FlowId>,
        seen: HashSet<FlowId>,
    },
}

#[derive(Clone, Debug)]
struct Watch {
    id: WatchId,
    query: StandingQuery,
    active: bool,
    state: WatchState,
}

/// The per-host standing-query engine. See the module docs for the
/// incremental-equals-recompute contract and the hysteresis semantics.
#[derive(Clone, Debug)]
pub struct StandingQueryEngine {
    host: HostId,
    next_id: u64,
    /// Event-time clock: max etime over all records observed or seeded.
    clock: Nanos,
    watches: Vec<Watch>,
    events: Vec<StandingEvent>,
}

impl StandingQueryEngine {
    /// Creates an engine raising alarms as `host`.
    pub fn new(host: HostId) -> Self {
        StandingQueryEngine {
            host,
            next_id: 0,
            clock: Nanos::ZERO,
            watches: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Number of registered watches.
    pub fn len(&self) -> usize {
        self.watches.len()
    }

    /// True when no watches are registered (the agent skips the
    /// per-record hook entirely in that case).
    pub fn is_empty(&self) -> bool {
        self.watches.is_empty()
    }

    /// The current event-time clock.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// The current value of a watch's predicate.
    pub fn active(&self, id: WatchId) -> Option<bool> {
        self.watches.iter().find(|w| w.id == id).map(|w| w.active)
    }

    /// Registered watches with their current predicate values, in
    /// registration (= evaluation) order.
    pub fn watch_states(&self) -> impl Iterator<Item = (WatchId, &StandingQuery, bool)> {
        self.watches.iter().map(|w| (w.id, &w.query, w.active))
    }

    /// Drains accumulated flip events (raises and clears, in flip order).
    pub fn drain_events(&mut self) -> Vec<StandingEvent> {
        std::mem::take(&mut self.events)
    }

    /// Registers a watch against the current contents of `tib`,
    /// returning its id. Seeds per-watch state (and the event-time
    /// clock) from already-stored records — the one place the engine may
    /// scan the arena — and evaluates the predicate immediately: a watch
    /// whose condition already holds raises right away.
    pub fn watch<T: TibRead + ?Sized>(
        &mut self,
        tib: &T,
        query: StandingQuery,
        now: Nanos,
    ) -> WatchId {
        let mut clock = self.clock;
        tib.for_each_record(&mut |r| {
            if r.etime > clock {
                clock = r.etime;
            }
        });
        self.clock = clock;
        let state = match &query.predicate {
            StandingPredicate::TopKMember { .. } | StandingPredicate::RateAbove { .. } => {
                WatchState::Stateless
            }
            StandingPredicate::PathChanged { flow } => {
                let mut prev = None;
                let mut last = None;
                tib.for_each_record(&mut |r| {
                    if r.flow == *flow {
                        prev = last.take();
                        last = Some(r.path.clone());
                    }
                });
                WatchState::PathChange { prev, last }
            }
            StandingPredicate::LinkFlowsAbove { link, .. } => {
                let order = tib.get_flows(*link, TimeRange::ANY);
                let seen = order.iter().copied().collect();
                WatchState::LinkFlows { order, seen }
            }
        };
        let id = WatchId(self.next_id);
        self.next_id += 1;
        let mut w = Watch {
            id,
            query,
            active: false,
            state,
        };
        let active = Self::eval(&w, tib, self.clock);
        if active {
            let flow = Self::alarm_flow(&w, None);
            let alarm = Self::alarm_for(&w, self.host, flow, now);
            self.events.push(StandingEvent {
                watch: id,
                raised: true,
                alarm,
            });
        }
        w.active = active;
        self.watches.push(w);
        id
    }

    /// Removes a watch. Returns false when the id is unknown.
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.id != id);
        self.watches.len() != before
    }

    /// The incremental step: call once per [`Tib::insert`], **after** the
    /// record is in the store. Updates per-watch state in O(1), decides
    /// via cheap monotonicity checks whether each predicate could have
    /// flipped, and re-derives it from the TIB's aggregates only then.
    /// Flips append [`StandingEvent`]s (drain with
    /// [`drain_events`](Self::drain_events)).
    pub fn on_record<T: TibRead + ?Sized>(&mut self, tib: &T, rec: &TibRecord, now: Nanos) {
        let clock_advanced = rec.etime > self.clock;
        if clock_advanced {
            self.clock = rec.etime;
        }
        let clock = self.clock;
        let host = self.host;
        let mut watches = std::mem::take(&mut self.watches);
        for w in &mut watches {
            let new_active = Self::step(w, tib, rec, clock, clock_advanced);
            if new_active != w.active {
                w.active = new_active;
                let flow = Self::alarm_flow(w, Some(rec.flow));
                let alarm = Self::alarm_for(w, host, flow, now);
                self.events.push(StandingEvent {
                    watch: w.id,
                    raised: new_active,
                    alarm,
                });
            }
        }
        self.watches = watches;
    }

    /// One watch's incremental evaluation for one inserted record.
    fn step<T: TibRead + ?Sized>(
        w: &mut Watch,
        tib: &T,
        rec: &TibRecord,
        clock: Nanos,
        clock_advanced: bool,
    ) -> bool {
        match (&w.query.predicate, &mut w.state) {
            (StandingPredicate::TopKMember { flow, k }, _) => {
                let (flow, k) = (*flow, *k);
                if rec.flow == flow {
                    // The target's own total only grew: it cannot fall out.
                    if w.active {
                        true
                    } else {
                        Self::topk_member(tib, flow, k)
                    }
                } else if !w.active {
                    // Another flow grew; the target cannot climb in.
                    false
                } else {
                    // Membership = fewer than k flows with a larger
                    // (bytes, flow) tuple. The other flow's move matters
                    // only if it crossed the target from below.
                    let (tb, _) = tib.get_count(flow, None, TimeRange::ANY);
                    let (ob, _) = tib.get_count(rec.flow, None, TimeRange::ANY);
                    let target = (tb, flow);
                    let other_new = (ob, rec.flow);
                    let other_old = (ob.saturating_sub(rec.bytes), rec.flow);
                    if other_new < target || other_old > target {
                        true
                    } else {
                        Self::topk_member(tib, flow, k)
                    }
                }
            }
            (
                StandingPredicate::RateAbove {
                    flow,
                    window,
                    min_bytes,
                    min_pkts,
                },
                _,
            ) => {
                // The window slides only when the clock advances; with a
                // static clock, only the watched flow's own records can
                // change the sums.
                if !clock_advanced && rec.flow != *flow {
                    w.active
                } else {
                    Self::rate_above(tib, *flow, *window, *min_bytes, *min_pkts, clock)
                }
            }
            (StandingPredicate::PathChanged { flow }, WatchState::PathChange { prev, last }) => {
                if rec.flow == *flow {
                    *prev = last.take();
                    *last = Some(rec.path.clone());
                }
                matches!((prev.as_ref(), last.as_ref()), (Some(a), Some(b)) if a != b)
            }
            (
                StandingPredicate::LinkFlowsAbove { link, ceiling },
                WatchState::LinkFlows { order, seen },
            ) => {
                if Self::path_matches(&rec.path, *link) && seen.insert(rec.flow) {
                    order.push(rec.flow);
                }
                order.len() > *ceiling
            }
            // State shapes are fixed at registration; a mismatch is
            // unreachable but must not panic on the ingest path.
            _ => w.active,
        }
    }

    /// Full evaluation of a watch's predicate from current state + store
    /// (used at registration; the differential proptest independently
    /// re-derives the same semantics from the raw record list).
    fn eval<T: TibRead + ?Sized>(w: &Watch, tib: &T, clock: Nanos) -> bool {
        match (&w.query.predicate, &w.state) {
            (StandingPredicate::TopKMember { flow, k }, _) => Self::topk_member(tib, *flow, *k),
            (
                StandingPredicate::RateAbove {
                    flow,
                    window,
                    min_bytes,
                    min_pkts,
                },
                _,
            ) => Self::rate_above(tib, *flow, *window, *min_bytes, *min_pkts, clock),
            (StandingPredicate::PathChanged { .. }, WatchState::PathChange { prev, last }) => {
                matches!((prev.as_ref(), last.as_ref()), (Some(a), Some(b)) if a != b)
            }
            (
                StandingPredicate::LinkFlowsAbove { ceiling, .. },
                WatchState::LinkFlows { order, .. },
            ) => order.len() > *ceiling,
            _ => false,
        }
    }

    fn topk_member<T: TibRead + ?Sized>(tib: &T, flow: FlowId, k: usize) -> bool {
        tib.top_k_flows(k, TimeRange::ANY)
            .iter()
            .any(|&(_, f)| f == flow)
    }

    fn rate_above<T: TibRead + ?Sized>(
        tib: &T,
        flow: FlowId,
        window: Nanos,
        min_bytes: u64,
        min_pkts: u64,
        clock: Nanos,
    ) -> bool {
        let range = TimeRange::between(clock.saturating_sub(window), clock);
        let (bytes, pkts) = tib.get_count(flow, None, range);
        bytes >= min_bytes && pkts >= min_pkts
    }

    fn path_matches(path: &Path, link: LinkPattern) -> bool {
        link.is_any() || path.links().any(|l| link.matches(l))
    }

    /// The flow an event names: the watched flow for flow predicates;
    /// for link ceilings the flow that tipped the count (`trigger`), or
    /// the last counted flow for registration-time raises.
    fn alarm_flow(w: &Watch, trigger: Option<FlowId>) -> FlowId {
        match (&w.query.predicate, &w.state) {
            (StandingPredicate::TopKMember { flow, .. }, _)
            | (StandingPredicate::RateAbove { flow, .. }, _)
            | (StandingPredicate::PathChanged { flow }, _) => *flow,
            (StandingPredicate::LinkFlowsAbove { .. }, WatchState::LinkFlows { order, .. }) => {
                trigger
                    .or(order.last().copied())
                    .unwrap_or(FlowId::tcp(Ip(0), 0, Ip(0), 0))
            }
            (StandingPredicate::LinkFlowsAbove { .. }, _) => {
                trigger.unwrap_or(FlowId::tcp(Ip(0), 0, Ip(0), 0))
            }
        }
    }

    /// Builds the alarm payload for a flip; path-change flips attach the
    /// two disagreeing paths as evidence.
    fn alarm_for(w: &Watch, host: HostId, flow: FlowId, now: Nanos) -> Alarm {
        let paths = match (&w.query.predicate, &w.state) {
            (StandingPredicate::PathChanged { .. }, WatchState::PathChange { prev, last }) => {
                prev.iter().chain(last.iter()).cloned().collect()
            }
            _ => Vec::new(),
        };
        Alarm {
            flow,
            reason: w.query.reason,
            paths,
            host,
            at: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_tib::Tib;

    fn flow(sport: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
    }

    fn path(ids: &[u16]) -> Path {
        Path::new(
            ids.iter()
                .map(|&i| pathdump_topology::SwitchId(i))
                .collect(),
        )
    }

    fn rec(sport: u16, p: &[u16], t0: u64, t1: u64, bytes: u64) -> TibRecord {
        TibRecord {
            flow: flow(sport),
            path: path(p),
            stime: Nanos(t0),
            etime: Nanos(t1),
            bytes,
            pkts: 1 + bytes / 100,
        }
    }

    fn ingest(eng: &mut StandingQueryEngine, tib: &mut Tib, r: TibRecord, now: u64) {
        tib.insert(r.clone());
        eng.on_record(tib, &r, Nanos(now));
    }

    #[test]
    fn rate_watch_raises_once_and_clears() {
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(HostId(3));
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::RateAbove {
                flow: flow(1),
                window: Nanos(100),
                min_bytes: 500,
                min_pkts: 0,
            }),
            Nanos(0),
        );
        assert_eq!(eng.active(id), Some(false));
        // Two bursts inside one window: one raise, re-confirmation silent.
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 0, 10, 400), 10);
        assert_eq!(eng.active(id), Some(false), "below threshold");
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 20, 30, 400), 30);
        assert_eq!(eng.active(id), Some(true));
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 40, 50, 400), 50);
        assert_eq!(eng.active(id), Some(true), "still raised, no re-raise");
        // A late record from another flow slides the window past the
        // bursts: the watch clears.
        ingest(&mut eng, &mut tib, rec(2, &[0, 8, 4], 500, 600, 1), 600);
        assert_eq!(eng.active(id), Some(false));
        let events = eng.drain_events();
        assert_eq!(events.len(), 2, "one raise, one clear");
        assert!(events[0].raised && !events[1].raised);
        assert_eq!(events[0].alarm.flow, flow(1));
        assert_eq!(events[0].alarm.host, HostId(3));
        assert!(eng.drain_events().is_empty(), "drained");
    }

    #[test]
    fn topk_membership_flips_on_displacement() {
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(HostId(0));
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::TopKMember {
                flow: flow(1),
                k: 2,
            }),
            Nanos(0),
        );
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 0, 10, 100), 1);
        assert_eq!(eng.active(id), Some(true), "only flow: in top-2");
        ingest(&mut eng, &mut tib, rec(2, &[0, 8, 4], 0, 10, 200), 2);
        assert_eq!(eng.active(id), Some(true), "second flow: still top-2");
        ingest(&mut eng, &mut tib, rec(3, &[0, 8, 4], 0, 10, 300), 3);
        assert_eq!(eng.active(id), Some(false), "displaced to rank 3");
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 20, 30, 500), 4);
        assert_eq!(eng.active(id), Some(true), "grew back into top-2");
        let flips: Vec<bool> = eng.drain_events().iter().map(|e| e.raised).collect();
        assert_eq!(flips, vec![true, false, true]);
    }

    #[test]
    fn path_change_attaches_both_paths() {
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(HostId(0));
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::PathChanged { flow: flow(1) }),
            Nanos(0),
        );
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 0, 10, 1), 1);
        assert_eq!(eng.active(id), Some(false), "one record: no change yet");
        ingest(&mut eng, &mut tib, rec(1, &[0, 9, 4], 20, 30, 1), 2);
        assert_eq!(eng.active(id), Some(true), "rerouted");
        let events = eng.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].alarm.paths,
            vec![path(&[0, 8, 4]), path(&[0, 9, 4])]
        );
        // Same path again: last two agree, clears.
        ingest(&mut eng, &mut tib, rec(1, &[0, 9, 4], 40, 50, 1), 3);
        assert_eq!(eng.active(id), Some(false));
    }

    #[test]
    fn link_ceiling_counts_distinct_flows() {
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(HostId(0));
        let link = LinkPattern::exact(
            pathdump_topology::SwitchId(0),
            pathdump_topology::SwitchId(8),
        );
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::LinkFlowsAbove { link, ceiling: 2 }),
            Nanos(0),
        );
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 0, 10, 1), 1);
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 20, 30, 1), 2);
        ingest(&mut eng, &mut tib, rec(2, &[0, 8, 4], 0, 10, 1), 3);
        assert_eq!(eng.active(id), Some(false), "2 distinct ≤ ceiling");
        ingest(&mut eng, &mut tib, rec(3, &[1, 9, 5], 0, 10, 1), 4);
        assert_eq!(eng.active(id), Some(false), "off-link flow ignored");
        ingest(&mut eng, &mut tib, rec(3, &[0, 8, 4], 20, 30, 1), 5);
        assert_eq!(eng.active(id), Some(true), "3rd distinct flow tips it");
        let events = eng.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].alarm.flow, flow(3), "triggering flow named");
    }

    #[test]
    fn registration_on_populated_store_raises_immediately() {
        let mut tib = Tib::new();
        tib.insert(rec(1, &[0, 8, 4], 0, 10, 900));
        tib.insert(rec(1, &[0, 9, 4], 20, 30, 900));
        let mut eng = StandingQueryEngine::new(HostId(0));
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::PathChanged { flow: flow(1) }),
            Nanos(99),
        );
        assert_eq!(eng.active(id), Some(true), "seeded from existing records");
        let events = eng.drain_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].raised);
        assert_eq!(events[0].alarm.at, Nanos(99));
        // Clock seeded too: a rate watch over the existing window fires.
        let id2 = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::RateAbove {
                flow: flow(1),
                window: Nanos(50),
                min_bytes: 1000,
                min_pkts: 0,
            }),
            Nanos(100),
        );
        assert_eq!(eng.clock(), Nanos(30));
        assert_eq!(eng.active(id2), Some(true), "both records in [0, 30]");
    }

    #[test]
    fn unwatch_stops_evaluation() {
        let mut tib = Tib::new();
        let mut eng = StandingQueryEngine::new(HostId(0));
        let id = eng.watch(
            &tib,
            StandingQuery::new(StandingPredicate::TopKMember {
                flow: flow(1),
                k: 1,
            }),
            Nanos(0),
        );
        assert_eq!(eng.len(), 1);
        assert!(eng.unwatch(id));
        assert!(!eng.unwatch(id), "already removed");
        assert!(eng.is_empty());
        ingest(&mut eng, &mut tib, rec(1, &[0, 8, 4], 0, 10, 1), 1);
        assert!(eng.drain_events().is_empty());
        assert_eq!(eng.active(id), None);
    }
}
