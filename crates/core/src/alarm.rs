//! Alarms: `Alarm(flowID, Reason, Paths)` from the Host API (Table 1).

use pathdump_topology::{FlowId, HostId, Nanos, Path};
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireError, WireResult};

/// Why an alarm was raised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Reason {
    /// TCP performance alert: repeated retransmissions (§2.3, §3.2).
    PoorPerf,
    /// Path conformance violation (§4.1).
    PcFail,
    /// A trajectory that is infeasible against the topology — a switch
    /// inserted a wrong ID, or tags were corrupted (§2.4).
    InfeasiblePath,
    /// A routing loop detected from trapped packets (§4.5).
    LoopDetected,
    /// Installed-invariant violation (generic).
    InvariantViolated,
}

impl Reason {
    /// Stable wire discriminant.
    pub fn code(self) -> u8 {
        match self {
            Reason::PoorPerf => 0,
            Reason::PcFail => 1,
            Reason::InfeasiblePath => 2,
            Reason::LoopDetected => 3,
            Reason::InvariantViolated => 4,
        }
    }

    /// Decodes a wire discriminant.
    pub fn from_code(c: u8) -> Option<Reason> {
        Some(match c {
            0 => Reason::PoorPerf,
            1 => Reason::PcFail,
            2 => Reason::InfeasiblePath,
            3 => Reason::LoopDetected,
            4 => Reason::InvariantViolated,
            _ => return None,
        })
    }
}

/// One alarm raised by a host agent toward the controller.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alarm {
    /// The flow concerned.
    pub flow: FlowId,
    /// Reason code.
    pub reason: Reason,
    /// Supporting paths (may be empty, e.g. the POOR_PERF alert of §2.3).
    pub paths: Vec<Path>,
    /// The host that raised it.
    pub host: HostId,
    /// When it was raised (simulated time).
    pub at: Nanos,
}

impl Encode for Alarm {
    fn encode(&self, enc: &mut Encoder) {
        self.flow.encode(enc);
        enc.put_u8(self.reason.code());
        self.paths.encode(enc);
        self.host.encode(enc);
        self.at.encode(enc);
    }
}

impl Decode for Alarm {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let flow = FlowId::decode(dec)?;
        let code = dec.get_u8()?;
        let reason = Reason::from_code(code).ok_or(WireError::InvalidTag(code as u32))?;
        Ok(Alarm {
            flow,
            reason,
            paths: Vec::<Path>::decode(dec)?,
            host: HostId::decode(dec)?,
            at: Nanos::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::{Ip, SwitchId};
    use pathdump_wire::{from_bytes, to_bytes};

    #[test]
    fn reason_codes_roundtrip() {
        for r in [
            Reason::PoorPerf,
            Reason::PcFail,
            Reason::InfeasiblePath,
            Reason::LoopDetected,
            Reason::InvariantViolated,
        ] {
            assert_eq!(Reason::from_code(r.code()), Some(r));
        }
        assert_eq!(Reason::from_code(200), None);
    }

    #[test]
    fn alarm_wire_roundtrip() {
        let a = Alarm {
            flow: FlowId::tcp(Ip::new(10, 0, 0, 2), 4000, Ip::new(10, 2, 0, 2), 80),
            reason: Reason::PcFail,
            paths: vec![Path::new(vec![SwitchId(0), SwitchId(9), SwitchId(2)])],
            host: HostId(7),
            at: Nanos::from_millis(123),
        };
        let back: Alarm = from_bytes(&to_bytes(&a)).unwrap();
        assert_eq!(back, a);
    }
}
