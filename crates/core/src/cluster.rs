//! Distributed query execution: direct queries and the multi-level
//! aggregation tree (§3.2 "query processing", evaluated in §5.2).
//!
//! The cluster holds one TIB per end-host. Queries and responses cross a
//! modeled management network (per-message latency + serialization at the
//! configured bandwidth — the paper's dedicated 1 GbE channel), while every
//! *computation* (local query execution, response merging) is measured in
//! real wall-clock time on real data. Response *bytes* come from actual
//! wire-encoded frames.
//!
//! Direct query: the controller unicasts the query to every host and
//! merges all responses itself — aggregation time grows linearly with the
//! number of hosts. Multi-level query: hosts form a tree (the paper's
//! 4-level, 7/4/4 fan-out over 112 hosts); interior hosts execute the query
//! locally *and* merge their children's responses, so controller-side work
//! stays flat and massive reductions (top-k discards `(n−1)·k` pairs)
//! happen in the tree.

use crate::agent::execute_on_tib;
use crate::query::{Query, Response};
use pathdump_tib::Tib;
use pathdump_topology::{Nanos, MICROS};
use pathdump_wire::Frame;
use std::time::Instant;

/// Frame type tags on the management channel.
pub const FRAME_QUERY: u16 = 1;
/// Response frame tag.
pub const FRAME_RESPONSE: u16 = 2;

/// The modeled management network.
#[derive(Clone, Copy, Debug)]
pub struct MgmtNet {
    /// One-way per-message latency (propagation + kernel/IPC overheads).
    pub one_way_latency: Nanos,
    /// Channel bandwidth in bits/s (paper: dedicated 1 GbE).
    pub bandwidth_bps: u64,
}

impl Default for MgmtNet {
    fn default() -> Self {
        MgmtNet {
            one_way_latency: Nanos(100 * MICROS),
            bandwidth_bps: 1_000_000_000,
        }
    }
}

impl MgmtNet {
    /// Time for one message of `bytes` to cross the channel.
    pub fn transfer(&self, bytes: usize) -> Nanos {
        Nanos(self.one_way_latency.0 + bytes as u64 * 8 * 1_000_000_000 / self.bandwidth_bps)
    }
}

/// The result of a distributed query, with its cost breakdown.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The merged response.
    pub response: Response,
    /// Modeled end-to-end response time (network model + measured compute).
    pub elapsed: Nanos,
    /// Total bytes that crossed the management network (frames included).
    pub wire_bytes: u64,
    /// Sum of per-host execution compute (measured).
    pub exec_compute: Nanos,
    /// Sum of merge compute across controller/interior nodes (measured).
    pub merge_compute: Nanos,
}

/// A query cluster: one TIB per host plus the network model.
pub struct Cluster {
    /// Per-host TIBs (index = host).
    pub tibs: Vec<Tib>,
    /// Management network model.
    pub net: MgmtNet,
}

/// One node of the aggregation tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Host index.
    pub host: usize,
    /// Children (each itself a subtree).
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// Total hosts in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Depth of the subtree (1 = leaf).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }
}

/// Builds the aggregation tree over `hosts` with per-level fan-outs
/// (the paper's 112-host tree uses `[7, 4, 4]`: 7 level-1 aggregators,
/// 4 children each at level 2, 4 each at level 3 — all of them end-hosts
/// executing the query too).
pub fn build_tree(hosts: &[usize], fanouts: &[usize]) -> Vec<TreeNode> {
    if hosts.is_empty() {
        return Vec::new();
    }
    struct Node {
        host: usize,
        children: Vec<usize>,
    }
    let f0 = fanouts.first().copied().unwrap_or(usize::MAX).max(1);
    let n_roots = f0.min(hosts.len());
    let mut arena: Vec<Node> = hosts[..n_roots]
        .iter()
        .map(|&h| Node {
            host: h,
            children: Vec::new(),
        })
        .collect();
    let mut level: Vec<usize> = (0..n_roots).collect();
    let mut pos = n_roots;
    let mut fan_idx = 1;
    while pos < hosts.len() {
        let fan = fanouts.get(fan_idx).copied().unwrap_or(usize::MAX).max(1);
        let mut next_level = Vec::new();
        'outer: for &parent in &level {
            for _ in 0..fan {
                if pos >= hosts.len() {
                    break 'outer;
                }
                arena.push(Node {
                    host: hosts[pos],
                    children: Vec::new(),
                });
                let id = arena.len() - 1;
                arena[parent].children.push(id);
                next_level.push(id);
                pos += 1;
            }
        }
        level = next_level;
        fan_idx += 1;
    }
    fn materialize(arena: &[Node], id: usize) -> TreeNode {
        TreeNode {
            host: arena[id].host,
            children: arena[id]
                .children
                .iter()
                .map(|&c| materialize(arena, c))
                .collect(),
        }
    }
    (0..n_roots).map(|i| materialize(&arena, i)).collect()
}

// The rpc plane ships each recipient's subtree inside the request (source
// routing for the aggregation tree), so `TreeNode` is wire-encodable. The
// layout is a flat breadth-first `(host, parent+1)` list — iterative on
// both sides, so a corrupt frame can drive the decoder into an error but
// never into unbounded recursion, and sibling order survives exactly
// (child lists are rebuilt in appearance order).
impl pathdump_wire::Encode for TreeNode {
    fn encode(&self, enc: &mut pathdump_wire::Encoder) {
        enc.put_varint(self.size() as u64);
        let mut queue: std::collections::VecDeque<(&TreeNode, u64)> =
            std::collections::VecDeque::new();
        queue.push_back((self, 0)); // 0 = root sentinel (parent+1)
        let mut index = 0u64;
        while let Some((node, parent_plus_one)) = queue.pop_front() {
            enc.put_varint(node.host as u64);
            enc.put_varint(parent_plus_one);
            index += 1;
            let my_slot = index; // this node's (index+1) for its children
            for child in &node.children {
                queue.push_back((child, my_slot));
            }
        }
    }
}

impl pathdump_wire::Decode for TreeNode {
    fn decode(dec: &mut pathdump_wire::Decoder<'_>) -> pathdump_wire::WireResult<Self> {
        use pathdump_wire::WireError;
        let n = dec.get_len()?;
        if n == 0 {
            return Err(WireError::InvalidTag(0));
        }
        let mut hosts: Vec<usize> = Vec::with_capacity(n.min(4096));
        let mut child_ids: Vec<Vec<usize>> = Vec::with_capacity(n.min(4096));
        for i in 0..n {
            let host = dec.get_varint()?;
            let host = usize::try_from(host).map_err(|_| WireError::VarintOverflow)?;
            let parent_plus_one = dec.get_varint()? as usize;
            if i == 0 {
                if parent_plus_one != 0 {
                    return Err(WireError::InvalidTag(parent_plus_one as u32));
                }
            } else {
                // Parents must appear strictly earlier: acyclic by
                // construction, and exactly one root.
                if parent_plus_one == 0 || parent_plus_one > i {
                    return Err(WireError::InvalidTag(parent_plus_one as u32));
                }
                child_ids[parent_plus_one - 1].push(i);
            }
            hosts.push(host);
            child_ids.push(Vec::new());
        }
        // Children always have larger indices than their parent (BFS), so
        // one reverse pass materializes every subtree iteratively.
        let mut built: Vec<Option<TreeNode>> = (0..n).map(|_| None).collect();
        for i in (0..n).rev() {
            let mut children = Vec::with_capacity(child_ids[i].len());
            for &c in &child_ids[i] {
                match built[c].take() {
                    Some(node) => children.push(node),
                    None => return Err(WireError::InvalidTag(c as u32)),
                }
            }
            built[i] = Some(TreeNode {
                host: hosts[i],
                children,
            });
        }
        match built[0].take() {
            Some(root) => Ok(root),
            None => Err(WireError::InvalidTag(0)),
        }
    }
}

/// Internal: result of evaluating one subtree.
struct SubtreeOutcome {
    finish: Nanos,
    response: Response,
    resp_bytes: usize,
    wire_bytes: u64,
    exec_compute: Nanos,
    merge_compute: Nanos,
}

impl Cluster {
    /// Creates a cluster over per-host TIBs.
    pub fn new(tibs: Vec<Tib>, net: MgmtNet) -> Self {
        Cluster { tibs, net }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.tibs.len()
    }

    fn query_frame_bytes(q: &Query) -> usize {
        Frame::new(FRAME_QUERY, pathdump_wire::to_bytes(q)).wire_len()
    }

    fn response_frame_bytes(r: &Response) -> usize {
        Frame::new(FRAME_RESPONSE, pathdump_wire::to_bytes(r)).wire_len()
    }

    /// Executes `q` on `hosts` with the **direct** mechanism: controller →
    /// every host, all responses merged at the controller.
    pub fn direct_query(&self, hosts: &[usize], q: &Query) -> QueryOutcome {
        let q_bytes = Self::query_frame_bytes(q);
        let mut arrivals: Vec<(Nanos, Response, usize)> = Vec::with_capacity(hosts.len());
        let mut exec_compute = Nanos::ZERO;
        let mut wire_bytes = (hosts.len() * q_bytes) as u64;
        for &h in hosts {
            let t0 = Instant::now();
            let resp = execute_on_tib(&self.tibs[h], q);
            let exec = Nanos(t0.elapsed().as_nanos() as u64);
            exec_compute += exec;
            let rb = Self::response_frame_bytes(&resp);
            wire_bytes += rb as u64;
            let arrival = self.net.transfer(q_bytes) + exec + self.net.transfer(rb);
            arrivals.push((arrival, resp, rb));
        }
        // The controller merges responses in arrival order, serially.
        arrivals.sort_by_key(|(t, _, _)| *t);
        let mut merged = Response::empty_for(q);
        let mut clock = Nanos::ZERO;
        let mut merge_compute = Nanos::ZERO;
        for (arrival, resp, _) in arrivals {
            let start = clock.max(arrival);
            let t0 = Instant::now();
            merged.merge(resp);
            let m = Nanos(t0.elapsed().as_nanos() as u64);
            merge_compute += m;
            clock = start + m;
        }
        QueryOutcome {
            response: merged,
            elapsed: clock,
            wire_bytes,
            exec_compute,
            merge_compute,
        }
    }

    /// Executes `q` over `hosts` with the **multi-level** mechanism using
    /// the given per-level fan-outs.
    pub fn multilevel_query(&self, hosts: &[usize], q: &Query, fanouts: &[usize]) -> QueryOutcome {
        let roots = build_tree(hosts, fanouts);
        let q_bytes = Self::query_frame_bytes(q);
        let mut arrivals: Vec<(Nanos, Response, usize)> = Vec::new();
        let mut wire_bytes = 0u64;
        let mut exec_compute = Nanos::ZERO;
        let mut merge_compute = Nanos::ZERO;
        for root in &roots {
            let out = self.eval_subtree(root, q, q_bytes, 1);
            wire_bytes += out.wire_bytes + q_bytes as u64 + out.resp_bytes as u64;
            exec_compute += out.exec_compute;
            merge_compute += out.merge_compute;
            arrivals.push((
                out.finish + self.net.transfer(out.resp_bytes),
                out.response,
                out.resp_bytes,
            ));
        }
        arrivals.sort_by_key(|(t, _, _)| *t);
        let mut merged = Response::empty_for(q);
        let mut clock = Nanos::ZERO;
        for (arrival, resp, _) in arrivals {
            let start = clock.max(arrival);
            let t0 = Instant::now();
            merged.merge(resp);
            let m = Nanos(t0.elapsed().as_nanos() as u64);
            merge_compute += m;
            clock = start + m;
        }
        QueryOutcome {
            response: merged,
            elapsed: clock,
            wire_bytes,
            exec_compute,
            merge_compute,
        }
    }

    fn eval_subtree(
        &self,
        node: &TreeNode,
        q: &Query,
        q_bytes: usize,
        depth: u32,
    ) -> SubtreeOutcome {
        // The query cascades down one transfer per level.
        let query_arrival = Nanos(self.net.transfer(q_bytes).0 * depth as u64);
        let t0 = Instant::now();
        let local = execute_on_tib(&self.tibs[node.host], q);
        let exec = Nanos(t0.elapsed().as_nanos() as u64);
        let mut exec_compute = exec;
        let mut merge_compute = Nanos::ZERO;
        let mut wire_bytes = 0u64;
        let mut child_arrivals: Vec<(Nanos, Response)> = Vec::new();
        for child in &node.children {
            let out = self.eval_subtree(child, q, q_bytes, depth + 1);
            wire_bytes += out.wire_bytes + q_bytes as u64 + out.resp_bytes as u64;
            exec_compute += out.exec_compute;
            merge_compute += out.merge_compute;
            child_arrivals.push((out.finish + self.net.transfer(out.resp_bytes), out.response));
        }
        child_arrivals.sort_by_key(|(t, _)| *t);
        let mut merged = local;
        let mut clock = query_arrival + exec;
        for (arrival, resp) in child_arrivals {
            let start = clock.max(arrival);
            let t0 = Instant::now();
            merged.merge(resp);
            let m = Nanos(t0.elapsed().as_nanos() as u64);
            merge_compute += m;
            clock = start + m;
        }
        let resp_bytes = Self::response_frame_bytes(&merged);
        SubtreeOutcome {
            finish: clock,
            response: merged,
            resp_bytes,
            wire_bytes,
            exec_compute,
            merge_compute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_tib::TibRecord;
    use pathdump_topology::{FlowId, Ip, LinkPattern, Path, SwitchId, TimeRange};

    fn tib_with(host: usize, n: usize) -> Tib {
        let mut t = Tib::new();
        for i in 0..n {
            t.insert(TibRecord {
                flow: FlowId::tcp(
                    Ip::new(10, host as u8, 0, 2),
                    1000 + i as u16,
                    Ip::new(10, 99, 0, 2),
                    80,
                ),
                path: Path::new(vec![SwitchId(0), SwitchId(8), SwitchId(4)]),
                stime: Nanos(i as u64),
                etime: Nanos(i as u64 + 10),
                bytes: (host * 1000 + i * 17) as u64,
                pkts: 1,
            });
        }
        t
    }

    fn cluster(n_hosts: usize, records: usize) -> Cluster {
        Cluster::new(
            (0..n_hosts).map(|h| tib_with(h, records)).collect(),
            MgmtNet::default(),
        )
    }

    #[test]
    fn tree_shape_112() {
        let hosts: Vec<usize> = (0..112).collect();
        let roots = build_tree(&hosts, &[7, 4, 4]);
        assert_eq!(roots.len(), 7);
        let total: usize = roots.iter().map(|r| r.size()).sum();
        assert_eq!(total, 112, "every host appears exactly once");
        let max_depth = roots.iter().map(|r| r.depth()).max().unwrap();
        assert_eq!(max_depth, 3, "controller + 3 host levels = 4 levels");
        // Level-2 width: each root has up to 4 children.
        for r in &roots {
            assert!(r.children.len() <= 4);
        }
    }

    #[test]
    fn tree_shape_small() {
        let hosts: Vec<usize> = (0..5).collect();
        let roots = build_tree(&hosts, &[7, 4, 4]);
        assert_eq!(roots.len(), 5, "fewer hosts than fan-out: all roots");
        let hosts: Vec<usize> = (0..10).collect();
        let roots = build_tree(&hosts, &[7, 4, 4]);
        let total: usize = roots.iter().map(|r| r.size()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn tree_handles_empty() {
        assert!(build_tree(&[], &[7, 4, 4]).is_empty());
    }

    #[test]
    fn direct_and_multilevel_agree_on_results() {
        let c = cluster(30, 50);
        let hosts: Vec<usize> = (0..30).collect();
        let queries = [
            Query::FlowSizeDist {
                link: LinkPattern::ANY,
                range: TimeRange::ANY,
                bin_bytes: 1000,
            },
            Query::TopK {
                k: 20,
                range: TimeRange::ANY,
            },
            Query::GetFlows {
                link: LinkPattern::exact(SwitchId(0), SwitchId(8)),
                range: TimeRange::ANY,
            },
            Query::TrafficMatrix {
                range: TimeRange::ANY,
            },
        ];
        for q in &queries {
            let d = c.direct_query(&hosts, q);
            let m = c.multilevel_query(&hosts, q, &[7, 4, 4]);
            // Order-insensitive comparison for list-shaped responses.
            match (&d.response, &m.response) {
                (Response::Flows(a), Response::Flows(b)) => {
                    let mut a = a.clone();
                    let mut b = b.clone();
                    a.sort();
                    b.sort();
                    assert_eq!(a, b);
                }
                (x, y) => assert_eq!(x, y, "query {q:?}"),
            }
            assert!(d.elapsed > Nanos::ZERO);
            assert!(m.elapsed > Nanos::ZERO);
            assert!(d.wire_bytes > 0 && m.wire_bytes > 0);
        }
    }

    #[test]
    fn topk_ties_agree_across_mechanisms() {
        // Deliberately tied flows: the same flow observed on several hosts
        // with different byte totals (so merges see duplicates), plus
        // distinct flows with equal byte totals (so the k-th slot is
        // decided purely by tie-breaking). Direct and multi-level must
        // produce the *exact* same entries, not just order-insensitively.
        let flow = |s: u16| FlowId::tcp(Ip::new(10, 0, 0, 2), s, Ip::new(10, 99, 0, 2), 80);
        let path = Path::new(vec![SwitchId(0), SwitchId(8), SwitchId(4)]);
        let mut tibs: Vec<Tib> = (0..12).map(|_| Tib::new()).collect();
        let mut put = |host: usize, sport: u16, bytes: u64| {
            tibs[host].insert(TibRecord {
                flow: flow(sport),
                path: path.clone(),
                stime: Nanos(1),
                etime: Nanos(10),
                bytes,
                pkts: 1,
            });
        };
        // Flow 2 on three hosts with three different totals (non-adjacent
        // duplicates after a descending sort), flows 5/6 competing for the
        // last slots, and a four-way byte tie at 500 across hosts.
        put(0, 2, 9900);
        put(3, 2, 9700);
        put(7, 2, 9650);
        put(1, 5, 9800);
        put(2, 6, 9600);
        for (host, sport) in [(4, 10), (5, 11), (6, 12), (8, 13)] {
            put(host, sport, 500);
        }
        // Background flows so every host answers something.
        for h in 0..12 {
            put(h, 100 + h as u16, 10 + h as u64);
        }
        let c = Cluster::new(tibs, MgmtNet::default());
        let hosts: Vec<usize> = (0..12).collect();
        for k in [1u32, 2, 3, 4, 5, 6, 8] {
            let q = Query::TopK {
                k,
                range: TimeRange::ANY,
            };
            let d = c.direct_query(&hosts, &q);
            let m = c.multilevel_query(&hosts, &q, &[7, 4, 4]);
            assert_eq!(d.response, m.response, "k={k}");
            let m2 = c.multilevel_query(&hosts, &q, &[3, 2, 2]);
            assert_eq!(d.response, m2.response, "k={k} deep tree");
        }
        // And the top of the merged answer keeps the per-flow max.
        let q = Query::TopK {
            k: 3,
            range: TimeRange::ANY,
        };
        if let Response::TopK { entries, .. } = c.direct_query(&hosts, &q).response {
            assert_eq!(
                entries,
                vec![(9900, flow(2)), (9800, flow(5)), (9600, flow(6))]
            );
        } else {
            panic!("expected TopK response");
        }
    }

    #[test]
    fn topk_tree_reduces_traffic() {
        // With a large k relative to per-host data, the tree discards
        // (n-1)k pairs per interior node; direct ships every host's full
        // top-k to the controller. Tree traffic must not exceed direct by
        // much, and for big responses should be comparable or smaller.
        let c = cluster(60, 400);
        let hosts: Vec<usize> = (0..60).collect();
        let q = Query::TopK {
            k: 200,
            range: TimeRange::ANY,
        };
        let d = c.direct_query(&hosts, &q);
        let m = c.multilevel_query(&hosts, &q, &[7, 4, 4]);
        assert!(
            (m.wire_bytes as f64) < d.wire_bytes as f64 * 1.6,
            "tree {} vs direct {}",
            m.wire_bytes,
            d.wire_bytes
        );
    }

    #[test]
    fn direct_merge_cost_grows_with_hosts() {
        let q = Query::FlowSizeDist {
            link: LinkPattern::ANY,
            range: TimeRange::ANY,
            bin_bytes: 1000,
        };
        let small = cluster(8, 200);
        let large = cluster(64, 200);
        let d_small = small.direct_query(&(0..8).collect::<Vec<_>>(), &q);
        let d_large = large.direct_query(&(0..64).collect::<Vec<_>>(), &q);
        assert!(
            d_large.merge_compute > d_small.merge_compute,
            "controller merge work must grow with host count"
        );
        assert!(d_large.wire_bytes > d_small.wire_bytes);
    }

    #[test]
    fn tree_node_wire_roundtrip() {
        let hosts: Vec<usize> = (0..23).collect();
        for fanouts in [&[7usize, 4, 4][..], &[3, 2, 2], &[1], &[23]] {
            for root in build_tree(&hosts, fanouts) {
                let bytes = pathdump_wire::to_bytes(&root);
                let back: TreeNode = pathdump_wire::from_bytes(&bytes).unwrap();
                assert_eq!(back, root, "fanouts {fanouts:?}");
            }
        }
        // Single leaf.
        let leaf = TreeNode {
            host: 5,
            children: vec![],
        };
        let back: TreeNode = pathdump_wire::from_bytes(&pathdump_wire::to_bytes(&leaf)).unwrap();
        assert_eq!(back, leaf);
    }

    #[test]
    fn tree_node_decode_rejects_malformed() {
        use pathdump_wire::{Encoder, WireError};
        // Zero nodes.
        let mut e = Encoder::new();
        e.put_varint(0);
        assert!(pathdump_wire::from_bytes::<TreeNode>(&e.into_bytes()).is_err());
        // Forward parent reference (node 1 claims parent 2, not yet seen).
        let mut e = Encoder::new();
        e.put_varint(3);
        e.put_varint(0); // host 0, root
        e.put_varint(0);
        e.put_varint(1); // host 1, parent+1 = 3 → forward
        e.put_varint(3);
        e.put_varint(2);
        e.put_varint(1);
        assert_eq!(
            pathdump_wire::from_bytes::<TreeNode>(&e.into_bytes()),
            Err(WireError::InvalidTag(3))
        );
        // Second root (parent+1 == 0 past index 0).
        let mut e = Encoder::new();
        e.put_varint(2);
        e.put_varint(0);
        e.put_varint(0);
        e.put_varint(1);
        e.put_varint(0);
        assert_eq!(
            pathdump_wire::from_bytes::<TreeNode>(&e.into_bytes()),
            Err(WireError::InvalidTag(0))
        );
    }

    #[test]
    fn mgmt_net_transfer_math() {
        let net = MgmtNet {
            one_way_latency: Nanos(1000),
            bandwidth_bps: 1_000_000_000,
        };
        // 125 bytes at 1 Gb/s = 1 us + 1 us latency.
        assert_eq!(net.transfer(125), Nanos(2000));
    }
}
