//! The per-host PathDump agent (§2.2, §3.2).
//!
//! On every arriving packet the agent extracts the trajectory headers,
//! updates the per-path flow record in trajectory memory, and strips the
//! headers before the packet would reach the upper stack. FIN/RST or the
//! idle timeout evicts records; the trajectory-construction step (cache +
//! reconstructor) turns link IDs into full paths and writes TIB records.
//! Installed invariants (path conformance, §2.3/§4.1) are checked the
//! moment a new path appears, raising alarms in real time.
//!
//! This module is the single-threaded reference; the [`crate::sharded`]
//! module layers a per-core flow-sharded ingest mode on top of it
//! (N workers, one [`TrajectoryMemory`] shard each, ordered event replay
//! into this agent's construct/alarm/TIB half) that stays bit-identical
//! to calling [`HostAgent::on_packet`] per packet.

use crate::alarm::{Alarm, Reason};
use crate::query::{Query, Response};
use crate::standing::{StandingEvent, StandingQuery, StandingQueryEngine, WatchId};
use pathdump_cherrypick::{
    CacheKey, DecodeMemo, FatTreeReconstructor, ReconstructError, TrajectoryCache, Vl2Reconstructor,
};
use pathdump_simnet::{Packet, TcpFlags};
use pathdump_tib::{MemKey, PendingRecord, Tib, TibRead, TibRecord, TieredTib, TrajectoryMemory};
use pathdump_topology::{HostId, LinkPattern, Nanos, Path, SwitchId, Topology};
use pathdump_verifier::IntentModel;
use std::sync::Arc;

/// The reconstruction backend: which structured topology the fabric runs.
#[derive(Clone, Debug)]
pub enum Fabric {
    /// K-ary fat-tree.
    FatTree(FatTreeReconstructor),
    /// VL2.
    Vl2(Vl2Reconstructor),
}

impl Fabric {
    /// The underlying static topology (the agent's "ground truth", §2.2).
    pub fn topology(&self) -> &Topology {
        use pathdump_topology::UpDownRouting;
        match self {
            Fabric::FatTree(r) => r.fattree().topology(),
            Fabric::Vl2(r) => r.vl2().topology(),
        }
    }

    /// Reconstructs a delivered packet's path from its samples.
    pub fn reconstruct(
        &self,
        src: HostId,
        dst: HostId,
        dscp_sample: Option<u8>,
        tags: &[u16],
    ) -> Result<Path, ReconstructError> {
        let mut headers = pathdump_simnet::TagHeaders {
            tags: tags.to_vec(),
            dscp: 0,
        };
        if let Some(s) = dscp_sample {
            headers.set_dscp_sample(s);
        }
        match self {
            Fabric::FatTree(r) => r.reconstruct(src, dst, &headers),
            Fabric::Vl2(r) => r.reconstruct(src, dst, &headers),
        }
    }

    /// True when decoding this sample shape runs the µs-scale
    /// candidate-walk search — the shapes worth routing through a
    /// [`DecodeMemo`] (closed-form decode is cheaper than a memo probe).
    pub fn decode_uses_search(&self, dscp_sample: Option<u8>, tags: &[u16]) -> bool {
        match self {
            Fabric::FatTree(r) => r.decode_uses_search(dscp_sample, tags),
            Fabric::Vl2(r) => r.decode_uses_search(dscp_sample, tags),
        }
    }

    /// Memoized [`reconstruct`](Self::reconstruct): decodes through a
    /// [`DecodeMemo`], reusing the precomputed walk for a previously seen
    /// (ToR pair, sample) shape. Hits allocate nothing and hand the path
    /// back by reference.
    pub fn reconstruct_memo<'m>(
        &self,
        memo: &'m mut DecodeMemo,
        src: HostId,
        dst: HostId,
        dscp_sample: Option<u8>,
        tags: &[u16],
    ) -> Result<&'m Path, ReconstructError> {
        match self {
            Fabric::FatTree(r) => r.reconstruct_memo(memo, src, dst, dscp_sample, tags),
            Fabric::Vl2(r) => r.reconstruct_memo(memo, src, dst, dscp_sample, tags),
        }
    }
}

/// A path-conformance invariant installed on an agent (§2.3: "path length
/// no more than 6, or packets must avoid switchID").
#[derive(Clone, Debug, Default)]
pub struct Invariant {
    /// Maximum allowed hop count (paper counting; `None` = unlimited).
    pub max_hops: Option<usize>,
    /// Switches packets must avoid.
    pub forbidden: Vec<SwitchId>,
    /// Restrict to one flow (`None` = all flows).
    pub flow_filter: Option<pathdump_topology::FlowId>,
    /// Statically verified intent: the observed trajectory must be one of
    /// the intended paths for its (src ToR, dst ToR) pair. Catches
    /// misrouting that drops nothing (shared across agents, hence the
    /// `Arc`).
    pub intent: Option<Arc<IntentModel>>,
}

impl Invariant {
    /// Returns true if `path` violates this invariant for `flow`. The
    /// topology maps the flow's endpoint IPs to their ToRs for the intent
    /// check.
    pub fn violated(&self, topo: &Topology, flow: &pathdump_topology::FlowId, path: &Path) -> bool {
        if let Some(f) = &self.flow_filter {
            if f != flow {
                return false;
            }
        }
        if let Some(max) = self.max_hops {
            if path.num_hops() > max {
                return true;
            }
        }
        if let Some(im) = &self.intent {
            match Self::endpoint_tors(topo, flow) {
                // A trajectory whose endpoints the intent model cannot even
                // place is by definition outside the intended path set.
                None => return true,
                Some((st, dt)) => {
                    if !im.contains(st, dt, path) {
                        return true;
                    }
                }
            }
        }
        self.forbidden.iter().any(|sw| path.contains(*sw))
    }

    /// Maps a flow's endpoint IPs to their ToR switches.
    fn endpoint_tors(
        topo: &Topology,
        flow: &pathdump_topology::FlowId,
    ) -> Option<(SwitchId, SwitchId)> {
        let s = topo.host_by_ip(flow.src_ip)?;
        let d = topo.host_by_ip(flow.dst_ip)?;
        Some((topo.host(s).tor, topo.host(d).tor))
    }
}

/// Agent configuration.
#[derive(Clone, Copy, Debug)]
pub struct AgentConfig {
    /// Trajectory-memory idle eviction timeout (paper: 5 s).
    pub idle_timeout: Nanos,
    /// Trajectory-cache capacity (entries).
    pub cache_capacity: usize,
    /// Raise [`Reason::InfeasiblePath`] alarms on reconstruction failures.
    pub alarm_on_infeasible: bool,
    /// Identical-alarm suppression epoch: a (flow, reason) pair that
    /// already alarmed within this span is not re-raised (a flow that
    /// keeps tripping the same invariant — e.g. re-seen after a FIN
    /// eviction, or reconstruction failing again at finalize — would
    /// otherwise spam an identical alarm every batch, breaking the
    /// standing engine's once-per-transition contract end-to-end).
    pub alarm_epoch: Nanos,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            idle_timeout: Nanos::from_secs(5),
            cache_capacity: 4096,
            alarm_on_infeasible: true,
            alarm_epoch: Nanos::from_secs(5),
        }
    }
}

/// The per-host agent state.
#[derive(Debug)]
pub struct HostAgent {
    host: HostId,
    cfg: AgentConfig,
    /// Active per-path flow records.
    pub memory: TrajectoryMemory,
    /// Trajectory cache (srcIP + link IDs → path).
    pub cache: TrajectoryCache,
    /// Memoized decode shared below the cache: (ToR pair, sample shape)
    /// → precomputed walk, so cache misses from different source hosts in
    /// one rack still decode once.
    pub memo: DecodeMemo,
    /// The queryable store: tiered (head + sealed segments, optional WAL
    /// and auto-seal threshold — configure via this field directly).
    pub tib: TieredTib,
    invariants: Vec<Invariant>,
    alarms: Vec<Alarm>,
    /// Standing queries evaluated incrementally per finalized TIB record.
    standing: StandingQueryEngine,
    /// Raise/clear flips from the standing engine (raises also land on
    /// the alarm bus; this keeps the clears for operators).
    standing_events: Vec<StandingEvent>,
    /// Last raise time per (flow, reason code): the identical-alarm
    /// suppression epoch (see [`AgentConfig::alarm_epoch`]).
    raised_epochs: std::collections::HashMap<(pathdump_topology::FlowId, u8), Nanos>,
    /// Reconstruction failures (infeasible trajectories seen).
    pub recon_failures: u64,
    /// Packets observed.
    pub packets_seen: u64,
    /// Reusable per-packet record key: the ingest path probes the
    /// trajectory memory with it borrowed, so steady-state packets (known
    /// flow-path) allocate nothing.
    scratch: MemKey,
    /// Reusable cache probe key, for the same reason.
    cache_scratch: CacheKey,
}

impl HostAgent {
    /// Creates an agent for `host`.
    pub fn new(host: HostId, cfg: AgentConfig) -> Self {
        HostAgent {
            host,
            cfg,
            memory: TrajectoryMemory::new(cfg.idle_timeout),
            cache: TrajectoryCache::new(cfg.cache_capacity),
            memo: DecodeMemo::default(),
            tib: TieredTib::new(),
            invariants: Vec::new(),
            alarms: Vec::new(),
            standing: StandingQueryEngine::new(host),
            standing_events: Vec::new(),
            raised_epochs: std::collections::HashMap::new(),
            recon_failures: 0,
            packets_seen: 0,
            scratch: MemKey {
                flow: pathdump_topology::FlowId::tcp(
                    pathdump_topology::Ip(0),
                    0,
                    pathdump_topology::Ip(0),
                    0,
                ),
                dscp_sample: None,
                tags: Vec::with_capacity(4),
            },
            cache_scratch: CacheKey {
                src_ip: pathdump_topology::Ip(0),
                dscp_sample: None,
                tags: Vec::with_capacity(4),
            },
        }
    }

    /// The host this agent runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Installs a path-conformance invariant checked per new path.
    pub fn install_invariant(&mut self, inv: Invariant) {
        self.invariants.push(inv);
    }

    /// Removes all invariants.
    pub fn clear_invariants(&mut self) {
        self.invariants.clear();
    }

    /// Drains raised alarms.
    pub fn drain_alarms(&mut self) -> Vec<Alarm> {
        std::mem::take(&mut self.alarms)
    }

    /// Registers a standing query evaluated incrementally as records are
    /// finalized into the TIB. A predicate already true at registration
    /// raises immediately; later flips raise once per transition (the
    /// engine's hysteresis contract).
    pub fn watch(&mut self, q: StandingQuery, now: Nanos) -> WatchId {
        let id = self.standing.watch(&self.tib, q, now);
        self.drain_standing_flips();
        id
    }

    /// Removes a standing query. Returns false when the id is unknown.
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        self.standing.unwatch(id)
    }

    /// The standing-query engine (watch states, event-time clock).
    pub fn standing(&self) -> &StandingQueryEngine {
        &self.standing
    }

    /// Drains standing raise/clear flip events (raises were also pushed
    /// onto the alarm bus as they happened).
    pub fn drain_standing_events(&mut self) -> Vec<StandingEvent> {
        std::mem::take(&mut self.standing_events)
    }

    /// Moves fresh engine flips into the event log, forwarding raises to
    /// the alarm bus. Standing raises bypass the (flow, reason) epoch —
    /// the engine already dedups per transition.
    fn drain_standing_flips(&mut self) {
        for ev in self.standing.drain_events() {
            if ev.raised {
                self.alarms.push(ev.alarm.clone());
            }
            self.standing_events.push(ev);
        }
    }

    /// Pushes an alarm unless an identical (flow, reason) alarm was
    /// already raised within the suppression epoch. Purely a function of
    /// the alarm stream, so the sharded agent's ordered replay dedups
    /// bit-identically.
    fn raise(&mut self, alarm: Alarm) {
        let key = (alarm.flow, alarm.reason.code());
        let now = alarm.at;
        if let Some(&last) = self.raised_epochs.get(&key) {
            if now.saturating_sub(last) < self.cfg.alarm_epoch {
                return;
            }
        }
        self.raised_epochs.insert(key, now);
        self.alarms.push(alarm);
    }

    /// Processes one arriving packet (the OVS receive hook of Figure 2).
    /// Steady-state packets (live flow-path record) allocate nothing: the
    /// record key is probed borrowed and cloned into the memory only on
    /// first sight of the (flow, path) pair.
    pub fn on_packet(&mut self, fabric: &Fabric, pkt: &Packet, now: Nanos) {
        self.packets_seen += 1;
        self.scratch.flow = pkt.flow;
        self.scratch.dscp_sample = pkt.headers.dscp_sample();
        self.scratch.tags.clear();
        self.scratch.tags.extend_from_slice(&pkt.headers.tags);
        let is_new_path = self
            .memory
            .update_borrowed(&self.scratch, pkt.wire_size(), now);

        // Real-time invariant checks on first sight of a (flow, path) pair.
        if is_new_path && !self.invariants.is_empty() {
            let key = self.scratch.clone(); // cold path: once per flow-path
            self.on_new_path(fabric, &key, now);
        }

        if pkt.flags.contains(TcpFlags::FIN) || pkt.flags.contains(TcpFlags::RST) {
            let evicted = self.memory.evict_flow(&pkt.flow, now);
            self.finalize_batch(fabric, evicted, now);
        }
    }

    /// Periodic tick: idle evictions (the NetFlow-style 5-second scan).
    pub fn tick(&mut self, fabric: &Fabric, now: Nanos) {
        let evicted = self.memory.evict_idle(now);
        self.finalize_batch(fabric, evicted, now);
    }

    /// Flushes everything from trajectory memory into the TIB.
    pub fn flush(&mut self, fabric: &Fabric, now: Nanos) {
        let evicted = self.memory.flush(now);
        self.finalize_batch(fabric, evicted, now);
    }

    /// Invariant checks for a record seen for the first time (the
    /// real-time half of §2.3). Shared verbatim between the inline
    /// per-packet path above and the sharded agent's ordered replay, so
    /// both produce the same alarms from the same construct sequence.
    pub(crate) fn on_new_path(&mut self, fabric: &Fabric, key: &MemKey, now: Nanos) {
        let flow = key.flow;
        let topo = fabric.topology();
        match self.construct(fabric, key) {
            Ok(path) => {
                let violations: Vec<&Invariant> = self
                    .invariants
                    .iter()
                    .filter(|inv| inv.violated(topo, &flow, &path))
                    .collect();
                if !violations.is_empty() {
                    // When an intent-derived invariant fired, attach the
                    // nearest intended path after the observed one so
                    // the alarm shows where the trajectory diverged.
                    let nearest = violations.iter().find_map(|inv| {
                        let im = inv.intent.as_ref()?;
                        let (st, dt) = Invariant::endpoint_tors(topo, &flow)?;
                        im.nearest_intended(st, dt, &path)
                    });
                    let mut paths = vec![path];
                    if let Some(n) = nearest {
                        if paths[0] != n {
                            paths.push(n);
                        }
                    }
                    self.raise(Alarm {
                        flow,
                        reason: Reason::PcFail,
                        paths,
                        host: self.host,
                        at: now,
                    });
                }
            }
            Err(_) => self.note_infeasible(flow, now),
        }
    }

    /// True when at least one invariant is installed (first-sight records
    /// only run trajectory construction in that case).
    pub(crate) fn has_invariants(&self) -> bool {
        !self.invariants.is_empty()
    }

    pub(crate) fn finalize_batch(
        &mut self,
        fabric: &Fabric,
        batch: Vec<PendingRecord>,
        now: Nanos,
    ) {
        for rec in batch {
            self.finalize(fabric, rec, now);
        }
    }

    /// Trajectory construction for one evicted record (Figure 2).
    fn finalize(&mut self, fabric: &Fabric, rec: PendingRecord, now: Nanos) {
        let key = MemKey {
            flow: rec.flow,
            dscp_sample: rec.dscp_sample,
            tags: rec.tags.clone(),
        };
        match self.construct(fabric, &key) {
            Ok(path) => {
                let record = TibRecord {
                    flow: rec.flow,
                    path,
                    stime: rec.stime,
                    etime: rec.etime,
                    bytes: rec.bytes,
                    pkts: rec.pkts,
                };
                // Incremental standing-query step over the record that
                // just landed (skipped entirely with no watches). The
                // record is cloned *before* insert: the tiered store may
                // seal on insert, so "last record of the head" is not a
                // stable way to re-find it — this guarantees the engine
                // observes every record exactly once across seal
                // boundaries.
                let feed = (!self.standing.is_empty()).then(|| record.clone());
                self.tib.insert(record);
                if let Some(r) = feed {
                    self.standing.on_record(&self.tib, &r, now);
                    self.drain_standing_flips();
                }
            }
            Err(_) => self.note_infeasible(rec.flow, now),
        }
    }

    /// Trajectory construction: trajectory-cache probe (srcIP + link IDs,
    /// Figure 2), then decode on a miss — through the memo for shapes
    /// that run the µs-scale candidate-walk search (punted stacks, shared
    /// across all hosts of the source rack), directly for closed-form
    /// shapes where the case analysis is cheaper than any memo probe.
    /// Cache probes reuse a scratch key; paths are cloned only to return
    /// an owned record.
    fn construct(&mut self, fabric: &Fabric, key: &MemKey) -> Result<Path, ReconstructError> {
        let topo = fabric.topology();
        let src = topo
            .host_by_ip(key.flow.src_ip)
            .ok_or(ReconstructError::Inconsistent("unknown source IP"))?;
        self.cache_scratch.src_ip = key.flow.src_ip;
        self.cache_scratch.dscp_sample = key.dscp_sample;
        self.cache_scratch.tags.clear();
        self.cache_scratch.tags.extend_from_slice(&key.tags);
        if let Some(p) = self.cache.probe(&self.cache_scratch) {
            return Ok(p.clone());
        }
        let path = if fabric.decode_uses_search(key.dscp_sample, &key.tags) {
            fabric
                .reconstruct_memo(&mut self.memo, src, self.host, key.dscp_sample, &key.tags)?
                .clone()
        } else {
            fabric.reconstruct(src, self.host, key.dscp_sample, &key.tags)?
        };
        self.cache.insert(self.cache_scratch.clone(), path.clone());
        Ok(path)
    }

    fn note_infeasible(&mut self, flow: pathdump_topology::FlowId, now: Nanos) {
        self.recon_failures += 1;
        if self.cfg.alarm_on_infeasible {
            self.raise(Alarm {
                flow,
                reason: Reason::InfeasiblePath,
                paths: Vec::new(),
                host: self.host,
                at: now,
            });
        }
    }

    /// Executes a TIB query locally; `include_live` additionally folds in
    /// the not-yet-exported trajectory-memory records (§3.2: alarm-driven
    /// debugging "trigger[s] the access to the memory for debugging at even
    /// finer-grained time scales").
    ///
    /// `GetPoorTcp` is answered empty here — that signal lives in the
    /// transport engine and is supplied by the world wrapper.
    pub fn execute(&mut self, fabric: &Fabric, q: &Query, include_live: bool) -> Response {
        let mut resp = execute_on_tib(&self.tib, q);
        if include_live {
            let live = self.live_tib(fabric);
            resp.merge(execute_on_tib(&live, q));
        }
        resp
    }

    /// Builds a transient TIB view of the live trajectory memory. Records
    /// are inserted in the canonical eviction order so the view (and the
    /// insertion-order-sensitive queries on it) is deterministic — the
    /// sharded agent's merged live view lines up with this bit-for-bit.
    fn live_tib(&mut self, fabric: &Fabric) -> Tib {
        let keys: Vec<(PendingRecord, MemKey)> = self
            .memory
            .live_keys()
            .filter_map(|k| self.memory.snapshot(&k).map(|s| (s, k)))
            .collect();
        self.live_tib_from(fabric, keys)
    }

    /// Sorts live-record snapshots into canonical order and constructs a
    /// transient TIB from them. The sharded agent feeds the union of its
    /// shards' snapshots through the same path, so both live views insert
    /// the same records in the same order.
    pub(crate) fn live_tib_from(
        &mut self,
        fabric: &Fabric,
        mut keys: Vec<(PendingRecord, MemKey)>,
    ) -> Tib {
        keys.sort_unstable_by(|a, b| pathdump_tib::canonical_order(&a.0, &b.0));
        let mut tib = Tib::new();
        for (snap, key) in keys {
            if let Ok(path) = self.construct(fabric, &key) {
                tib.insert(TibRecord {
                    flow: snap.flow,
                    path,
                    stime: snap.stime,
                    etime: snap.etime,
                    bytes: snap.bytes,
                    pkts: snap.pkts,
                });
            }
        }
        tib
    }
}

/// Executes a query against one TIB (the pure storage-level evaluator,
/// shared by agents and by the Figure 11/12 cluster harness).
///
/// Aggregation is pushed down into the TIB's incremental aggregates:
/// `TopK`, `FlowSizeDist`, `TrafficMatrix` and `HeavyHitters` over an
/// unrestricted time range are served from the running per-flow totals,
/// and range-restricted variants from the bucketed time index — no
/// full record scans on this path.
pub fn execute_on_tib<T: TibRead + ?Sized>(tib: &T, q: &Query) -> Response {
    match q {
        Query::GetFlows { link, range } => Response::Flows(tib.get_flows(*link, *range)),
        Query::GetPaths { flow, link, range } => {
            Response::Paths(tib.get_paths(*flow, *link, *range))
        }
        Query::GetCount { flow, path, range } => {
            let (bytes, pkts) = tib.get_count(*flow, path.as_ref(), *range);
            Response::Count { bytes, pkts }
        }
        Query::GetDuration { flow, path, range } => {
            Response::Duration(tib.get_duration(*flow, path.as_ref(), *range))
        }
        Query::GetPoorTcp { .. } => Response::Flows(Vec::new()),
        Query::FlowSizeDist {
            link,
            range,
            bin_bytes,
        } => {
            let counts = tib.link_flow_counts(*link, *range);
            let bin = (*bin_bytes).max(1);
            let mut bins: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
            for (_, (bytes, _)) in counts {
                *bins.entry(bytes / bin).or_insert(0) += 1;
            }
            let mut v: Vec<(u64, u64)> = bins.into_iter().collect();
            v.sort_unstable();
            Response::Hist {
                bin_bytes: *bin_bytes,
                bins: v,
            }
        }
        Query::TopK { k, range } => Response::TopK {
            k: *k,
            entries: tib.top_k_flows(*k as usize, *range),
        },
        Query::TrafficMatrix { range } => {
            let counts = tib.link_flow_counts(LinkPattern::ANY, *range);
            let mut map: std::collections::HashMap<
                (pathdump_topology::Ip, pathdump_topology::Ip),
                u64,
            > = std::collections::HashMap::new();
            for (flow, (bytes, _)) in counts {
                *map.entry((flow.src_ip, flow.dst_ip)).or_insert(0) += bytes;
            }
            let mut v: Vec<_> = map.into_iter().collect();
            v.sort_unstable();
            Response::Matrix(v)
        }
        Query::HeavyHitters { min_bytes, range } => {
            let counts = tib.link_flow_counts(LinkPattern::ANY, *range);
            let mut flows: Vec<(u64, pathdump_topology::FlowId)> = counts
                .into_iter()
                .filter(|(_, (b, _))| b >= min_bytes)
                .map(|(f, (b, _))| (b, f))
                .collect();
            flows.sort_by(|a, b| b.cmp(a));
            Response::Flows(flows.into_iter().map(|(_, f)| f).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_cherrypick::FatTreeCherryPick;
    use pathdump_simnet::TagPolicy;
    use pathdump_topology::TimeRange;
    use pathdump_topology::{FatTree, FatTreeParams, FlowId, PortNo, UpDownRouting};

    fn fabric() -> (FatTree, Fabric, FatTreeCherryPick) {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let f = Fabric::FatTree(FatTreeReconstructor::new(ft.clone()));
        let p = FatTreeCherryPick::new(ft.clone());
        (ft, f, p)
    }

    /// Builds the packet a given shortest path would deliver.
    fn pkt_on_path(
        ft: &FatTree,
        policy: &FatTreeCherryPick,
        flow: FlowId,
        path: &Path,
        bytes: u32,
        fin: bool,
    ) -> Packet {
        let mut pkt = Packet::data(1, flow, 0, bytes, Nanos::ZERO);
        if fin {
            pkt.flags = TcpFlags::FIN;
        }
        // Apply the tag policy along the path exactly like the dataplane.
        let topo = ft.topology();
        for (i, &sw) in path.0.iter().enumerate() {
            let in_port = if i == 0 {
                topo.switch(sw)
                    .ports
                    .iter()
                    .position(|p| matches!(p, pathdump_topology::Peer::Host(_)))
                    .map(|p| PortNo(p as u8))
            } else {
                topo.switch(sw).port_towards(path.0[i - 1])
            };
            policy.on_forward(sw, in_port, PortNo(0), &mut pkt.headers);
        }
        pkt
    }

    fn flow_of(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
        let t = ft.topology();
        FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
    }

    #[test]
    fn packet_to_tib_lifecycle() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let flow = flow_of(&ft, src, dst, 1000);
        let path = ft.all_paths(src, dst).remove(0);
        // Two packets, then FIN: record must land in the TIB with counts.
        for fin in [false, false, true] {
            let pkt = pkt_on_path(&ft, &policy, flow, &path, 1000, fin);
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        }
        assert_eq!(agent.tib.len(), 1, "FIN evicts straight to the TIB");
        let rec = &agent.tib.records_vec()[0];
        assert_eq!(rec.path, path);
        assert_eq!(rec.pkts, 3);
        assert!(agent.memory.is_empty());
        assert_eq!(agent.recon_failures, 0);
    }

    #[test]
    fn idle_tick_evicts() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(0, 1, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let flow = flow_of(&ft, src, dst, 1001);
        let path = ft.all_paths(src, dst).remove(0);
        let pkt = pkt_on_path(&ft, &policy, flow, &path, 500, false);
        agent.on_packet(&fabric, &pkt, Nanos::from_secs(1));
        agent.tick(&fabric, Nanos::from_secs(2));
        assert_eq!(agent.tib.len(), 0, "not idle long enough");
        agent.tick(&fabric, Nanos::from_secs(7));
        assert_eq!(agent.tib.len(), 1, "5s idle evicts");
    }

    #[test]
    fn per_path_records_under_spraying() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let flow = flow_of(&ft, src, dst, 1002);
        for path in ft.all_paths(src, dst) {
            let pkt = pkt_on_path(&ft, &policy, flow, &path, 700, false);
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(5));
        }
        agent.flush(&fabric, Nanos::from_secs(1));
        assert_eq!(agent.tib.len(), 4, "one record per distinct path");
        let paths = agent.tib.get_paths(flow, LinkPattern::ANY, TimeRange::ANY);
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn invariant_raises_pc_fail_in_real_time() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        // Forbid one specific core switch.
        let forbidden = ft.core(0);
        agent.install_invariant(Invariant {
            forbidden: vec![forbidden],
            ..Invariant::default()
        });
        let flow = flow_of(&ft, src, dst, 1003);
        let via_core0 = ft
            .all_paths(src, dst)
            .into_iter()
            .find(|p| p.contains(forbidden))
            .unwrap();
        let pkt = pkt_on_path(&ft, &policy, flow, &via_core0, 400, false);
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(9));
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1, "violation alarmed before eviction");
        assert_eq!(alarms[0].reason, Reason::PcFail);
        assert_eq!(alarms[0].paths, vec![via_core0]);
        // A conforming path raises nothing.
        let ok_path = ft
            .all_paths(src, dst)
            .into_iter()
            .find(|p| !p.contains(forbidden))
            .unwrap();
        let pkt = pkt_on_path(
            &ft,
            &policy,
            flow_of(&ft, src, dst, 1004),
            &ok_path,
            400,
            false,
        );
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(10));
        assert!(agent.drain_alarms().is_empty());
    }

    #[test]
    fn max_hops_invariant() {
        let (ft, _, _) = fabric();
        let topo = ft.topology();
        let inv = Invariant {
            max_hops: Some(6),
            ..Invariant::default()
        };
        let f = FlowId::tcp(pathdump_topology::Ip(1), 1, pathdump_topology::Ip(2), 2);
        let short = Path::new((0..5).map(SwitchId).collect());
        let long = Path::new((0..7).map(SwitchId).collect());
        assert!(!inv.violated(topo, &f, &short), "6 hops allowed");
        assert!(inv.violated(topo, &f, &long), "8 hops rejected");
    }

    #[test]
    fn intent_invariant_attaches_nearest_intended_path() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let im = Arc::new(IntentModel::from_routing(&ft).expect("healthy k=4"));
        agent.install_invariant(Invariant {
            intent: Some(im.clone()),
            ..Invariant::default()
        });
        // An intended path raises nothing.
        let good = ft.all_paths(src, dst).remove(0);
        let pkt = pkt_on_path(
            &ft,
            &policy,
            flow_of(&ft, src, dst, 2001),
            &good,
            400,
            false,
        );
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        assert!(agent.drain_alarms().is_empty());
        // A 7-switch bounce walk is outside the intent set: PC_FAIL with
        // the observed path first and the nearest intended path second.
        let detour = Path::new(vec![
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
            ft.tor(1, 1),
            ft.agg(1, 1),
            ft.tor(1, 0),
        ]);
        let flow = flow_of(&ft, src, dst, 2002);
        let pkt = pkt_on_path(&ft, &policy, flow, &detour, 400, false);
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(2));
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].reason, Reason::PcFail);
        assert_eq!(alarms[0].paths.len(), 2, "observed + nearest intended");
        assert_eq!(alarms[0].paths[0], detour);
        let (st, dt) = (ft.tor(0, 0), ft.tor(1, 0));
        assert!(im.contains(st, dt, &alarms[0].paths[1]));
        // Nearest = shares the longest prefix with the observed detour.
        assert_eq!(
            &alarms[0].paths[1].0[..4],
            &[ft.tor(0, 0), ft.agg(0, 0), ft.core(0), ft.agg(1, 0)]
        );
    }

    #[test]
    fn corrupted_tags_raise_infeasible() {
        let (ft, fabric, _) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        agent.install_invariant(Invariant::default());
        let flow = flow_of(&ft, src, dst, 1005);
        let mut pkt = Packet::data(1, flow, 0, 100, Nanos::ZERO);
        // A lying switch: class-A tag for the wrong source ToR position.
        pkt.headers.push_tag(3); // tor_pos 1, agg_pos 1 for k=4
        pkt.headers.push_tag(4); // class B core 0
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        assert_eq!(agent.recon_failures, 1);
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].reason, Reason::InfeasiblePath);
    }

    #[test]
    fn live_memory_visible_to_queries() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(2, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let flow = flow_of(&ft, src, dst, 1006);
        let path = ft.all_paths(src, dst).remove(0);
        let pkt = pkt_on_path(&ft, &policy, flow, &path, 900, false);
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        // Not yet exported: TIB-only query sees nothing.
        let q = Query::GetPaths {
            flow,
            link: LinkPattern::ANY,
            range: TimeRange::ANY,
        };
        assert_eq!(agent.execute(&fabric, &q, false), Response::Paths(vec![]));
        // Live view sees the path immediately.
        assert_eq!(
            agent.execute(&fabric, &q, true),
            Response::Paths(vec![path])
        );
    }

    #[test]
    fn alarm_epoch_dedup_suppresses_retriggered_invariant() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let forbidden = ft.core(0);
        agent.install_invariant(Invariant {
            forbidden: vec![forbidden],
            ..Invariant::default()
        });
        let flow = flow_of(&ft, src, dst, 5000);
        let bad = ft
            .all_paths(src, dst)
            .into_iter()
            .find(|p| p.contains(forbidden))
            .unwrap();
        // Each FIN packet is a fresh record (the previous one was evicted),
        // so every arrival re-trips the invariant. Without the per-(flow,
        // reason) epoch, every batch re-raises the same violation.
        for t in [1u64, 2, 3] {
            let pkt = pkt_on_path(&ft, &policy, flow, &bad, 300, true);
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(t));
        }
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1, "re-trips within the epoch are deduped");
        assert_eq!(alarms[0].reason, Reason::PcFail);
        assert_eq!(alarms[0].at, Nanos::from_millis(1));
        // Past the epoch (default 5 s) the same violation is news again.
        let pkt = pkt_on_path(&ft, &policy, flow, &bad, 300, true);
        agent.on_packet(&fabric, &pkt, Nanos::from_secs(6));
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1, "epoch expiry re-raises");
        assert_eq!(alarms[0].at, Nanos::from_secs(6));
        // Other flows are keyed independently, even inside the epoch.
        let other = flow_of(&ft, src, dst, 5001);
        let pkt = pkt_on_path(&ft, &policy, other, &bad, 300, true);
        agent.on_packet(&fabric, &pkt, Nanos::from_secs(6));
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1, "distinct flow raises its own alarm");
        assert_eq!(alarms[0].flow, other);
    }

    #[test]
    fn alarm_epoch_dedup_is_per_reason() {
        let (ft, fabric, _) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        agent.install_invariant(Invariant::default());
        let flow = flow_of(&ft, src, dst, 5002);
        // Two corrupted-tag packets for the same flow, distinct tag sets so
        // each creates a fresh memory record: one INFEASIBLE_PATH alarm.
        for tags in [[3u16, 4], [3, 5]] {
            let mut pkt = Packet::data(1, flow, 0, 100, Nanos::ZERO);
            pkt.headers.push_tag(tags[0]);
            pkt.headers.push_tag(tags[1]);
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        }
        assert_eq!(agent.recon_failures, 2, "both failures are counted");
        let alarms = agent.drain_alarms();
        assert_eq!(alarms.len(), 1, "same (flow, reason) within the epoch");
        assert_eq!(alarms[0].reason, Reason::InfeasiblePath);
    }

    #[test]
    fn memo_amortizes_punted_walks_across_rack_sources() {
        let (ft, fabric, policy) = fabric();
        // A 7-switch bounce walk: 3 samples, decoded via the candidate-
        // walk search — exactly the shape the memo exists for.
        let walk = vec![
            ft.tor(0, 0),
            ft.agg(0, 0),
            ft.core(0),
            ft.agg(1, 0),
            ft.tor(1, 0),
            ft.agg(1, 1),
            ft.tor(1, 1),
        ];
        let dst = ft.host(1, 1, 0);
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        // Two different sources in the same rack: distinct srcIPs miss the
        // trajectory cache separately, but share one memoized walk search.
        for (i, src) in [ft.host(0, 0, 0), ft.host(0, 0, 1)].into_iter().enumerate() {
            let flow = flow_of(&ft, src, dst, 3000 + i as u16);
            let pkt = pkt_on_path(&ft, &policy, flow, &Path::new(walk.clone()), 200, true);
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(i as u64));
        }
        assert_eq!(agent.tib.len(), 2, "both punted flows reconstructed");
        assert!(agent.tib.records_vec().iter().all(|r| r.path.0 == walk));
        assert_eq!(agent.cache.stats(), (0, 2), "per-srcIP cache misses");
        assert_eq!(agent.memo.stats(), (1, 1), "one search, one memo hit");
    }

    #[test]
    fn closed_form_decodes_skip_the_memo() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let flow = flow_of(&ft, src, dst, 4000);
        let path = ft.all_paths(src, dst).remove(0);
        let pkt = pkt_on_path(&ft, &policy, flow, &path, 100, true);
        agent.on_packet(&fabric, &pkt, Nanos::from_millis(1));
        assert_eq!(agent.tib.len(), 1);
        assert_eq!(
            agent.memo.stats(),
            (0, 0),
            "≤2-tag shapes decode closed-form, cheaper than a memo probe"
        );
    }

    #[test]
    fn cache_accelerates_repeated_paths() {
        let (ft, fabric, policy) = fabric();
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 1, 1));
        let mut agent = HostAgent::new(dst, AgentConfig::default());
        let path = ft.all_paths(src, dst).remove(0);
        for sport in 0..20 {
            let flow = flow_of(&ft, src, dst, 2000 + sport);
            let mut pkt = pkt_on_path(&ft, &policy, flow, &path, 100, false);
            pkt.flags = TcpFlags::FIN; // immediate eviction/construction
            agent.on_packet(&fabric, &pkt, Nanos::from_millis(sport as u64));
        }
        let (hits, misses) = agent.cache.stats();
        assert_eq!(misses, 1, "same srcIP+tags constructs once");
        assert_eq!(hits, 19);
        assert_eq!(agent.tib.len(), 20);
    }
}
