//! Per-core sharded host-agent ingest.
//!
//! The paper's host agent is a single OVS datapath thread; on a
//! multi-queue NIC the natural scaling move is RSS-style flow sharding:
//! N worker threads, each owning a private [`TrajectoryMemory`] shard,
//! with packets partitioned by a hash of the 5-tuple so every flow's
//! records live in exactly one shard.
//!
//! # Merge semantics (why this is bit-identical to one thread)
//!
//! Everything downstream of the trajectory memory — the trajectory
//! cache, the decode memo, invariant alarms, and the TIB — is kept
//! single-writer and fed by an **ordered replay**:
//!
//! 1. Each packet in an [`ShardedAgent::ingest`] window carries its
//!    global arrival index. Workers update only their own shard and
//!    record two kinds of events: *first sight* of a (flow, path)
//!    record, and the FIN/RST *eviction batch* a packet triggered.
//! 2. After the workers join, events are merged by `(arrival index,
//!    first-sight-before-eviction)` and replayed through the same
//!    private [`HostAgent`] paths the single-threaded agent runs inline
//!    — so cache probes, memo fills, alarms, and TIB inserts happen in
//!    exactly the order a lone thread would have produced them.
//!
//! Per-record counters need no replay at all: updates of one key all
//! happen on one shard in arrival order, and idle eviction / flush /
//! live-view output is defined by [`pathdump_tib::canonical_order`] — a
//! pure function of the record *set* — so concatenating per-shard
//! batches and sorting reproduces the unsharded byte stream. The
//! differential suite in `crates/core/tests/sharded_equivalence.rs`
//! pins all of this against [`HostAgent`] for arbitrary worker counts.

use crate::agent::{execute_on_tib, AgentConfig, Fabric, HostAgent, Invariant};
use crate::alarm::Alarm;
use crate::query::{Query, Response};
use pathdump_simnet::{Packet, TcpFlags};
use pathdump_tib::{MemKey, PendingRecord, TieredTib, TrajectoryMemory};
use pathdump_topology::{FlowId, FnvBuild, HostId, Nanos};
use std::hash::BuildHasher;

/// Stable flow → shard assignment: FNV over the 5-tuple. All packets of
/// a flow (and hence all its per-path records, FIN evictions included)
/// land on one shard.
pub fn shard_of(flow: &FlowId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (FnvBuild::default().hash_one(flow) % shards as u64) as usize
}

/// One replayable thing a worker observed, tagged with the packet's
/// global arrival index. First-sight precedes eviction for the same
/// packet (a flow's first packet can carry FIN), mirroring the inline
/// order in [`HostAgent::on_packet`].
enum Event {
    /// `update_borrowed` created the record: candidate invariant check.
    FirstSight { idx: u32, key: MemKey },
    /// FIN/RST evicted the flow's records (already in canonical order).
    Evicted { idx: u32, batch: Vec<PendingRecord> },
}

impl Event {
    fn order(&self) -> (u32, u8) {
        match self {
            Event::FirstSight { idx, .. } => (*idx, 0),
            Event::Evicted { idx, .. } => (*idx, 1),
        }
    }
}

/// A [`HostAgent`] whose trajectory memory is split into per-worker
/// shards, ingesting packet windows on scoped threads. Construction,
/// queries, alarms and the TIB keep the exact single-threaded behavior
/// (see the module docs for the argument).
#[derive(Debug)]
pub struct ShardedAgent {
    /// The merge half: cache, memo, TIB, invariants and alarms. Its own
    /// trajectory memory stays empty — live records are in `shards`.
    inner: HostAgent,
    shards: Vec<TrajectoryMemory>,
}

impl ShardedAgent {
    /// Creates an agent for `host` with `workers` ingest shards.
    pub fn new(host: HostId, cfg: AgentConfig, workers: usize) -> Self {
        let workers = workers.max(1);
        ShardedAgent {
            inner: HostAgent::new(host, cfg),
            shards: (0..workers)
                .map(|_| TrajectoryMemory::new(cfg.idle_timeout))
                .collect(),
        }
    }

    /// Number of ingest shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The host this agent runs on.
    pub fn host(&self) -> HostId {
        self.inner.host()
    }

    /// Installs a path-conformance invariant checked per new path.
    pub fn install_invariant(&mut self, inv: Invariant) {
        self.inner.install_invariant(inv);
    }

    /// Removes all invariants.
    pub fn clear_invariants(&mut self) {
        self.inner.clear_invariants();
    }

    /// Drains raised alarms.
    pub fn drain_alarms(&mut self) -> Vec<Alarm> {
        self.inner.drain_alarms()
    }

    /// Registers a standing query (see [`HostAgent::watch`]). The
    /// ordered replay funnels every finalized record through the same
    /// engine, so flips stay bit-identical to the single-threaded agent.
    pub fn watch(
        &mut self,
        q: crate::standing::StandingQuery,
        now: Nanos,
    ) -> crate::standing::WatchId {
        self.inner.watch(q, now)
    }

    /// Removes a standing query.
    pub fn unwatch(&mut self, id: crate::standing::WatchId) -> bool {
        self.inner.unwatch(id)
    }

    /// The standing-query engine.
    pub fn standing(&self) -> &crate::standing::StandingQueryEngine {
        self.inner.standing()
    }

    /// Drains standing raise/clear flip events.
    pub fn drain_standing_events(&mut self) -> Vec<crate::standing::StandingEvent> {
        self.inner.drain_standing_events()
    }

    /// The queryable store.
    pub fn tib(&self) -> &TieredTib {
        &self.inner.tib
    }

    /// Mutable store access, for configuring the storage tier (seal
    /// threshold, WAL, eviction) — mirrors `HostAgent`'s public field.
    pub fn tib_mut(&mut self) -> &mut TieredTib {
        &mut self.inner.tib
    }

    /// Trajectory-cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.cache.stats()
    }

    /// Decode-memo (misses, hits).
    pub fn memo_stats(&self) -> (u64, u64) {
        self.inner.memo.stats()
    }

    /// Packets observed across all shards.
    pub fn packets_seen(&self) -> u64 {
        self.inner.packets_seen
    }

    /// Reconstruction failures (infeasible trajectories seen).
    pub fn recon_failures(&self) -> u64 {
        self.inner.recon_failures
    }

    /// Live (not yet exported) per-path flow records across all shards.
    pub fn live_records(&self) -> usize {
        self.shards.iter().map(|m| m.len()).sum()
    }

    /// Ingests one window of arriving packets, sharded across worker
    /// threads, then replays the workers' events in arrival order (see
    /// module docs). Equivalent to calling [`HostAgent::on_packet`] on
    /// each `(packet, now)` in sequence.
    pub fn ingest(&mut self, fabric: &Fabric, pkts: &[(Packet, Nanos)]) {
        if pkts.is_empty() {
            return;
        }
        self.inner.packets_seen += pkts.len() as u64;

        // Partition arrival indices by flow hash.
        let nshards = self.shards.len();
        let mut work: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        for (i, (pkt, _)) in pkts.iter().enumerate() {
            work[shard_of(&pkt.flow, nshards)].push(i as u32);
        }

        // Phase 1: per-shard ingest on scoped threads. Each worker owns
        // one shard exclusively and only reads the packet window.
        let mut events: Vec<Event> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(work.iter())
                .map(|(shard, idxs)| {
                    s.spawn(move || {
                        let mut out: Vec<Event> = Vec::new();
                        let mut scratch = MemKey {
                            flow: pkts[0].0.flow,
                            dscp_sample: None,
                            tags: Vec::with_capacity(4),
                        };
                        for &i in idxs {
                            let (pkt, now) = &pkts[i as usize];
                            scratch.flow = pkt.flow;
                            scratch.dscp_sample = pkt.headers.dscp_sample();
                            scratch.tags.clear();
                            scratch.tags.extend_from_slice(&pkt.headers.tags);
                            if shard.update_borrowed(&scratch, pkt.wire_size(), *now) {
                                out.push(Event::FirstSight {
                                    idx: i,
                                    key: scratch.clone(),
                                });
                            }
                            if pkt.flags.contains(TcpFlags::FIN)
                                || pkt.flags.contains(TcpFlags::RST)
                            {
                                let batch = shard.evict_flow(&pkt.flow, *now);
                                if !batch.is_empty() {
                                    out.push(Event::Evicted { idx: i, batch });
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("ingest worker panicked"))
                .collect()
        });

        // Phase 2: ordered replay through the single-writer merge half.
        // (idx, phase) keys are unique: a packet lives on one shard.
        events.sort_unstable_by_key(Event::order);
        let check = self.inner.has_invariants();
        for ev in events {
            match ev {
                Event::FirstSight { idx, key } => {
                    if check {
                        let now = pkts[idx as usize].1;
                        self.inner.on_new_path(fabric, &key, now);
                    }
                }
                Event::Evicted { idx, batch } => {
                    let now = pkts[idx as usize].1;
                    self.inner.finalize_batch(fabric, batch, now);
                }
            }
        }
    }

    /// Periodic tick: idle-evicts every shard and finalizes the merged
    /// batch in canonical order — the same records, in the same order, a
    /// single unsharded memory's `evict_idle` emits.
    pub fn tick(&mut self, fabric: &Fabric, now: Nanos) {
        let mut batch: Vec<PendingRecord> = Vec::new();
        for shard in &mut self.shards {
            batch.extend(shard.evict_idle(now));
        }
        batch.sort_unstable_by(pathdump_tib::canonical_order);
        self.inner.finalize_batch(fabric, batch, now);
    }

    /// Flushes every shard into the TIB (merged canonical order).
    pub fn flush(&mut self, fabric: &Fabric, now: Nanos) {
        let mut batch: Vec<PendingRecord> = Vec::new();
        for shard in &mut self.shards {
            batch.extend(shard.flush(now));
        }
        batch.sort_unstable_by(pathdump_tib::canonical_order);
        self.inner.finalize_batch(fabric, batch, now);
    }

    /// Executes a TIB query; `include_live` folds in the shards' live
    /// records through the same canonical-order view as [`HostAgent`].
    pub fn execute(&mut self, fabric: &Fabric, q: &Query, include_live: bool) -> Response {
        let mut resp = execute_on_tib(&self.inner.tib, q);
        if include_live {
            let keys: Vec<(PendingRecord, MemKey)> = self
                .shards
                .iter()
                .flat_map(|m| {
                    m.live_keys()
                        .filter_map(|k| m.snapshot(&k).map(|s| (s, k)))
                        .collect::<Vec<_>>()
                })
                .collect();
            let live = self.inner.live_tib_from(fabric, keys);
            resp.merge(execute_on_tib(&live, q));
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_total_and_stable() {
        let flows: Vec<FlowId> = (0..512)
            .map(|i| {
                FlowId::tcp(
                    pathdump_topology::Ip(0x0A00_0000 + i),
                    (1024 + i) as u16,
                    pathdump_topology::Ip(0x0A63_0002),
                    80,
                )
            })
            .collect();
        for n in [1usize, 2, 3, 4, 7, 8] {
            let mut seen = vec![0u32; n];
            for f in &flows {
                let s = shard_of(f, n);
                assert!(s < n);
                assert_eq!(s, shard_of(f, n), "stable per flow");
                seen[s] += 1;
            }
            if n > 1 {
                assert!(
                    seen.iter().all(|&c| c > 0),
                    "512 flows spread over {n} shards: {seen:?}"
                );
            }
        }
    }
}
