//! Serializable queries, responses, and the merge semantics used by both
//! the direct and multi-level aggregation mechanisms (§3.2).
//!
//! Every query and response crosses the management network through the
//! `pathdump-wire` codec, so the Figure 11/12 traffic numbers come from
//! real encoded frames.

use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, TimeRange};
use pathdump_wire::{Decode, Decoder, Encode, Encoder, WireError, WireResult};
use std::collections::HashMap;

/// A query executable on a host agent (the Host API of Table 1 plus the
/// composite traffic-measurement queries of §2.3).
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// `getFlows(linkID, timeRange)`.
    GetFlows {
        /// Link pattern (wildcards allowed).
        link: LinkPattern,
        /// Time window.
        range: TimeRange,
    },
    /// `getPaths(flowID, linkID, timeRange)`.
    GetPaths {
        /// The flow.
        flow: FlowId,
        /// Link pattern.
        link: LinkPattern,
        /// Time window.
        range: TimeRange,
    },
    /// `getCount(Flow, timeRange)`.
    GetCount {
        /// The flow.
        flow: FlowId,
        /// Restrict to one path (the `Flow` pair of §2.1), or all paths.
        path: Option<Path>,
        /// Time window.
        range: TimeRange,
    },
    /// `getDuration(Flow, timeRange)`.
    GetDuration {
        /// The flow.
        flow: FlowId,
        /// Restrict to one path, or all paths.
        path: Option<Path>,
        /// Time window.
        range: TimeRange,
    },
    /// `getPoorTCPFlows(threshold)`.
    GetPoorTcp {
        /// Consecutive-retransmission threshold.
        threshold: u32,
    },
    /// Flow-size distribution over a link: histogram of per-flow byte
    /// totals in `bin_bytes` buckets (the §4.2 / Figure 11 query).
    FlowSizeDist {
        /// Link pattern.
        link: LinkPattern,
        /// Time window.
        range: TimeRange,
        /// Histogram bin width in bytes (the paper uses 10 000).
        bin_bytes: u64,
    },
    /// Top-k flows by bytes (the §2.3 / Figure 12 query).
    TopK {
        /// How many flows.
        k: u32,
        /// Time window.
        range: TimeRange,
    },
    /// Per (srcIP, dstIP) byte totals — the traffic-matrix query.
    TrafficMatrix {
        /// Time window.
        range: TimeRange,
    },
    /// Flows exceeding a byte threshold (heavy hitters).
    HeavyHitters {
        /// Byte threshold.
        min_bytes: u64,
        /// Time window.
        range: TimeRange,
    },
}

/// A response, mergeable across hosts.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Flow list (deduplicated on merge).
    Flows(Vec<FlowId>),
    /// Path list (deduplicated on merge).
    Paths(Vec<Path>),
    /// Byte/packet counters (summed on merge).
    Count {
        /// Bytes.
        bytes: u64,
        /// Packets.
        pkts: u64,
    },
    /// Duration (max on merge).
    Duration(Nanos),
    /// Histogram: bin index → flow count (summed per bin on merge).
    Hist {
        /// Bin width in bytes.
        bin_bytes: u64,
        /// bin → count.
        bins: Vec<(u64, u64)>,
    },
    /// Top-k (merged and re-truncated to `k`; "(n−1)·k key-value pairs are
    /// discarded during aggregation", §5.2).
    TopK {
        /// k.
        k: u32,
        /// (bytes, flow), descending.
        entries: Vec<(u64, FlowId)>,
    },
    /// (srcIP, dstIP) → bytes (summed on merge).
    Matrix(Vec<((Ip, Ip), u64)>),
}

impl Response {
    /// Merges another response of the same variant into `self`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched variants (a protocol error).
    pub fn merge(&mut self, other: Response) {
        match (self, other) {
            // Flows/Paths merge into *canonical sorted order* (sort +
            // dedup), not first-occurrence order. Like the TopK max-dedup
            // below, this makes the merge a semilattice — associative,
            // commutative, idempotent — so an aggregation tree merging
            // child responses in whatever order they arrive over a real
            // transport is bit-identical to the in-process reference
            // merging in modeled-arrival order (pinned by the rpc crate's
            // tree-equivalence differential suite).
            (Response::Flows(a), Response::Flows(b)) => {
                a.extend(b);
                a.sort_unstable();
                a.dedup();
            }
            (Response::Paths(a), Response::Paths(b)) => {
                a.extend(b);
                a.sort_unstable();
                a.dedup();
            }
            (
                Response::Count { bytes, pkts },
                Response::Count {
                    bytes: b2,
                    pkts: p2,
                },
            ) => {
                *bytes += b2;
                *pkts += p2;
            }
            (Response::Duration(a), Response::Duration(b)) => {
                if b > *a {
                    *a = b;
                }
            }
            (
                Response::Hist { bin_bytes, bins },
                Response::Hist {
                    bin_bytes: bb2,
                    bins: bins2,
                },
            ) => {
                debug_assert_eq!(*bin_bytes, bb2, "histogram bin widths must agree");
                let mut map: HashMap<u64, u64> = bins.iter().copied().collect();
                for (bin, count) in bins2 {
                    *map.entry(bin).or_insert(0) += count;
                }
                let mut v: Vec<(u64, u64)> = map.into_iter().collect();
                v.sort_unstable();
                *bins = v;
            }
            (Response::TopK { k, entries }, Response::TopK { k: k2, entries: e2 }) => {
                debug_assert_eq!(*k, k2, "k must agree across hosts");
                // Max-dedup top-k under the same total order as
                // `Tib::top_k_flows` — `(bytes, flow)` descending, so
                // equal-byte ties break by flow id. Sorting first means the
                // first occurrence of a flow is its max entry; the dedup
                // must be *global* (a set), not adjacent-only, or a flow
                // reported with different byte counts by different hosts
                // occupies two of the k slots and `multilevel_query` (which
                // merges the duplicates while adjacent, deeper in the tree)
                // disagrees with `direct_query` on the k-th entry. Keeping
                // the per-flow max makes the merge associative, commutative
                // and idempotent, so any merge tree yields the same top-k.
                entries.extend(e2);
                entries.sort_unstable_by(|a, b| b.cmp(a));
                let mut seen = std::collections::HashSet::with_capacity(entries.len());
                entries.retain(|e| seen.insert(e.1));
                entries.truncate(*k as usize);
            }
            (Response::Matrix(a), Response::Matrix(b)) => {
                let mut map: HashMap<(Ip, Ip), u64> = a.iter().copied().collect();
                for (kx, v) in b {
                    *map.entry(kx).or_insert(0) += v;
                }
                let mut v: Vec<((Ip, Ip), u64)> = map.into_iter().collect();
                v.sort_unstable();
                *a = v;
            }
            (s, o) => panic!("cannot merge {s:?} with {o:?}"),
        }
    }

    /// An empty response of the right shape for a query.
    pub fn empty_for(q: &Query) -> Response {
        match q {
            Query::GetFlows { .. } | Query::GetPoorTcp { .. } | Query::HeavyHitters { .. } => {
                Response::Flows(Vec::new())
            }
            Query::GetPaths { .. } => Response::Paths(Vec::new()),
            Query::GetCount { .. } => Response::Count { bytes: 0, pkts: 0 },
            Query::GetDuration { .. } => Response::Duration(Nanos::ZERO),
            Query::FlowSizeDist { bin_bytes, .. } => Response::Hist {
                bin_bytes: *bin_bytes,
                bins: Vec::new(),
            },
            Query::TopK { k, .. } => Response::TopK {
                k: *k,
                entries: Vec::new(),
            },
            Query::TrafficMatrix { .. } => Response::Matrix(Vec::new()),
        }
    }
}

// --- wire encoding ---------------------------------------------------------

impl Encode for Query {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Query::GetFlows { link, range } => {
                enc.put_u8(0);
                link.encode(enc);
                range.encode(enc);
            }
            Query::GetPaths { flow, link, range } => {
                enc.put_u8(1);
                flow.encode(enc);
                link.encode(enc);
                range.encode(enc);
            }
            Query::GetCount { flow, path, range } => {
                enc.put_u8(2);
                flow.encode(enc);
                path.encode(enc);
                range.encode(enc);
            }
            Query::GetDuration { flow, path, range } => {
                enc.put_u8(3);
                flow.encode(enc);
                path.encode(enc);
                range.encode(enc);
            }
            Query::GetPoorTcp { threshold } => {
                enc.put_u8(4);
                enc.put_varint(*threshold as u64);
            }
            Query::FlowSizeDist {
                link,
                range,
                bin_bytes,
            } => {
                enc.put_u8(5);
                link.encode(enc);
                range.encode(enc);
                enc.put_varint(*bin_bytes);
            }
            Query::TopK { k, range } => {
                enc.put_u8(6);
                enc.put_varint(*k as u64);
                range.encode(enc);
            }
            Query::TrafficMatrix { range } => {
                enc.put_u8(7);
                range.encode(enc);
            }
            Query::HeavyHitters { min_bytes, range } => {
                enc.put_u8(8);
                enc.put_varint(*min_bytes);
                range.encode(enc);
            }
        }
    }
}

impl Decode for Query {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => Query::GetFlows {
                link: LinkPattern::decode(dec)?,
                range: TimeRange::decode(dec)?,
            },
            1 => Query::GetPaths {
                flow: FlowId::decode(dec)?,
                link: LinkPattern::decode(dec)?,
                range: TimeRange::decode(dec)?,
            },
            2 => Query::GetCount {
                flow: FlowId::decode(dec)?,
                path: Option::<Path>::decode(dec)?,
                range: TimeRange::decode(dec)?,
            },
            3 => Query::GetDuration {
                flow: FlowId::decode(dec)?,
                path: Option::<Path>::decode(dec)?,
                range: TimeRange::decode(dec)?,
            },
            4 => Query::GetPoorTcp {
                threshold: dec.get_varint()? as u32,
            },
            5 => Query::FlowSizeDist {
                link: LinkPattern::decode(dec)?,
                range: TimeRange::decode(dec)?,
                bin_bytes: dec.get_varint()?,
            },
            6 => Query::TopK {
                k: dec.get_varint()? as u32,
                range: TimeRange::decode(dec)?,
            },
            7 => Query::TrafficMatrix {
                range: TimeRange::decode(dec)?,
            },
            8 => Query::HeavyHitters {
                min_bytes: dec.get_varint()?,
                range: TimeRange::decode(dec)?,
            },
            t => return Err(WireError::InvalidTag(t as u32)),
        })
    }
}

impl Encode for Response {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Response::Flows(v) => {
                enc.put_u8(0);
                v.encode(enc);
            }
            Response::Paths(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
            Response::Count { bytes, pkts } => {
                enc.put_u8(2);
                enc.put_varint(*bytes);
                enc.put_varint(*pkts);
            }
            Response::Duration(d) => {
                enc.put_u8(3);
                d.encode(enc);
            }
            Response::Hist { bin_bytes, bins } => {
                enc.put_u8(4);
                enc.put_varint(*bin_bytes);
                bins.encode(enc);
            }
            Response::TopK { k, entries } => {
                enc.put_u8(5);
                enc.put_varint(*k as u64);
                enc.put_varint(entries.len() as u64);
                for (bytes, flow) in entries {
                    enc.put_varint(*bytes);
                    flow.encode(enc);
                }
            }
            Response::Matrix(v) => {
                enc.put_u8(6);
                enc.put_varint(v.len() as u64);
                for ((s, d), b) in v {
                    s.encode(enc);
                    d.encode(enc);
                    enc.put_varint(*b);
                }
            }
        }
    }
}

impl Decode for Response {
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(match dec.get_u8()? {
            0 => Response::Flows(Vec::<FlowId>::decode(dec)?),
            1 => Response::Paths(Vec::<Path>::decode(dec)?),
            2 => Response::Count {
                bytes: dec.get_varint()?,
                pkts: dec.get_varint()?,
            },
            3 => Response::Duration(Nanos::decode(dec)?),
            4 => Response::Hist {
                bin_bytes: dec.get_varint()?,
                bins: Vec::<(u64, u64)>::decode(dec)?,
            },
            5 => {
                let k = dec.get_varint()? as u32;
                let n = dec.get_len()?;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let bytes = dec.get_varint()?;
                    let flow = FlowId::decode(dec)?;
                    entries.push((bytes, flow));
                }
                Response::TopK { k, entries }
            }
            6 => {
                let n = dec.get_len()?;
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let s = Ip::decode(dec)?;
                    let d = Ip::decode(dec)?;
                    let b = dec.get_varint()?;
                    v.push(((s, d), b));
                }
                Response::Matrix(v)
            }
            t => return Err(WireError::InvalidTag(t as u32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::SwitchId;
    use pathdump_wire::{from_bytes, to_bytes};

    fn flow(s: u16) -> FlowId {
        FlowId::tcp(Ip::new(10, 0, 0, 2), s, Ip::new(10, 1, 0, 2), 80)
    }

    #[test]
    fn query_wire_roundtrips() {
        let queries = vec![
            Query::GetFlows {
                link: LinkPattern::exact(SwitchId(1), SwitchId(2)),
                range: TimeRange::ANY,
            },
            Query::GetPaths {
                flow: flow(1),
                link: LinkPattern::ANY,
                range: TimeRange::since(Nanos(5)),
            },
            Query::GetCount {
                flow: flow(2),
                path: Some(Path::new(vec![SwitchId(0), SwitchId(9)])),
                range: TimeRange::ANY,
            },
            Query::GetDuration {
                flow: flow(2),
                path: None,
                range: TimeRange::ANY,
            },
            Query::GetPoorTcp { threshold: 3 },
            Query::FlowSizeDist {
                link: LinkPattern::into(SwitchId(7)),
                range: TimeRange::ANY,
                bin_bytes: 10_000,
            },
            Query::TopK {
                k: 10_000,
                range: TimeRange::ANY,
            },
            Query::TrafficMatrix {
                range: TimeRange::ANY,
            },
            Query::HeavyHitters {
                min_bytes: 1_000_000,
                range: TimeRange::ANY,
            },
        ];
        for q in queries {
            let back: Query = from_bytes(&to_bytes(&q)).unwrap();
            assert_eq!(back, q);
        }
    }

    #[test]
    fn response_wire_roundtrips() {
        let responses = vec![
            Response::Flows(vec![flow(1), flow(2)]),
            Response::Paths(vec![Path::new(vec![SwitchId(3)])]),
            Response::Count {
                bytes: 12345,
                pkts: 99,
            },
            Response::Duration(Nanos::from_millis(7)),
            Response::Hist {
                bin_bytes: 10_000,
                bins: vec![(0, 5), (3, 2)],
            },
            Response::TopK {
                k: 2,
                entries: vec![(500, flow(9)), (100, flow(3))],
            },
            Response::Matrix(vec![((Ip(1), Ip(2)), 777)]),
        ];
        for r in responses {
            let back: Response = from_bytes(&to_bytes(&r)).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn merge_flows_dedups() {
        let mut a = Response::Flows(vec![flow(1), flow(2)]);
        a.merge(Response::Flows(vec![flow(2), flow(3)]));
        assert_eq!(a, Response::Flows(vec![flow(1), flow(2), flow(3)]));
    }

    #[test]
    fn merge_counts_and_durations() {
        let mut c = Response::Count { bytes: 10, pkts: 1 };
        c.merge(Response::Count { bytes: 5, pkts: 2 });
        assert_eq!(c, Response::Count { bytes: 15, pkts: 3 });
        let mut d = Response::Duration(Nanos(5));
        d.merge(Response::Duration(Nanos(3)));
        assert_eq!(d, Response::Duration(Nanos(5)));
        d.merge(Response::Duration(Nanos(9)));
        assert_eq!(d, Response::Duration(Nanos(9)));
    }

    #[test]
    fn merge_hist_adds_bins() {
        let mut h = Response::Hist {
            bin_bytes: 10,
            bins: vec![(0, 1), (2, 5)],
        };
        h.merge(Response::Hist {
            bin_bytes: 10,
            bins: vec![(2, 1), (7, 4)],
        });
        assert_eq!(
            h,
            Response::Hist {
                bin_bytes: 10,
                bins: vec![(0, 1), (2, 6), (7, 4)],
            }
        );
    }

    #[test]
    fn merge_topk_truncates() {
        let mut t = Response::TopK {
            k: 2,
            entries: vec![(100, flow(1)), (50, flow(2))],
        };
        t.merge(Response::TopK {
            k: 2,
            entries: vec![(75, flow(3)), (25, flow(4))],
        });
        assert_eq!(
            t,
            Response::TopK {
                k: 2,
                entries: vec![(100, flow(1)), (75, flow(3))],
            }
        );
    }

    #[test]
    fn merge_topk_dedups_nonadjacent_duplicates() {
        // The same flow reported with different byte counts by different
        // hosts must occupy one slot (its max), never two — even when the
        // duplicates are not adjacent after the descending sort. Before the
        // global dedup, `(99, f2), (98, f5), (97, f2)` survived intact and
        // squeezed f6 out of a k=3 answer that a tree-shaped merge kept.
        let mut t = Response::TopK {
            k: 3,
            entries: vec![(99, flow(2))],
        };
        t.merge(Response::TopK {
            k: 3,
            entries: vec![(97, flow(2))],
        });
        t.merge(Response::TopK {
            k: 3,
            entries: vec![(98, flow(5))],
        });
        t.merge(Response::TopK {
            k: 3,
            entries: vec![(96, flow(6))],
        });
        assert_eq!(
            t,
            Response::TopK {
                k: 3,
                entries: vec![(99, flow(2)), (98, flow(5)), (96, flow(6))],
            }
        );
    }

    #[test]
    fn merge_topk_is_associative() {
        // Max-dedup top-k under a total order is a semilattice: any merge
        // tree over the same host responses yields the same entries. Drive
        // every 2-partition of four host responses with ties (equal bytes
        // across flows) and duplicates (one flow on several hosts).
        let hosts: Vec<Vec<(u64, FlowId)>> = vec![
            vec![(99, flow(2)), (50, flow(1))],
            vec![(97, flow(2)), (50, flow(3))],
            vec![(98, flow(5)), (50, flow(4))],
            vec![(96, flow(6)), (50, flow(1))],
        ];
        let merge_all = |order: &[usize]| {
            let mut acc = Response::TopK {
                k: 3,
                entries: Vec::new(),
            };
            for &i in order {
                acc.merge(Response::TopK {
                    k: 3,
                    entries: hosts[i].clone(),
                });
            }
            acc
        };
        // Flat merges in every rotation, plus a tree shape: (0+1) + (2+3).
        let flat = merge_all(&[0, 1, 2, 3]);
        for order in [[1, 2, 3, 0], [3, 2, 1, 0], [2, 0, 3, 1]] {
            assert_eq!(merge_all(&order), flat, "order {order:?}");
        }
        let mut left = merge_all(&[0, 1]);
        let right = merge_all(&[2, 3]);
        left.merge(right);
        assert_eq!(left, flat, "tree-shaped merge");
    }

    #[test]
    fn merge_topk_breaks_byte_ties_by_flow_id() {
        // Equal-byte entries must rank by flow id descending — the same
        // order `Tib::top_k_flows` uses — so a host-level answer and a
        // merged answer agree on the k-th entry.
        let mut t = Response::TopK {
            k: 2,
            entries: vec![(50, flow(1))],
        };
        t.merge(Response::TopK {
            k: 2,
            entries: vec![(50, flow(3)), (50, flow(2))],
        });
        let want: Vec<(u64, FlowId)> = {
            let mut v = vec![(50, flow(1)), (50, flow(2)), (50, flow(3))];
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.truncate(2);
            v
        };
        assert_eq!(
            t,
            Response::TopK {
                k: 2,
                entries: want
            }
        );
    }

    #[test]
    fn merge_matrix_sums() {
        let mut m = Response::Matrix(vec![((Ip(1), Ip(2)), 10)]);
        m.merge(Response::Matrix(vec![
            ((Ip(1), Ip(2)), 5),
            ((Ip(3), Ip(4)), 7),
        ]));
        assert_eq!(
            m,
            Response::Matrix(vec![((Ip(1), Ip(2)), 15), ((Ip(3), Ip(4)), 7)])
        );
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn mismatched_merge_panics() {
        let mut a = Response::Flows(vec![]);
        a.merge(Response::Duration(Nanos(1)));
    }

    #[test]
    fn empty_for_matches_variants() {
        let q = Query::TopK {
            k: 5,
            range: TimeRange::ANY,
        };
        assert_eq!(
            Response::empty_for(&q),
            Response::TopK {
                k: 5,
                entries: vec![]
            }
        );
    }
}
