//! The composite simulation world: PathDump agents on every host, the TCP
//! engine, the active monitoring module, the controller's trap handler
//! (routing-loop detection), and installed periodic queries.
//!
//! This is Figure 1 assembled: packet stream → OVS hook (agent) → TIB;
//! TCP performance monitoring → alarms; suspiciously long paths → punts →
//! controller.

use crate::agent::{AgentConfig, Fabric, HostAgent, Invariant};
use crate::alarm::{Alarm, Reason};
use crate::query::{Query, Response};
use pathdump_simnet::{CtrlApi, HostApi, Packet, Punt, World};
use pathdump_topology::{FlowId, HostId, Nanos, SwitchId, MILLIS};
use pathdump_transport::{TcpConfig, TcpEngine};
use std::collections::HashMap;
use std::sync::Arc;

/// Token bit marking core-internal (non-TCP) timers.
const CORE_TOKEN_BIT: u64 = 1 << 63;
/// The per-host periodic tick token.
const TICK_TOKEN: u64 = CORE_TOKEN_BIT | 1;

/// World configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Agent settings.
    pub agent: AgentConfig,
    /// Per-host tick period: trajectory-memory eviction scan, monitor poll,
    /// installed-query execution (paper: 200 ms).
    pub tick_period: Nanos,
    /// Consecutive-retransmission threshold for `POOR_PERF` alarms.
    pub retrans_threshold: u32,
    /// Minimum spacing between `POOR_PERF` alarms for the same flow.
    pub alarm_cooldown: Nanos,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            agent: AgentConfig::default(),
            tick_period: Nanos(200 * MILLIS),
            retrans_threshold: 2,
            alarm_cooldown: Nanos(200 * MILLIS),
        }
    }
}

/// A routing-loop detection produced by the trap handler (§4.5).
#[derive(Clone, Debug)]
pub struct LoopDetection {
    /// The trapped flow.
    pub flow: FlowId,
    /// When the controller concluded "loop".
    pub at: Nanos,
    /// The switch whose punt revealed the loop.
    pub punt_switch: SwitchId,
    /// The repeated link ID that proved the loop.
    pub repeated_link_id: u16,
    /// How many controller visits it took (1 = repeat within one punt).
    pub visits: u32,
}

/// An installed periodic query (`install()` of the Controller API).
#[derive(Clone, Debug)]
struct Installed {
    id: u64,
    hosts: Vec<HostId>,
    query: Query,
    alarm_reason: Option<Reason>,
}

/// A log entry from an installed query execution.
#[derive(Clone, Debug)]
pub struct InstalledResult {
    /// Which installation produced it.
    pub install_id: u64,
    /// Executing host.
    pub host: HostId,
    /// When.
    pub at: Nanos,
    /// The local response.
    pub response: Response,
}

/// The composite world.
pub struct PathDumpWorld {
    /// Transport engine (all flows).
    pub tcp: TcpEngine,
    /// Per-host agents.
    pub agents: Vec<HostAgent>,
    /// The fabric (topology + reconstructor), shared.
    pub fabric: Arc<Fabric>,
    cfg: WorldConfig,
    /// Alarm bus (drained by debugging applications).
    pub alarms: Vec<Alarm>,
    /// Every punt the controller received.
    pub punts: Vec<Punt>,
    /// Routing-loop detections.
    pub loop_detections: Vec<LoopDetection>,
    /// Per-packet tag history from earlier controller visits ("the
    /// controller locally stores the three tags"): keyed by packet UID —
    /// a retransmission is a different packet and must not inherit the
    /// history, or re-used detour paths would read as loops.
    trap_history: HashMap<u64, (Vec<u16>, u32)>,
    /// Last POOR_PERF alarm per flow (cooldown).
    last_poor_alarm: HashMap<FlowId, Nanos>,
    installed: Vec<Installed>,
    next_install_id: u64,
    /// Bounded log of installed-query results.
    pub installed_results: Vec<InstalledResult>,
    /// Cap on `installed_results`.
    pub installed_results_cap: usize,
}

impl PathDumpWorld {
    /// Builds the world for a fabric.
    pub fn new(fabric: Fabric, tcp_cfg: TcpConfig, cfg: WorldConfig) -> Self {
        let n = fabric.topology().num_hosts();
        let agents = (0..n)
            .map(|i| HostAgent::new(HostId(i as u32), cfg.agent))
            .collect();
        PathDumpWorld {
            tcp: TcpEngine::new(tcp_cfg),
            agents,
            fabric: Arc::new(fabric),
            cfg,
            alarms: Vec::new(),
            punts: Vec::new(),
            loop_detections: Vec::new(),
            trap_history: HashMap::new(),
            last_poor_alarm: HashMap::new(),
            installed: Vec::new(),
            next_install_id: 1,
            installed_results: Vec::new(),
            installed_results_cap: 100_000,
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Schedules the initial per-host ticks; call once after building the
    /// simulator.
    pub fn start<W>(sim: &mut pathdump_simnet::Simulator<W>)
    where
        W: World,
    {
        let n = sim.topology().num_hosts();
        for i in 0..n {
            // Stagger ticks so 100+ hosts do not fire in lock-step.
            let offset = Nanos((i as u64 % 16) * MILLIS);
            sim.schedule_timer(HostId(i as u32), offset, TICK_TOKEN);
        }
    }

    /// Installs an invariant on a set of hosts (path conformance, §2.3).
    pub fn install_invariant(&mut self, hosts: &[HostId], inv: Invariant) {
        for h in hosts {
            self.agents[h.index()].install_invariant(inv.clone());
        }
    }

    /// Controller API `watch(List<HostID>, StandingQuery)`: registers a
    /// standing predicate on each host's agent. Raises (including a
    /// registration-time raise if the predicate already holds) surface on
    /// the world alarm bus through the regular per-tick drain.
    pub fn watch(
        &mut self,
        hosts: &[HostId],
        q: crate::standing::StandingQuery,
        now: Nanos,
    ) -> Vec<(HostId, crate::standing::WatchId)> {
        hosts
            .iter()
            .map(|h| (*h, self.agents[h.index()].watch(q.clone(), now)))
            .collect()
    }

    /// Removes a standing query from one host. Returns whether it existed.
    pub fn unwatch(&mut self, host: HostId, id: crate::standing::WatchId) -> bool {
        self.agents[host.index()].unwatch(id)
    }

    /// Drains raise/clear flip events from every host's standing engine,
    /// tagged with the emitting host.
    pub fn drain_standing_events(&mut self) -> Vec<(HostId, crate::standing::StandingEvent)> {
        let mut out = Vec::new();
        for (i, a) in self.agents.iter_mut().enumerate() {
            for ev in a.drain_standing_events() {
                out.push((HostId(i as u32), ev));
            }
        }
        out
    }

    /// Controller API `install(List<HostID>, Query, Period)`: the query
    /// runs at every tick on each host; non-empty results are logged and,
    /// when `alarm_reason` is set, raised as alarms.
    pub fn install_query(
        &mut self,
        hosts: &[HostId],
        query: Query,
        alarm_reason: Option<Reason>,
    ) -> u64 {
        let id = self.next_install_id;
        self.next_install_id += 1;
        self.installed.push(Installed {
            id,
            hosts: hosts.to_vec(),
            query,
            alarm_reason,
        });
        id
    }

    /// Controller API `uninstall`.
    pub fn uninstall_query(&mut self, id: u64) {
        self.installed.retain(|i| i.id != id);
    }

    /// Controller API `execute(List<HostID>, Query)`: immediate one-shot
    /// execution (direct query to each host), merged.
    pub fn execute(&mut self, hosts: &[HostId], query: &Query, include_live: bool) -> Response {
        let mut merged = Response::empty_for(query);
        for h in hosts {
            merged.merge(self.execute_on_host(*h, query, include_live));
        }
        merged
    }

    /// Executes a query on one host, with transport-side extensions
    /// (`getPoorTCPFlows`).
    pub fn execute_on_host(&mut self, host: HostId, query: &Query, include_live: bool) -> Response {
        match query {
            Query::GetPoorTcp { threshold } => {
                let flows = self
                    .tcp
                    .reports()
                    .filter(|r| r.src == host)
                    .filter(|r| r.completed_at.is_none())
                    .filter(|r| r.consecutive_retrans > *threshold)
                    .map(|r| r.flow)
                    .collect();
                Response::Flows(flows)
            }
            q => {
                let fabric = Arc::clone(&self.fabric);
                self.agents[host.index()].execute(&fabric, q, include_live)
            }
        }
    }

    /// Drains the alarm bus.
    pub fn drain_alarms(&mut self) -> Vec<Alarm> {
        std::mem::take(&mut self.alarms)
    }

    /// Flushes every agent's trajectory memory into its TIB (end of run).
    pub fn flush_all(&mut self, now: Nanos) {
        let fabric = Arc::clone(&self.fabric);
        for a in &mut self.agents {
            a.flush(&fabric, now);
        }
    }

    fn tick_host(&mut self, api: &mut HostApi<'_>, host: HostId) {
        let now = api.now();
        let fabric = Arc::clone(&self.fabric);
        // 1. Trajectory-memory eviction scan.
        self.agents[host.index()].tick(&fabric, now);
        self.alarms.extend(self.agents[host.index()].drain_alarms());

        // 2. Active TCP monitoring (the tcpretrans substitute): alert on
        //    flows sourced here with excessive consecutive retransmissions.
        let threshold = self.cfg.retrans_threshold;
        let poor: Vec<FlowId> = self
            .tcp
            .reports()
            .filter(|r| r.src == host && r.completed_at.is_none())
            .filter(|r| r.consecutive_retrans > threshold)
            .map(|r| r.flow)
            .collect();
        for flow in poor {
            let due = match self.last_poor_alarm.get(&flow) {
                Some(last) => now.saturating_sub(*last) >= self.cfg.alarm_cooldown,
                None => true,
            };
            if due {
                self.last_poor_alarm.insert(flow, now);
                self.alarms.push(Alarm {
                    flow,
                    reason: Reason::PoorPerf,
                    paths: Vec::new(),
                    host,
                    at: now,
                });
            }
        }

        // 3. Installed periodic queries.
        let installed: Vec<Installed> = self
            .installed
            .iter()
            .filter(|i| i.hosts.contains(&host))
            .cloned()
            .collect();
        for inst in installed {
            let resp = self.execute_on_host(host, &inst.query, false);
            let non_empty = match &resp {
                Response::Flows(v) => !v.is_empty(),
                Response::Paths(v) => !v.is_empty(),
                Response::Hist { bins, .. } => !bins.is_empty(),
                Response::TopK { entries, .. } => !entries.is_empty(),
                Response::Matrix(v) => !v.is_empty(),
                Response::Count { pkts, .. } => *pkts > 0,
                Response::Duration(d) => d.0 > 0,
            };
            if non_empty {
                if let Some(reason) = inst.alarm_reason {
                    if let Response::Flows(flows) = &resp {
                        for f in flows {
                            self.alarms.push(Alarm {
                                flow: *f,
                                reason,
                                paths: Vec::new(),
                                host,
                                at: now,
                            });
                        }
                    }
                }
                if self.installed_results.len() < self.installed_results_cap {
                    self.installed_results.push(InstalledResult {
                        install_id: inst.id,
                        host,
                        at: now,
                        response: resp,
                    });
                }
            }
        }

        // Re-arm the tick.
        api.set_timer(self.cfg.tick_period, TICK_TOKEN);
    }
}

impl World for PathDumpWorld {
    fn on_packet(&mut self, api: &mut HostApi<'_>, pkt: Packet) {
        let host = api.host();
        // The agent sees the packet first (the OVS extract-and-strip hook),
        // then the upper stack processes it.
        let fabric = Arc::clone(&self.fabric);
        self.agents[host.index()].on_packet(&fabric, &pkt, api.now());
        self.alarms.extend(self.agents[host.index()].drain_alarms());
        self.tcp.on_packet(api, &pkt);
    }

    fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
        if token & CORE_TOKEN_BIT != 0 {
            let host = api.host();
            if token == TICK_TOKEN {
                self.tick_host(api, host);
            }
        } else {
            self.tcp.on_timer(api, token);
        }
    }

    fn on_punt(&mut self, api: &mut CtrlApi<'_>, punt: Punt) {
        self.punts.push(punt.clone());
        let now = api.now();
        let flow = punt.pkt.flow;
        let uid = punt.pkt.uid;
        let tags = punt.pkt.headers.tags.clone();

        // Figure 9 logic: a repeated link ID inside the carried tags means
        // a loop right away; otherwise compare with tags stored from the
        // previous visit of this flow, then strip and re-inject.
        let mut repeated: Option<u16> = None;
        let mut seen = std::collections::HashSet::new();
        for &t in &tags {
            if !seen.insert(t) {
                repeated = Some(t);
                break;
            }
        }
        let visits = self.trap_history.get(&uid).map(|(_, v)| *v).unwrap_or(0) + 1;
        if repeated.is_none() {
            if let Some((prev, _)) = self.trap_history.get(&uid) {
                repeated = tags.iter().find(|t| prev.contains(t)).copied();
            }
        }
        match repeated {
            Some(link_id) => {
                self.loop_detections.push(LoopDetection {
                    flow,
                    at: now,
                    punt_switch: punt.sw,
                    repeated_link_id: link_id,
                    visits,
                });
                self.trap_history.remove(&uid);
                // The packet is held at the controller (not re-injected):
                // the loop is live and the operator now knows.
            }
            None => {
                let mut stored = tags;
                if let Some((prev, _)) = self.trap_history.get(&uid) {
                    stored.extend_from_slice(prev);
                }
                self.trap_history.insert(uid, (stored, visits));
                let mut pkt = punt.pkt;
                pkt.headers.strip();
                api.packet_out(punt.sw, punt.in_port, pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_cherrypick::{FatTreeCherryPick, FatTreeReconstructor};
    use pathdump_simnet::{Quirk, SimConfig, Simulator};
    use pathdump_tib::TibRead;
    use pathdump_topology::{FatTree, FatTreeParams, LinkPattern, TimeRange, UpDownRouting};
    use pathdump_transport::FlowSpec;

    fn setup(ft: &FatTree) -> Simulator<PathDumpWorld> {
        let world = PathDumpWorld::new(
            Fabric::FatTree(FatTreeReconstructor::new(ft.clone())),
            TcpConfig::default(),
            WorldConfig::default(),
        );
        let mut sim = Simulator::new(
            ft,
            SimConfig::for_tests(),
            Box::new(FatTreeCherryPick::new(ft.clone())),
            world,
        );
        PathDumpWorld::start(&mut sim);
        sim
    }

    fn flow_of(ft: &FatTree, src: HostId, dst: HostId, sport: u16) -> FlowId {
        let t = ft.topology();
        FlowId::tcp(t.host(src).ip, sport, t.host(dst).ip, 80)
    }

    #[test]
    fn end_to_end_flow_lands_in_dst_tib() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut sim = setup(&ft);
        let (src, dst) = (ft.host(0, 0, 0), ft.host(2, 1, 0));
        let spec = FlowSpec {
            flow: flow_of(&ft, src, dst, 4000),
            src,
            dst,
            size: 300_000,
            start: Nanos::ZERO,
        };
        pathdump_transport::install_flows(&mut sim, &[spec], |w| &mut w.tcp);
        sim.run_until(Nanos::from_secs(20));
        assert!(sim.world.tcp.all_complete());
        // FIN triggers eviction at the destination agent.
        let agent = &mut sim.world.agents[dst.index()];
        let paths = agent
            .tib
            .get_paths(spec.flow, LinkPattern::ANY, TimeRange::ANY);
        assert_eq!(paths.len(), 1, "ECMP flow pins one path");
        assert!(ft.all_paths(src, dst).contains(&paths[0]));
        // The source agent recorded the reverse ACK flow.
        let src_agent = &sim.world.agents[src.index()];
        assert!(src_agent.packets_seen > 0, "ACKs observed at the sender");
        // Byte counts: at least the flow size made it into the TIB.
        let (bytes, pkts) =
            sim.world.agents[dst.index()]
                .tib
                .get_count(spec.flow, None, TimeRange::ANY);
        assert!(pkts >= 300_000 / 1460);
        assert!(bytes >= 300_000);
    }

    #[test]
    fn poor_perf_alarms_for_blackholed_flow() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut sim = setup(&ft);
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        // Blackhole both uplinks of the source ToR.
        for a in 0..2 {
            sim.set_directed_fault(
                ft.tor(0, 0),
                ft.agg(0, a),
                pathdump_simnet::FaultState {
                    blackhole: true,
                    ..pathdump_simnet::FaultState::HEALTHY
                },
            );
        }
        let spec = FlowSpec {
            flow: flow_of(&ft, src, dst, 4100),
            src,
            dst,
            size: 100_000,
            start: Nanos::ZERO,
        };
        pathdump_transport::install_flows(&mut sim, &[spec], |w| &mut w.tcp);
        sim.run_until(Nanos::from_secs(10));
        let alarms = sim.world.drain_alarms();
        let poor: Vec<&Alarm> = alarms
            .iter()
            .filter(|a| a.reason == Reason::PoorPerf)
            .collect();
        assert!(!poor.is_empty(), "monitor must raise POOR_PERF");
        assert!(poor.iter().all(|a| a.flow == spec.flow && a.host == src));
        // Cooldown: alarms are spaced, not one per tick... at 200ms ticks
        // over 10s with 200ms cooldown there can be at most ~50.
        assert!(poor.len() <= 55);
    }

    #[test]
    fn routing_loop_detected_via_punts() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut sim = setup(&ft);
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        let flow = flow_of(&ft, src, dst, 4200);
        // Build a 4-switch loop: agg(0,0) -> core(0) -> agg(1,0) -> core(1)
        // -> agg(0,0), entered from tor(0,0).
        sim.install_quirk(
            ft.tor(0, 0),
            Quirk::ForwardFlowTo {
                flow,
                port: sim.link_port(ft.tor(0, 0), ft.agg(0, 0)),
            },
        );
        sim.install_quirk(
            ft.agg(0, 0),
            Quirk::ForwardFlowTo {
                flow,
                port: sim.link_port(ft.agg(0, 0), ft.core(0)),
            },
        );
        sim.install_quirk(
            ft.core(0),
            Quirk::ForwardFlowTo {
                flow,
                port: sim.link_port(ft.core(0), ft.agg(1, 0)),
            },
        );
        sim.install_quirk(
            ft.agg(1, 0),
            Quirk::ForwardFlowTo {
                flow,
                port: sim.link_port(ft.agg(1, 0), ft.core(1)),
            },
        );
        sim.install_quirk(
            ft.core(1),
            Quirk::ForwardFlowTo {
                flow,
                port: sim.link_port(ft.core(1), ft.agg(0, 0)),
            },
        );
        // One packet into the loop.
        let pkt = Packet::data(0, flow, 0, 1000, Nanos::ZERO);
        sim.send_from(src, pkt);
        sim.run_until(Nanos::from_secs(5));
        assert!(
            !sim.world.loop_detections.is_empty(),
            "loop must be detected (punts: {})",
            sim.world.punts.len()
        );
        let det = &sim.world.loop_detections[0];
        assert_eq!(det.flow, flow);
        assert!(det.visits <= 2, "4-switch loop detected within 2 visits");
        // Detection latency is punt-latency bound, not TTL bound.
        let cfg = SimConfig::for_tests();
        assert!(det.at >= cfg.punt_latency);
        assert!(det.at < Nanos::from_secs(1));
    }

    #[test]
    fn installed_query_raises_alarms() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut sim = setup(&ft);
        let (src, dst) = (ft.host(0, 0, 0), ft.host(1, 0, 0));
        // Install the §2.3 TCP monitoring query on the sender.
        sim.world.install_query(
            &[src],
            Query::GetPoorTcp { threshold: 2 },
            Some(Reason::PoorPerf),
        );
        for a in 0..2 {
            sim.set_directed_fault(
                ft.tor(0, 0),
                ft.agg(0, a),
                pathdump_simnet::FaultState {
                    blackhole: true,
                    ..pathdump_simnet::FaultState::HEALTHY
                },
            );
        }
        let spec = FlowSpec {
            flow: flow_of(&ft, src, dst, 4300),
            src,
            dst,
            size: 50_000,
            start: Nanos::ZERO,
        };
        pathdump_transport::install_flows(&mut sim, &[spec], |w| &mut w.tcp);
        sim.run_until(Nanos::from_secs(5));
        assert!(!sim.world.installed_results.is_empty());
        assert!(sim
            .world
            .installed_results
            .iter()
            .all(|r| r.install_id == 1 && r.host == src));
    }

    #[test]
    fn execute_merges_across_hosts() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let mut sim = setup(&ft);
        let pairs = [
            (ft.host(0, 0, 0), ft.host(1, 0, 0), 5000u16),
            (ft.host(0, 0, 1), ft.host(2, 0, 0), 5001),
            (ft.host(0, 1, 0), ft.host(3, 0, 0), 5002),
        ];
        let specs: Vec<FlowSpec> = pairs
            .iter()
            .map(|&(src, dst, sport)| FlowSpec {
                flow: flow_of(&ft, src, dst, sport),
                src,
                dst,
                size: 50_000,
                start: Nanos::ZERO,
            })
            .collect();
        pathdump_transport::install_flows(&mut sim, &specs, |w| &mut w.tcp);
        sim.run_until(Nanos::from_secs(20));
        assert!(sim.world.tcp.all_complete());
        sim.world.flush_all(Nanos::from_secs(20));
        let all_hosts: Vec<HostId> = (0..16).map(HostId).collect();
        let resp = sim.world.execute(
            &all_hosts,
            &Query::GetFlows {
                link: LinkPattern::ANY,
                range: TimeRange::ANY,
            },
            false,
        );
        let Response::Flows(flows) = resp else {
            panic!("wrong response shape");
        };
        // All 3 data flows plus their 3 ACK flows.
        for (_, _, sport) in pairs {
            assert!(flows.iter().any(|f| f.src_port == sport));
        }
        assert!(flows.len() >= 6);
    }
}
