//! Criterion micro-benchmark behind Figure 13: per-frame processing cost
//! of the vanilla vs PathDump datapaths across packet sizes.
//!
//! The `vanilla`/`pathdump` cases drive the ring through the batched
//! pipeline (`FrameBatch::run_once` → `DataPath::process_batch`); the
//! `pathdump_frame` cases run the identical ring through per-frame
//! `DataPath::process` calls, so the recorded delta is exactly the
//! batching win (staged memory replay + once-per-batch counter fold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathdump_dpswitch::{build_frame, DataPath, FrameBatch, Mode};
use pathdump_topology::{FlowId, Ip};

fn frames(pkt_size: usize, flows: usize) -> Vec<Vec<u8>> {
    let overhead = 14 + 20 + 20;
    (0..flows)
        .map(|i| {
            let flow = FlowId::tcp(
                Ip(0x0A00_0002 + (i as u32 % 4096)),
                1024 + (i % 60000) as u16,
                Ip(0x0A63_0002),
                80,
            );
            let tags: Vec<u16> = if i % 2 == 0 {
                vec![(i % 4096) as u16]
            } else {
                vec![(i % 4096) as u16, ((i * 7) % 4096) as u16]
            };
            let payload = pkt_size.saturating_sub(overhead + tags.len() * 4).max(6);
            build_frame(&flow, &tags, 0, payload)
        })
        .collect()
}

fn batch(pkt_size: usize, flows: usize) -> FrameBatch {
    FrameBatch::new(frames(pkt_size, flows))
}

/// The pre-batch `run_once` semantics: restore each frame's 12 relocated
/// MAC bytes, then call `DataPath::process` on it — the per-frame
/// reference the `pathdump_frame` cases measure.
fn run_once_per_frame(
    dp: &mut DataPath,
    originals: &[Vec<u8>],
    scratch: &mut [Vec<u8>],
    moved: &mut [usize],
) -> usize {
    let mut ok = 0;
    for ((orig, buf), moved) in originals
        .iter()
        .zip(scratch.iter_mut())
        .zip(moved.iter_mut())
    {
        if *moved != 0 {
            buf[*moved..*moved + 12].copy_from_slice(&orig[*moved..*moved + 12]);
        }
        let v = dp.process(buf);
        *moved = v.offset;
        if !v.is_drop() {
            ok += 1;
        }
    }
    ok
}

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpswitch");
    group.sample_size(20);
    for &size in &[64usize, 512, 1500] {
        for (label, mode) in [("vanilla", Mode::Vanilla), ("pathdump", Mode::PathDump)] {
            group.throughput(Throughput::Elements(4096));
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, &size| {
                let mut dp = DataPath::new(mode);
                dp.learn([0x02, 0, 0, 0, 0, 0x01], 1);
                let mut batch = batch(size, 4096);
                batch.run_once(&mut dp); // warm-up: live flow records
                b.iter(|| batch.run_once(&mut dp));
            });
        }
        // The same PathDump ring through per-frame `process`, isolating
        // the batched-pipeline win in the recorded report.
        group.throughput(Throughput::Elements(4096));
        group.bench_with_input(
            BenchmarkId::new("pathdump_frame", size),
            &size,
            |b, &size| {
                let mut dp = DataPath::new(Mode::PathDump);
                dp.learn([0x02, 0, 0, 0, 0, 0x01], 1);
                let originals = frames(size, 4096);
                let mut scratch = originals.clone();
                let mut moved = vec![0usize; originals.len()];
                run_once_per_frame(&mut dp, &originals, &mut scratch, &mut moved);
                b.iter(|| run_once_per_frame(&mut dp, &originals, &mut scratch, &mut moved));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
