//! Criterion micro-benchmark behind Figure 13: per-frame processing cost
//! of the vanilla vs PathDump datapaths across packet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathdump_dpswitch::{build_frame, DataPath, FrameBatch, Mode};
use pathdump_topology::{FlowId, Ip};

fn batch(pkt_size: usize, flows: usize) -> FrameBatch {
    let overhead = 14 + 20 + 20;
    let frames: Vec<Vec<u8>> = (0..flows)
        .map(|i| {
            let flow = FlowId::tcp(
                Ip(0x0A00_0002 + (i as u32 % 4096)),
                1024 + (i % 60000) as u16,
                Ip(0x0A63_0002),
                80,
            );
            let tags: Vec<u16> = if i % 2 == 0 {
                vec![(i % 4096) as u16]
            } else {
                vec![(i % 4096) as u16, ((i * 7) % 4096) as u16]
            };
            let payload = pkt_size.saturating_sub(overhead + tags.len() * 4).max(6);
            build_frame(&flow, &tags, 0, payload)
        })
        .collect();
    FrameBatch::new(frames)
}

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpswitch");
    group.sample_size(20);
    for &size in &[64usize, 512, 1500] {
        for (label, mode) in [("vanilla", Mode::Vanilla), ("pathdump", Mode::PathDump)] {
            group.throughput(Throughput::Elements(4096));
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, &size| {
                let mut dp = DataPath::new(mode);
                dp.learn([0x02, 0, 0, 0, 0, 0x01], 1);
                let mut batch = batch(size, 4096);
                batch.run_once(&mut dp); // warm-up: live flow records
                b.iter(|| batch.run_once(&mut dp));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
