//! Criterion micro-benchmark: wire codec throughput for TIB records and
//! query responses (the serialization on the Figure 11/12 management path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pathdump_bench::synth_tib;
use pathdump_core::Response;
use pathdump_tib::TibRecord;
use pathdump_topology::{FatTree, FatTreeParams, HostId, TimeRange};

fn bench_codec(c: &mut Criterion) {
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let tib = synth_tib(&ft, HostId(0), 10_000, 1);
    let records: Vec<TibRecord> = tib.records().to_vec();
    let encoded = pathdump_wire::to_bytes(&records);
    let topk = Response::TopK {
        k: 10_000,
        entries: tib.top_k_flows(10_000, TimeRange::ANY),
    };
    let topk_bytes = pathdump_wire::to_bytes(&topk);

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_10k_records", |b| {
        b.iter(|| pathdump_wire::to_bytes(&records))
    });
    group.bench_function("encode_10k_records_into", |b| {
        // The streaming path: one buffer reused across iterations.
        let mut buf = Vec::with_capacity(encoded.len());
        b.iter(|| {
            buf.clear();
            pathdump_wire::encode_into(&records, &mut buf);
            buf.len()
        })
    });
    group.bench_function("decode_10k_records", |b| {
        b.iter(|| pathdump_wire::from_bytes::<Vec<TibRecord>>(&encoded).unwrap())
    });
    group.throughput(Throughput::Bytes(topk_bytes.len() as u64));
    group.bench_function("encode_topk_response", |b| {
        b.iter(|| pathdump_wire::to_bytes(&topk))
    });
    group.bench_function("decode_topk_response", |b| {
        b.iter(|| pathdump_wire::from_bytes::<Response>(&topk_bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
