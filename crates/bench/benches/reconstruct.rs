//! Criterion micro-benchmark: trajectory construction cost (the per-record
//! work of Figure 2) — cold reconstruction vs trajectory-cache hits vs the
//! memoized decode, on both the closed-form (≤2 tag) fast path and the
//! punted (≥3 tag) candidate-walk search the memo exists to amortize.

use criterion::{criterion_group, criterion_main, Criterion};
use pathdump_cherrypick::{
    tags_for_walk, CacheKey, DecodeMemo, FatTreeCherryPick, FatTreeReconstructor, TrajectoryCache,
};
use pathdump_simnet::TagHeaders;
use pathdump_topology::{FatTree, FatTreeParams, HostId, UpDownRouting};

type Case = (HostId, HostId, TagHeaders);

/// A mix of inter-pod shortest paths (1–2 tags, closed-form decode).
fn fast_cases(ft: &FatTree, policy: &FatTreeCherryPick) -> Vec<Case> {
    (0..64u32)
        .filter_map(|i| {
            let src = HostId(i % 128);
            let dst = HostId((i * 37 + 5) % 128);
            if src == dst {
                return None;
            }
            let paths = ft.all_paths(src, dst);
            let path = &paths[i as usize % paths.len()];
            let headers = tags_for_walk(policy, ft, &path.0);
            Some((src, dst, headers))
        })
        .collect()
}

/// Punted-path shapes: 7-switch walks with a down-path bounce (3 tags),
/// decoded through the candidate-walk search.
fn punt_cases(ft: &FatTree, policy: &FatTreeCherryPick) -> Vec<Case> {
    (0..32u32)
        .map(|i| {
            let (sp, dp) = ((i % 8) as usize, ((i + 1 + i / 8) % 8) as usize);
            let (st, bt, dt) = (
                (i % 4) as usize,
                ((i + 1) % 4) as usize,
                ((i + 2) % 4) as usize,
            );
            let a = ((i / 2) % 4) as usize;
            let walk = vec![
                ft.tor(sp, st),
                ft.agg(sp, a),
                ft.core(a * 4),
                ft.agg(dp, a),
                ft.tor(dp, bt),
                ft.agg(dp, (a + 1) % 4),
                ft.tor(dp, dt),
            ];
            let headers = tags_for_walk(policy, ft, &walk);
            assert!(headers.tag_count() >= 3, "punted shape carries 3+ tags");
            let src = ft.host(sp, st, 0);
            let dst = ft.host(dp, dt, 0);
            (src, dst, headers)
        })
        .collect()
}

fn decode_all(recon: &FatTreeReconstructor, cases: &[Case]) {
    for (src, dst, headers) in cases {
        let _ = recon.reconstruct(*src, *dst, headers);
    }
}

fn decode_all_memo(recon: &FatTreeReconstructor, memo: &mut DecodeMemo, cases: &[Case]) {
    for (src, dst, headers) in cases {
        let _ = recon.reconstruct_memo(memo, *src, *dst, headers.dscp_sample(), &headers.tags);
    }
}

fn bench_reconstruct(c: &mut Criterion) {
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    let fast = fast_cases(&ft, &policy);
    let punts = punt_cases(&ft, &policy);

    let mut group = c.benchmark_group("reconstruct");
    group.bench_function("cold_decode", |b| b.iter(|| decode_all(&recon, &fast)));
    group.bench_function("cached_decode", |b| {
        let mut cache = TrajectoryCache::new(4096);
        // Warm the cache.
        for (src, dst, headers) in &fast {
            let key = CacheKey {
                src_ip: pathdump_topology::Ip(src.0),
                dscp_sample: headers.dscp_sample(),
                tags: headers.tags.clone(),
            };
            let p = recon.reconstruct(*src, *dst, headers).unwrap();
            cache.insert(key, p);
        }
        b.iter(|| {
            for (src, _dst, headers) in &fast {
                let key = CacheKey {
                    src_ip: pathdump_topology::Ip(src.0),
                    dscp_sample: headers.dscp_sample(),
                    tags: headers.tags.clone(),
                };
                let _ = cache.lookup(&key).expect("warmed");
            }
        })
    });
    group.bench_function("memo_warm_decode", |b| {
        let mut memo = DecodeMemo::default();
        decode_all_memo(&recon, &mut memo, &fast); // warm
        b.iter(|| decode_all_memo(&recon, &mut memo, &fast))
    });
    // The candidate-walk (punted ≥3-tag) decode the memo amortizes.
    group.bench_function("walk_cold_decode", |b| {
        b.iter(|| decode_all(&recon, &punts))
    });
    group.bench_function("walk_memo_decode", |b| {
        let mut memo = DecodeMemo::default();
        decode_all_memo(&recon, &mut memo, &punts); // warm
        b.iter(|| decode_all_memo(&recon, &mut memo, &punts))
    });
    group.finish();
}

criterion_group!(benches, bench_reconstruct);
criterion_main!(benches);
