//! Criterion micro-benchmark: trajectory construction cost (the per-record
//! work of Figure 2) — cold reconstruction vs trajectory-cache hits.

use criterion::{criterion_group, criterion_main, Criterion};
use pathdump_cherrypick::{
    tags_for_walk, CacheKey, FatTreeCherryPick, FatTreeReconstructor, TrajectoryCache,
};
use pathdump_topology::{FatTree, FatTreeParams, HostId, UpDownRouting};

fn bench_reconstruct(c: &mut Criterion) {
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let policy = FatTreeCherryPick::new(ft.clone());
    let recon = FatTreeReconstructor::new(ft.clone());
    // Pre-compute (src, dst, headers) for a mix of inter-pod paths.
    let cases: Vec<_> = (0..64u32)
        .filter_map(|i| {
            let src = HostId(i % 128);
            let dst = HostId((i * 37 + 5) % 128);
            if src == dst {
                return None;
            }
            let paths = ft.all_paths(src, dst);
            let path = &paths[i as usize % paths.len()];
            let headers = tags_for_walk(&policy, &ft, &path.0);
            Some((src, dst, headers))
        })
        .collect();

    let mut group = c.benchmark_group("reconstruct");
    group.bench_function("cold_decode", |b| {
        b.iter(|| {
            for (src, dst, headers) in &cases {
                let _ = recon.reconstruct(*src, *dst, headers).unwrap();
            }
        })
    });
    group.bench_function("cached_decode", |b| {
        let mut cache = TrajectoryCache::new(4096);
        // Warm the cache.
        for (src, dst, headers) in &cases {
            let key = CacheKey {
                src_ip: pathdump_topology::Ip(src.0),
                dscp_sample: headers.dscp_sample(),
                tags: headers.tags.clone(),
            };
            let p = recon.reconstruct(*src, *dst, headers).unwrap();
            cache.insert(key, p);
        }
        b.iter(|| {
            for (src, _dst, headers) in &cases {
                let key = CacheKey {
                    src_ip: pathdump_topology::Ip(src.0),
                    dscp_sample: headers.dscp_sample(),
                    tags: headers.tags.clone(),
                };
                let _ = cache.lookup(&key).expect("warmed");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reconstruct);
criterion_main!(benches);
