//! Criterion micro-benchmark behind Table 1: latency of the Host API
//! queries against a paper-scale (240K-record) TIB.

use criterion::{criterion_group, criterion_main, Criterion};
use pathdump_bench::synth_tib;
use pathdump_topology::{
    FatTree, FatTreeParams, HostId, LinkDir, LinkPattern, Nanos, TimeRange, UpDownRouting,
};

fn bench_tib(c: &mut Criterion) {
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let tib = synth_tib(&ft, HostId(0), 240_000, 1);
    let flow = tib.records()[1000].flow;
    let path = tib.records()[1000].path.clone();
    let link = LinkDir::new(ft.agg(0, 0), ft.core(0));
    let tor = ft.topology().host(HostId(0)).tor;

    let mut group = c.benchmark_group("tib_240k");
    group.sample_size(20);
    group.bench_function("get_flows_link", |b| {
        b.iter(|| tib.get_flows(LinkPattern::exact(link.from, link.to), TimeRange::ANY))
    });
    group.bench_function("get_flows_wildcard_into_tor", |b| {
        b.iter(|| tib.get_flows(LinkPattern::into(tor), TimeRange::ANY))
    });
    group.bench_function("get_flows_wildcard_into_tor_1min", |b| {
        // Ranged wildcard: posting list intersected with the time index.
        let r = TimeRange::between(Nanos::from_secs(600), Nanos::from_secs(660));
        b.iter(|| tib.get_flows(LinkPattern::into(tor), r))
    });
    group.bench_function("get_paths", |b| {
        b.iter(|| tib.get_paths(flow, LinkPattern::ANY, TimeRange::ANY))
    });
    group.bench_function("get_count", |b| {
        b.iter(|| tib.get_count(flow, Some(&path), TimeRange::ANY))
    });
    group.bench_function("get_duration", |b| {
        b.iter(|| tib.get_duration(flow, None, TimeRange::ANY))
    });
    group.bench_function("top_k_10000", |b| {
        b.iter(|| tib.top_k_flows(10_000, TimeRange::ANY))
    });
    group.finish();
}

criterion_group!(benches, bench_tib);
criterion_main!(benches);
