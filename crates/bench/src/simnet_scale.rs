//! Simnet engine scale benchmark: a dataplane-heavy fat-tree workload
//! (timer-driven periodic senders on every host, per-packet spraying)
//! driven to completion on a chosen engine, reporting events/sec and
//! wall-clock — the `simnet` section of `BENCH_tib.json` and the k=16
//! smoke bin both build on this.
//!
//! The link rates are scaled up to 10 Gb/s (vs the figure-reproduction
//! default of 100 Mb/s) so that lookahead windows hold real work: at
//! paper-figure rates a 2 µs propagation window sees ~0.02 packets per
//! port, which benchmarks the synchronization rather than the engine.

use pathdump_simnet::{
    EngineKind, HostApi, LinkConfig, LoadBalance, NoTagging, Packet, SimConfig, Simulator, World,
};
use pathdump_topology::{FatTree, FatTreeParams, FlowId, HostId, Nanos, UpDownRouting, MICROS};
use std::time::Instant;

/// One periodic sender: `remaining` packets of `flow` every `period`.
struct Sender {
    host: HostId,
    flow: FlowId,
    remaining: u32,
    period: Nanos,
}

/// A minimal world of periodic senders; deliveries are only counted, so
/// the measured work is the fabric dataplane, not edge logic.
pub struct LoadWorld {
    senders: Vec<Sender>,
    /// Packets that reached their destination NIC.
    pub delivered: u64,
}

impl World for LoadWorld {
    fn on_packet(&mut self, _api: &mut HostApi<'_>, _pkt: Packet) {
        self.delivered += 1;
    }

    fn on_timer(&mut self, api: &mut HostApi<'_>, token: u64) {
        let s = &mut self.senders[token as usize];
        if s.remaining == 0 {
            return;
        }
        s.remaining -= 1;
        api.send(Packet::data(0, s.flow, 0, 1460, api.now()));
        if s.remaining > 0 {
            let period = s.period;
            api.set_timer(period, token);
        }
    }
}

/// Workload shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct ScaleParams {
    /// Fat-tree arity.
    pub k: u16,
    /// Packets each host streams to its partner.
    pub pkts_per_host: u32,
    /// Link rate for both link classes.
    pub rate_bps: u64,
    /// Fabric propagation delay (µs) — the pod↔core lookahead.
    pub fab_prop_us: u64,
    /// Host NIC propagation delay (µs) — the edge lookahead.
    pub host_prop_us: u64,
    /// Per-host send period (ns).
    pub period_ns: u64,
}

impl ScaleParams {
    /// The default k=8 comparison point recorded in `BENCH_tib.json`.
    pub fn k8_default() -> Self {
        ScaleParams {
            k: 8,
            pkts_per_host: 300,
            rate_bps: 10_000_000_000,
            fab_prop_us: 5,
            host_prop_us: 2,
            period_ns: 10_000,
        }
    }
}

/// The scaled-up configuration for one parameter set (see module docs).
/// `workers` is [`SimConfig::shard_workers`]: `0` = inline windowed
/// rounds on the calling thread, `n ≥ 1` = the persistent worker pool.
pub fn scale_config(p: ScaleParams, engine: EngineKind, workers: usize) -> SimConfig {
    let mut cfg = SimConfig {
        fabric_link: LinkConfig {
            rate_bps: p.rate_bps,
            prop_delay: Nanos(p.fab_prop_us * MICROS),
            queue_pkts: 64,
        },
        host_link: LinkConfig {
            rate_bps: p.rate_bps,
            prop_delay: Nanos(p.host_prop_us * MICROS),
            queue_pkts: 128,
        },
        record_ground_truth: false,
        collect_drop_log: false,
        seed: 0xBEEF_0001,
        ..SimConfig::default()
    };
    cfg.engine = engine;
    cfg.shard_workers = workers;
    cfg
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct ScaleResult {
    pub engine: EngineKind,
    pub workers: usize,
    pub k: u16,
    pub injected: u64,
    pub delivered: u64,
    pub events: u64,
    pub wall_secs: f64,
    pub events_per_sec: f64,
}

/// Builds the workload and drives it to completion on `engine`,
/// measuring only the run (not construction).
pub fn run_scale_with(p: ScaleParams, engine: EngineKind, workers: usize) -> ScaleResult {
    let ft = FatTree::build(FatTreeParams { k: p.k });
    let topo = ft.topology();
    let n = topo.num_hosts() as u32;
    // Each host streams to a partner ~half the fabric away; periods are
    // staggered per host so the fabric never beats in lock-step.
    let senders: Vec<Sender> = (0..n)
        .map(|h| {
            let src = HostId(h);
            let dst = HostId((h + n / 2 + (h % 7)) % n);
            let dst = if dst == src { HostId((h + 1) % n) } else { dst };
            Sender {
                host: src,
                flow: FlowId::tcp(
                    topo.host(src).ip,
                    2000 + (h % 3000) as u16,
                    topo.host(dst).ip,
                    80,
                ),
                remaining: p.pkts_per_host,
                period: Nanos(p.period_ns + (h as u64 % 13) * 100),
            }
        })
        .collect();
    let world = LoadWorld {
        senders,
        delivered: 0,
    };
    let mut sim = Simulator::new(
        &ft,
        scale_config(p, engine, workers),
        Box::new(NoTagging),
        world,
    );
    sim.set_lb_all(LoadBalance::Spray);
    for i in 0..sim.world.senders.len() {
        let host = sim.world.senders[i].host;
        let offset = Nanos((i as u64 % 16) * MICROS / 4);
        sim.schedule_timer(host, offset, i as u64);
    }
    let start = Instant::now();
    sim.run_to_completion(Nanos::MAX);
    let wall = start.elapsed().as_secs_f64();
    ScaleResult {
        engine,
        workers,
        k: p.k,
        injected: sim.stats.injected_pkts,
        delivered: sim.world.delivered,
        events: sim.stats.events,
        wall_secs: wall,
        events_per_sec: sim.stats.events as f64 / wall.max(1e-9),
    }
}

/// [`run_scale_with`] at the default parameter shape for arity `k`.
pub fn run_scale(k: u16, pkts_per_host: u32, engine: EngineKind, workers: usize) -> ScaleResult {
    let p = ScaleParams {
        k,
        pkts_per_host,
        ..ScaleParams::k8_default()
    };
    run_scale_with(p, engine, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bench workload itself must be engine-invariant (tiny instance):
    /// sequential, sharded-inline, and pooled all process one schedule.
    #[test]
    fn scale_workload_engine_invariant() {
        let a = run_scale(4, 20, EngineKind::Sequential, 0);
        for workers in [0usize, 2] {
            let b = run_scale(4, 20, EngineKind::Sharded, workers);
            assert_eq!(a.injected, b.injected, "workers={workers}");
            assert_eq!(a.delivered, b.delivered, "workers={workers}");
            assert_eq!(a.events, b.events, "workers={workers}");
        }
        assert!(a.delivered > 0);
    }
}
