//! Figure 8: time to reach 100% recall *and* precision for silent-drop
//! localization, (a) vs loss rate at fixed load, (b) vs network load at
//! fixed loss rate; error bars are the standard error over runs.

use pathdump_apps::silent_drops::{score, SilentDropLocalizer};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, mean, row, stderr, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::{FaultState, SimConfig};
use pathdump_topology::{LinkDir, Nanos, Tier, UpDownRouting};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn candidate_links(tb: &Testbed) -> Vec<LinkDir> {
    let topo = tb.ft.topology();
    let rank = |t: Tier| match t {
        Tier::Tor => 0,
        Tier::Agg => 1,
        Tier::Core => 2,
    };
    topo.links()
        .map(|l| {
            if rank(topo.switch(l.from).tier) > rank(topo.switch(l.to).tier) {
                l
            } else {
                l.reversed()
            }
        })
        .collect()
}

/// Runs until both recall and precision hit 1.0; returns
/// `(time_to_full_recall, time_to_perfect)` in seconds, each `None` if the
/// deadline passed first. The paper's Figure 8 uses the perfect metric;
/// at our scaled-down noisy settings precision may never reach 1.0 (see
/// the Figure 7 note), so the recall milestone is reported alongside.
fn time_to_perfect(
    n_faulty: usize,
    loss_rate: f64,
    load: f64,
    deadline_s: u64,
    seed: u64,
) -> (Option<f64>, Option<f64>) {
    let cfg = SimConfig {
        seed,
        ..Default::default()
    };
    let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
    let cands = candidate_links(&tb);
    let mut faulty: Vec<LinkDir> = Vec::new();
    while faulty.len() < n_faulty {
        let l = cands[rng.gen_range(0..cands.len())];
        if !faulty.contains(&l) {
            faulty.push(l);
        }
    }
    for l in &faulty {
        tb.sim.set_directed_fault(
            l.from,
            l.to,
            FaultState {
                silent_drop_rate: loss_rate,
                ..FaultState::HEALTHY
            },
        );
    }
    tb.add_web_traffic(load, Nanos::from_secs(deadline_s), seed ^ 0xEB);
    let mut app = SilentDropLocalizer::new();
    let step = Nanos::from_millis(200);
    let mut t = Nanos::ZERO;
    let mut recall_at: Option<f64> = None;
    while t < Nanos::from_secs(deadline_s) {
        t = t.saturating_add(step);
        tb.sim.run_until(t);
        app.process_alarms(&mut tb.sim.world, t, Nanos::ZERO);
        if !app.coverage.is_empty() {
            let acc = score(&app.localize(), &faulty);
            if acc.recall >= 1.0 && recall_at.is_none() {
                recall_at = Some(t.as_secs_f64());
            }
            if acc.recall >= 1.0 && acc.precision >= 1.0 {
                return (recall_at, Some(t.as_secs_f64()));
            }
        }
    }
    (recall_at, None)
}

fn sweep(
    label: &str,
    points: &[(f64, f64)],
    n_faulty: usize,
    runs: usize,
    deadline: u64,
    seed: u64,
) {
    println!("\n({label}) faulty interfaces = {n_faulty}");
    row(&[
        "x".into(),
        "full recall (s)".into(),
        "recall+prec (s)".into(),
        "stderr".into(),
        "converged".into(),
    ]);
    for (i, &(loss, load)) in points.iter().enumerate() {
        let mut recall_times = Vec::new();
        let mut times = Vec::new();
        let mut converged = 0;
        for r in 0..runs {
            let (rt, pt) = time_to_perfect(
                n_faulty,
                loss,
                load,
                deadline,
                seed + (i as u64) * 101 + (r as u64) * 7919,
            );
            if let Some(t) = rt {
                recall_times.push(t);
            }
            if let Some(t) = pt {
                times.push(t);
                converged += 1;
            }
        }
        row(&[
            format!("loss {:.0}% load {:.0}%", loss * 100.0, load * 100.0),
            if recall_times.is_empty() {
                ">deadline".into()
            } else {
                format!("{:.1}", mean(&recall_times))
            },
            if times.is_empty() {
                ">deadline".into()
            } else {
                format!("{:.1}", mean(&times))
            },
            format!("{:.2}", stderr(&recall_times)),
            format!("{converged}/{runs}"),
        ]);
    }
}

fn main() {
    let args = Args::parse();
    let runs = if args.runs > 0 { args.runs } else { 3 };
    let deadline = if args.full { 200 } else { 90 };
    banner(
        "Figure 8",
        "Time to 100% recall & precision vs loss rate and network load",
        "higher loss rate or higher load -> more alerts -> faster \
         convergence (paper: 20-160s depending on setting)",
    );
    println!("runs per point: {runs}; deadline {deadline}s; 1 faulty interface");
    // (a) loss sweep at 70% load. Scaled-down defaults use higher loss
    // rates than the paper's 1-4% so convergence fits the short deadline.
    let loss_points: Vec<(f64, f64)> = if args.full {
        [0.01, 0.02, 0.03, 0.04].iter().map(|&l| (l, 0.7)).collect()
    } else {
        [0.05, 0.10, 0.15, 0.20].iter().map(|&l| (l, 0.7)).collect()
    };
    sweep(
        "a: loss-rate sweep",
        &loss_points,
        1,
        runs,
        deadline,
        args.seed,
    );
    // (b) load sweep at fixed loss.
    let fixed_loss = if args.full { 0.01 } else { 0.10 };
    let load_points: Vec<(f64, f64)> = [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&ld| (fixed_loss, ld))
        .collect();
    sweep(
        "b: load sweep",
        &load_points,
        1,
        runs,
        deadline,
        args.seed + 5000,
    );
    println!("\nresult: convergence time falls as loss rate or load rises, as in Fig. 8");
}
