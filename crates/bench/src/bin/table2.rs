//! Table 2: the debugging applications PathDump supports, with pointers to
//! the module and test that demonstrates each row in this repository.

use pathdump_bench::banner;

fn main() {
    banner(
        "Table 2",
        "Debugging applications supported by PathDump",
        "PathDump supports >85% of the applications surveyed from recent \
         debugging papers; two rows genuinely need in-network support",
    );
    let rows: &[(&str, &str, &str)] = &[
        (
            "Loop freedom",
            "yes",
            "apps::routing_loop (tests four_switch/eight_switch_loop_detected)",
        ),
        (
            "Load imbalance diagnosis",
            "yes",
            "apps::load_imbalance (ecmp_size_split_visible_in_fsd, spraying_bias_visible_per_path)",
        ),
        (
            "Congested link diagnosis",
            "yes",
            "apps::traffic::flows_on_link (congested_link_flows)",
        ),
        (
            "Silent blackhole detection",
            "yes",
            "apps::blackhole (agg_core/tor_agg blackhole tests)",
        ),
        (
            "Silent packet drop detection",
            "yes",
            "apps::silent_drops (localizes_injected_silent_drop)",
        ),
        (
            "Packet drops on servers",
            "yes",
            "simnet NIC faults + agent records (nic_silent_fault_applies)",
        ),
        (
            "Overlay loop detection",
            "NO",
            "needs in-network support (paper Table 2: unsupported)",
        ),
        (
            "Protocol bugs",
            "yes",
            "transport retransmission counters + TIB evidence",
        ),
        (
            "Isolation",
            "yes",
            "apps::traffic::isolation_violations (isolation_check)",
        ),
        (
            "Incorrect packet modification",
            "NO*",
            "pinpointed when the trajectory is infeasible (§2.4): \
             fattree_wrong_id_detected, corrupted_tags_raise_infeasible",
        ),
        (
            "Waypoint routing",
            "yes",
            "core::agent::Invariant{forbidden} (forbidden_switch_detected; invert = waypoint)",
        ),
        (
            "DDoS diagnosis",
            "yes",
            "apps::traffic::ddos_sources (ddos_sources_ranked)",
        ),
        (
            "Traffic matrix",
            "yes",
            "apps::traffic::{traffic_matrix, link_utilization}",
        ),
        (
            "Netshark (path-aware logger)",
            "yes",
            "TIB per-path flow records + getPaths",
        ),
        (
            "Max path length",
            "yes",
            "core::agent::Invariant{max_hops} (failover_path_raises_pc_fail)",
        ),
    ];
    let supported = rows.iter().filter(|(_, s, _)| s.starts_with("yes")).count();
    for (app, sup, place) in rows {
        println!("{sup:>4}  {app:<34} {place}");
    }
    println!(
        "\nsupported: {supported}/{} = {:.0}% (paper: >85%; the two gaps match \
         the paper's own Table 2)",
        rows.len(),
        supported as f64 / rows.len() as f64 * 100.0
    );
}
