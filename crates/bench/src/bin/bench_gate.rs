//! The CI bench-regression gate: re-measures the three gated perf
//! metrics and fails (nonzero exit) when any regresses more than the
//! tolerance against the committed `BENCH_tib.json` baseline — the first
//! *blocking* perf check in the pipeline, so a PR that halves the engine's
//! throughput no longer sails through on green tests.
//!
//! Gated metrics (see `pathdump_bench::report` for the comparison logic):
//!
//! * `events_per_sec` — the k=8 simnet workload on the sharded-inline
//!   engine, measured in-process (median of `--runs` runs; higher better).
//! * `strip_path_min_speedup` — the dpswitch zero-copy strip-path speedup
//!   vs the fixed pre-PR-4 medians, re-derived from a fresh
//!   `dpswitch_throughput` bench run (a machine-relative ratio; higher
//!   better).
//! * `get_flows_wildcard_into_tor` — the TIB wildcard-query median from a
//!   fresh `tib_queries` bench run (lower better).
//!
//! Usage: `cargo run --release -p pathdump_bench --bin bench_gate
//! [-- --baseline PATH] [--tolerance F] [--runs N] [--handicap F]`.
//! `--handicap 2` divides the measured performance by 2 before comparing —
//! the knob used to demonstrate that the gate actually fails on an
//! injected 2× slowdown.
//!
//! Caveat: `events_per_sec` and the wildcard-query median are absolute
//! timings, so the committed baseline is **hardware-class-sensitive** —
//! it must be produced on (or re-based to) the machine class that
//! enforces it. When the CI runner class changes, refresh the baseline
//! with `bench_trajectory` and commit it; `--tolerance` widens the band
//! for a one-off run.

use pathdump_bench::report::{
    failing_checks, json_number, recorded_events_per_sec, recorded_median_ns, run_cargo_bench,
    strip_path_min_speedup, Direction, GateCheck,
};
use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams};
use pathdump_simnet::EngineKind;

struct GateArgs {
    baseline: String,
    tolerance: f64,
    runs: usize,
    handicap: f64,
}

fn parse_args() -> GateArgs {
    let mut g = GateArgs {
        baseline: "BENCH_tib.json".to_string(),
        tolerance: 0.30,
        runs: 5,
        handicap: 1.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => g.baseline = next("--baseline"),
            "--tolerance" => g.tolerance = next("--tolerance").parse().expect("--tolerance"),
            "--runs" => g.runs = next("--runs").parse().expect("--runs"),
            "--handicap" => g.handicap = next("--handicap").parse().expect("--handicap"),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    assert!(g.handicap >= 1.0, "--handicap must be >= 1 (a slowdown)");
    g
}

/// Median events/sec of the k=8 workload on the sharded-inline engine.
fn measure_simnet_events_per_sec(runs: usize) -> f64 {
    let p = ScaleParams::k8_default();
    let mut rates: Vec<f64> = (0..runs.max(1))
        .map(|_| run_scale_with(p, EngineKind::Sharded, 0).events_per_sec)
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn main() {
    let args = parse_args();
    let doc = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read baseline {}: {e}", args.baseline);
        std::process::exit(1);
    });

    // Committed baselines. A baseline file missing a gated metric is a
    // gate failure, not a skip — otherwise deleting the baseline would
    // turn the gate green.
    let mut missing = Vec::new();
    let mut need = |v: Option<f64>, what: &'static str| -> f64 {
        if v.is_none() {
            missing.push(what);
        }
        v.unwrap_or(f64::NAN)
    };
    let base_eps = need(
        recorded_events_per_sec(&doc, "sharded"),
        "simnet sharded events_per_sec",
    );
    let base_strip = need(
        json_number(&doc, "strip_path_min_speedup"),
        "strip_path_min_speedup",
    );
    let base_wildcard = need(
        recorded_median_ns(&doc, "tib_240k/get_flows_wildcard_into_tor"),
        "get_flows_wildcard_into_tor median",
    );
    if !missing.is_empty() {
        eprintln!("FAIL: baseline {} lacks: {missing:?}", args.baseline);
        std::process::exit(1);
    }

    // Fresh measurements.
    eprintln!(
        "bench_gate: measuring simnet k=8 (sharded-inline, {} runs)...",
        args.runs
    );
    let cur_eps = measure_simnet_events_per_sec(args.runs) / args.handicap;

    eprintln!("bench_gate: running dpswitch_throughput...");
    let dpswitch = run_cargo_bench("dpswitch_throughput").unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    });
    let cur_strip = strip_path_min_speedup(&dpswitch).unwrap_or_else(|| {
        eprintln!("FAIL: dpswitch bench produced no pathdump strip medians");
        std::process::exit(1);
    }) / args.handicap;

    eprintln!("bench_gate: running tib_queries...");
    let tib = run_cargo_bench("tib_queries").unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    });
    let cur_wildcard = tib
        .iter()
        .find(|e| e.name == "tib_240k/get_flows_wildcard_into_tor")
        .map(|e| e.median_ns)
        .unwrap_or_else(|| {
            eprintln!("FAIL: tib bench lacks get_flows_wildcard_into_tor");
            std::process::exit(1);
        })
        * args.handicap;

    let checks = vec![
        GateCheck {
            metric: "events_per_sec",
            baseline: base_eps,
            current: cur_eps,
            direction: Direction::HigherIsBetter,
        },
        GateCheck {
            metric: "strip_path_min_speedup",
            baseline: base_strip,
            current: cur_strip,
            direction: Direction::HigherIsBetter,
        },
        GateCheck {
            metric: "get_flows_wildcard_into_tor",
            baseline: base_wildcard,
            current: cur_wildcard,
            direction: Direction::LowerIsBetter,
        },
    ];

    println!(
        "bench_gate vs {} (tolerance {:.0}%{}):",
        args.baseline,
        args.tolerance * 100.0,
        if args.handicap > 1.0 {
            format!(", injected {:.2}x handicap", args.handicap)
        } else {
            String::new()
        }
    );
    for c in &checks {
        println!(
            "  {:<28} baseline {:>14.1}  current {:>14.1}  regression {:>5.2}x  {}",
            c.metric,
            c.baseline,
            c.current,
            c.regression(),
            if c.regressed(args.tolerance) {
                "FAIL"
            } else {
                "ok"
            }
        );
    }
    let bad = failing_checks(&checks, args.tolerance);
    if !bad.is_empty() {
        eprintln!(
            "FAIL: {} gated metric(s) regressed more than {:.0}%",
            bad.len(),
            args.tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("ok: all gated metrics within tolerance");
}
