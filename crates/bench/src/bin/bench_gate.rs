//! The CI bench-regression gate: re-measures the three gated perf
//! metrics and fails (nonzero exit) when any regresses more than the
//! tolerance against the committed `BENCH_tib.json` baseline — the first
//! *blocking* perf check in the pipeline, so a PR that halves the engine's
//! throughput no longer sails through on green tests.
//!
//! Gated metrics (see `pathdump_bench::report` for the comparison logic):
//!
//! * `events_per_sec` — the k=8 simnet workload on the sharded-inline
//!   engine, measured in-process (median of `--runs` runs; higher better).
//! * `strip_path_min_speedup` — the dpswitch zero-copy strip-path speedup
//!   vs the fixed pre-PR-4 medians, re-derived from a fresh
//!   `dpswitch_throughput` bench run (higher better). The committed
//!   baseline was re-based at the batched-pipeline level (~2.8, up from
//!   ~2.2), so the gate now holds the improved level.
//! * `batched_over_frame_512` — the batched-parse case: the per-frame
//!   512 B median over the batched one (`pathdump_frame/512` ÷
//!   `pathdump/512`; higher better). A same-run ratio, so far less
//!   drift-exposed than absolute medians, but its two cases are sampled
//!   minutes apart within the run, so it gets a slightly widened band
//!   ([`BATCH_RATIO_SCALE`]) and fails when the batch pipeline becomes a
//!   clear pessimization vs per-frame processing.
//! * `pathdump_gap_512` — the tentpole acceptance ratio: the PathDump
//!   512 B median over vanilla (`pathdump/512` ÷ `vanilla/512`; lower
//!   better), gated against the committed ratio *and* held under the
//!   absolute [`GAP_512_CEILING`], which survives baseline re-basing.
//! * `get_flows_wildcard_into_tor` — the TIB wildcard-query median from a
//!   fresh `tib_queries` bench run (lower better).
//! * `tib_scale_ingest_per_sec` / `tib_scale_recovery_ms` — the tiered
//!   storage engine at the 1M-record trajectory shape: ingest rate with
//!   sealing + cold eviction (higher better) and the crash-recovery
//!   replay wall (lower better). Both absolute timings, so they run in
//!   the widened [`DRIFT_SCALE`] band; the blocking 10M-record budget
//!   check is the separate `tib_scale` bin.
//! * `ingest_events_per_sec` — the sharded host-agent ingest rate at the
//!   recorded multi-worker point (higher better). **Skipped when the
//!   runner has one CPU**: without parallelism the curve only reflects
//!   shard-locality and replay-batching effects minus spawn/join
//!   overhead, so a 1-CPU box records the honest curve in
//!   `BENCH_tib.json` but does not gate on it (same policy as the simnet
//!   threaded numbers).
//!
//! Usage: `cargo run --release -p pathdump_bench --bin bench_gate
//! [-- --baseline PATH] [--tolerance F] [--runs N] [--handicap F]`.
//! `--handicap 2` divides the measured performance by 2 before comparing —
//! the knob used to demonstrate that the gate actually fails on an
//! injected 2× slowdown.
//!
//! Caveat: `events_per_sec`, `strip_path_min_speedup`, the wildcard-query
//! median and the ingest rate are absolute timings, so the committed
//! baseline is **hardware-class-sensitive** — it must be produced on (or
//! re-based to) the machine class that enforces it — and even on one
//! machine their medians drift up to ~2x between timing windows on
//! shared/virtualized runners. Those gates therefore run with a widened
//! band ([`DRIFT_SCALE`] × the base tolerance); the same-run ratio gates
//! keep the tight band and carry the precision. When the CI runner class
//! changes, refresh the baseline with `bench_trajectory` and commit it;
//! `--tolerance` widens every band proportionally for a one-off run.

use pathdump_bench::ingest_scale::{build_stream, run_ingest, IngestParams};
use pathdump_bench::report::{
    failing_checks, json_number, recorded_events_per_sec, recorded_ingest_events_per_sec,
    recorded_median_ns, recorded_tib_scale_number, run_cargo_bench, strip_path_min_speedup,
    Direction, GateCheck,
};
use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams};
use pathdump_bench::tib_scale::{run_tib_scale, TibScaleParams, TibScaleResult};
use pathdump_simnet::EngineKind;

/// Hard ceiling on the PathDump-vs-vanilla 512 B gap — the PR-7
/// acceptance criterion (was ~5.8× before the batched pipeline, ~3.1×
/// after; the box-speed drift on shared runners leaves the ratio stable
/// within ~0.2). Unlike the baseline comparison this does not drift when
/// `BENCH_tib.json` is re-based.
const GAP_512_CEILING: f64 = 3.5;

/// Tolerance multiplier for the absolute-timing gates (see
/// `GateCheck::tolerance_scale`): the virtualized runner's absolute
/// medians drift up to ~2x between timing windows with no code change,
/// so those gates get a `1 + 0.30 * 4 = 2.2x` band — wide enough to
/// absorb the drift, still tight enough to trip on the order-of-magnitude
/// regressions they exist to catch. The same-run `pathdump_gap_512`
/// ratio is genuinely drift-stable and keeps the tight 30% band, so it
/// carries the precision. `batched_over_frame_512` compares two cases
/// sampled minutes apart within one bench run, so in-run drift skews it
/// more — it gets [`BATCH_RATIO_SCALE`], a band that still fails when the
/// batched pipeline becomes clearly slower than per-frame processing.
const DRIFT_SCALE: f64 = 4.0;

/// See [`DRIFT_SCALE`]: the band for `batched_over_frame_512`
/// (`1 + 0.30 * 1.5 = 1.45x`, i.e. the batched median may not exceed the
/// per-frame median by more than ~15% of the committed ~1.24 ratio).
const BATCH_RATIO_SCALE: f64 = 1.5;

struct GateArgs {
    baseline: String,
    tolerance: f64,
    runs: usize,
    handicap: f64,
}

fn parse_args() -> GateArgs {
    let mut g = GateArgs {
        baseline: "BENCH_tib.json".to_string(),
        tolerance: 0.30,
        runs: 5,
        handicap: 1.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => g.baseline = next("--baseline"),
            "--tolerance" => g.tolerance = next("--tolerance").parse().expect("--tolerance"),
            "--runs" => g.runs = next("--runs").parse().expect("--runs"),
            "--handicap" => g.handicap = next("--handicap").parse().expect("--handicap"),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    assert!(g.handicap >= 1.0, "--handicap must be >= 1 (a slowdown)");
    g
}

/// Median events/sec of the k=8 workload on the sharded-inline engine.
fn measure_simnet_events_per_sec(runs: usize) -> f64 {
    let p = ScaleParams::k8_default();
    let mut rates: Vec<f64> = (0..runs.max(1))
        .map(|_| run_scale_with(p, EngineKind::Sharded, 0).events_per_sec)
        .collect();
    rates.sort_by(f64::total_cmp);
    rates[rates.len() / 2]
}

fn main() {
    let args = parse_args();
    let doc = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read baseline {}: {e}", args.baseline);
        std::process::exit(1);
    });

    // Committed baselines. A baseline file missing a gated metric is a
    // gate failure, not a skip — otherwise deleting the baseline would
    // turn the gate green.
    let mut missing = Vec::new();
    let mut need = |v: Option<f64>, what: &'static str| -> f64 {
        if v.is_none() {
            missing.push(what);
        }
        v.unwrap_or(f64::NAN)
    };
    let base_eps = need(
        recorded_events_per_sec(&doc, "sharded"),
        "simnet sharded events_per_sec",
    );
    let base_strip = need(
        json_number(&doc, "strip_path_min_speedup"),
        "strip_path_min_speedup",
    );
    let base_wildcard = need(
        recorded_median_ns(&doc, "tib_240k/get_flows_wildcard_into_tor"),
        "get_flows_wildcard_into_tor median",
    );
    let recorded_ratio = |num: &str, den: &str| -> Option<f64> {
        match (recorded_median_ns(&doc, num), recorded_median_ns(&doc, den)) {
            (Some(n), Some(d)) => Some(n / d.max(1e-9)),
            _ => None,
        }
    };
    let base_batched_ratio = need(
        recorded_ratio("dpswitch/pathdump_frame/512", "dpswitch/pathdump/512"),
        "dpswitch pathdump_frame/512 + pathdump/512 medians",
    );
    let base_gap = need(
        recorded_ratio("dpswitch/pathdump/512", "dpswitch/vanilla/512"),
        "dpswitch pathdump/512 + vanilla/512 medians",
    );
    // The ingest gate only engages on multicore runners (see module docs);
    // its worker count matches a point the trajectory always records.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ingest_workers = cpus.clamp(2, 4);
    let base_ingest = if cpus > 1 {
        need(
            recorded_ingest_events_per_sec(&doc, ingest_workers),
            "ingest events_per_sec",
        )
    } else {
        f64::NAN
    };
    let base_tib_ingest = need(
        recorded_tib_scale_number(&doc, "ingest_events_per_sec"),
        "tib_scale ingest_events_per_sec",
    );
    let base_tib_recovery = need(
        recorded_tib_scale_number(&doc, "recovery_wall_ms"),
        "tib_scale recovery_wall_ms",
    );
    if !missing.is_empty() {
        eprintln!("FAIL: baseline {} lacks: {missing:?}", args.baseline);
        std::process::exit(1);
    }

    // Fresh measurements.
    eprintln!(
        "bench_gate: measuring simnet k=8 (sharded-inline, {} runs)...",
        args.runs
    );
    let cur_eps = measure_simnet_events_per_sec(args.runs) / args.handicap;

    eprintln!("bench_gate: running dpswitch_throughput...");
    let dpswitch = run_cargo_bench("dpswitch_throughput").unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    });
    let cur_strip = strip_path_min_speedup(&dpswitch).unwrap_or_else(|| {
        eprintln!("FAIL: dpswitch bench produced no pathdump strip medians");
        std::process::exit(1);
    }) / args.handicap;
    let dpswitch_median = |name: &str| -> f64 {
        dpswitch
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.median_ns)
            .unwrap_or_else(|| {
                eprintln!("FAIL: dpswitch bench lacks {name}");
                std::process::exit(1);
            })
    };
    // Same-run ratios: immune to box-speed drift between gate runs.
    let cur_batched_ratio = dpswitch_median("dpswitch/pathdump_frame/512")
        / dpswitch_median("dpswitch/pathdump/512").max(1e-9)
        / args.handicap;
    let cur_gap = dpswitch_median("dpswitch/pathdump/512")
        / dpswitch_median("dpswitch/vanilla/512").max(1e-9)
        * args.handicap;

    eprintln!("bench_gate: running tib_queries...");
    let tib = run_cargo_bench("tib_queries").unwrap_or_else(|e| {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    });
    let cur_wildcard = tib
        .iter()
        .find(|e| e.name == "tib_240k/get_flows_wildcard_into_tor")
        .map(|e| e.median_ns)
        .unwrap_or_else(|| {
            eprintln!("FAIL: tib bench lacks get_flows_wildcard_into_tor");
            std::process::exit(1);
        })
        * args.handicap;

    let mut checks = vec![
        GateCheck {
            metric: "events_per_sec",
            baseline: base_eps,
            current: cur_eps,
            direction: Direction::HigherIsBetter,
            tolerance_scale: DRIFT_SCALE,
        },
        GateCheck {
            metric: "strip_path_min_speedup",
            baseline: base_strip,
            current: cur_strip,
            direction: Direction::HigherIsBetter,
            tolerance_scale: DRIFT_SCALE,
        },
        GateCheck {
            metric: "batched_over_frame_512",
            baseline: base_batched_ratio,
            current: cur_batched_ratio,
            direction: Direction::HigherIsBetter,
            tolerance_scale: BATCH_RATIO_SCALE,
        },
        GateCheck {
            metric: "pathdump_gap_512",
            baseline: base_gap,
            current: cur_gap,
            direction: Direction::LowerIsBetter,
            tolerance_scale: 1.0,
        },
        GateCheck {
            metric: "get_flows_wildcard_into_tor",
            baseline: base_wildcard,
            current: cur_wildcard,
            direction: Direction::LowerIsBetter,
            tolerance_scale: DRIFT_SCALE,
        },
    ];

    eprintln!("bench_gate: measuring tiered-store scale workload (1M records, 3 runs)...");
    let dir = std::env::temp_dir().join(format!("pathdump-gate-tib-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create eviction dir");
    let mut tib_runs: Vec<TibScaleResult> = (0..3)
        .map(|_| run_tib_scale(TibScaleParams::trajectory_shape(), &dir))
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    tib_runs.sort_by(|a, b| a.ingest_wall_secs.total_cmp(&b.ingest_wall_secs));
    let tib_median = &tib_runs[tib_runs.len() / 2];
    checks.push(GateCheck {
        metric: "tib_scale_ingest_per_sec",
        baseline: base_tib_ingest,
        current: tib_median.ingest_events_per_sec / args.handicap,
        direction: Direction::HigherIsBetter,
        tolerance_scale: DRIFT_SCALE,
    });
    checks.push(GateCheck {
        metric: "tib_scale_recovery_ms",
        baseline: base_tib_recovery,
        current: tib_median.recovery_wall_ms * args.handicap,
        direction: Direction::LowerIsBetter,
        tolerance_scale: DRIFT_SCALE,
    });

    if cpus > 1 {
        eprintln!(
            "bench_gate: measuring sharded ingest ({} workers, {} runs)...",
            ingest_workers, args.runs
        );
        let stream = build_stream(IngestParams::default_shape());
        let mut rates: Vec<f64> = (0..args.runs.max(1))
            .map(|_| run_ingest(&stream, ingest_workers).events_per_sec)
            .collect();
        rates.sort_by(f64::total_cmp);
        checks.push(GateCheck {
            metric: "ingest_events_per_sec",
            baseline: base_ingest,
            current: rates[rates.len() / 2] / args.handicap,
            direction: Direction::HigherIsBetter,
            tolerance_scale: DRIFT_SCALE,
        });
    } else {
        println!(
            "bench_gate: 1 cpu — ingest scaling recorded in the trajectory but not gated \
             (the curve measures no parallelism on this box)"
        );
    }

    println!(
        "bench_gate vs {} (tolerance {:.0}%{}):",
        args.baseline,
        args.tolerance * 100.0,
        if args.handicap > 1.0 {
            format!(", injected {:.2}x handicap", args.handicap)
        } else {
            String::new()
        }
    );
    for c in &checks {
        println!(
            "  {:<28} baseline {:>14.1}  current {:>14.1}  regression {:>5.2}x  band {:>4.2}x  {}",
            c.metric,
            c.baseline,
            c.current,
            c.regression(),
            1.0 + args.tolerance * c.tolerance_scale,
            if c.regressed(args.tolerance) {
                "FAIL"
            } else {
                "ok"
            }
        );
    }
    let bad = failing_checks(&checks, args.tolerance);
    if !bad.is_empty() {
        eprintln!(
            "FAIL: {} gated metric(s) regressed past their band",
            bad.len()
        );
        std::process::exit(1);
    }
    // The acceptance ceiling is absolute: re-basing the baseline file
    // cannot relax it, and the same-run ratio survives box-speed drift.
    if cur_gap > GAP_512_CEILING {
        eprintln!(
            "FAIL: pathdump/vanilla 512B gap {cur_gap:.3}x exceeds the acceptance \
             ceiling {GAP_512_CEILING}x"
        );
        std::process::exit(1);
    }
    println!("ok: all gated metrics within tolerance");
}
