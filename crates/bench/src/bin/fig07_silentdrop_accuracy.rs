//! Figure 7: silent-random-drop localization accuracy over time, for 1, 2
//! and 4 faulty interfaces (recall and precision of MAX-COVERAGE).

use pathdump_apps::silent_drops::{score, SilentDropLocalizer};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, mean, row, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::{FaultState, SimConfig};
use pathdump_topology::{LinkDir, Nanos, Tier, UpDownRouting, SECONDS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Candidate faulty interfaces: fabric links in the *down* direction (the
/// direction data toward receivers crosses), as in the paper's testbed.
fn candidate_links(tb: &Testbed) -> Vec<LinkDir> {
    let topo = tb.ft.topology();
    let mut out = Vec::new();
    for l in topo.links() {
        let (ta, tb_) = (topo.switch(l.from).tier, topo.switch(l.to).tier);
        // Down direction: higher tier -> lower tier.
        let rank = |t: Tier| match t {
            Tier::Tor => 0,
            Tier::Agg => 1,
            Tier::Core => 2,
        };
        if rank(ta) > rank(tb_) {
            out.push(l);
        } else if rank(tb_) > rank(ta) {
            out.push(l.reversed());
        }
    }
    out
}

struct RunResult {
    /// (time s, recall, precision) samples.
    samples: Vec<(f64, f64, f64)>,
}

fn one_run(n_faulty: usize, loss_rate: f64, load: f64, duration_s: u64, seed: u64) -> RunResult {
    let cfg = SimConfig {
        seed,
        ..Default::default()
    };
    let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17);
    let cands = candidate_links(&tb);
    let mut faulty = Vec::new();
    while faulty.len() < n_faulty {
        let l = cands[rng.gen_range(0..cands.len())];
        if !faulty.contains(&l) {
            faulty.push(l);
        }
    }
    for l in &faulty {
        tb.sim.set_directed_fault(
            l.from,
            l.to,
            FaultState {
                silent_drop_rate: loss_rate,
                ..FaultState::HEALTHY
            },
        );
    }
    tb.add_web_traffic(load, Nanos::from_secs(duration_s), seed ^ 0xEB);
    let mut app = SilentDropLocalizer::new();
    let mut samples = Vec::new();
    let step = Nanos::from_millis(200);
    let mut t = Nanos::ZERO;
    while t < Nanos::from_secs(duration_s) {
        t = t.saturating_add(step);
        tb.sim.run_until(t);
        app.process_alarms(&mut tb.sim.world, t, Nanos::ZERO);
        if t.0.is_multiple_of(5 * SECONDS) {
            let acc = score(&app.localize(), &faulty);
            samples.push((t.as_secs_f64(), acc.recall, acc.precision));
        }
    }
    RunResult { samples }
}

fn main() {
    let args = Args::parse();
    let runs = if args.runs > 0 { args.runs } else { 3 };
    let (duration_s, load, loss) = if args.full {
        (150, 0.7, 0.01)
    } else {
        (60, 0.7, 0.05)
    };
    banner(
        "Figure 7",
        "Silent-drop localization: avg recall/precision vs time",
        "recall and precision rise toward 1.0 as failure signatures \
         accumulate; more faulty interfaces converge slower; recall leads \
         precision",
    );
    println!(
        "parameters: load {:.0}%, per-interface silent drop {:.0}%, {} runs, {}s",
        load * 100.0,
        loss * 100.0,
        runs,
        duration_s
    );
    for &nf in &[1usize, 2, 4] {
        let mut agg: std::collections::BTreeMap<u64, (Vec<f64>, Vec<f64>)> =
            std::collections::BTreeMap::new();
        for r in 0..runs {
            let rr = one_run(nf, loss, load, duration_s, args.seed + (r as u64) * 7919);
            for (t, rec, prec) in rr.samples {
                let e = agg.entry(t as u64).or_default();
                e.0.push(rec);
                e.1.push(prec);
            }
        }
        println!("\nfaulty interfaces = {nf}");
        row(&[
            "time(s)".into(),
            "avg recall".into(),
            "avg precision".into(),
        ]);
        for (t, (recs, precs)) in &agg {
            row(&[
                format!("{t}"),
                format!("{:.2}", mean(recs)),
                format!("{:.2}", mean(precs)),
            ]);
        }
    }
    println!("\nresult: accuracy increases with accumulated signatures, as in Fig. 7");
}
