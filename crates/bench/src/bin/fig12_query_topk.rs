//! Figure 12: top-10,000-flows query — response time and traffic, direct
//! vs multi-level. The tree discards `(n−1)·k` key-value pairs during
//! aggregation, so controller-side work stays flat while the direct
//! mechanism's response time grows linearly with host count.

use pathdump_bench::{banner, fmt_bytes, row, synth_tib, Args};
use pathdump_core::{Cluster, MgmtNet, Query, Response};
use pathdump_topology::{FatTree, FatTreeParams, HostId, TimeRange};

fn main() {
    let args = Args::parse();
    let records = if args.full { 240_000 } else { 24_000 };
    let k = 10_000u32;
    banner(
        "Figure 12",
        "Top-10,000-flows query: response time and traffic",
        "direct response time grows linearly with hosts (controller merges \
         k·n pairs alone); multi-level stays steady; traffic comparable \
         (tree discards (n-1)k pairs during aggregation)",
    );
    println!("records per TIB: {records}; k = {k}");
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let max_hosts = 112.min(ft.k() * ft.k() * ft.k() / 4);
    println!("building {} synthetic TIBs...", max_hosts);
    let tibs: Vec<_> = (0..max_hosts)
        .map(|h| synth_tib(&ft, HostId(h as u32), records, args.seed))
        .collect();
    let cluster = Cluster::new(tibs, MgmtNet::default());
    let q = Query::TopK {
        k,
        range: TimeRange::ANY,
    };
    row(&[
        "hosts".into(),
        "direct(ms)".into(),
        "multi(ms)".into(),
        "direct traffic".into(),
        "multi traffic".into(),
    ]);
    for &n in &[28usize, 56, 84, 112] {
        let hosts: Vec<usize> = (0..n.min(max_hosts)).collect();
        let d = cluster.direct_query(&hosts, &q);
        let m = cluster.multilevel_query(&hosts, &q, &[7, 4, 4]);
        let (Response::TopK { entries: de, .. }, Response::TopK { entries: me, .. }) =
            (&d.response, &m.response)
        else {
            panic!("wrong response shape");
        };
        assert_eq!(de, me, "mechanisms must agree");
        row(&[
            format!("{n}"),
            format!("{:.1}", d.elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", m.elapsed.as_secs_f64() * 1e3),
            fmt_bytes(d.wire_bytes),
            fmt_bytes(m.wire_bytes),
        ]);
    }
    println!(
        "\nresult: the multi-level mechanism scales steadily while direct \
         grows with host count, matching Fig. 12(a); traffic volumes are \
         comparable, matching Fig. 12(b)"
    );
}
