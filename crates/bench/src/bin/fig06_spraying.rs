//! Figure 6: per-path traffic distribution of one packet-sprayed flow,
//! balanced vs deliberately imbalanced.

use pathdump_apps::load_imbalance::{per_path_bytes, spray_skew};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, fmt_bytes, row, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::{LoadBalance, SimConfig};
use pathdump_topology::{Nanos, TimeRange};

fn run_case(imbalanced: bool, size: u64, seed: u64) -> Vec<(String, u64)> {
    let cfg = SimConfig {
        seed,
        ..Default::default()
    };
    let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
    tb.sim.set_lb_all(LoadBalance::Spray);
    if imbalanced {
        // "More packets are deliberately forwarded to one of the paths":
        // bias both the source ToR and the chosen aggregate.
        tb.sim
            .set_lb(tb.ft.tor(0, 0), LoadBalance::WeightedSpray(vec![3, 1]));
        tb.sim
            .set_lb(tb.ft.agg(0, 0), LoadBalance::WeightedSpray(vec![2, 1]));
    }
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 0, 0));
    let flow = tb.flow(src, dst, 7000);
    tb.add_flow(src, dst, 7000, size, Nanos::ZERO);
    tb.run_and_flush(Nanos::from_secs(3600));
    assert!(tb.sim.world.tcp.all_complete(), "flow must finish");
    let mut per_path = per_path_bytes(&mut tb.sim.world, flow, TimeRange::ANY);
    per_path.sort_by_key(|(p, _)| p.clone());
    println!(
        "  {} case: skew (max/min) = {:.2}",
        if imbalanced { "imbalanced" } else { "balanced" },
        spray_skew(&per_path)
    );
    per_path
        .into_iter()
        .enumerate()
        .map(|(i, (_, b))| (format!("Path{}", i + 1), b))
        .collect()
}

fn main() {
    let args = Args::parse();
    banner(
        "Figure 6",
        "Traffic of one sprayed flow across 4 paths, balanced vs imbalanced",
        "balanced: ~25MB per path of a 100MB flow; imbalanced: Path 3 \
         visibly over-utilized — per-path statistics from the dst TIB",
    );
    // Paper uses a 100 MB flow; default 10 MB (use --full for 100 MB).
    let size = if args.full { 100_000_000 } else { 10_000_000 };
    println!("flow size: {}", fmt_bytes(size));
    let balanced = run_case(false, size, args.seed);
    let imbalanced = run_case(true, size, args.seed);
    println!();
    row(&["path".into(), "balanced".into(), "imbalanced".into()]);
    for (b, i) in balanced.iter().zip(&imbalanced) {
        row(&[b.0.clone(), fmt_bytes(b.1), fmt_bytes(i.1)]);
    }
    let bal_skew = balanced.iter().map(|x| x.1).max().unwrap_or(0) as f64
        / balanced.iter().map(|x| x.1).min().unwrap_or(1).max(1) as f64;
    let imb_skew = imbalanced.iter().map(|x| x.1).max().unwrap_or(0) as f64
        / imbalanced.iter().map(|x| x.1).min().unwrap_or(1).max(1) as f64;
    println!(
        "result: balanced skew {bal_skew:.2} vs imbalanced skew {imb_skew:.2} \
         — the under/over-utilized paths are identifiable from the TIB"
    );
    assert!(imb_skew > bal_skew, "reproduction failed");
}
