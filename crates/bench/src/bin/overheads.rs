//! §5.3 overheads + §3.1 data-plane resource accounting: host RAM for
//! trajectory decoding/memory/cache, disk footprint of a 240K-record TIB,
//! trajectory-memory update rate, and static switch-rule counts.

use pathdump_bench::{banner, fmt_bytes, row, synth_tib, Args};
use pathdump_cherrypick::{fattree_rule_counts, TrajectoryCache};
use pathdump_tib::{snapshot_size, MemKey, TrajectoryMemory};
use pathdump_topology::{FatTree, FatTreeParams, FlowId, HostId, Ip, Nanos};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let records = 240_000; // full paper scale is cheap enough to always run
    banner(
        "§5.3 + §3.1",
        "End-host and data-plane resource overheads",
        "~10MB RAM for decoding/memory/cache; ~110MB disk per 240K records \
         (MongoDB); 0.8-3.6M memory lookups/updates per second; rules grow \
         linearly with port density",
    );

    // --- storage: TIB snapshot (disk) ---
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let tib = synth_tib(&ft, HostId(0), records, args.seed);
    let snap = snapshot_size(&tib);
    println!("\nTIB disk footprint ({records} records, binary snapshot):");
    row(&[
        "records".into(),
        "snapshot".into(),
        "bytes/record".into(),
        "paper (MongoDB)".into(),
    ]);
    row(&[
        format!("{records}"),
        fmt_bytes(snap as u64),
        format!("{:.1}", snap as f64 / records as f64),
        "~110MB (~480B/rec)".into(),
    ]);

    // --- RAM: trajectory memory + cache at working-set size ---
    let mut mem = TrajectoryMemory::default();
    for i in 0..4096u32 {
        mem.update(
            MemKey {
                flow: FlowId::tcp(Ip(0x0A000002 + i), (i % 60000) as u16, Ip(0x0A630002), 80),
                dscp_sample: None,
                tags: vec![(i % 4096) as u16, ((i * 3) % 4096) as u16],
            },
            1460,
            Nanos(i as u64),
        );
    }
    let mut cache = TrajectoryCache::new(4096);
    for rec in tib.records().iter().take(4096) {
        cache.insert(
            pathdump_cherrypick::CacheKey {
                src_ip: rec.flow.src_ip,
                dscp_sample: None,
                tags: vec![1, 2],
            },
            rec.path.clone(),
        );
    }
    println!("\nresident memory (working set):");
    row(&["component".into(), "entries".into(), "approx bytes".into()]);
    row(&[
        "trajectory memory".into(),
        format!("{}", mem.len()),
        fmt_bytes(mem.approx_bytes() as u64),
    ]);
    row(&[
        "trajectory cache".into(),
        format!("{}", cache.len()),
        fmt_bytes(cache.approx_bytes() as u64),
    ]);
    row(&[
        "TIB indexes+records".into(),
        format!("{}", tib.len()),
        fmt_bytes(tib.approx_bytes() as u64),
    ]);
    println!("paper: ~10MB RAM total for decoding + memory + cache");

    // --- update rate: lookups/updates per second with ~4K live records ---
    let mut mem2 = TrajectoryMemory::default();
    let keys: Vec<MemKey> = (0..4096u32)
        .map(|i| MemKey {
            flow: FlowId::tcp(Ip(0x0A000002 + i), (i % 60000) as u16, Ip(0x0A630002), 80),
            dscp_sample: None,
            tags: vec![(i % 4096) as u16],
        })
        .collect();
    let t0 = Instant::now();
    let mut n = 0u64;
    while t0.elapsed().as_secs_f64() < 0.5 {
        for k in &keys {
            mem2.update(k.clone(), 1460, Nanos(n));
            n += 1;
        }
    }
    let rate = n as f64 / t0.elapsed().as_secs_f64() / 1e6;
    println!(
        "\ntrajectory-memory update rate: {rate:.1}M updates/s \
         (paper: 0.8-3.6M lookups/updates per second)"
    );

    // --- switch rules (§3.1): linear in port density ---
    println!("\nstatic tagging-rule footprint (fat-tree):");
    row(&["k".into(), "max rules/switch".into(), "total rules".into()]);
    for k in [4u16, 8, 16, 48] {
        let ft = FatTree::build(FatTreeParams { k });
        let counts = fattree_rule_counts(&ft);
        let max = counts.iter().map(|(_, rc)| rc.total()).max().unwrap_or(0);
        let total: usize = counts.iter().map(|(_, rc)| rc.total()).sum();
        row(&[format!("{k}"), format!("{max}"), format!("{total}")]);
    }
    println!("result: 2 rules per switch-facing ingress port + 1 punt rule — linear in k");
}
