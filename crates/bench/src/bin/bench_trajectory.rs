//! Perf-trajectory capture: runs the four Criterion benches
//! (`tib_queries`, `wire_codec`, `reconstruct`, `dpswitch_throughput`)
//! via nested `cargo bench` invocations (parsing shared with `bench_gate`
//! through `pathdump_bench::report`), runs the in-process simnet engine
//! comparison (k=8 sequential vs sharded-inline vs pooled-threaded, see
//! the `simnet_scale` module), and writes one `BENCH_tib.json` with a
//! `benchmarks` array, a `simnet` section (including the threaded-vs-
//! sequential speedup and the CPU count, so multicore runners report
//! parallel headroom honestly), an `ingest` section (the sharded
//! host-agent per-worker-count scaling curve vs the single-threaded
//! reference — see `ingest_scale`), `dpswitch`/`reconstruct`
//! before-vs-after sections, a `standing` section (per-record overhead
//! of the incremental standing-query engine at 0/4/16 registered
//! watches — trend-watching only, see `standing_scale`), a `tib_scale`
//! section (the tiered storage engine at 1M records: sealed-segment
//! ingest rate, cold-segment ranged-query latency, crash-recovery wall
//! — the ingest rate and recovery wall are drift-banded by
//! `bench_gate`; the blocking 10M gate is the `tib_scale` bin), and a
//! `verifier` section (static-analysis wall time over k=16 fat-tree
//! and VL2 — trend-watching only, gated separately by `verifier_gate`)
//! — the recorded perf trajectory CI uploads as an artifact and the
//! `bench_gate` job compares against.
//!
//! Usage: `cargo run --release -p pathdump_bench --bin bench_trajectory
//! [-- --out PATH]` (default `BENCH_tib.json` in the working directory).

use pathdump_bench::ingest_scale::{build_stream, run_ingest, IngestParams, IngestResult};
use pathdump_bench::report::{
    baseline_of, json_escape, median_of, run_cargo_bench, strip_path_min_speedup, Entry,
    DPSWITCH_BASELINE_NS, RECONSTRUCT_BASELINE_NS,
};
use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams, ScaleResult};
use pathdump_bench::standing_scale::{self, StandingParams, StandingResult};
use pathdump_bench::tib_scale::{run_tib_scale, TibScaleParams, TibScaleResult};
use pathdump_simnet::EngineKind;
use pathdump_topology::{FatTree, FatTreeParams, RouteTables, UpDownRouting, Vl2, Vl2Params};
use pathdump_verifier::{verify, IntentModel};

const BENCHES: [&str; 4] = [
    "tib_queries",
    "wire_codec",
    "reconstruct",
    "dpswitch_throughput",
];

/// Builds a before/after section for one bench: every current case, its
/// pre-PR baseline where one exists, and the speedup.
fn before_after_cases(entries: &[Entry], bench: &str, baseline: &[(&str, f64)]) -> String {
    let mut rows = Vec::new();
    for e in entries.iter().filter(|e| e.bench == bench) {
        let row = match baseline_of(baseline, &e.name) {
            Some(base) => format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"baseline_ns\": {}, \"speedup_vs_baseline\": {:.3}}}",
                json_escape(&e.name),
                e.median_ns,
                base,
                base / e.median_ns.max(1e-9)
            ),
            None => format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"baseline_ns\": null}}",
                json_escape(&e.name),
                e.median_ns
            ),
        };
        rows.push(row);
    }
    rows.join(",\n")
}

/// The `dpswitch` section: before/after per case plus the gate number —
/// the smallest pathdump (strip-path) speedup across sizes.
fn dpswitch_section(entries: &[Entry]) -> String {
    let gate = match strip_path_min_speedup(entries) {
        Some(s) => format!("{s:.3}"),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"baseline\": \"pre-PR4 (two copies + two allocations per frame per pass)\",\n  \"strip_path_min_speedup\": {gate},\n  \"cases\": [\n{}\n    ]\n  }}",
        before_after_cases(entries, "dpswitch_throughput", DPSWITCH_BASELINE_NS)
    )
}

/// The `reconstruct` section: before/after per case plus the warm/cold
/// ratios for the closed-form fast path and the memoized candidate-walk
/// (punted ≥3-tag) decode.
///
/// The fast-path ratio is **expected to sit below 1** and is not a
/// regression: `cold_decode`/`memo_warm_decode`/`cached_decode` measure
/// ≤2-tag fat-tree trajectories, whose closed-form decode is a handful
/// of arithmetic ops — cheaper than any memo or cache probe, so the
/// "warm" variants pay pure lookup overhead on top of an already-trivial
/// decode. The memo earns its keep on the punted ≥3-tag candidate walk
/// (`walk_cold_decode` vs `walk_memo_decode`, a ~200× ratio), which is
/// why only the walk ratio is a meaningful speedup and the JSON carries
/// a `note` saying so.
fn reconstruct_section(entries: &[Entry]) -> String {
    let ratio = |cold: &str, warm: &str| -> String {
        match (median_of(entries, cold), median_of(entries, warm)) {
            (Some(c), Some(w)) => format!("{:.3}", c / w.max(1e-9)),
            _ => "null".to_string(),
        }
    };
    let note = "warm_over_cold_fast_path < 1 is expected, not a regression: the \
                cold/cached/memo_warm cases decode <=2-tag trajectories whose \
                closed form is cheaper than any memo or cache probe, so warm \
                variants only add lookup overhead; the memo pays off on the \
                punted >=3-tag candidate walk (walk_cold_decode vs \
                walk_memo_decode).";
    format!(
        "{{\n  \"baseline\": \"pre-PR4 (no decode memo)\",\n  \"note\": \"{}\",\n  \"warm_over_cold_candidate_walk\": {},\n  \"warm_over_cold_fast_path\": {},\n  \"cases\": [\n{}\n    ]\n  }}",
        json_escape(note),
        ratio("reconstruct/walk_cold_decode", "reconstruct/walk_memo_decode"),
        ratio("reconstruct/cold_decode", "reconstruct/memo_warm_decode"),
        before_after_cases(entries, "reconstruct", RECONSTRUCT_BASELINE_NS)
    )
}

/// Runs the host-agent ingest scaling curve (median of `runs` per worker
/// count, single-threaded reference as `workers = 0`) and returns the
/// `ingest` JSON object. Non-gated on 1-CPU boxes — the recorded `cpus`
/// field is how `bench_gate` (and readers) know whether the curve can
/// slope upward at all.
fn ingest_section(runs: usize) -> String {
    let p = IngestParams::default_shape();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let stream = build_stream(p);
    let median = |mut rs: Vec<IngestResult>| -> IngestResult {
        rs.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
        rs.swap_remove(rs.len() / 2)
    };
    let mut worker_counts = vec![0usize, 1, 2, 4];
    if cpus > 4 && !worker_counts.contains(&cpus) {
        worker_counts.push(cpus);
    }
    let results: Vec<IngestResult> = worker_counts
        .iter()
        .map(|&w| median((0..runs).map(|_| run_ingest(&stream, w)).collect()))
        .collect();
    for r in &results {
        assert_eq!(
            r.tib_records, results[0].tib_records,
            "ingest runs must file identical TIBs (workers={})",
            r.workers
        );
    }
    let reference = results[0].events_per_sec;
    for r in &results {
        eprintln!(
            "ingest {}: {:.2}M events/s ({:.2}x vs single-threaded, {cpus} cpu(s))",
            if r.workers == 0 {
                "single-threaded".to_string()
            } else {
                format!("{} worker(s)", r.workers)
            },
            r.events_per_sec / 1e6,
            r.events_per_sec / reference.max(1e-9)
        );
    }
    let note = "workers=0 is the single-threaded HostAgent reference; on a \
                1-cpu box any speedup in the curve comes from smaller \
                per-shard memories and batched replay, not parallelism, so \
                bench_gate skips the ingest gate there.";
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"events\": {}, \"tib_records\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}, \"speedup_vs_single\": {:.3}}}",
                r.workers,
                r.events,
                r.tib_records,
                r.wall_secs * 1e3,
                r.events_per_sec,
                r.events_per_sec / reference.max(1e-9)
            )
        })
        .collect();
    format!(
        "{{\n  \"flows\": {},\n  \"pkts_per_flow\": {},\n  \"window\": {},\n  \"cpus\": {cpus},\n  \"note\": \"{}\",\n  \"cases\": [\n{}\n    ]\n  }}",
        p.flows,
        p.pkts_per_flow,
        p.window,
        json_escape(note),
        rows.join(",\n")
    )
}

/// Runs the k=8 engine comparison (median of `runs` wall-clocks per
/// engine/mode) and returns the `simnet` JSON object. Three cases:
/// the sequential reference, the sharded-inline driver (`workers == 0`,
/// the single-thread mode), and the pooled-threaded driver (workers =
/// min(cpus, switch shards), floored at 2 so the parallel machinery is
/// always measured — honest on a 1-CPU box, where it records < 1×).
fn simnet_section(runs: usize) -> String {
    let p = ScaleParams::k8_default();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // k=8 has 9 switch shards (8 pods + core).
    let threaded_workers = cpus.clamp(2, 9);
    let median = |mut rs: Vec<ScaleResult>| -> ScaleResult {
        rs.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
        rs.swap_remove(rs.len() / 2)
    };
    let run_median = |engine: EngineKind, workers: usize| {
        median(
            (0..runs)
                .map(|_| run_scale_with(p, engine, workers))
                .collect(),
        )
    };
    let seq = run_median(EngineKind::Sequential, 0);
    let sha = run_median(EngineKind::Sharded, 0);
    let thr = run_median(EngineKind::Sharded, threaded_workers);
    for r in [&sha, &thr] {
        assert_eq!(
            seq.events, r.events,
            "engines must process identical schedules"
        );
    }
    let speedup = seq.wall_secs / sha.wall_secs.max(1e-12);
    let speedup_thr = seq.wall_secs / thr.wall_secs.max(1e-12);
    eprintln!(
        "simnet k=8: sequential {:.2}M ev/s, sharded-inline {:.2}M ev/s ({speedup:.2}x), \
         pooled x{threaded_workers} {:.2}M ev/s ({speedup_thr:.2}x, {cpus} cpu(s))",
        seq.events_per_sec / 1e6,
        sha.events_per_sec / 1e6,
        thr.events_per_sec / 1e6
    );
    let case = |r: &ScaleResult, name: &str| {
        format!(
            "    {{\"engine\": \"{name}\", \"workers\": {}, \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}",
            r.workers, r.events, r.wall_secs * 1e3, r.events_per_sec
        )
    };
    format!(
        "{{\n  \"k\": {},\n  \"pkts_per_host\": {},\n  \"cpus\": {cpus},\n  \"speedup_sharded_vs_sequential\": {:.3},\n  \"speedup_threaded_vs_sequential\": {:.3},\n  \"cases\": [\n{},\n{},\n{}\n    ]\n  }}",
        p.k,
        p.pkts_per_host,
        speedup,
        speedup_thr,
        case(&seq, "sequential"),
        case(&sha, "sharded"),
        case(&thr, "sharded_threaded")
    )
}

/// Times one static-verifier pass (healthy tables, exhaustive ECMP
/// coverage) plus the intent-model build, and returns a JSON case row.
/// Recorded in the trajectory for trend-watching only — `bench_gate` does
/// NOT gate on these numbers (the blocking wall-time check lives in
/// `verifier_gate`).
fn verifier_case(name: &str, routing: &dyn UpDownRouting) -> String {
    let topo = routing.topology();
    let rt = RouteTables::build(routing);
    let t0 = std::time::Instant::now();
    let verdict = verify(topo, &rt);
    let verify_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        verdict.is_clean(),
        "{name}: healthy tables must verify clean"
    );
    let t1 = std::time::Instant::now();
    let im = IntentModel::build(topo, &rt).expect("clean tables build an intent model");
    let intent_ms = t1.elapsed().as_secs_f64() * 1e3;
    let total = im.total_paths();
    eprintln!(
        "verifier {name}: {} pairs, {total} intended paths, verify {verify_ms:.2} ms, intent {intent_ms:.2} ms",
        verdict.pairs_checked
    );
    format!(
        "    {{\"topology\": \"{}\", \"pairs\": {}, \"intended_paths\": {total}, \"verify_ms\": {verify_ms:.3}, \"intent_build_ms\": {intent_ms:.3}}}",
        json_escape(name),
        verdict.pairs_checked
    )
}

/// The `standing` section: TIB insert throughput with N registered
/// standing watches mirroring every insert vs the plain store (see
/// `standing_scale`) — the incremental engine's per-record overhead.
/// Trend-watching only; not gated (same policy as `verifier`).
fn standing_section(runs: usize) -> String {
    let p = StandingParams::default_shape();
    let recs = standing_scale::build_stream(p);
    let median = |mut rs: Vec<StandingResult>| -> StandingResult {
        rs.sort_by(|a, b| a.ns_per_record.total_cmp(&b.ns_per_record));
        rs.swap_remove(rs.len() / 2)
    };
    let rows: Vec<String> = [0usize, 4, 16]
        .iter()
        .map(|&w| {
            let runs: Vec<StandingResult> = (0..runs.max(1))
                .map(|_| standing_scale::run_standing(&recs, w))
                .collect();
            for r in &runs {
                assert_eq!(
                    r.flip_events, runs[0].flip_events,
                    "standing flips must be deterministic (watches={w})"
                );
            }
            let r = median(runs);
            eprintln!(
                "standing {w} watch(es): {:.0} ns/record, {} flips",
                r.ns_per_record, r.flip_events
            );
            format!(
                "    {{\"watches\": {w}, \"ns_per_record\": {:.1}, \"flip_events\": {}}}",
                r.ns_per_record, r.flip_events
            )
        })
        .collect();
    format!(
        "{{\n  \"records\": {},\n  \"flows\": {},\n  \"cases\": [\n{}\n    ]\n  }}",
        p.records,
        p.flows,
        rows.join(",\n")
    )
}

/// The `tib_scale` section: the tiered storage engine at the 1M-record
/// trajectory shape — ingest rate with sealing + cold eviction, the
/// sealed-segment ranged-query latency (cold reloads included), and the
/// crash-recovery replay wall. `bench_gate` drift-bands the ingest rate
/// and the recovery wall; the 10M-record blocking gate is the separate
/// `tib_scale` bin.
fn tib_scale_section(runs: usize) -> String {
    let p = TibScaleParams::trajectory_shape();
    let dir = std::env::temp_dir().join(format!("pathdump-trajectory-tib-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create eviction dir");
    let mut rs: Vec<TibScaleResult> = (0..runs.max(1)).map(|_| run_tib_scale(p, &dir)).collect();
    std::fs::remove_dir_all(&dir).ok();
    rs.sort_by(|a, b| a.ingest_wall_secs.total_cmp(&b.ingest_wall_secs));
    let r = rs.swap_remove(rs.len() / 2);
    eprintln!(
        "tib_scale: {:.2}M records/s ingest ({} sealed / {} cold), query {:.2} ms, recovery {:.0} ms",
        r.ingest_events_per_sec / 1e6,
        r.sealed_segments,
        r.cold_segments,
        r.query_mean_ms,
        r.recovery_wall_ms
    );
    format!(
        "{{\n  \"records\": {},\n  \"seal_every\": {},\n  \"keep_hot\": {},\n  \"wal_tail\": {},\n  \"sealed_segments\": {},\n  \"cold_segments\": {},\n  \"cold_reloads\": {},\n  \"snapshot_bytes\": {},\n  \"ingest_events_per_sec\": {:.0},\n  \"checkpoint_wall_ms\": {:.3},\n  \"query_mean_ms\": {:.3},\n  \"recovery_wall_ms\": {:.3}\n  }}",
        r.records,
        p.seal_every,
        p.keep_hot,
        p.wal_tail,
        r.sealed_segments,
        r.cold_segments,
        r.cold_reloads,
        r.snapshot_bytes,
        r.ingest_events_per_sec,
        r.checkpoint_wall_ms,
        r.query_mean_ms,
        r.recovery_wall_ms
    )
}

/// The `verifier` section: static-analysis wall time over the largest
/// fabrics the test suite exercises.
fn verifier_section() -> String {
    let ft = FatTree::build(FatTreeParams { k: 16 });
    let v2 = Vl2::build(Vl2Params {
        da: 16,
        di: 16,
        hosts_per_tor: 4,
    });
    format!(
        "{{\n  \"cases\": [\n{},\n{}\n    ]\n  }}",
        verifier_case("fat-tree k=16", &ft),
        verifier_case("VL2 da=16 di=16", &v2)
    )
}

fn main() {
    let mut out_path = String::from("BENCH_tib.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }

    let mut entries: Vec<Entry> = Vec::new();
    let mut failures = 0usize;
    for bench in BENCHES {
        eprintln!("running bench {bench}...");
        match run_cargo_bench(bench) {
            Ok(mut es) => entries.append(&mut es),
            Err(e) => {
                eprintln!("{e}");
                failures += 1;
            }
        }
    }

    eprintln!("running simnet engine comparison (k=8)...");
    let simnet = simnet_section(3);

    eprintln!("running host-agent ingest scaling curve...");
    let ingest = ingest_section(3);

    eprintln!("running static verifier timing (k=16 + VL2)...");
    let verifier = verifier_section();

    eprintln!("running standing-engine overhead curve...");
    let standing = standing_section(3);

    eprintln!("running tiered-store scale workload (1M records)...");
    let tib_scale = tib_scale_section(3);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{sep}\n",
            json_escape(e.bench),
            json_escape(&e.name),
            e.median_ns,
            e.samples
        ));
    }
    json.push_str("  ],\n  \"dpswitch\": ");
    json.push_str(&dpswitch_section(&entries));
    json.push_str(",\n  \"reconstruct\": ");
    json.push_str(&reconstruct_section(&entries));
    json.push_str(",\n  \"simnet\": ");
    json.push_str(&simnet);
    json.push_str(",\n  \"ingest\": ");
    json.push_str(&ingest);
    json.push_str(",\n  \"standing\": ");
    json.push_str(&standing);
    json.push_str(",\n  \"tib_scale\": ");
    json.push_str(&tib_scale);
    json.push_str(",\n  \"verifier\": ");
    json.push_str(&verifier);
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {} benchmark medians to {out_path}", entries.len());
    if entries.is_empty() || failures > 0 {
        eprintln!(
            "{failures} bench target(s) failed, {} parsed",
            entries.len()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn before_after_sections() {
        let entries = vec![
            Entry {
                bench: "dpswitch_throughput",
                name: "dpswitch/pathdump/64".into(),
                median_ns: 350_007.0,
                samples: 20,
            },
            Entry {
                bench: "reconstruct",
                name: "reconstruct/walk_cold_decode".into(),
                median_ns: 250_000.0,
                samples: 30,
            },
            Entry {
                bench: "reconstruct",
                name: "reconstruct/walk_memo_decode".into(),
                median_ns: 1_250.0,
                samples: 30,
            },
        ];
        let dp = dpswitch_section(&entries);
        // 700014 / 350007 = 2.0: the pathdump-64 case is the only strip
        // median present, so it is also the minimum.
        assert!(dp.contains("\"strip_path_min_speedup\": 2.000"), "{dp}");
        assert!(dp.contains("\"baseline_ns\": 700014"), "{dp}");
        let rc = reconstruct_section(&entries);
        assert!(
            rc.contains("\"warm_over_cold_candidate_walk\": 200.000"),
            "{rc}"
        );
        assert!(rc.contains("\"warm_over_cold_fast_path\": null"), "{rc}");
        assert!(rc.contains("\"baseline_ns\": null"), "{rc}");
    }
}
