//! Perf-trajectory capture: runs the four Criterion benches
//! (`tib_queries`, `wire_codec`, `reconstruct`, `dpswitch_throughput`)
//! via nested `cargo bench` invocations, parses the vendored harness's
//! `name: median <time> over N samples` lines, runs the in-process simnet
//! engine comparison (k=8 sequential vs sharded, see the `simnet_scale`
//! module), and writes one `BENCH_tib.json` with a `benchmarks` array, a
//! `simnet` section, and `dpswitch`/`reconstruct` before-vs-after sections
//! (current medians against the pre-PR-4 baselines, with the zero-copy
//! strip-path and memo-decode speedups the ISSUE-4 gates read) — the
//! recorded perf trajectory CI uploads as an artifact so regressions are
//! visible across PRs.
//!
//! Usage: `cargo run --release -p pathdump_bench --bin bench_trajectory
//! [-- --out PATH]` (default `BENCH_tib.json` in the working directory).

use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams, ScaleResult};
use pathdump_simnet::EngineKind;
use std::process::Command;

const BENCHES: [&str; 4] = [
    "tib_queries",
    "wire_codec",
    "reconstruct",
    "dpswitch_throughput",
];

/// One parsed benchmark result.
struct Entry {
    bench: &'static str,
    name: String,
    median_ns: f64,
    samples: u64,
}

/// Parses the vendored criterion's Duration debug format ("421ns",
/// "315.789µs", "36.678929ms", "1.2s") into nanoseconds.
fn parse_duration_ns(s: &str) -> Option<f64> {
    // Order matters: try the longest suffixes first ("ms" before "s",
    // "ns"/"µs"/"us" before "s").
    for (suffix, scale) in [
        ("ns", 1.0),
        ("µs", 1e3),
        ("us", 1e3),
        ("ms", 1e6),
        ("s", 1e9),
    ] {
        if let Some(num) = s.strip_suffix(suffix) {
            return num.parse::<f64>().ok().map(|v| v * scale);
        }
    }
    None
}

/// Parses one harness output line: `group/name: median 1.23ms over 20
/// samples (...)`. Returns (full benchmark name, median ns, samples).
fn parse_line(line: &str) -> Option<(String, f64, u64)> {
    let (name, rest) = line.split_once(": median ")?;
    let mut words = rest.split_whitespace();
    let median_ns = parse_duration_ns(words.next()?)?;
    if words.next()? != "over" {
        return None;
    }
    let samples: u64 = words.next()?.parse().ok()?;
    Some((name.trim().to_string(), median_ns, samples))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pre-PR-4 medians (the last `BENCH_tib.json` committed before the
/// zero-copy ingest pipeline landed), used to report before/after speedups
/// for the two hot paths that PR rebuilt.
const DPSWITCH_BASELINE_NS: &[(&str, f64)] = &[
    ("dpswitch/vanilla/64", 476_714.0),
    ("dpswitch/pathdump/64", 700_014.0),
    ("dpswitch/vanilla/512", 571_882.0),
    ("dpswitch/pathdump/512", 1_277_122.0),
    ("dpswitch/vanilla/1500", 1_576_772.0),
    ("dpswitch/pathdump/1500", 1_879_560.0),
];
const RECONSTRUCT_BASELINE_NS: &[(&str, f64)] = &[
    ("reconstruct/cold_decode", 1_263.0),
    ("reconstruct/cached_decode", 3_366.0),
];

fn baseline_of(table: &[(&str, f64)], name: &str) -> Option<f64> {
    table.iter().find(|(n, _)| *n == name).map(|&(_, ns)| ns)
}

fn median_of(entries: &[Entry], name: &str) -> Option<f64> {
    entries.iter().find(|e| e.name == name).map(|e| e.median_ns)
}

/// Builds a before/after section for one bench: every current case, its
/// pre-PR baseline where one exists, and the speedup.
fn before_after_cases(entries: &[Entry], bench: &str, baseline: &[(&str, f64)]) -> String {
    let mut rows = Vec::new();
    for e in entries.iter().filter(|e| e.bench == bench) {
        let row = match baseline_of(baseline, &e.name) {
            Some(base) => format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"baseline_ns\": {}, \"speedup_vs_baseline\": {:.3}}}",
                json_escape(&e.name),
                e.median_ns,
                base,
                base / e.median_ns.max(1e-9)
            ),
            None => format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}, \"baseline_ns\": null}}",
                json_escape(&e.name),
                e.median_ns
            ),
        };
        rows.push(row);
    }
    rows.join(",\n")
}

/// The `dpswitch` section: before/after per case plus the ISSUE-4 gate
/// number — the smallest pathdump (strip-path) speedup across sizes.
fn dpswitch_section(entries: &[Entry]) -> String {
    let strip_speedup_min = DPSWITCH_BASELINE_NS
        .iter()
        .filter(|(n, _)| n.contains("/pathdump/"))
        .filter_map(|&(n, base)| median_of(entries, n).map(|cur| base / cur.max(1e-9)))
        .fold(f64::INFINITY, f64::min);
    let gate = if strip_speedup_min.is_finite() {
        format!("{strip_speedup_min:.3}")
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"baseline\": \"pre-PR4 (two copies + two allocations per frame per pass)\",\n  \"strip_path_min_speedup\": {gate},\n  \"cases\": [\n{}\n    ]\n  }}",
        before_after_cases(entries, "dpswitch_throughput", DPSWITCH_BASELINE_NS)
    )
}

/// The `reconstruct` section: before/after per case plus the warm/cold
/// ratios for the closed-form fast path and the memoized candidate-walk
/// (punted ≥3-tag) decode the ISSUE-4 gate targets.
fn reconstruct_section(entries: &[Entry]) -> String {
    let ratio = |cold: &str, warm: &str| -> String {
        match (median_of(entries, cold), median_of(entries, warm)) {
            (Some(c), Some(w)) => format!("{:.3}", c / w.max(1e-9)),
            _ => "null".to_string(),
        }
    };
    format!(
        "{{\n  \"baseline\": \"pre-PR4 (no decode memo)\",\n  \"warm_over_cold_candidate_walk\": {},\n  \"warm_over_cold_fast_path\": {},\n  \"cases\": [\n{}\n    ]\n  }}",
        ratio("reconstruct/walk_cold_decode", "reconstruct/walk_memo_decode"),
        ratio("reconstruct/cold_decode", "reconstruct/memo_warm_decode"),
        before_after_cases(entries, "reconstruct", RECONSTRUCT_BASELINE_NS)
    )
}

/// Runs the k=8 engine comparison (median of `runs` wall-clocks per
/// engine) and returns the `simnet` JSON object.
fn simnet_section(runs: usize) -> String {
    let p = ScaleParams::k8_default();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let median = |mut rs: Vec<ScaleResult>| -> ScaleResult {
        rs.sort_by(|a, b| a.wall_secs.total_cmp(&b.wall_secs));
        rs.swap_remove(rs.len() / 2)
    };
    // Sequential reference, then the sharded engine with auto workers
    // (one per CPU, capped at the 9 switch shards of k=8).
    let seq = median(
        (0..runs)
            .map(|_| run_scale_with(p, EngineKind::Sequential, 0))
            .collect(),
    );
    let sha = median(
        (0..runs)
            .map(|_| run_scale_with(p, EngineKind::Sharded, 0))
            .collect(),
    );
    assert_eq!(
        seq.events, sha.events,
        "engines must process identical schedules"
    );
    let speedup = seq.wall_secs / sha.wall_secs.max(1e-12);
    eprintln!(
        "simnet k=8: sequential {:.2}M ev/s, sharded {:.2}M ev/s ({speedup:.2}x, {cpus} cpu(s))",
        seq.events_per_sec / 1e6,
        sha.events_per_sec / 1e6
    );
    let case = |r: &ScaleResult, name: &str| {
        format!(
            "    {{\"engine\": \"{name}\", \"workers\": {}, \"events\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}",
            r.workers, r.events, r.wall_secs * 1e3, r.events_per_sec
        )
    };
    format!(
        "{{\n  \"k\": {},\n  \"pkts_per_host\": {},\n  \"cpus\": {cpus},\n  \"speedup_sharded_vs_sequential\": {:.3},\n  \"cases\": [\n{},\n{}\n    ]\n  }}",
        p.k,
        p.pkts_per_host,
        speedup,
        case(&seq, "sequential"),
        case(&sha, "sharded")
    )
}

fn main() {
    let mut out_path = String::from("BENCH_tib.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }

    let mut entries: Vec<Entry> = Vec::new();
    let mut failures = 0usize;
    for bench in BENCHES {
        eprintln!("running bench {bench}...");
        let result = Command::new(env!("CARGO"))
            .args(["bench", "-p", "pathdump_bench", "--bench", bench])
            .output();
        let output = match result {
            Ok(o) if o.status.success() => o,
            Ok(o) => {
                eprintln!(
                    "bench {bench} failed with {}:\n{}",
                    o.status,
                    String::from_utf8_lossy(&o.stderr)
                );
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("could not spawn cargo for {bench}: {e}");
                failures += 1;
                continue;
            }
        };
        for line in String::from_utf8_lossy(&output.stdout).lines() {
            if let Some((name, median_ns, samples)) = parse_line(line) {
                entries.push(Entry {
                    bench,
                    name,
                    median_ns,
                    samples,
                });
            }
        }
    }

    eprintln!("running simnet engine comparison (k=8)...");
    let simnet = simnet_section(3);

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"samples\": {}}}{sep}\n",
            json_escape(e.bench),
            json_escape(&e.name),
            e.median_ns,
            e.samples
        ));
    }
    json.push_str("  ],\n  \"dpswitch\": ");
    json.push_str(&dpswitch_section(&entries));
    json.push_str(",\n  \"reconstruct\": ");
    json.push_str(&reconstruct_section(&entries));
    json.push_str(",\n  \"simnet\": ");
    json.push_str(&simnet);
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("wrote {} benchmark medians to {out_path}", entries.len());
    if entries.is_empty() || failures > 0 {
        eprintln!(
            "{failures} bench target(s) failed, {} parsed",
            entries.len()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration_ns("421ns"), Some(421.0));
        assert_eq!(parse_duration_ns("315.789µs"), Some(315_789.0));
        assert_eq!(parse_duration_ns("36.5ms"), Some(36_500_000.0));
        assert_eq!(parse_duration_ns("1.2s"), Some(1_200_000_000.0));
        assert_eq!(parse_duration_ns("xyz"), None);
    }

    #[test]
    fn before_after_sections() {
        let entries = vec![
            Entry {
                bench: "dpswitch_throughput",
                name: "dpswitch/pathdump/64".into(),
                median_ns: 350_007.0,
                samples: 20,
            },
            Entry {
                bench: "reconstruct",
                name: "reconstruct/walk_cold_decode".into(),
                median_ns: 250_000.0,
                samples: 30,
            },
            Entry {
                bench: "reconstruct",
                name: "reconstruct/walk_memo_decode".into(),
                median_ns: 1_250.0,
                samples: 30,
            },
        ];
        let dp = dpswitch_section(&entries);
        // 700014 / 350007 = 2.0: the pathdump-64 case is the only strip
        // median present, so it is also the minimum.
        assert!(dp.contains("\"strip_path_min_speedup\": 2.000"), "{dp}");
        assert!(dp.contains("\"baseline_ns\": 700014"), "{dp}");
        let rc = reconstruct_section(&entries);
        assert!(
            rc.contains("\"warm_over_cold_candidate_walk\": 200.000"),
            "{rc}"
        );
        assert!(rc.contains("\"warm_over_cold_fast_path\": null"), "{rc}");
        assert!(rc.contains("\"baseline_ns\": null"), "{rc}");
    }

    #[test]
    fn line_parsing() {
        let (name, ns, n) =
            parse_line("tib_240k/top_k_10000: median 2.707201ms over 20 samples").unwrap();
        assert_eq!(name, "tib_240k/top_k_10000");
        assert!((ns - 2_707_201.0).abs() < 1.0);
        assert_eq!(n, 20);
        let (_, ns, _) =
            parse_line("wire/encode_10k_records: median 313.347µs over 30 samples (1.003 GiB/s)")
                .unwrap();
        assert!((ns - 313_347.0).abs() < 1.0);
        assert_eq!(parse_line("Finished `bench` profile"), None);
    }
}
