//! Figure 11: flow-size-distribution query — end-to-end response time and
//! management-network traffic, direct vs multi-level, vs number of hosts.

use pathdump_bench::{banner, fmt_bytes, row, synth_tib, Args};
use pathdump_core::{Cluster, MgmtNet, Query};
use pathdump_topology::{FatTree, FatTreeParams, HostId, LinkDir, LinkPattern, TimeRange};

fn main() {
    let args = Args::parse();
    // Paper: 240K records per TIB; default 24K to keep memory modest.
    let records = if args.full { 240_000 } else { 24_000 };
    banner(
        "Figure 11",
        "Flow-size-distribution query: response time and traffic",
        "response-time gap narrows as hosts increase (controller-side \
         aggregation of direct queries grows linearly); traffic is small \
         (~KB) either way, multi-level slightly higher",
    );
    println!("records per TIB: {records} (use --full for the paper's 240K)");
    // A k=8 fat-tree provides the host population and real links.
    let ft = FatTree::build(FatTreeParams { k: 8 });
    let max_hosts = 112.min(ft.k() * ft.k() * ft.k() / 4);
    println!("building {} synthetic TIBs...", max_hosts);
    let tibs: Vec<_> = (0..max_hosts)
        .map(|h| synth_tib(&ft, HostId(h as u32), records, args.seed))
        .collect();
    let cluster = Cluster::new(tibs, MgmtNet::default());
    // Query: FSD of one heavily used link (an agg->core link), 10KB bins
    // (the paper's binsize = 10000).
    let link = LinkDir::new(ft.agg(0, 0), ft.core(0));
    let q = Query::FlowSizeDist {
        link: LinkPattern::exact(link.from, link.to),
        range: TimeRange::ANY,
        bin_bytes: 10_000,
    };
    row(&[
        "hosts".into(),
        "direct(ms)".into(),
        "multi(ms)".into(),
        "direct traffic".into(),
        "multi traffic".into(),
    ]);
    for &n in &[28usize, 56, 84, 112] {
        let hosts: Vec<usize> = (0..n.min(max_hosts)).collect();
        let d = cluster.direct_query(&hosts, &q);
        let m = cluster.multilevel_query(&hosts, &q, &[7, 4, 4]);
        assert_eq!(d.response, m.response, "mechanisms must agree");
        row(&[
            format!("{n}"),
            format!("{:.3}", d.elapsed.as_secs_f64() * 1e3),
            format!("{:.3}", m.elapsed.as_secs_f64() * 1e3),
            fmt_bytes(d.wire_bytes),
            fmt_bytes(m.wire_bytes),
        ]);
    }
    println!(
        "\nresult: direct aggregation cost grows with hosts while the tree \
         amortizes it; traffic stays in the KB range (paper Fig. 11(b))"
    );
}
