//! Figure 5: ECMP load-imbalance diagnosis.
//!
//! (a) a "poor hash" splits flows by size across two aggregate uplinks;
//! (b) the imbalance-rate CDF measured from link counters (reference);
//! (c) the per-link flow-size distributions recovered via the multi-level
//!     TIB query — sharply divided at the 1 MB threshold.

use pathdump_apps::load_imbalance::{cdf_points, flow_size_distributions, ImbalanceSeries};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, row, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::{Quirk, SimConfig};
use pathdump_topology::{HostId, LinkDir, Nanos, TimeRange, UpDownRouting, SECONDS};

fn main() {
    let args = Args::parse();
    banner(
        "Figure 5",
        "ECMP load imbalance: size-split hash, web traffic",
        "imbalance rate >= 40% about 80% of the time; per-link flow-size \
         distributions sharply divided at the 1MB threshold",
    );
    // Paper: 10 minutes, 5s windows; default here: 60s (use --full).
    let duration = if args.full {
        Nanos::from_secs(600)
    } else {
        Nanos::from_secs(60)
    };
    let window = Nanos::from_secs(5);
    let threshold = 1_000_000u64;

    let mut tb = Testbed::fattree(4, SimConfig::default(), WorldConfig::default());
    // SAgg: the aggregate-facing split at ToR(0,0)'s uplinks stands in for
    // the paper's pod-1 aggregate (same mechanics, §4.2).
    let sagg = tb.ft.tor(0, 0);
    let link1 = LinkDir::new(sagg, tb.ft.agg(0, 0)); // flows > 1MB
    let link2 = LinkDir::new(sagg, tb.ft.agg(0, 1)); // flows <= 1MB
    let (p1, p2) = (
        tb.sim.link_port(sagg, tb.ft.agg(0, 0)),
        tb.sim.link_port(sagg, tb.ft.agg(0, 1)),
    );
    tb.sim.install_quirk(
        sagg,
        Quirk::SizeBasedSplit {
            threshold,
            big_port: p1,
            small_port: p2,
        },
    );
    // Web traffic from rack (0,0) to the remaining pods (the paper sends
    // pod-1 -> pods 2..4); only rack (0,0) sources cross SAgg.
    let senders: Vec<HostId> = vec![tb.ft.host(0, 0, 0), tb.ft.host(0, 0, 1)];
    let receivers: Vec<HostId> = (1..4)
        .flat_map(|p| (0..2).flat_map(move |t| (0..2).map(move |h| (p, t, h))))
        .map(|(p, t, h)| tb.ft.host(p, t, h))
        .collect();
    {
        use pathdump_transport::{install_flows, WebWorkload};
        use rand::SeedableRng;
        let wl = WebWorkload {
            load: 0.5,
            link_rate_bps: tb.sim.config().host_link.rate_bps,
            duration,
            base_port: 10_000,
        };
        let topo = tb.ft.topology().clone();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(args.seed);
        let specs = wl.generate(&senders, &receivers, |h| topo.host(h).ip, &mut rng);
        println!("workload: {} web flows over {duration}", specs.len());
        install_flows(&mut tb.sim, &specs, |w| &mut w.tcp);
    }

    // Drive the run in windows, sampling the two links' byte counters.
    let mut series = ImbalanceSeries::new(2);
    let mut t = Nanos::ZERO;
    while t < duration {
        t += window;
        tb.sim.run_until(t);
        let l1 = tb.sim.stats.port(link1.from, p1).tx_bytes;
        let l2 = tb.sim.stats.port(link2.from, p2).tx_bytes;
        series.sample(&[l1, l2]);
    }
    // Let stragglers finish, then flush memories into TIBs.
    tb.run_and_flush(t.saturating_add(Nanos(10 * SECONDS)));

    println!(
        "\n(b) imbalance rate CDF over {}s windows:",
        window.0 / SECONDS
    );
    row(&["rate(%)".into(), "CDF".into()]);
    let pts = cdf_points(&series.rates);
    for (i, (v, f)) in pts.iter().enumerate() {
        if i % (pts.len() / 10).max(1) == 0 || i + 1 == pts.len() {
            row(&[format!("{v:.1}"), format!("{f:.2}")]);
        }
    }
    println!(
        "fraction of windows with rate >= 40%: {:.0}% (paper: ~80%)",
        series.fraction_at_least(40.0) * 100.0
    );

    println!("\n(c) flow-size distribution per link (multi-level TIB query):");
    let hosts: Vec<HostId> = (0..16).map(HostId).collect();
    let dists = flow_size_distributions(
        &mut tb.sim.world,
        &hosts,
        &[link1, link2],
        TimeRange::ANY,
        10_000,
    );
    row(&["link".into(), "flows".into(), ">=1MB".into(), "<1MB".into()]);
    for d in &dists {
        let big = d.flows_at_least(threshold);
        row(&[
            format!("{}", d.link),
            format!("{}", d.total_flows()),
            format!("{big}"),
            format!("{}", d.total_flows() - big),
        ]);
    }
    let l1_big = dists[0].flows_at_least(threshold);
    let l2_big = dists[1].flows_at_least(threshold);
    println!(
        "result: link1 carries {l1_big} large flows vs link2 {l2_big} — \
         distributions split at 1MB as in Fig. 5(c)"
    );
}
