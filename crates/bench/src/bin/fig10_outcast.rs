//! Figure 10: TCP outcast diagnosis — per-sender throughput unfairness and
//! the fan-in path tree, from receiver-TIB state triggered by alarms.

use pathdump_apps::outcast::{alarm_hotspot, diagnose};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, row, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::SimConfig;
use pathdump_topology::{HostId, Nanos};

fn main() {
    let args = Args::parse();
    banner(
        "Figure 10",
        "TCP outcast: throughput unfairness across 15 senders",
        "the flow closest to the receiver (2-hop) sees the most throughput \
         loss; far flows share the remaining capacity (port blackout)",
    );
    let mut cfg = SimConfig {
        seed: args.seed,
        ..Default::default()
    };
    // Small buffers accentuate taildrop port blackout, as in the testbed.
    cfg.fabric_link.queue_pkts = 16;
    let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
    let receiver = tb.ft.host(0, 0, 0);
    let close = tb.ft.host(0, 0, 1);
    // 14 far senders: every other host outside rack (0,0).
    let mut far: Vec<HostId> = Vec::new();
    for p in 0..4 {
        for t in 0..2 {
            for h in 0..2 {
                let host = tb.ft.host(p, t, h);
                if host != receiver && host != close && !(p == 0 && t == 0) {
                    far.push(host);
                }
            }
        }
    }
    println!(
        "senders: 1 close (same rack) + {} far (other racks)",
        far.len()
    );
    let size = 1_000_000_000u64; // effectively unbounded within the window
    let mut flows = vec![tb.flow(close, receiver, 5000)];
    tb.add_flow(close, receiver, 5000, size, Nanos::ZERO);
    for (i, &src) in far.iter().enumerate() {
        let sport = 5001 + i as u16;
        flows.push(tb.flow(src, receiver, sport));
        tb.add_flow(src, receiver, sport, size, Nanos::ZERO);
    }
    let window = (Nanos::ZERO, Nanos::from_secs(10));
    tb.sim.run_until(window.1);

    // Event-driven trigger: the controller reacts to POOR_PERF alarms
    // naming one receiver.
    let alarms = tb.sim.world.drain_alarms();
    if let Some(hot) = alarm_hotspot(&alarms, 5) {
        println!("alarm hotspot: {} ({} alarms total)", hot, alarms.len());
    }
    let rip = tb.ip_of(receiver);
    let report = diagnose(&mut tb.sim.world, rip, &flows, window);

    println!();
    row(&["flow".into(), "hops".into(), "throughput(Mbps)".into()]);
    let mut by_port: Vec<_> = report.flows.iter().collect();
    by_port.sort_by_key(|e| e.flow.src_port);
    for e in by_port {
        row(&[
            format!("f{}", e.flow.src_port - 4999),
            format!("{}", e.hops),
            format!("{:.2}", e.throughput_bps / 1e6),
        ]);
    }
    println!(
        "\nunfairness (best/worst): {:.2}x; outcast profile matched: {}",
        report.unfairness, report.is_outcast
    );
    let close_ev = report
        .flows
        .iter()
        .find(|e| e.flow.src_port == 5000)
        .expect("close flow present");
    let rank = report
        .flows
        .iter()
        .position(|e| e.flow.src_port == 5000)
        .expect("present");
    println!(
        "close (2-hop) flow throughput rank: {}/{} from worst (paper: worst)",
        rank + 1,
        report.flows.len()
    );
    let _ = close_ev;
}
