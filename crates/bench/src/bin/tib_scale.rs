//! 10M-record storage-scale gate: drives the tiered TIB engine through
//! ingest (auto-seal + cold eviction), a checkpoint, a WAL'd tail,
//! ranged queries over cold segments, and a full crash-recovery replay
//! — at the scale the paper's per-host stores actually reach ("an hour
//! of flows at a server" × a day). CI runs this as a *blocking* gate
//! with a wall-clock budget, so a storage-engine change that tanks
//! ingest throughput or recovery time fails the pipeline.
//!
//! Usage: `cargo run --release -p pathdump_bench --bin tib_scale
//! [-- --runs N] [--max-secs S]` (N = records, default 10,000,000;
//! S = wall-clock budget for the three measured phases combined,
//! 0 = unlimited; overrunning it exits nonzero).

use pathdump_bench::tib_scale::{run_tib_scale, TibScaleParams};
use pathdump_bench::{banner, fmt_bytes, Args};

fn main() {
    let args = Args::parse();
    banner(
        "tib-scale",
        "tiered TIB storage engine at 10M records (seal + evict + WAL + recover)",
        "§3.2 'storage at each end-host'; unlocked by the tiered segment store",
    );
    let mut p = TibScaleParams::gate_shape();
    if args.runs > 0 {
        p.records = args.runs;
        p.seal_every = (p.records / 10).max(1);
        p.wal_tail = (p.records / 100).max(1);
    }
    let dir = std::env::temp_dir().join(format!("pathdump-tib-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create eviction dir");
    let r = run_tib_scale(p, &dir);
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "ingest: {} records in {:.3}s ({:.2}M records/sec), {} sealed segments ({} cold), resident {}",
        r.records,
        r.ingest_wall_secs,
        r.ingest_events_per_sec / 1e6,
        r.sealed_segments,
        r.cold_segments,
        fmt_bytes(r.resident_bytes as u64),
    );
    println!(
        "checkpoint: {:.1} ms for a {} snapshot; queries: {:.3} ms mean over sealed segments ({} cold reloads)",
        r.checkpoint_wall_ms,
        fmt_bytes(r.snapshot_bytes as u64),
        r.query_mean_ms,
        r.cold_reloads,
    );
    println!(
        "recovery: {:.1} ms (snapshot + {} WAL records replayed)",
        r.recovery_wall_ms, r.wal_replayed,
    );

    let mut ok = true;
    if r.cold_segments == 0 {
        eprintln!("FAIL: eviction never produced a cold segment — memory is unbounded");
        ok = false;
    }
    if r.cold_reloads == 0 {
        eprintln!("FAIL: the query sample never exercised the cold-reload path");
        ok = false;
    }
    // The store's own asserts already verified recovery losslessness;
    // the budget check is what makes this a perf gate.
    let measured = r.ingest_wall_secs
        + (r.checkpoint_wall_ms + r.recovery_wall_ms) / 1e3
        + r.query_mean_ms / 1e3 * p.queries as f64;
    if args.max_secs > 0.0 {
        if measured > args.max_secs {
            eprintln!(
                "FAIL: measured phases took {measured:.3}s, over the --max-secs {} budget",
                args.max_secs
            );
            ok = false;
        } else {
            println!(
                "budget: {measured:.3}s of {}s wall-clock used ({:.0}% headroom)",
                args.max_secs,
                (1.0 - measured / args.max_secs) * 100.0
            );
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("ok: tiered store ingests, seals, evicts, and recovers at scale");
}
