//! Figure 9: real-time routing-loop detection via the controller trap.
//!
//! Paper: ~47 ms to detect a 4-hop loop (one controller visit), ~115 ms
//! for a 6-hop loop (two visits: store tags, strip, re-inject, compare).
//! Our uniform sampling rules need one extra visit for the smallest loops
//! (DESIGN.md §5.1), so both cases take two visits here; detection time
//! stays controller-punt bound and loops of any size are caught.

use pathdump_apps::routing_loop::{install_loop, run_loop_experiment};
use pathdump_apps::Testbed;
use pathdump_bench::{banner, mean, row, stderr, Args};
use pathdump_core::WorldConfig;
use pathdump_simnet::SimConfig;
use pathdump_topology::{Nanos, SwitchId};

fn run_case(
    cycle_of: impl Fn(&Testbed) -> Vec<SwitchId>,
    runs: usize,
    seed: u64,
) -> (Vec<f64>, u32) {
    let mut times = Vec::new();
    let mut visits = 0;
    for r in 0..runs {
        let cfg = SimConfig {
            seed: seed + r as u64,
            ..Default::default()
        };
        let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 8800 + r as u16);
        let cycle = cycle_of(&tb);
        let entry = tb.ft.tor(0, 0);
        install_loop(&mut tb, flow, entry, &cycle);
        let out = run_loop_experiment(&mut tb, flow, Nanos::from_secs(5));
        let det = out.detection.expect("loop must be detected");
        times.push(det.at.as_secs_f64() * 1000.0);
        visits = visits.max(det.visits);
    }
    (times, visits)
}

fn main() {
    let args = Args::parse();
    let runs = if args.runs > 0 { args.runs } else { 10 };
    banner(
        "Figure 9",
        "Routing-loop detection latency (controller trap)",
        "4-hop loop ~47 ms; 6-hop loop ~115 ms; any size detected by the \
         same store-strip-reinject-compare procedure",
    );
    let (t4, v4) = run_case(
        |tb| {
            vec![
                tb.ft.agg(0, 0),
                tb.ft.core(0),
                tb.ft.agg(1, 0),
                tb.ft.core(1),
            ]
        },
        runs,
        args.seed,
    );
    let (t8, v8) = run_case(
        |tb| {
            vec![
                tb.ft.agg(0, 0),
                tb.ft.core(0),
                tb.ft.agg(1, 0),
                tb.ft.tor(1, 0),
                tb.ft.agg(1, 1),
                tb.ft.core(2),
                tb.ft.agg(0, 1),
                tb.ft.tor(0, 1),
            ]
        },
        runs,
        args.seed + 1000,
    );
    row(&[
        "loop size".into(),
        "detect (ms)".into(),
        "stderr".into(),
        "ctrl visits".into(),
        "paper (ms)".into(),
    ]);
    row(&[
        "4 switches".into(),
        format!("{:.1}", mean(&t4)),
        format!("{:.2}", stderr(&t4)),
        format!("{v4}"),
        "~47".into(),
    ]);
    row(&[
        "8 switches".into(),
        format!("{:.1}", mean(&t8)),
        format!("{:.2}", stderr(&t8)),
        format!("{v8}"),
        "~115 (6-hop)".into(),
    ]);
    println!(
        "result: detection latency is controller-visit bound \
         (punt latency {} per visit), independent of loop size class",
        Nanos(SimConfig::default().punt_latency.0)
    );
}
