//! Figure 13: edge datapath forwarding throughput, PathDump vs vanilla
//! vSwitch, across packet sizes — Gbps and Mpps.
//!
//! Conditions mirror §5.3: packets carry 1–2 VLAN tags, ~4K per-path flow
//! records stay live in the trajectory memory, and the PathDump pipeline
//! additionally extracts samples, updates the memory, and strips tags.

use pathdump_bench::{banner, row, Args};
use pathdump_dpswitch::{build_frame, DataPath, FrameBatch, Mode};
use pathdump_topology::{FlowId, Ip};
use std::time::Instant;

/// Builds a batch of frames: `flows` distinct flows with 1-2 tags each and
/// the given L4 payload so the wire size lands on `pkt_size`.
fn batch(pkt_size: usize, flows: usize) -> FrameBatch {
    let overhead = 14 + 20 + 20; // Eth + IPv4 + TCP
    let frames: Vec<Vec<u8>> = (0..flows)
        .map(|i| {
            let flow = FlowId::tcp(
                Ip(0x0A00_0002 + (i as u32 % 4096)),
                1024 + (i % 60000) as u16,
                Ip(0x0A63_0002),
                80,
            );
            let tags: Vec<u16> = if i % 2 == 0 {
                vec![(i % 4096) as u16]
            } else {
                vec![(i % 4096) as u16, ((i * 7) % 4096) as u16]
            };
            let tag_bytes = tags.len() * 4;
            let payload = pkt_size.saturating_sub(overhead + tag_bytes).max(6);
            build_frame(&flow, &tags, 0, payload)
        })
        .collect();
    FrameBatch::new(frames)
}

fn measure(mode: Mode, pkt_size: usize, seconds: f64) -> (f64, f64) {
    // ~4K live flow records, as in §5.3.
    let mut dp = DataPath::new(mode);
    dp.learn([0x02, 0, 0, 0, 0, 0x01], 1);
    let mut b = batch(pkt_size, 4096);
    // Warm up: populate the trajectory memory and caches.
    b.run_once(&mut dp);
    let t0 = Instant::now();
    let mut pkts = 0u64;
    let mut bytes = 0u64;
    while t0.elapsed().as_secs_f64() < seconds {
        let ok = b.run_once(&mut dp);
        pkts += ok as u64;
        bytes += b.total_bytes();
    }
    let dt = t0.elapsed().as_secs_f64();
    (bytes as f64 * 8.0 / dt / 1e9, pkts as f64 / dt / 1e6)
}

fn main() {
    let args = Args::parse();
    let secs = if args.full { 2.0 } else { 0.5 };
    banner(
        "Figure 13",
        "Edge datapath throughput: PathDump vs vanilla vSwitch",
        "PathDump introduces at most ~4% throughput loss over the vanilla \
         datapath across 64-1500B packets (~4K live flow records)",
    );
    println!("measurement window: {secs}s per point\n");
    row(&[
        "pkt size".into(),
        "vanilla Gbps".into(),
        "PathDump Gbps".into(),
        "vanilla Mpps".into(),
        "PathDump Mpps".into(),
        "overhead".into(),
    ]);
    for &size in &[64usize, 128, 256, 512, 1024, 1500] {
        let (vg, vp) = measure(Mode::Vanilla, size, secs);
        let (pg, pp) = measure(Mode::PathDump, size, secs);
        let overhead = (1.0 - pg / vg) * 100.0;
        row(&[
            format!("{size}B"),
            format!("{vg:.2}"),
            format!("{pg:.2}"),
            format!("{vp:.2}"),
            format!("{pp:.2}"),
            format!("{overhead:.1}%"),
        ]);
    }
    println!(
        "\nresult: the zero-copy pipeline (in-place MAC-relocation strip, \
         borrowed-key memory updates, no per-frame allocations) leaves \
         the PathDump differential as one trajectory-memory probe plus a \
         12-byte copy_within (~40-60ns/packet). The relative overhead at \
         small sizes is larger than the paper's <=4% because our baseline \
         loop has no NIC/DMA budget to absorb the hook, unlike the \
         paper's DPDK testbed whose 10GbE line rate hides it at larger \
         sizes. The absolute per-packet cost beats the paper's \
         trajectory-memory accounting (0.8-3.6M updates/s, Section 5.3)."
    );
}
