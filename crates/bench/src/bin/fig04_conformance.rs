//! Figure 4: path conformance check under link failure + failover.

use pathdump_apps::conformance::{violations, ConformancePolicy};
use pathdump_apps::Testbed;
use pathdump_bench::banner;
use pathdump_core::WorldConfig;
use pathdump_simnet::{Quirk, SimConfig};
use pathdump_topology::Nanos;

fn main() {
    banner(
        "Figure 4",
        "Path conformance check under failover",
        "the agent detects the >4-hop failover path in real time and \
         alerts the controller with the flow key and trajectory",
    );
    let mut tb = Testbed::fattree(6, SimConfig::default(), WorldConfig::default());
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(0, 1, 0));
    ConformancePolicy {
        max_hops: Some(4),
        ..ConformancePolicy::default()
    }
    .install(&mut tb.sim.world, &[dst]);
    println!(
        "scenario: intra-pod flow {}->{}; link Agg(0,0)-ToR(0,1) fails; \
         flows pinned via Agg(0,0)",
        src, dst
    );
    tb.sim.set_link_down(tb.ft.agg(0, 0), tb.ft.tor(0, 1), true);
    let entry = tb.ft.tor(0, 0);
    let port = tb.sim.link_port(entry, tb.ft.agg(0, 0));
    for sport in 9000..9008u16 {
        let flow = tb.flow(src, dst, sport);
        tb.sim
            .install_quirk(entry, Quirk::ForwardFlowTo { flow, port });
        tb.add_flow(src, dst, sport, 20_000, Nanos::ZERO);
    }
    tb.sim.run_until(Nanos::from_secs(10));
    let alarms = tb.sim.world.drain_alarms();
    let v = violations(&alarms);
    println!("PC_FAIL alarms raised: {}", v.len());
    for a in v.iter().take(4) {
        println!(
            "  flow {}  trajectory {}  ({} hops > 4 allowed)  t={}",
            a.flow,
            a.paths[0],
            a.paths[0].num_hops(),
            a.at
        );
    }
    assert!(!v.is_empty(), "reproduction failed: no violation detected");
    println!("result: violation detected at the destination edge in real time");
}
