//! §4.4: blackhole diagnosis — search-space reduction from 10 switches to
//! 3 (aggregate–core blackhole) or 4 (ToR–aggregate blackhole).

use pathdump_apps::blackhole::diagnose;
use pathdump_apps::Testbed;
use pathdump_bench::banner;
use pathdump_core::WorldConfig;
use pathdump_simnet::{FaultState, LoadBalance, SimConfig};
use pathdump_topology::{Nanos, SwitchId, TimeRange, UpDownRouting};

fn run_case(
    label: &str,
    fault: (SwitchId, SwitchId),
    expected_missing: usize,
    paper_suspects: usize,
) {
    let mut tb = Testbed::fattree(4, SimConfig::default(), WorldConfig::default());
    tb.sim.set_lb_all(LoadBalance::Spray);
    tb.add_web_traffic(0.2, Nanos::from_secs(5), 7);
    let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
    let flow = tb.flow(src, dst, 7700);
    for (x, y) in [fault, (fault.1, fault.0)] {
        tb.sim.set_directed_fault(
            x,
            y,
            FaultState {
                blackhole: true,
                ..FaultState::HEALTHY
            },
        );
    }
    // The paper's 100 KB sprayed TCP flow.
    tb.add_flow(src, dst, 7700, 100_000, Nanos::ZERO);
    tb.sim.run_until(Nanos::from_secs(15));
    let expected = tb.ft.all_paths(src, dst);
    let total_switches: std::collections::HashSet<SwitchId> =
        expected.iter().flat_map(|p| p.0.iter().copied()).collect();
    let report = diagnose(&mut tb.sim.world, flow, expected, TimeRange::ANY);
    println!("\ncase: {label}");
    println!(
        "  expected equal-cost paths: 4 ({} switches total)",
        total_switches.len()
    );
    println!("  paths observed in dst TIB: {}", report.observed.len());
    println!(
        "  missing paths: {} (expected {expected_missing})",
        report.missing.len()
    );
    println!(
        "  suspects: {:?} ({} switches; paper narrows to {paper_suspects})",
        report.suspects,
        report.suspects.len()
    );
    assert_eq!(
        report.missing.len(),
        expected_missing,
        "reproduction failed"
    );
    assert_eq!(report.suspects.len(), paper_suspects, "reproduction failed");
}

fn main() {
    banner(
        "§4.4",
        "Blackhole diagnosis under packet spraying",
        "agg-core blackhole: 1 missing subflow -> 3 suspects of 10; \
         ToR-agg blackhole: 2 missing subflows -> 4 common suspects",
    );
    // Build one testbed just to name switches (cases build their own).
    let tb = Testbed::fattree(4, SimConfig::default(), WorldConfig::default());
    let (agg, core) = (tb.ft.agg(0, 0), tb.ft.core(0));
    let (tor, agg2) = (tb.ft.tor(0, 0), tb.ft.agg(0, 0));
    drop(tb);
    run_case("blackhole at aggregate-core link", (agg, core), 1, 3);
    run_case(
        "blackhole at ToR-aggregate link (source pod)",
        (tor, agg2),
        2,
        4,
    );
    println!("\nresult: debugging search space reduced exactly as in §4.4");
}
