//! k=16 scale smoke: drives the paper-scale fat-tree (1024 hosts, 320
//! switches, 17 switch shards) end-to-end on the **sharded** simnet
//! engine and checks the conservation invariants. CI runs this as a
//! non-blocking canary so scale regressions (deadlocks, horizon bugs,
//! blow-ups in the shard synchronization) surface before anyone needs a
//! k=16 experiment.
//!
//! Usage: `cargo run --release -p pathdump_bench --bin fig_k16_scale
//! [-- --runs N]` (N = packets per host, default 100).

use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams};
use pathdump_bench::{banner, Args};
use pathdump_simnet::EngineKind;

fn main() {
    let args = Args::parse();
    let pkts = if args.runs == 0 {
        100
    } else {
        args.runs as u32
    };
    banner(
        "k16-scale",
        "sharded engine smoke at paper scale (k=16 fat-tree)",
        "§5 'datacenter-scale fabrics'; unlocked by pod-sharded conservative PDES",
    );
    let p = ScaleParams {
        k: 16,
        pkts_per_host: pkts,
        ..ScaleParams::k8_default()
    };
    let r = run_scale_with(p, EngineKind::Sharded, 0);
    println!(
        "k=16: {} events in {:.3}s ({:.2}M events/sec), delivered {}/{} packets",
        r.events,
        r.wall_secs,
        r.events_per_sec / 1e6,
        r.delivered,
        r.injected
    );
    let expected = 1024 * pkts as u64;
    let mut ok = true;
    if r.injected != expected {
        eprintln!("FAIL: injected {} != expected {expected}", r.injected);
        ok = false;
    }
    if r.delivered == 0 || r.delivered < r.injected * 9 / 10 {
        eprintln!(
            "FAIL: delivery collapsed: {}/{} (queue tail-drops are the only legal loss)",
            r.delivered, r.injected
        );
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("ok: k=16 fabric completes on the sharded engine");
}
