//! k=16 scale smoke: drives the paper-scale fat-tree (1024 hosts, 320
//! switches, 17 switch shards) end-to-end on the **sharded** simnet
//! engine and checks the conservation invariants. CI runs this as a
//! non-blocking canary so scale regressions (deadlocks, horizon bugs,
//! blow-ups in the shard synchronization) surface before anyone needs a
//! k=16 experiment.
//!
//! Usage: `cargo run --release -p pathdump_bench --bin fig_k16_scale
//! [-- --runs N] [--max-secs S]` (N = packets per host, default 100;
//! S = wall-clock budget for the measured run, 0 = unlimited). With a
//! budget, overrunning it exits nonzero — CI runs this as a *blocking*
//! scale gate, so an engine change that tanks k=16 throughput fails the
//! pipeline instead of merely looking slow in a log.

use pathdump_bench::simnet_scale::{run_scale_with, ScaleParams};
use pathdump_bench::{banner, Args};
use pathdump_simnet::EngineKind;

fn main() {
    let args = Args::parse();
    let pkts = if args.runs == 0 {
        100
    } else {
        args.runs as u32
    };
    banner(
        "k16-scale",
        "sharded engine smoke at paper scale (k=16 fat-tree)",
        "§5 'datacenter-scale fabrics'; unlocked by pod-sharded conservative PDES",
    );
    let p = ScaleParams {
        k: 16,
        pkts_per_host: pkts,
        ..ScaleParams::k8_default()
    };
    // Exercise the *pooled* driver at paper scale (one worker per CPU,
    // clamped to the 17 switch shards): on multicore CI this smoke is the
    // only blocking coverage of real thread interleavings at k=16. The
    // inline mode is covered too — it is strictly a subset of the same
    // windowed-round driver with a trivial executor.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = cpus.min(17);
    let r = run_scale_with(p, EngineKind::Sharded, workers);
    println!(
        "k=16: {} events in {:.3}s ({:.2}M events/sec, {} pool worker(s)), delivered {}/{} packets",
        r.events,
        r.wall_secs,
        r.events_per_sec / 1e6,
        r.workers,
        r.delivered,
        r.injected
    );
    let expected = 1024 * pkts as u64;
    let mut ok = true;
    if r.injected != expected {
        eprintln!("FAIL: injected {} != expected {expected}", r.injected);
        ok = false;
    }
    if r.delivered == 0 || r.delivered < r.injected * 9 / 10 {
        eprintln!(
            "FAIL: delivery collapsed: {}/{} (queue tail-drops are the only legal loss)",
            r.delivered, r.injected
        );
        ok = false;
    }
    if args.max_secs > 0.0 {
        if r.wall_secs > args.max_secs {
            eprintln!(
                "FAIL: wall clock {:.3}s exceeded the --max-secs {} budget",
                r.wall_secs, args.max_secs
            );
            ok = false;
        } else {
            println!(
                "budget: {:.3}s of {}s wall-clock used ({:.0}% headroom)",
                r.wall_secs,
                args.max_secs,
                (1.0 - r.wall_secs / args.max_secs) * 100.0
            );
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("ok: k=16 fabric completes on the sharded engine");
}
