//! Tiered-storage scale workload: drives millions of records through a
//! [`TieredTib`] with auto-seal, cold eviction to disk, a WAL over the
//! unflushed tail, and a crash-recovery replay — the `tib_scale` section
//! of `BENCH_tib.json` and the blocking 10M-record CI gate (`tib_scale`
//! bin).
//!
//! Three measured phases:
//!
//! 1. **Ingest** — inserts with sealing every `seal_every` records and
//!    eviction down to `keep_hot` hot segments (the eviction I/O is part
//!    of the datapath cost of bounded memory, so it is *in* the timed
//!    region). A checkpoint is cut at `records − wal_tail`, after which
//!    a WAL logs every insert — the crash-window shape.
//! 2. **Ranged queries** — `get_flows`/`top_k_flows`/`get_count` over
//!    windows that land on sealed segments, including cold ones (the
//!    lazy reload path is exercised and counted).
//! 3. **Recovery** — `TieredTib::recover(checkpoint, wal)` replaying the
//!    crash artifacts back into a queryable store, verified against the
//!    live one.

use pathdump_tib::{TibRead, TibRecord, TieredTib, VecWal};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, SwitchId, TimeRange};
use std::time::Instant;

/// Workload shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct TibScaleParams {
    /// Total records ingested.
    pub records: usize,
    /// Distinct flows cycled through the stream.
    pub flows: usize,
    /// Auto-seal threshold (head records per sealed segment).
    pub seal_every: usize,
    /// Hot sealed segments kept resident; older ones go cold on disk.
    pub keep_hot: usize,
    /// Records after the last checkpoint, logged through the WAL.
    pub wal_tail: usize,
    /// Ranged queries in the latency sample.
    pub queries: usize,
}

impl TibScaleParams {
    /// The blocking CI gate shape: 10M records, 1M-record segments.
    pub fn gate_shape() -> Self {
        TibScaleParams {
            records: 10_000_000,
            flows: 4096,
            seal_every: 1_000_000,
            keep_hot: 2,
            wal_tail: 100_000,
            queries: 32,
        }
    }

    /// The smaller shape `bench_trajectory` records (and `bench_gate`
    /// drift-bands) on every run.
    pub fn trajectory_shape() -> Self {
        TibScaleParams {
            records: 1_000_000,
            flows: 2048,
            seal_every: 125_000,
            keep_hot: 2,
            wal_tail: 20_000,
            queries: 16,
        }
    }
}

/// Result of one scale run.
#[derive(Clone, Debug)]
pub struct TibScaleResult {
    pub records: usize,
    pub sealed_segments: usize,
    pub cold_segments: usize,
    pub ingest_wall_secs: f64,
    pub ingest_events_per_sec: f64,
    pub checkpoint_wall_ms: f64,
    pub snapshot_bytes: usize,
    /// Mean wall per ranged query over sealed (incl. cold) segments.
    pub query_mean_ms: f64,
    /// Cold-segment reloads the query sample triggered.
    pub cold_reloads: u64,
    pub recovery_wall_ms: f64,
    /// Records the recovery replayed out of the WAL.
    pub wal_replayed: usize,
    /// Resident bytes as ingest left the store (head + hot tail +
    /// cached blocks), before the query phase re-warms cold segments.
    pub resident_bytes: usize,
}

/// Nanoseconds between consecutive record start times: spreads the
/// stream over many buckets/segments so ranged queries prune.
const STIME_STEP: u64 = 10_000;

/// The `i`-th synthetic record: flows cycle with a multiplicative hash
/// (so consecutive records hit different flows), paths rotate over a
/// small pool, stime strictly increases, sizes vary deterministically.
fn record_at(i: usize, flows: usize, pool: &[Path]) -> TibRecord {
    let f = (i as u64).wrapping_mul(2654435761) % flows as u64;
    let stime = Nanos(i as u64 * STIME_STEP);
    TibRecord {
        flow: FlowId::tcp(
            Ip::new(10, (f >> 8) as u8, f as u8, 2),
            1024 + (f % 60000) as u16,
            Ip::new(10, 255, 0, 2),
            80,
        ),
        path: pool[i % pool.len()].clone(),
        stime,
        etime: Nanos(stime.0 + STIME_STEP / 2),
        bytes: 200 + (i as u64 % 97) * 31,
        pkts: 1 + i as u64 % 5,
    }
}

fn path_pool() -> Vec<Path> {
    (0..8u16)
        .map(|i| Path(vec![SwitchId(1 + i), SwitchId(100 + i % 4), SwitchId(200)]))
        .collect()
}

/// Runs the full workload; `dir` (must exist) receives the evicted
/// cold-segment files.
pub fn run_tib_scale(p: TibScaleParams, dir: &std::path::Path) -> TibScaleResult {
    assert!(
        p.wal_tail >= 1 && p.wal_tail <= p.records,
        "wal_tail must cover at least the last record"
    );
    let pool = path_pool();
    let mut store = TieredTib::new();
    store.set_seal_after(Some(p.seal_every.max(1)));

    // Phase 1: ingest. The checkpoint cut and WAL attach happen at the
    // crash-window boundary; the checkpoint itself is timed separately
    // (it is a maintenance op, not datapath).
    let checkpoint_at = p.records - p.wal_tail;
    let mut snapshot = Vec::new();
    let mut checkpoint_wall_ms = 0.0;
    let start = Instant::now();
    for i in 0..p.records {
        if i == checkpoint_at {
            store.attach_wal(Box::new(VecWal::new()));
            let t = Instant::now();
            store.checkpoint(&mut snapshot).expect("checkpoint");
            checkpoint_wall_ms = t.elapsed().as_secs_f64() * 1e3;
        }
        store.insert(record_at(i, p.flows, &pool));
        if store.num_sealed() > p.keep_hot && store.head().is_empty() {
            // Just sealed: push the old tail cold.
            store.evict_cold(p.keep_hot, dir).expect("evict");
        }
    }
    let ingest_wall_secs = start.elapsed().as_secs_f64() - checkpoint_wall_ms / 1e3;
    assert_eq!(store.len(), p.records);
    assert_eq!(store.wal_errors(), 0);
    let wal = store.wal_bytes().expect("wal bytes");
    // Memory-tier shape as ingest left it — the query phase's lazy
    // reloads re-warm segments, so measure before it runs.
    let cold_segments = store.num_cold();
    let resident_bytes = store.approx_bytes();

    // Phase 2: ranged queries over the sealed span (old windows land on
    // cold segments → lazy reload; recent ones on the hot tail).
    let span = p.records as u64 * STIME_STEP;
    let reloads_before = store.cold_reloads();
    let t = Instant::now();
    let mut sink = 0usize;
    for q in 0..p.queries.max(1) {
        let lo = span / 16 * (q as u64 % 13);
        let range = TimeRange::between(Nanos(lo), Nanos(lo + span / 16));
        match q % 3 {
            0 => sink += store.get_flows(LinkPattern::ANY, range).len(),
            1 => sink += store.top_k_flows(8, range).len(),
            _ => {
                let probe = record_at(q * 1009, p.flows, &pool).flow;
                sink += store.get_count(probe, None, range).0 as usize;
            }
        }
    }
    let query_mean_ms = t.elapsed().as_secs_f64() * 1e3 / p.queries.max(1) as f64;
    assert!(sink > 0, "query sample answered nothing");
    let cold_reloads = store.cold_reloads() - reloads_before;

    // Phase 3: crash recovery from the checkpoint + WAL artifacts.
    let t = Instant::now();
    let (recovered, report) = TieredTib::recover(&snapshot, &wal).expect("recover");
    let recovery_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.dropped_tail, 0, "clean shutdown has no torn tail");
    assert_eq!(
        recovered.len(),
        p.records,
        "recovery lost records: snapshot {} + wal {}",
        report.snapshot_records,
        report.wal_records
    );
    assert_eq!(
        recovered.top_k_flows(5, TimeRange::ANY),
        store.top_k_flows(5, TimeRange::ANY),
        "recovered store answers diverged"
    );

    TibScaleResult {
        records: p.records,
        sealed_segments: store.num_sealed(),
        cold_segments,
        ingest_wall_secs,
        ingest_events_per_sec: p.records as f64 / ingest_wall_secs.max(1e-9),
        checkpoint_wall_ms,
        snapshot_bytes: snapshot.len(),
        query_mean_ms,
        cold_reloads,
        recovery_wall_ms,
        wal_replayed: report.wal_records,
        resident_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workload's invariants at a miniature shape: every tier is
    /// exercised (seals, cold segments, WAL replay, cold reloads) and
    /// recovery is lossless.
    #[test]
    fn scale_workload_invariants_hold() {
        let dir = std::env::temp_dir().join(format!("pathdump-scale-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("dir");
        let p = TibScaleParams {
            records: 20_000,
            flows: 64,
            seal_every: 4_000,
            keep_hot: 1,
            wal_tail: 3_000,
            queries: 12,
        };
        let r = run_tib_scale(p, &dir);
        assert_eq!(r.records, 20_000);
        assert_eq!(r.sealed_segments, 5);
        assert!(r.cold_segments >= 2, "eviction never went cold: {r:?}");
        assert_eq!(r.wal_replayed, 3_000);
        assert!(r.snapshot_bytes > 0);
        assert!(r.ingest_events_per_sec > 0.0);
        assert!(r.recovery_wall_ms > 0.0);
        assert!(r.resident_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
