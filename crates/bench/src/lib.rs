//! Shared harness utilities for the table/figure reproduction binaries and
//! the Criterion micro-benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) and prints the same rows/series the
//! paper reports, plus a `paper:` reference line for EXPERIMENTS.md.

use pathdump_tib::{Tib, TibRecord};
use pathdump_topology::{FatTree, FlowId, HostId, Nanos, UpDownRouting};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod ingest_scale;
pub mod report;
pub mod simnet_scale;
pub mod standing_scale;
pub mod tib_scale;

/// Minimal CLI flags shared by the reproduction binaries.
#[derive(Clone, Debug)]
pub struct Args {
    /// Run at full paper scale (slower).
    pub full: bool,
    /// Number of repeated runs for averaged experiments.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Wall-clock budget in seconds (0 = unlimited): bins that honor it
    /// exit nonzero when the measured run exceeds the budget, so CI can
    /// make scale smokes blocking.
    pub max_secs: f64,
}

impl Args {
    /// Parses `--full`, `--runs N`, `--seed N`, `--max-secs S` from
    /// `std::env::args`.
    pub fn parse() -> Args {
        let mut args = Args {
            full: false,
            runs: 0, // 0 = binary default
            seed: 1,
            max_secs: 0.0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--runs" => {
                    args.runs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs a number");
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--max-secs" => {
                    args.max_secs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-secs needs a number");
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        args
    }
}

/// Prints a header block for a figure/table reproduction.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper}");
    println!("==============================================================");
}

/// Prints one aligned table row.
pub fn row(cells: &[String]) {
    let line = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("{line}");
}

/// Formats a nanosecond value as engineering time.
pub fn fmt_time(ns: Nanos) -> String {
    format!("{ns}")
}

/// Formats a byte count with units.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1}MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1}KB", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

/// Builds a synthetic per-host TIB with `n` records whose paths are real
/// shortest paths of `ft` — the Figure 11/12 population ("each TIB has
/// 240K flow entries, roughly an hour of flows at a server").
pub fn synth_tib(ft: &FatTree, host: HostId, n: usize, seed: u64) -> Tib {
    let mut rng = SmallRng::seed_from_u64(seed ^ (host.0 as u64) << 17);
    let topo = ft.topology();
    let num_hosts = topo.num_hosts() as u32;
    let mut tib = Tib::new();
    let hour = Nanos::from_secs(3600);
    for i in 0..n {
        let src = loop {
            let c = HostId(rng.gen_range(0..num_hosts));
            if c != host {
                break c;
            }
        };
        let paths = ft.all_paths(src, host);
        let path = paths[rng.gen_range(0..paths.len())].clone();
        let flow = FlowId::tcp(
            topo.host(src).ip,
            1024 + (i % 60000) as u16,
            topo.host(host).ip,
            80,
        );
        // Heavy-tailed sizes: mice with an elephant tail.
        let bytes: u64 = if rng.gen::<f64>() < 0.9 {
            rng.gen_range(200..100_000)
        } else {
            rng.gen_range(100_000..30_000_000)
        };
        let start = Nanos(rng.gen_range(0..hour.0));
        let dur = Nanos(rng.gen_range(1_000_000..10_000_000_000));
        tib.insert(TibRecord {
            flow,
            path,
            stime: start,
            etime: start.saturating_add(dur),
            bytes,
            pkts: bytes / 1460 + 1,
        });
    }
    tib
}

/// Mean over a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Standard error of the mean (the Figure 8 error bars: `σ/√n`).
pub fn stderr(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdump_topology::FatTreeParams;

    #[test]
    fn synth_tib_is_valid_and_deterministic() {
        let ft = FatTree::build(FatTreeParams { k: 4 });
        let a = synth_tib(&ft, HostId(3), 500, 42);
        let b = synth_tib(&ft, HostId(3), 500, 42);
        assert_eq!(a.len(), 500);
        assert_eq!(a.records(), b.records());
        for rec in a.records() {
            assert_eq!(rec.path.last(), Some(ft.topology().host(HostId(3)).tor));
            assert!(rec.bytes > 0);
        }
        let c = synth_tib(&ft, HostId(4), 500, 42);
        assert_ne!(a.records(), c.records(), "per-host variation");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(stderr(&[5.0]) == 0.0);
        let se = stderr(&[1.0, 2.0, 3.0, 4.0]);
        assert!(se > 0.6 && se < 0.7, "{se}");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(500), "500B");
        assert_eq!(fmt_bytes(50_000), "50.0KB");
        assert_eq!(fmt_bytes(15_000_000), "15.0MB");
    }
}
