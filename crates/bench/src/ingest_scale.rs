//! Host-agent ingest scaling benchmark: one packet stream (many flows to
//! one destination host, multipath spraying, FIN-terminated) driven
//! through the single-threaded [`HostAgent`] reference and through
//! [`ShardedAgent`] at a range of worker counts — the `ingest` section of
//! `BENCH_tib.json`.
//!
//! The stream is materialized once and the measured loop is windowed
//! `ingest` + final `flush` only, so the numbers are the agent datapath
//! (trajectory-memory updates, FIN evictions, TIB merge), not packet
//! construction. Every run must produce the same TIB record count — the
//! coarse bit-identity smoke; the fine-grained pin lives in
//! `crates/core/tests/sharded_equivalence.rs`.
//!
//! On a 1-CPU box the per-worker curve cannot measure parallelism: any
//! speedup it shows comes from smaller per-shard memories (better cache
//! locality per probe) and the batched event replay, minus thread
//! spawn/join overhead. The recorded `cpus` field lets readers and the
//! gate interpret the curve; `bench_gate` only gates it when `cpus > 1`.

use pathdump_cherrypick::{FatTreeCherryPick, FatTreeReconstructor};
use pathdump_core::{AgentConfig, Fabric, HostAgent, ShardedAgent};
use pathdump_simnet::{Packet, TagPolicy, TcpFlags};
use pathdump_topology::{
    FatTree, FatTreeParams, FlowId, HostId, Nanos, Path, Peer, PortNo, UpDownRouting,
};
use std::time::Instant;

/// Workload shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct IngestParams {
    /// Fat-tree arity of the fabric the tags come from.
    pub k: u16,
    /// Distinct flows streaming into the agent's host.
    pub flows: usize,
    /// Packets per flow; the last one carries FIN.
    pub pkts_per_flow: usize,
    /// Packets per `ingest` window (the NIC-ring poll batch).
    pub window: usize,
}

impl IngestParams {
    /// The default comparison point recorded in `BENCH_tib.json`.
    pub fn default_shape() -> Self {
        IngestParams {
            k: 4,
            flows: 2048,
            pkts_per_flow: 16,
            window: 512,
        }
    }
}

/// Result of one ingest run.
#[derive(Clone, Debug)]
pub struct IngestResult {
    /// `0` = the single-threaded [`HostAgent`] reference.
    pub workers: usize,
    /// Packets ingested.
    pub events: u64,
    /// TIB records after the final flush (identical across runs).
    pub tib_records: usize,
    pub wall_secs: f64,
    pub events_per_sec: f64,
}

/// The prebuilt workload: the fabric model and the packet windows.
pub struct IngestStream {
    pub fabric: Fabric,
    pub dst: HostId,
    windows: Vec<Vec<(Packet, Nanos)>>,
    events: u64,
}

/// Builds the packet a path delivers (tag policy applied hop by hop).
fn pkt_on_path(
    ft: &FatTree,
    policy: &FatTreeCherryPick,
    flow: FlowId,
    path: &Path,
    flags: TcpFlags,
) -> Packet {
    let mut pkt = Packet::data(1, flow, 0, 1460, Nanos::ZERO);
    pkt.flags = flags;
    let topo = ft.topology();
    for (i, &sw) in path.0.iter().enumerate() {
        let in_port = if i == 0 {
            topo.switch(sw)
                .ports
                .iter()
                .position(|p| matches!(p, Peer::Host(_)))
                .map(|p| PortNo(p as u8))
        } else {
            topo.switch(sw).port_towards(path.0[i - 1])
        };
        policy.on_forward(sw, in_port, PortNo(0), &mut pkt.headers);
    }
    pkt
}

/// Materializes the stream once; excluded from all timed regions.
pub fn build_stream(p: IngestParams) -> IngestStream {
    let ft = FatTree::build(FatTreeParams { k: p.k });
    let topo = ft.topology();
    let n = topo.num_hosts() as u32;
    let dst = ft.host(1, 0, 0);
    let policy = FatTreeCherryPick::new(ft.clone());

    // Per-flow source hosts and path sets; flows interleave round-robin so
    // every window mixes flows (the realistic shard-spread shape).
    let flows: Vec<(FlowId, Vec<Path>)> = (0..p.flows)
        .map(|i| {
            let mut src = HostId(i as u32 % n);
            if src == dst {
                src = HostId((src.0 + 1) % n);
            }
            let flow = FlowId::tcp(
                topo.host(src).ip,
                1024 + (i % 60000) as u16,
                topo.host(dst).ip,
                80,
            );
            (flow, ft.all_paths(src, dst))
        })
        .collect();

    let total = p.flows * p.pkts_per_flow;
    let mut pkts: Vec<(Packet, Nanos)> = Vec::with_capacity(total);
    for seq in 0..p.pkts_per_flow {
        for (i, (flow, paths)) in flows.iter().enumerate() {
            // Deterministic spray over the flow's path set.
            let path = &paths[(i * 31 + seq * 7) % paths.len()];
            let flags = if seq + 1 == p.pkts_per_flow {
                TcpFlags::FIN
            } else {
                TcpFlags(0)
            };
            let t = Nanos::from_millis((pkts.len() + 1) as u64 / 64 + 1);
            pkts.push((pkt_on_path(&ft, &policy, *flow, path, flags), t));
        }
    }
    let windows = pkts.chunks(p.window.max(1)).map(<[_]>::to_vec).collect();
    IngestStream {
        fabric: Fabric::FatTree(FatTreeReconstructor::new(ft)),
        dst,
        windows,
        events: total as u64,
    }
}

/// Drives the prebuilt stream through the agent once. `workers == 0` runs
/// the single-threaded [`HostAgent`] per-packet reference; `workers >= 1`
/// runs [`ShardedAgent::ingest`] per window. Only ingest + final flush
/// are timed.
pub fn run_ingest(stream: &IngestStream, workers: usize) -> IngestResult {
    let cfg = AgentConfig::default();
    let end = Nanos::from_secs(3600);
    let (wall, tib_records) = if workers == 0 {
        let mut agent = HostAgent::new(stream.dst, cfg);
        let start = Instant::now();
        for window in &stream.windows {
            for (pkt, now) in window {
                agent.on_packet(&stream.fabric, pkt, *now);
            }
        }
        agent.flush(&stream.fabric, end);
        (start.elapsed().as_secs_f64(), agent.tib.len())
    } else {
        let mut agent = ShardedAgent::new(stream.dst, cfg, workers);
        let start = Instant::now();
        for window in &stream.windows {
            agent.ingest(&stream.fabric, window);
        }
        agent.flush(&stream.fabric, end);
        (start.elapsed().as_secs_f64(), agent.tib().len())
    };
    IngestResult {
        workers,
        events: stream.events,
        tib_records,
        wall_secs: wall,
        events_per_sec: stream.events as f64 / wall.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bench workload must be worker-invariant: every worker count
    /// (and the single-threaded reference) files the same record count.
    #[test]
    fn ingest_workload_worker_invariant() {
        let stream = build_stream(IngestParams {
            k: 4,
            flows: 96,
            pkts_per_flow: 5,
            window: 32,
        });
        let reference = run_ingest(&stream, 0);
        assert!(reference.tib_records > 0);
        assert_eq!(reference.events, 96 * 5);
        for workers in [1usize, 2, 4] {
            let r = run_ingest(&stream, workers);
            assert_eq!(r.tib_records, reference.tib_records, "workers={workers}");
            assert_eq!(r.events, reference.events);
        }
    }
}
