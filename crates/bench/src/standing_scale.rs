//! Standing-query engine overhead benchmark: one deterministic TIB
//! record stream inserted with N registered watches mirroring every
//! insert, vs the plain store — the per-record cost of the incremental
//! engine, recorded as the `standing` section of `BENCH_tib.json`
//! (trend-watching only; not gated, same policy as `verifier`).
//!
//! The stream is materialized once and the measured loop is
//! `Tib::insert` + `StandingQueryEngine::on_record` only. The watch mix
//! covers all four predicate kinds; with 64 flows and `k = 8` the top-k
//! membership watches sit near the displacement boundary, so the
//! monotonicity skip rules are exercised on their expensive recompute
//! path, not just the cheap early-outs. The flip-event count is recorded
//! alongside the timing (and is identical across runs — determinism
//! smoke; the bit-level pin is `crates/core/tests/standing_differential.rs`).

use pathdump_core::standing::{StandingPredicate, StandingQuery, StandingQueryEngine};
use pathdump_tib::{Tib, TibRecord};
use pathdump_topology::{FlowId, HostId, Ip, LinkPattern, Nanos, Path, SwitchId};
use std::time::Instant;

/// Workload shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct StandingParams {
    /// Records in the stream.
    pub records: usize,
    /// Distinct flows cycling through it.
    pub flows: u16,
}

impl StandingParams {
    /// The default comparison point recorded in `BENCH_tib.json`.
    pub fn default_shape() -> Self {
        StandingParams {
            records: 20_000,
            flows: 64,
        }
    }
}

/// Result of one run.
#[derive(Clone, Debug)]
pub struct StandingResult {
    /// Registered watches (`0` = plain-store baseline).
    pub watches: usize,
    /// Records inserted.
    pub records: usize,
    /// Raise/clear flips emitted (identical across runs).
    pub flip_events: usize,
    /// Wall time per record over insert + engine step.
    pub ns_per_record: f64,
}

fn flow(sport: u16) -> FlowId {
    FlowId::tcp(Ip::new(10, 0, 0, 2), sport, Ip::new(10, 1, 0, 2), 80)
}

/// The deterministic record stream: flows round-robin, paths rotate (so
/// path-change watches keep flipping), stime advances 50 ns per record
/// (so rate windows slide on every insert).
pub fn build_stream(p: StandingParams) -> Vec<TibRecord> {
    let paths: Vec<Path> = [[0u16, 2, 4], [0, 3, 4], [1, 2, 5], [1, 3, 5]]
        .iter()
        .map(|ids| Path::new(ids.iter().map(|&i| SwitchId(i)).collect()))
        .collect();
    (0..p.records)
        .map(|i| {
            let t0 = (i as u64) * 50;
            TibRecord {
                flow: flow((i % p.flows as usize) as u16),
                path: paths[(i / p.flows as usize + i) % paths.len()].clone(),
                stime: Nanos(t0),
                etime: Nanos(t0 + 40),
                bytes: 200 + (i as u64 * 37) % 1400,
                pkts: 1 + (i as u64) % 9,
            }
        })
        .collect()
}

/// Inserts the stream into a fresh TIB with `watches` standing queries
/// registered up front (an even mix of all four predicate kinds over the
/// first flows), timing insert + engine step per record.
pub fn run_standing(recs: &[TibRecord], watches: usize) -> StandingResult {
    let mut tib = Tib::new();
    let mut eng = StandingQueryEngine::new(HostId(0));
    for i in 0..watches {
        let f = flow((i % 64) as u16);
        let pred = match i % 4 {
            0 => StandingPredicate::TopKMember { flow: f, k: 8 },
            1 => StandingPredicate::RateAbove {
                flow: f,
                window: Nanos(2_000),
                min_bytes: 4_000,
                min_pkts: 1,
            },
            2 => StandingPredicate::PathChanged { flow: f },
            _ => StandingPredicate::LinkFlowsAbove {
                link: LinkPattern::into(SwitchId(4)),
                ceiling: 32,
            },
        };
        eng.watch(&tib, StandingQuery::new(pred), Nanos::ZERO);
    }
    let t = Instant::now();
    for r in recs {
        tib.insert(r.clone());
        if watches > 0 {
            eng.on_record(&tib, r, r.etime);
        }
    }
    let elapsed = t.elapsed();
    StandingResult {
        watches,
        records: recs.len(),
        flip_events: eng.drain_events().len(),
        ns_per_record: elapsed.as_secs_f64() * 1e9 / recs.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_watches_flip() {
        let p = StandingParams {
            records: 2_000,
            flows: 16,
        };
        let recs = build_stream(p);
        assert_eq!(recs, build_stream(p));
        let base = run_standing(&recs, 0);
        assert_eq!(base.flip_events, 0, "no watches, no flips");
        let a = run_standing(&recs, 8);
        let b = run_standing(&recs, 8);
        assert_eq!(a.flip_events, b.flip_events, "flips are deterministic");
        assert!(a.flip_events > 0, "the mix must actually exercise flips");
    }
}
