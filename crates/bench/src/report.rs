//! Shared bench-report plumbing: parsing the vendored criterion harness's
//! output, re-reading the committed `BENCH_tib.json` baseline, and the
//! pure comparison logic behind the `bench_gate` CI job. `bench_trajectory`
//! (writes the report) and `bench_gate` (enforces it) both build on this,
//! so the two bins cannot drift on formats.

use std::process::Command;

/// One parsed benchmark result.
pub struct Entry {
    /// The criterion bench target it came from (e.g. `tib_queries`).
    pub bench: &'static str,
    /// Full case name (e.g. `tib_240k/top_k_10000`).
    pub name: String,
    pub median_ns: f64,
    pub samples: u64,
}

/// Parses the vendored criterion's Duration debug format ("421ns",
/// "315.789µs", "36.678929ms", "1.2s") into nanoseconds.
pub fn parse_duration_ns(s: &str) -> Option<f64> {
    // Order matters: try the longest suffixes first ("ms" before "s",
    // "ns"/"µs"/"us" before "s").
    for (suffix, scale) in [
        ("ns", 1.0),
        ("µs", 1e3),
        ("us", 1e3),
        ("ms", 1e6),
        ("s", 1e9),
    ] {
        if let Some(num) = s.strip_suffix(suffix) {
            return num.parse::<f64>().ok().map(|v| v * scale);
        }
    }
    None
}

/// Parses one harness output line: `group/name: median 1.23ms over 20
/// samples (...)`. Returns (full benchmark name, median ns, samples).
pub fn parse_line(line: &str) -> Option<(String, f64, u64)> {
    let (name, rest) = line.split_once(": median ")?;
    let mut words = rest.split_whitespace();
    let median_ns = parse_duration_ns(words.next()?)?;
    if words.next()? != "over" {
        return None;
    }
    let samples: u64 = words.next()?.parse().ok()?;
    Some((name.trim().to_string(), median_ns, samples))
}

/// Runs one criterion bench target via nested cargo and parses its
/// medians. Errors carry the bench name and the failure detail.
pub fn run_cargo_bench(bench: &'static str) -> Result<Vec<Entry>, String> {
    let result = Command::new(env!("CARGO"))
        .args(["bench", "-p", "pathdump_bench", "--bench", bench])
        .output();
    let output = match result {
        Ok(o) if o.status.success() => o,
        Ok(o) => {
            return Err(format!(
                "bench {bench} failed with {}:\n{}",
                o.status,
                String::from_utf8_lossy(&o.stderr)
            ))
        }
        Err(e) => return Err(format!("could not spawn cargo for {bench}: {e}")),
    };
    let mut entries = Vec::new();
    for line in String::from_utf8_lossy(&output.stdout).lines() {
        if let Some((name, median_ns, samples)) = parse_line(line) {
            entries.push(Entry {
                bench,
                name,
                median_ns,
                samples,
            });
        }
    }
    Ok(entries)
}

pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pre-PR-4 medians (the last `BENCH_tib.json` committed before the
/// zero-copy ingest pipeline landed), used to report before/after speedups
/// for the two hot paths that PR rebuilt. The `strip_path_min_speedup`
/// gate metric is defined against these constants, so the gate measures
/// the same ratio on every machine.
pub const DPSWITCH_BASELINE_NS: &[(&str, f64)] = &[
    ("dpswitch/vanilla/64", 476_714.0),
    ("dpswitch/pathdump/64", 700_014.0),
    ("dpswitch/vanilla/512", 571_882.0),
    ("dpswitch/pathdump/512", 1_277_122.0),
    ("dpswitch/vanilla/1500", 1_576_772.0),
    ("dpswitch/pathdump/1500", 1_879_560.0),
];
pub const RECONSTRUCT_BASELINE_NS: &[(&str, f64)] = &[
    ("reconstruct/cold_decode", 1_263.0),
    ("reconstruct/cached_decode", 3_366.0),
];

pub fn baseline_of(table: &[(&str, f64)], name: &str) -> Option<f64> {
    table.iter().find(|(n, _)| *n == name).map(|&(_, ns)| ns)
}

pub fn median_of(entries: &[Entry], name: &str) -> Option<f64> {
    entries.iter().find(|e| e.name == name).map(|e| e.median_ns)
}

/// The smallest pathdump (strip-path) speedup across frame sizes, against
/// the fixed pre-PR-4 medians — the dpswitch gate metric.
pub fn strip_path_min_speedup(entries: &[Entry]) -> Option<f64> {
    let min = DPSWITCH_BASELINE_NS
        .iter()
        .filter(|(n, _)| n.contains("/pathdump/"))
        .filter_map(|&(n, base)| median_of(entries, n).map(|cur| base / cur.max(1e-9)))
        .fold(f64::INFINITY, f64::min);
    min.is_finite().then_some(min)
}

// ---------------------------------------------------------------------------
// Baseline (committed BENCH_tib.json) extraction.
//
// The report is written by `bench_trajectory` in a fixed shape; these
// helpers scan for `"key": value` pairs rather than pulling in a JSON
// parser (the workspace is offline — no serde_json).
// ---------------------------------------------------------------------------

/// Parses the number following the first occurrence of `"key":` after
/// byte offset `from` in `doc`. Returns (value, offset past the match).
fn number_after(doc: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = doc[from..].find(&needle)? + from + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().map(|v| (v, at))
}

/// The first `"key": <number>` anywhere in the document.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    number_after(doc, key, 0).map(|(v, _)| v)
}

/// The `median_ns` recorded for benchmark case `name` in the `benchmarks`
/// array.
pub fn recorded_median_ns(doc: &str, name: &str) -> Option<f64> {
    let anchor = format!("\"name\": \"{}\"", json_escape(name));
    let at = doc.find(&anchor)?;
    number_after(doc, "median_ns", at).map(|(v, _)| v)
}

/// The `events_per_sec` of the simnet case run on `engine`.
pub fn recorded_events_per_sec(doc: &str, engine: &str) -> Option<f64> {
    let anchor = format!("\"engine\": \"{engine}\"");
    let at = doc.find(&anchor)?;
    number_after(doc, "events_per_sec", at).map(|(v, _)| v)
}

/// The `events_per_sec` recorded in the `ingest` section for a worker
/// count (`0` = the single-threaded reference case). Anchored past the
/// `"ingest":` key so the simnet cases' `workers` fields cannot match.
pub fn recorded_ingest_events_per_sec(doc: &str, workers: usize) -> Option<f64> {
    let section = doc.find("\"ingest\":")?;
    let anchor = format!("\"workers\": {workers},");
    let at = doc[section..].find(&anchor)? + section;
    number_after(doc, "events_per_sec", at).map(|(v, _)| v)
}

/// A number recorded in the `tib_scale` section (anchored past the
/// `"tib_scale":` key so same-named fields elsewhere cannot match).
pub fn recorded_tib_scale_number(doc: &str, key: &str) -> Option<f64> {
    let section = doc.find("\"tib_scale\":")?;
    number_after(doc, key, section).map(|(v, _)| v)
}

// ---------------------------------------------------------------------------
// The gate comparison (pure, unit-tested; the bench_gate bin feeds it).
// ---------------------------------------------------------------------------

/// Whether a larger value of the metric is an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One gated metric: the committed baseline vs the freshly measured value.
#[derive(Clone, Debug)]
pub struct GateCheck {
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    pub direction: Direction,
    /// Multiplier on the gate tolerance for this metric. `1.0` for
    /// same-run ratios, which are stable under runner speed drift; wider
    /// for absolute timings, whose medians swing up to ~2x between timing
    /// windows on shared/virtualized runners even with no code change.
    pub tolerance_scale: f64,
}

impl GateCheck {
    /// The regression ratio: 1.0 = unchanged, 2.0 = twice as slow (in
    /// either direction convention).
    pub fn regression(&self) -> f64 {
        match self.direction {
            Direction::HigherIsBetter => self.baseline / self.current.max(1e-12),
            Direction::LowerIsBetter => self.current / self.baseline.max(1e-12),
        }
    }

    /// True when the metric regressed by more than `tolerance` scaled by
    /// the check's [`tolerance_scale`](GateCheck::tolerance_scale) (e.g.
    /// `0.30` at scale 1 fails anything more than 30% worse than the
    /// baseline; at scale 4 the band widens to 120%).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.regression() > 1.0 + tolerance * self.tolerance_scale
    }
}

/// Evaluates all checks at `tolerance`, returning the failing subset.
pub fn failing_checks(checks: &[GateCheck], tolerance: f64) -> Vec<GateCheck> {
    checks
        .iter()
        .filter(|c| c.regressed(tolerance))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration_ns("421ns"), Some(421.0));
        assert_eq!(parse_duration_ns("315.789µs"), Some(315_789.0));
        assert_eq!(parse_duration_ns("36.5ms"), Some(36_500_000.0));
        assert_eq!(parse_duration_ns("1.2s"), Some(1_200_000_000.0));
        assert_eq!(parse_duration_ns("xyz"), None);
    }

    #[test]
    fn line_parsing() {
        let (name, ns, n) =
            parse_line("tib_240k/top_k_10000: median 2.707201ms over 20 samples").unwrap();
        assert_eq!(name, "tib_240k/top_k_10000");
        assert!((ns - 2_707_201.0).abs() < 1.0);
        assert_eq!(n, 20);
        let (_, ns, _) =
            parse_line("wire/encode_10k_records: median 313.347µs over 30 samples (1.003 GiB/s)")
                .unwrap();
        assert!((ns - 313_347.0).abs() < 1.0);
        assert_eq!(parse_line("Finished `bench` profile"), None);
    }

    const DOC: &str = r#"{
  "benchmarks": [
    {"bench": "tib_queries", "name": "tib_240k/get_flows_wildcard_into_tor", "median_ns": 269445, "samples": 20},
    {"bench": "tib_queries", "name": "tib_240k/top_k_10000", "median_ns": 2356684, "samples": 20}
  ],
  "dpswitch": {
  "strip_path_min_speedup": 2.035,
  "cases": []
  },
  "simnet": {
  "cpus": 1,
  "speedup_sharded_vs_sequential": 1.412,
  "cases": [
    {"engine": "sequential", "workers": 0, "events": 499200, "wall_ms": 141.657, "events_per_sec": 3523996},
    {"engine": "sharded", "workers": 0, "events": 499200, "wall_ms": 100.334, "events_per_sec": 4975404}
    ]
  },
  "ingest": {
  "cpus": 1,
  "cases": [
    {"workers": 0, "events": 32768, "tib_records": 2048, "wall_ms": 9.830, "events_per_sec": 3333469, "speedup_vs_single": 1.000},
    {"workers": 2, "events": 32768, "tib_records": 2048, "wall_ms": 13.170, "events_per_sec": 2488078, "speedup_vs_single": 0.746}
    ]
  }
}"#;

    #[test]
    fn baseline_extraction() {
        assert_eq!(
            recorded_median_ns(DOC, "tib_240k/get_flows_wildcard_into_tor"),
            Some(269445.0)
        );
        assert_eq!(
            recorded_median_ns(DOC, "tib_240k/top_k_10000"),
            Some(2356684.0)
        );
        assert_eq!(recorded_median_ns(DOC, "missing/case"), None);
        assert_eq!(json_number(DOC, "strip_path_min_speedup"), Some(2.035));
        assert_eq!(recorded_events_per_sec(DOC, "sequential"), Some(3523996.0));
        assert_eq!(recorded_events_per_sec(DOC, "sharded"), Some(4975404.0));
        assert_eq!(recorded_events_per_sec(DOC, "warp"), None);
        // Ingest lookups anchor inside the ingest section: workers=0
        // resolves to the ingest reference case, not the simnet rows that
        // also carry "workers": 0.
        assert_eq!(recorded_ingest_events_per_sec(DOC, 0), Some(3333469.0));
        assert_eq!(recorded_ingest_events_per_sec(DOC, 2), Some(2488078.0));
        assert_eq!(recorded_ingest_events_per_sec(DOC, 7), None);
    }

    /// The acceptance demonstration: an injected 2× slowdown must trip the
    /// 30% gate on every gated metric, while the baseline itself passes.
    #[test]
    fn gate_flags_2x_slowdown_and_passes_baseline() {
        let mk = |current, baseline, direction| GateCheck {
            metric: "m",
            baseline,
            current,
            direction,
            tolerance_scale: 1.0,
        };
        // Unchanged measurements pass.
        assert!(!mk(4975404.0, 4975404.0, Direction::HigherIsBetter).regressed(0.30));
        assert!(!mk(269445.0, 269445.0, Direction::LowerIsBetter).regressed(0.30));
        // Jitter inside the 30% band (regression ratio ≤ 1.30) passes.
        assert!(!mk(4975404.0 * 0.80, 4975404.0, Direction::HigherIsBetter).regressed(0.30));
        assert!(!mk(269445.0 * 1.28, 269445.0, Direction::LowerIsBetter).regressed(0.30));
        // Just past the band fails.
        assert!(mk(4975404.0 * 0.75, 4975404.0, Direction::HigherIsBetter).regressed(0.30));
        assert!(mk(269445.0 * 1.35, 269445.0, Direction::LowerIsBetter).regressed(0.30));
        // A 2× slowdown fails in both direction conventions.
        assert!(mk(4975404.0 / 2.0, 4975404.0, Direction::HigherIsBetter).regressed(0.30));
        assert!(mk(269445.0 * 2.0, 269445.0, Direction::LowerIsBetter).regressed(0.30));
        // Improvements never fail.
        assert!(!mk(4975404.0 * 2.0, 4975404.0, Direction::HigherIsBetter).regressed(0.30));
        assert!(!mk(269445.0 / 2.0, 269445.0, Direction::LowerIsBetter).regressed(0.30));
        // failing_checks surfaces exactly the tripped metrics.
        let checks = vec![
            mk(100.0, 100.0, Direction::HigherIsBetter),
            mk(50.0, 100.0, Direction::HigherIsBetter),
        ];
        let bad = failing_checks(&checks, 0.30);
        assert_eq!(bad.len(), 1);
        assert!((bad[0].regression() - 2.0).abs() < 1e-9);
        // A widened drift band absorbs a 2x swing but still trips on 2.5x.
        let drifty = |current| GateCheck {
            metric: "abs",
            baseline: 100.0,
            current,
            direction: Direction::LowerIsBetter,
            tolerance_scale: 4.0,
        };
        assert!(!drifty(200.0).regressed(0.30));
        assert!(drifty(250.0).regressed(0.30));
    }

    #[test]
    fn strip_speedup_uses_min_across_sizes() {
        let entries = vec![
            Entry {
                bench: "dpswitch_throughput",
                name: "dpswitch/pathdump/64".into(),
                median_ns: 350_007.0, // 2.0x
                samples: 20,
            },
            Entry {
                bench: "dpswitch_throughput",
                name: "dpswitch/pathdump/512".into(),
                median_ns: 1_277_122.0 / 4.0, // 4.0x
                samples: 20,
            },
        ];
        let s = strip_path_min_speedup(&entries).unwrap();
        assert!((s - 2.0).abs() < 1e-6, "{s}");
        assert_eq!(strip_path_min_speedup(&[]), None);
    }
}
