//! Load-imbalance diagnosis (§2.3, §4.2, Figures 5 and 6).
//!
//! Two mechanisms are diagnosed: ECMP whose "poor hash function always
//! creates collisions among large flows" (flows > 1 MB all land on one
//! link), and per-packet spraying that is deliberately biased toward one
//! path. In both cases the evidence comes from TIB queries alone: the
//! flow-size distribution per egress link (multi-level query across all
//! hosts) and the per-path byte counts of a sprayed flow at its
//! destination TIB.

use pathdump_core::{PathDumpWorld, Query, Response};
use pathdump_topology::{FlowId, HostId, LinkDir, LinkPattern, Path, TimeRange};

/// The imbalance-rate metric of §4.2: `λ = (Lmax / L̄ − 1) × 100 (%)`
/// where `Lmax` is the maximum load on any link and `L̄` the mean.
pub fn imbalance_rate(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        (max / mean - 1.0) * 100.0
    }
}

/// One link's flow-size histogram (the §2.3 query result).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFlowSizeDist {
    /// The link queried.
    pub link: LinkDir,
    /// Bin width in bytes.
    pub bin_bytes: u64,
    /// (bin index, flow count), ascending.
    pub bins: Vec<(u64, u64)>,
}

impl LinkFlowSizeDist {
    /// Total flows observed on the link.
    pub fn total_flows(&self) -> u64 {
        self.bins.iter().map(|(_, c)| c).sum()
    }

    /// Flows whose size is at least `bytes`.
    pub fn flows_at_least(&self, bytes: u64) -> u64 {
        let bin = bytes / self.bin_bytes;
        self.bins
            .iter()
            .filter(|(b, _)| *b >= bin)
            .map(|(_, c)| c)
            .sum()
    }

    /// Empirical CDF points as (bytes, cumulative fraction).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let total = self.total_flows() as f64;
        let mut cum = 0u64;
        self.bins
            .iter()
            .map(|(b, c)| {
                cum += c;
                ((b + 1) * self.bin_bytes, cum as f64 / total.max(1.0))
            })
            .collect()
    }
}

/// Runs the §2.3 load-imbalance query: the flow-size distribution on each
/// of the given egress links, aggregated across every host's TIB (the
/// multi-level query of the paper; result identical to direct execution).
pub fn flow_size_distributions(
    world: &mut PathDumpWorld,
    hosts: &[HostId],
    links: &[LinkDir],
    range: TimeRange,
    bin_bytes: u64,
) -> Vec<LinkFlowSizeDist> {
    links
        .iter()
        .map(|&link| {
            let resp = world.execute(
                hosts,
                &Query::FlowSizeDist {
                    link: LinkPattern::exact(link.from, link.to),
                    range,
                    bin_bytes,
                },
                false,
            );
            let Response::Hist { bin_bytes, bins } = resp else {
                unreachable!("FlowSizeDist returns Hist");
            };
            LinkFlowSizeDist {
                link,
                bin_bytes,
                bins,
            }
        })
        .collect()
}

/// Per-path byte counts of one flow at its destination TIB — the Figure 6
/// spraying diagnosis ("per-path statistics of the flow obtained from the
/// destination TIB").
pub fn per_path_bytes(
    world: &mut PathDumpWorld,
    flow: FlowId,
    range: TimeRange,
) -> Vec<(Path, u64)> {
    let Some(dst) = world.fabric.topology().host_by_ip(flow.dst_ip) else {
        return Vec::new();
    };
    let resp = world.execute_on_host(
        dst,
        &Query::GetPaths {
            flow,
            link: LinkPattern::ANY,
            range,
        },
        true,
    );
    let Response::Paths(paths) = resp else {
        unreachable!("GetPaths returns Paths");
    };
    paths
        .into_iter()
        .map(|p| {
            let resp = world.execute_on_host(
                dst,
                &Query::GetCount {
                    flow,
                    path: Some(p.clone()),
                    range,
                },
                true,
            );
            let Response::Count { bytes, .. } = resp else {
                unreachable!("GetCount returns Count");
            };
            (p, bytes)
        })
        .collect()
}

/// Verdict on a sprayed flow's balance: max/min byte ratio across paths.
pub fn spray_skew(per_path: &[(Path, u64)]) -> f64 {
    let max = per_path.iter().map(|(_, b)| *b).max().unwrap_or(0) as f64;
    let min = per_path.iter().map(|(_, b)| *b).min().unwrap_or(0).max(1) as f64;
    max / min
}

/// A sampled time series of imbalance rates between a set of links,
/// computed from periodic samples of ground-truth link byte counters
/// (Figure 5(b) is presented "as reference" — it uses switch counters, not
/// PathDump).
#[derive(Clone, Debug, Default)]
pub struct ImbalanceSeries {
    prev: Vec<u64>,
    /// One imbalance rate per completed window.
    pub rates: Vec<f64>,
}

impl ImbalanceSeries {
    /// Creates a series over `n` links.
    pub fn new(n: usize) -> Self {
        ImbalanceSeries {
            prev: vec![0; n],
            rates: Vec::new(),
        }
    }

    /// Feeds the current cumulative byte counters (one per link); computes
    /// the per-window rate from the deltas.
    pub fn sample(&mut self, cumulative: &[u64]) {
        assert_eq!(cumulative.len(), self.prev.len());
        let deltas: Vec<u64> = cumulative
            .iter()
            .zip(&self.prev)
            .map(|(c, p)| c.saturating_sub(*p))
            .collect();
        self.prev.copy_from_slice(cumulative);
        self.rates.push(imbalance_rate(&deltas));
    }

    /// Fraction of windows with rate at least `threshold` (the paper's
    /// "during about 80% of the time, the imbalance rate is 40% or
    /// higher").
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        if self.rates.is_empty() {
            return 0.0;
        }
        self.rates.iter().filter(|r| **r >= threshold).count() as f64 / self.rates.len() as f64
    }
}

/// CDF over a slice of f64 samples: returns sorted (value, fraction).
pub fn cdf_points(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_simnet::{LoadBalance, Quirk};
    use pathdump_topology::Nanos;

    #[test]
    fn imbalance_rate_math() {
        assert_eq!(imbalance_rate(&[100, 100]), 0.0);
        // Lmax=150, mean=100 -> 50%.
        assert!((imbalance_rate(&[150, 50]) - 50.0).abs() < 1e-9);
        assert_eq!(imbalance_rate(&[]), 0.0);
        assert_eq!(imbalance_rate(&[0, 0]), 0.0);
    }

    #[test]
    fn series_windows() {
        let mut s = ImbalanceSeries::new(2);
        s.sample(&[100, 100]); // window 1: 100/100 -> 0%
        s.sample(&[300, 100]); // window 2: deltas 200/0 -> 100%
        assert_eq!(s.rates.len(), 2);
        assert!((s.rates[0] - 0.0).abs() < 1e-9);
        assert!((s.rates[1] - 100.0).abs() < 1e-9);
        assert!((s.fraction_at_least(50.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_points_sorted() {
        let pts = cdf_points(&[3.0, 1.0, 2.0]);
        assert_eq!(pts[0].0, 1.0);
        assert!((pts[2].1 - 1.0).abs() < 1e-9);
    }

    /// Small-scale Figure 5: the size-based ECMP quirk splits flows at the
    /// 100 KB boundary; the per-link flow-size distributions recovered from
    /// the TIBs must be sharply divided at that boundary.
    #[test]
    fn ecmp_size_split_visible_in_fsd() {
        let mut tb = Testbed::default_k4();
        let sagg = tb.ft.tor(0, 0); // split at the source ToR's uplinks
        let link1 = LinkDir::new(sagg, tb.ft.agg(0, 0)); // big flows
        let link2 = LinkDir::new(sagg, tb.ft.agg(0, 1)); // small flows
        tb.sim.install_quirk(
            sagg,
            Quirk::SizeBasedSplit {
                threshold: 100_000,
                big_port: tb.sim.link_port(sagg, tb.ft.agg(0, 0)),
                small_port: tb.sim.link_port(sagg, tb.ft.agg(0, 1)),
            },
        );
        // Flows from rack (0,0) to pod 1: sizes straddling the threshold.
        for (i, &size) in [20_000u64, 50_000, 80_000, 150_000, 300_000, 500_000]
            .iter()
            .enumerate()
        {
            let src = tb.ft.host(0, 0, i % 2);
            let dst = tb.ft.host(1, i % 2, i / 3);
            tb.add_flow(src, dst, 6000 + i as u16, size, Nanos::ZERO);
        }
        tb.run_and_flush(Nanos::from_secs(60));
        assert!(tb.sim.world.tcp.all_complete());
        let hosts: Vec<HostId> = (0..16).map(HostId).collect();
        let dists = flow_size_distributions(
            &mut tb.sim.world,
            &hosts,
            &[link1, link2],
            TimeRange::ANY,
            10_000,
        );
        let (big, small) = (&dists[0], &dists[1]);
        assert_eq!(big.total_flows(), 3, "three large flows on link 1");
        assert_eq!(small.total_flows(), 3, "three small flows on link 2");
        // Sharp division: everything on link1 >= 100KB, on link2 < 100KB.
        assert_eq!(big.flows_at_least(100_000), 3);
        assert_eq!(small.flows_at_least(100_000), 0);
    }

    /// Small-scale Figure 6: biased spraying shows up in per-path byte
    /// counts from the destination TIB.
    #[test]
    fn spraying_bias_visible_per_path() {
        let mut tb = Testbed::default_k4();
        tb.sim.set_lb_all(LoadBalance::Spray);
        // Bias the source ToR 4:1 toward agg 0.
        tb.sim
            .set_lb(tb.ft.tor(0, 0), LoadBalance::WeightedSpray(vec![4, 1]));
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 0, 0));
        let flow = tb.flow(src, dst, 6100);
        tb.add_flow(src, dst, 6100, 2_000_000, Nanos::ZERO);
        tb.run_and_flush(Nanos::from_secs(60));
        let per_path = per_path_bytes(&mut tb.sim.world, flow, TimeRange::ANY);
        assert_eq!(per_path.len(), 4, "spraying uses all 4 paths");
        let skew = spray_skew(&per_path);
        assert!(
            skew > 2.0,
            "4:1 ToR bias must be visible in per-path bytes (skew {skew:.2})"
        );
        // The heavy paths are the ones through agg(0,0).
        let via0: u64 = per_path
            .iter()
            .filter(|(p, _)| p.contains(tb.ft.agg(0, 0)))
            .map(|(_, b)| b)
            .sum();
        let via1: u64 = per_path
            .iter()
            .filter(|(p, _)| p.contains(tb.ft.agg(0, 1)))
            .map(|(_, b)| b)
            .sum();
        assert!(via0 > 2 * via1);
    }

    /// Balanced spraying: per-path counts are roughly even.
    #[test]
    fn balanced_spraying_is_even() {
        let mut tb = Testbed::default_k4();
        tb.sim.set_lb_all(LoadBalance::Spray);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(2, 0, 0));
        let flow = tb.flow(src, dst, 6200);
        tb.add_flow(src, dst, 6200, 2_000_000, Nanos::ZERO);
        tb.run_and_flush(Nanos::from_secs(60));
        let per_path = per_path_bytes(&mut tb.sim.world, flow, TimeRange::ANY);
        assert_eq!(per_path.len(), 4);
        assert!(
            spray_skew(&per_path) < 1.6,
            "uniform spraying stays near-even"
        );
    }
}
