//! Blackhole diagnosis (§4.4): reducing the debugging search space.
//!
//! Under packet spraying, a blackholed link silently kills exactly the
//! subflows routed across it. The destination TIB then *misses* the
//! records for the affected paths. Comparing the expected equal-cost path
//! set against the observed one pinpoints a handful of suspect switches
//! instead of "all 10 switches in the four paths".

use pathdump_core::{PathDumpWorld, Query, Response};
use pathdump_topology::{FlowId, LinkDir, LinkPattern, Path, SwitchId, TimeRange};
use std::collections::HashSet;

/// The outcome of a blackhole diagnosis.
#[derive(Clone, Debug)]
pub struct BlackholeReport {
    /// Equal-cost paths the flow was expected to use.
    pub expected: Vec<Path>,
    /// Paths actually observed in the destination TIB.
    pub observed: Vec<Path>,
    /// Expected paths with no TIB record (the victims).
    pub missing: Vec<Path>,
    /// Suspect switches, highest priority first.
    pub suspects: Vec<SwitchId>,
}

impl BlackholeReport {
    /// True when every expected path carried traffic.
    pub fn healthy(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Diagnoses a (sprayed) flow against its expected equal-cost paths using
/// only destination-TIB state.
///
/// Suspect derivation follows §4.4:
/// - one missing path → the endpoints of its links that no observed path
///   exonerates (for an agg–core blackhole this is {core, source agg,
///   destination agg} — 3 of the 10 switches);
/// - several missing paths → the switches *common to all* missing paths
///   that are not exonerated, "examined with higher priority" (for a
///   ToR–agg blackhole: 4 common switches).
pub fn diagnose(
    world: &mut PathDumpWorld,
    flow: FlowId,
    expected: Vec<Path>,
    range: TimeRange,
) -> BlackholeReport {
    let observed = match world.fabric.topology().host_by_ip(flow.dst_ip).map(|dst| {
        world.execute_on_host(
            dst,
            &Query::GetPaths {
                flow,
                link: LinkPattern::ANY,
                range,
            },
            true,
        )
    }) {
        Some(Response::Paths(p)) => p,
        _ => Vec::new(),
    };
    let observed_set: HashSet<&Path> = observed.iter().collect();
    let missing: Vec<Path> = expected
        .iter()
        .filter(|p| !observed_set.contains(*p))
        .cloned()
        .collect();

    let observed_links: HashSet<LinkDir> = observed.iter().flat_map(|p| p.links()).collect();
    let suspects: Vec<SwitchId> = if missing.is_empty() {
        Vec::new()
    } else if missing.len() == 1 {
        // Endpoints of the missing path's links not seen on any working
        // path.
        let mut out = Vec::new();
        for l in missing[0].links() {
            if !observed_links.contains(&l) {
                for sw in [l.from, l.to] {
                    if !out.contains(&sw) {
                        out.push(sw);
                    }
                }
            }
        }
        out
    } else {
        // Switches common to all missing paths.
        let mut common: HashSet<SwitchId> = missing[0].0.iter().copied().collect();
        for p in &missing[1..] {
            let set: HashSet<SwitchId> = p.0.iter().copied().collect();
            common = common.intersection(&set).copied().collect();
        }
        let mut out: Vec<SwitchId> = common.into_iter().collect();
        out.sort();
        out
    };

    BlackholeReport {
        expected,
        observed,
        missing,
        suspects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_simnet::{FaultState, LoadBalance};
    use pathdump_topology::{Nanos, UpDownRouting};

    /// §4.4 case 1: blackhole at an aggregate–core link. One of the four
    /// sprayed subflows dies; the diagnosis narrows 10 switches to 3.
    #[test]
    fn agg_core_blackhole_names_three_suspects() {
        let mut tb = Testbed::default_k4();
        tb.sim.set_lb_all(LoadBalance::Spray);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 7700);
        // Blackhole agg(0,0) -> core(0) (and the reverse direction, so ACKs
        // for that path die too — the paper's blackhole is the link).
        let (a, c) = (tb.ft.agg(0, 0), tb.ft.core(0));
        for (x, y) in [(a, c), (c, a)] {
            tb.sim.set_directed_fault(
                x,
                y,
                FaultState {
                    blackhole: true,
                    ..FaultState::HEALTHY
                },
            );
        }
        tb.add_flow(src, dst, 7700, 100_000, Nanos::ZERO);
        tb.sim.run_until(Nanos::from_secs(15));
        let expected = tb.ft.all_paths(src, dst);
        let report = diagnose(&mut tb.sim.world, flow, expected, TimeRange::ANY);
        assert_eq!(report.missing.len(), 1, "exactly one subflow blackholed");
        assert!(report.missing[0].contains(c));
        // Three suspects: the core and the two pod aggregates at position 0.
        let mut want = vec![tb.ft.agg(0, 0), tb.ft.core(0), tb.ft.agg(1, 0)];
        want.sort();
        let mut got = report.suspects.clone();
        got.sort();
        assert_eq!(got, want, "suspects must be the 3 unexonerated switches");
    }

    /// §4.4 case 2: blackhole at a source-pod ToR–aggregate link kills two
    /// subflows; the common-switch join yields 4 prioritized suspects.
    #[test]
    fn tor_agg_blackhole_names_four_common_suspects() {
        let mut tb = Testbed::default_k4();
        tb.sim.set_lb_all(LoadBalance::Spray);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 7800);
        let (t, a) = (tb.ft.tor(0, 0), tb.ft.agg(0, 0));
        for (x, y) in [(t, a), (a, t)] {
            tb.sim.set_directed_fault(
                x,
                y,
                FaultState {
                    blackhole: true,
                    ..FaultState::HEALTHY
                },
            );
        }
        tb.add_flow(src, dst, 7800, 100_000, Nanos::ZERO);
        tb.sim.run_until(Nanos::from_secs(15));
        let expected = tb.ft.all_paths(src, dst);
        let report = diagnose(&mut tb.sim.world, flow, expected, TimeRange::ANY);
        assert_eq!(report.missing.len(), 2, "two subflows cross ToR->Agg(0,0)");
        // Common switches of the two missing paths: torS, agg(0,0),
        // agg(1,0), torD.
        let mut want = vec![
            tb.ft.tor(0, 0),
            tb.ft.agg(0, 0),
            tb.ft.agg(1, 0),
            tb.ft.tor(1, 0),
        ];
        want.sort();
        assert_eq!(report.suspects, want);
    }

    #[test]
    fn healthy_flow_reports_clean() {
        let mut tb = Testbed::default_k4();
        tb.sim.set_lb_all(LoadBalance::Spray);
        let (src, dst) = (tb.ft.host(0, 0, 0), tb.ft.host(1, 0, 0));
        let flow = tb.flow(src, dst, 7900);
        tb.add_flow(src, dst, 7900, 200_000, Nanos::ZERO);
        tb.run_and_flush(Nanos::from_secs(15));
        let expected = tb.ft.all_paths(src, dst);
        let report = diagnose(&mut tb.sim.world, flow, expected, TimeRange::ANY);
        assert!(report.healthy(), "missing: {:?}", report.missing);
        assert!(report.suspects.is_empty());
        assert_eq!(report.observed.len(), 4);
    }
}
