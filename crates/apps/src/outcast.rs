//! TCP outcast diagnosis (§4.6, Figure 10).
//!
//! Fifteen senders target one receiver: one flow enters the destination
//! ToR on a 2-hop path, fourteen arrive through the fabric on another
//! input port. Taildrop port blackout penalizes the port with *fewer*
//! flows — the close sender loses most throughput (the outcast).
//!
//! The diagnosis is edge-driven: once the controller sees enough
//! `POOR_PERF` alarms naming one receiver, it pulls per-flow byte counts
//! and paths from that receiver's TIB, computes per-sender throughput,
//! builds the fan-in tree, and matches the outcast profile (the flow with
//! the shortest path is the most penalized).

use pathdump_core::{Alarm, PathDumpWorld, Query, Reason, Response};
use pathdump_topology::{FlowId, Ip, LinkPattern, Nanos, Path, TimeRange};
use std::collections::HashMap;

/// Per-flow evidence gathered from the receiver TIB.
#[derive(Clone, Debug)]
pub struct FlowEvidence {
    /// The flow.
    pub flow: FlowId,
    /// Bytes recorded at the receiver.
    pub bytes: u64,
    /// Throughput over the observation window, bits/s.
    pub throughput_bps: f64,
    /// Paths taken (fan-in tree edges).
    pub paths: Vec<Path>,
    /// Shortest observed path length in paper hops.
    pub hops: usize,
}

/// The diagnosis output.
#[derive(Clone, Debug)]
pub struct OutcastReport {
    /// The receiver under investigation.
    pub receiver: Ip,
    /// Per-flow evidence, sorted by ascending throughput.
    pub flows: Vec<FlowEvidence>,
    /// The outcast verdict: the most-penalized flow is also the
    /// closest one.
    pub is_outcast: bool,
    /// Ratio of best to worst throughput (the unfairness magnitude).
    pub unfairness: f64,
}

/// Returns the destination IP named by at least `min_alarms` `POOR_PERF`
/// alarms from distinct sources, if any — the trigger condition ("a
/// minimum of 10 alerts from different sources to a particular
/// destination").
pub fn alarm_hotspot(alarms: &[Alarm], min_alarms: usize) -> Option<Ip> {
    let mut by_dst: HashMap<Ip, std::collections::HashSet<Ip>> = HashMap::new();
    for a in alarms {
        if a.reason == Reason::PoorPerf {
            by_dst
                .entry(a.flow.dst_ip)
                .or_default()
                .insert(a.flow.src_ip);
        }
    }
    by_dst
        .into_iter()
        .filter(|(_, srcs)| srcs.len() >= min_alarms)
        .max_by_key(|(_, srcs)| srcs.len())
        .map(|(dst, _)| dst)
}

/// Runs the diagnosis against the receiver's TIB for the given window.
pub fn diagnose(
    world: &mut PathDumpWorld,
    receiver: Ip,
    flows: &[FlowId],
    window: (Nanos, Nanos),
) -> OutcastReport {
    let Some(dst_host) = world.fabric.topology().host_by_ip(receiver) else {
        return OutcastReport {
            receiver,
            flows: Vec::new(),
            is_outcast: false,
            unfairness: 1.0,
        };
    };
    let range = TimeRange::between(window.0, window.1);
    let dur_s = (window.1.saturating_sub(window.0)).as_secs_f64().max(1e-9);
    let mut evidence = Vec::new();
    for &flow in flows {
        let bytes = match world.execute_on_host(
            dst_host,
            &Query::GetCount {
                flow,
                path: None,
                range,
            },
            true,
        ) {
            Response::Count { bytes, .. } => bytes,
            _ => 0,
        };
        let paths = match world.execute_on_host(
            dst_host,
            &Query::GetPaths {
                flow,
                link: LinkPattern::ANY,
                range,
            },
            true,
        ) {
            Response::Paths(p) => p,
            _ => Vec::new(),
        };
        let hops = paths
            .iter()
            .map(|p| p.num_hops())
            .min()
            .unwrap_or(usize::MAX);
        evidence.push(FlowEvidence {
            flow,
            bytes,
            throughput_bps: bytes as f64 * 8.0 / dur_s,
            paths,
            hops,
        });
    }
    evidence.sort_by(|a, b| {
        a.throughput_bps
            .partial_cmp(&b.throughput_bps)
            .expect("throughputs are finite")
    });
    let worst = evidence.first();
    let min_hops = evidence.iter().map(|e| e.hops).min().unwrap_or(0);
    let is_outcast = worst.is_some_and(|w| w.hops == min_hops)
        && evidence.len() >= 2
        && evidence.last().expect("len >= 2").throughput_bps
            > 1.3 * evidence[0].throughput_bps.max(1.0);
    let unfairness = if evidence.is_empty() {
        1.0
    } else {
        evidence.last().expect("non-empty").throughput_bps / evidence[0].throughput_bps.max(1.0)
    };
    OutcastReport {
        receiver,
        flows: evidence,
        is_outcast,
        unfairness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Testbed;
    use pathdump_core::WorldConfig;
    use pathdump_simnet::SimConfig;
    use pathdump_topology::HostId;

    #[test]
    fn hotspot_requires_distinct_sources() {
        let mk = |src: u32, dst: u32| Alarm {
            flow: FlowId::tcp(Ip(src), 1, Ip(dst), 2),
            reason: Reason::PoorPerf,
            paths: vec![],
            host: HostId(0),
            at: Nanos::ZERO,
        };
        let alarms: Vec<Alarm> = (0..5).map(|s| mk(s, 99)).collect();
        assert_eq!(alarm_hotspot(&alarms, 5), Some(Ip(99)));
        assert_eq!(alarm_hotspot(&alarms, 6), None);
        // Repeated alarms from one source count once.
        let dup: Vec<Alarm> = (0..5).map(|_| mk(1, 50)).collect();
        assert_eq!(alarm_hotspot(&dup, 2), None);
    }

    /// Small-scale Figure 10: 7 senders (1 close, 6 far) into one
    /// receiver; the close flow is the most penalized and the profile
    /// matches outcast.
    #[test]
    fn outcast_scenario_detected() {
        let mut cfg = SimConfig::for_tests();
        // Small buffers accentuate port blackout.
        cfg.fabric_link.queue_pkts = 16;
        let mut tb = Testbed::fattree(4, cfg, WorldConfig::default());
        let receiver = tb.ft.host(0, 0, 0);
        // Close sender: same ToR (2-hop path).
        let close = tb.ft.host(0, 0, 1);
        // Far senders: other pods (6-hop paths) — they enter ToR(0,0)
        // through its aggregate-facing ports.
        let far: Vec<HostId> = vec![
            tb.ft.host(1, 0, 0),
            tb.ft.host(1, 1, 0),
            tb.ft.host(2, 0, 0),
            tb.ft.host(2, 1, 0),
            tb.ft.host(3, 0, 0),
            tb.ft.host(3, 1, 0),
        ];
        let mut flows = Vec::new();
        // Large enough that no flow completes inside the window: the
        // throughput differences then reflect sustained contention.
        let size = 60_000_000u64;
        flows.push(tb.flow(close, receiver, 5000));
        tb.add_flow(close, receiver, 5000, size, Nanos::ZERO);
        for (i, &src) in far.iter().enumerate() {
            let sport = 5001 + i as u16;
            flows.push(tb.flow(src, receiver, sport));
            tb.add_flow(src, receiver, sport, size, Nanos::ZERO);
        }
        let window = (Nanos::ZERO, Nanos::from_secs(10));
        tb.sim.run_until(window.1);
        let rip = tb.ip_of(receiver);
        let report = diagnose(&mut tb.sim.world, rip, &flows, window);
        assert_eq!(report.flows.len(), 7);
        assert!(
            report.unfairness > 1.2,
            "contention must create unfairness: {:.2}",
            report.unfairness
        );
        assert!(
            report.flows.iter().all(|e| e.bytes > 0),
            "every sender made some progress"
        );
        // Paths recorded: close flow has a 2-hop path, far flows 6-hop.
        let close_ev = report
            .flows
            .iter()
            .find(|e| e.flow.src_port == 5000)
            .unwrap();
        assert_eq!(close_ev.hops, 2);
        assert!(report
            .flows
            .iter()
            .filter(|e| e.flow.src_port != 5000)
            .all(|e| e.hops == 6));
    }
}
